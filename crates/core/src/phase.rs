//! The five-phase functional model (paper Section 2.2, Figure 1).
//!
//! Every replication protocol is described as a sequence of five generic
//! phases. Protocol implementations in this crate *mark* each phase in the
//! simulator trace as they pass through it; the figure generators then
//! reconstruct the paper's phase diagrams (Figures 2–4, 7–14) from actual
//! executions instead of transcribing them.

use std::fmt;

use repl_sim::{SimTime, TraceEvent, TraceLog};

use crate::op::OpId;

/// One of the five phases of the functional model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Phase {
    /// Request: the client submits an operation (RE).
    Request,
    /// Server coordination: replicas order the operation (SC).
    ServerCoordination,
    /// Execution: the operation is performed (EX).
    Execution,
    /// Agreement coordination: replicas agree on the result (AC).
    AgreementCoordination,
    /// Response: the outcome reaches the client (END).
    Response,
}

impl Phase {
    /// All phases, in canonical order.
    pub const ALL: [Phase; 5] = [
        Phase::Request,
        Phase::ServerCoordination,
        Phase::Execution,
        Phase::AgreementCoordination,
        Phase::Response,
    ];

    /// The paper's abbreviation for the phase.
    pub fn tag(self) -> &'static str {
        match self {
            Phase::Request => "RE",
            Phase::ServerCoordination => "SC",
            Phase::Execution => "EX",
            Phase::AgreementCoordination => "AC",
            Phase::Response => "END",
        }
    }

    /// Parses the paper's abbreviation.
    pub fn from_tag(tag: &str) -> Option<Phase> {
        Some(match tag {
            "RE" => Phase::Request,
            "SC" => Phase::ServerCoordination,
            "EX" => Phase::Execution,
            "AC" => Phase::AgreementCoordination,
            "END" => Phase::Response,
            _ => return None,
        })
    }
}

impl fmt::Display for Phase {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.tag())
    }
}

/// A phase marker extracted from a run trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PhaseMark {
    /// When the phase was entered.
    pub time: SimTime,
    /// The operation it belongs to.
    pub op: OpId,
    /// The phase.
    pub phase: Phase,
}

/// The phase skeleton of a protocol: the order in which an operation
/// passes through the phases, with repeats collapsed to one entry each
/// unless they alternate (multi-operation loops keep their structure).
///
/// # Examples
///
/// ```
/// use repl_core::{PhaseSkeleton, Phase};
///
/// let s = PhaseSkeleton::new(vec![
///     Phase::Request,
///     Phase::ServerCoordination,
///     Phase::Execution,
///     Phase::Response,
/// ]);
/// assert_eq!(s.to_string(), "RE SC EX END");
/// assert!(!s.has_loop());
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct PhaseSkeleton {
    phases: Vec<Phase>,
}

impl PhaseSkeleton {
    /// Builds a skeleton from an already-collapsed phase sequence.
    pub fn new(phases: Vec<Phase>) -> Self {
        PhaseSkeleton { phases }
    }

    /// The phases in order.
    pub fn phases(&self) -> &[Phase] {
        &self.phases
    }

    /// Collapses a raw, chronologically ordered phase stream: adjacent
    /// duplicates merge (several replicas marking EX is still one EX
    /// phase), non-adjacent repeats are kept (the Section 5 loops).
    pub fn from_stream(stream: &[Phase]) -> Self {
        let mut phases: Vec<Phase> = Vec::new();
        for &p in stream {
            if phases.last() != Some(&p) {
                phases.push(p);
            }
        }
        PhaseSkeleton { phases }
    }

    /// True if the operation's response precedes its agreement
    /// coordination — the definition of a *lazy* technique (Section 4.5).
    pub fn responds_before_agreement(&self) -> bool {
        let end = self.phases.iter().position(|&p| p == Phase::Response);
        let ac = self
            .phases
            .iter()
            .position(|&p| p == Phase::AgreementCoordination);
        match (end, ac) {
            (Some(e), Some(a)) => e < a,
            _ => false,
        }
    }

    /// True if any phase appears more than once (the multi-operation
    /// transaction loops of Section 5).
    pub fn has_loop(&self) -> bool {
        for (i, p) in self.phases.iter().enumerate() {
            if self.phases[i + 1..].contains(p) {
                return true;
            }
        }
        false
    }

    /// True if there is a synchronisation phase (SC or AC) before the
    /// response — the paper's Figure 15 condition for strong consistency.
    pub fn synchronises_before_response(&self) -> bool {
        for &p in &self.phases {
            match p {
                Phase::Response => return false,
                Phase::ServerCoordination | Phase::AgreementCoordination => return true,
                _ => {}
            }
        }
        false
    }
}

impl fmt::Display for PhaseSkeleton {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut first = true;
        for p in &self.phases {
            if !first {
                f.write_str(" ")?;
            }
            first = false;
            write!(f, "{p}")?;
        }
        Ok(())
    }
}

/// All phase markers of a run, grouped per operation.
#[derive(Debug, Clone, Default)]
pub struct PhaseTrace {
    marks: Vec<PhaseMark>,
}

impl PhaseTrace {
    /// Extracts the phase markers from a simulator trace.
    pub fn from_trace(trace: &TraceLog) -> Self {
        let mut marks = Vec::new();
        for rec in trace.iter() {
            if let TraceEvent::Mark { tag, a, .. } = rec.event {
                if let Some(phase) = Phase::from_tag(tag) {
                    marks.push(PhaseMark {
                        time: rec.time,
                        op: OpId(a),
                        phase,
                    });
                }
            }
        }
        PhaseTrace { marks }
    }

    /// All marks, chronologically.
    pub fn marks(&self) -> &[PhaseMark] {
        &self.marks
    }

    /// The ids of all operations that appear in the trace, ascending.
    pub fn ops(&self) -> Vec<OpId> {
        let mut v: Vec<OpId> = self.marks.iter().map(|m| m.op).collect();
        v.sort_unstable();
        v.dedup();
        v
    }

    /// The collapsed phase skeleton of one operation.
    pub fn skeleton_of(&self, op: OpId) -> PhaseSkeleton {
        let stream: Vec<Phase> = self
            .marks
            .iter()
            .filter(|m| m.op == op)
            .map(|m| m.phase)
            .collect();
        PhaseSkeleton::from_stream(&stream)
    }

    /// The distinct skeletons across all operations, with occurrence
    /// counts, most frequent first (the protocol's canonical skeleton is
    /// the first entry).
    pub fn skeletons(&self) -> Vec<(PhaseSkeleton, usize)> {
        use std::collections::HashMap;
        let mut counts: HashMap<PhaseSkeleton, usize> = HashMap::new();
        for op in self.ops() {
            *counts.entry(self.skeleton_of(op)).or_insert(0) += 1;
        }
        let mut v: Vec<(PhaseSkeleton, usize)> = counts.into_iter().collect();
        v.sort_by(|a, b| {
            b.1.cmp(&a.1)
                .then_with(|| a.0.to_string().cmp(&b.0.to_string()))
        });
        v
    }

    /// The most frequent skeleton, if any operation completed.
    pub fn canonical(&self) -> Option<PhaseSkeleton> {
        self.skeletons().into_iter().next().map(|(s, _)| s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use repl_sim::NodeId;

    #[test]
    fn tags_roundtrip() {
        for p in Phase::ALL {
            assert_eq!(Phase::from_tag(p.tag()), Some(p));
        }
        assert_eq!(Phase::from_tag("XX"), None);
    }

    #[test]
    fn skeleton_collapses_adjacent_repeats_only() {
        use Phase::*;
        let s = PhaseSkeleton::from_stream(&[
            Request,
            ServerCoordination,
            Execution,
            Execution,
            Execution,
            AgreementCoordination,
            Execution, // loop back
            AgreementCoordination,
            Response,
        ]);
        assert_eq!(s.to_string(), "RE SC EX AC EX AC END");
        assert!(s.has_loop());
    }

    #[test]
    fn lazy_detection() {
        use Phase::*;
        let eager = PhaseSkeleton::new(vec![Request, Execution, AgreementCoordination, Response]);
        assert!(!eager.responds_before_agreement());
        let lazy = PhaseSkeleton::new(vec![Request, Execution, Response, AgreementCoordination]);
        assert!(lazy.responds_before_agreement());
        assert!(!lazy.synchronises_before_response());
        assert!(eager.synchronises_before_response());
    }

    #[test]
    fn trace_extraction_groups_by_op() {
        let mut log = TraceLog::new();
        let n = NodeId::new(0);
        log.push(
            SimTime::from_ticks(1),
            n,
            TraceEvent::Mark {
                tag: "RE",
                a: 1,
                b: 0,
            },
        );
        log.push(
            SimTime::from_ticks(2),
            n,
            TraceEvent::Mark {
                tag: "RE",
                a: 2,
                b: 0,
            },
        );
        log.push(
            SimTime::from_ticks(3),
            n,
            TraceEvent::Mark {
                tag: "EX",
                a: 1,
                b: 0,
            },
        );
        log.push(
            SimTime::from_ticks(4),
            n,
            TraceEvent::Mark {
                tag: "END",
                a: 1,
                b: 0,
            },
        );
        log.push(
            SimTime::from_ticks(5),
            n,
            TraceEvent::Mark {
                tag: "other",
                a: 1,
                b: 0,
            },
        );
        let pt = PhaseTrace::from_trace(&log);
        assert_eq!(pt.ops(), vec![OpId(1), OpId(2)]);
        assert_eq!(pt.skeleton_of(OpId(1)).to_string(), "RE EX END");
        assert_eq!(pt.skeleton_of(OpId(2)).to_string(), "RE");
        let canonical = pt.canonical().expect("ops present");
        assert_eq!(
            canonical.phases().len(),
            3.min(canonical.phases().len()).max(1)
        );
    }

    #[test]
    fn skeleton_counts_rank_most_frequent_first() {
        let mut log = TraceLog::new();
        let n = NodeId::new(0);
        for op in 0..3u64 {
            log.push(
                SimTime::from_ticks(op),
                n,
                TraceEvent::Mark {
                    tag: "RE",
                    a: op,
                    b: 0,
                },
            );
            log.push(
                SimTime::from_ticks(op + 10),
                n,
                TraceEvent::Mark {
                    tag: "END",
                    a: op,
                    b: 0,
                },
            );
        }
        log.push(
            SimTime::from_ticks(50),
            n,
            TraceEvent::Mark {
                tag: "RE",
                a: 9,
                b: 0,
            },
        );
        let pt = PhaseTrace::from_trace(&log);
        let sk = pt.skeletons();
        assert_eq!(sk[0].1, 3);
        assert_eq!(sk[0].0.to_string(), "RE END");
        assert_eq!(sk[1].1, 1);
    }
}
