//! # repl-core — the paper, executable
//!
//! The primary contribution of *Understanding Replication in Databases and
//! Distributed Systems* (Wiesmann, Pedone, Schiper, Kemme, Alonso;
//! ICDCS 2000) is a five-phase functional model that makes replication
//! techniques from the distributed-systems and database communities
//! comparable. This crate makes that framework *executable*:
//!
//! * [`Phase`], [`PhaseSkeleton`], [`PhaseTrace`] — the functional model;
//!   protocols mark phases in the simulator trace and the paper's phase
//!   diagrams are regenerated from real executions,
//! * [`Technique`] — the taxonomy with the classification metadata behind
//!   the paper's Figures 5, 6 and 16,
//! * [`protocols`] — all ten techniques as simulated protocols,
//! * [`ClientActor`] — the closed-loop client driver,
//! * [`consistency`] — linearizability, sequential-consistency and
//!   staleness oracles (one-copy serializability lives in `repl-db`),
//! * [`run`]/[`RunConfig`] — one-call experiment execution returning a [`RunReport`],
//! * [`figures`] — generators for every figure of the paper.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod client;
pub mod consistency;
mod durability;
pub mod figures;
mod op;
mod phase;
pub mod protocols;
mod report;
mod runner;
mod technique;

pub use client::{AggregateClients, ClientActor, ClientGroup, OpRecord, OpenLoopClient, ProtocolMsg};
pub use durability::{DurabilityConfig, DurabilityTier, RestorePlan};
pub use op::{accesses, ClientOp, OpId, Response};
pub use phase::{Phase, PhaseMark, PhaseSkeleton, PhaseTrace};
pub use repl_gcs::BatchConfig;
pub use report::{Availability, DurabilityReport, NodeRecovery, RunReport, SilentLoss};
pub use runner::{run, try_run, Arrival, RunConfig, RunError, MAX_CLIENTS};
pub use technique::{Community, Guarantee, Propagation, Technique, TechniqueInfo, UpdateLocation};
