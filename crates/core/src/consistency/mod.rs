//! Consistency oracles: the correctness criteria of the paper's
//! Section 2.2, executable.
//!
//! * [`check_linearizable`] — linearisability (Wing & Gong search), the
//!   guarantee the distributed-systems techniques claim,
//! * [`check_sequentially_consistent`] — sequential consistency (program
//!   order preserved, some legal total order exists),
//! * [`count_stale_reads`] — real-time staleness of reads, the price the
//!   lazy techniques pay,
//! * one-copy serializability lives in [`repl_db::ReplicatedHistory`].
//!
//! All oracles consume the client-observed [`OpRecord`]s of a run, so
//! they are protocol-agnostic.

mod linearizability;
mod staleness;

pub use linearizability::{
    check_linearizable, check_sequentially_consistent, ConsistencyError, RegisterOp,
};
pub use staleness::{count_stale_reads, StaleRead};

use crate::client::OpRecord;
use repl_db::Key;

/// Extracts single-operation register histories per key from client
/// records, for the linearizability/sequential-consistency oracles.
///
/// Multi-operation transactions are skipped (register oracles apply to
/// the paper's single-operation model; transactional runs use the 1SR
/// checker instead). Aborted and unanswered operations are skipped too:
/// an aborted operation took no effect by definition of the protocols
/// that abort (certification), and an unanswered one has no response
/// time.
pub fn register_histories(records: &[(u32, OpRecord)]) -> Vec<(Key, Vec<RegisterOp>)> {
    use repl_workload::OpTemplate;
    use std::collections::HashMap;
    let mut per_key: HashMap<Key, Vec<RegisterOp>> = HashMap::new();
    for (client, rec) in records {
        if rec.txn.ops.len() != 1 || !rec.committed() {
            continue;
        }
        let Some(responded) = rec.responded else {
            continue;
        };
        let resp = rec.response.as_ref().expect("committed implies response");
        match rec.txn.ops[0] {
            OpTemplate::Read(k) => {
                let value = resp
                    .reads
                    .first()
                    .map(|&(_, v)| v)
                    .unwrap_or(repl_db::Value(0));
                per_key.entry(k).or_default().push(RegisterOp {
                    client: *client,
                    invoke: rec.invoked,
                    response: responded,
                    write: None,
                    value,
                });
            }
            OpTemplate::Write(k, v) => {
                per_key.entry(k).or_default().push(RegisterOp {
                    client: *client,
                    invoke: rec.invoked,
                    response: responded,
                    write: Some(v),
                    value: v,
                });
            }
        }
    }
    let mut v: Vec<(Key, Vec<RegisterOp>)> = per_key.into_iter().collect();
    v.sort_by_key(|(k, _)| *k);
    v
}
