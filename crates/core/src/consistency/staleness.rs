//! Staleness accounting for lazy replication: which reads observed a
//! value that was already overwritten, in real time, when the read began?
//!
//! The paper motivates lazy techniques with response time and mobile
//! clients but notes that "since copies are allowed to diverge,
//! inconsistencies might occur" (Section 4.2). This oracle quantifies
//! that: a committed read is *stale* if, at its invocation, some write of
//! a different value to the same item had already completed and no
//! overlapping write could explain the observed value.

use std::collections::HashMap;

use repl_db::{Key, Value};
use repl_sim::SimTime;
use repl_workload::OpTemplate;

use crate::client::OpRecord;

/// A detected stale read.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StaleRead {
    /// The reading client.
    pub client: u32,
    /// The item.
    pub key: Key,
    /// What the read observed.
    pub observed: Value,
    /// The freshest value that had been committed before the read began.
    pub freshest: Value,
    /// When the read was invoked.
    pub at: SimTime,
}

/// Counts stale reads among the given client records (single-operation
/// reads only; conservative: a read overlapping a write of its observed
/// value is never counted stale).
pub fn count_stale_reads(records: &[(u32, OpRecord)]) -> Vec<StaleRead> {
    // Collect committed writes per key: (invoke, response, value).
    let mut writes: HashMap<Key, Vec<(SimTime, SimTime, Value)>> = HashMap::new();
    for (_, rec) in records {
        if !rec.committed() {
            continue;
        }
        let Some(responded) = rec.responded else {
            continue;
        };
        for op in &rec.txn.ops {
            if let OpTemplate::Write(k, v) = *op {
                writes
                    .entry(k)
                    .or_default()
                    .push((rec.invoked, responded, v));
            }
        }
    }
    let mut stale = Vec::new();
    for (client, rec) in records {
        if rec.txn.ops.len() != 1 || !rec.committed() {
            continue;
        }
        let OpTemplate::Read(key) = rec.txn.ops[0] else {
            continue;
        };
        let Some(responded) = rec.responded else {
            continue;
        };
        let observed = rec
            .response
            .as_ref()
            .and_then(|r| r.reads.first().map(|&(_, v)| v))
            .unwrap_or(Value(0));
        let Some(key_writes) = writes.get(&key) else {
            continue; // never written; reads of the initial value are fresh
        };
        // Writes completed strictly before the read began.
        let completed: Vec<&(SimTime, SimTime, Value)> = key_writes
            .iter()
            .filter(|(_, wr, _)| *wr < rec.invoked)
            .collect();
        let Some(latest) = completed.iter().max_by_key(|(_, wr, _)| *wr) else {
            continue; // nothing committed before: anything observed is fresh
        };
        // A completed write is *possibly latest* if no other completed
        // write started strictly after it finished: concurrent completed
        // writes may linearize in either order, so any of them is fresh.
        let possibly_latest =
            |w: &(SimTime, SimTime, Value)| !completed.iter().any(|w2| w2.0 > w.1);
        let fresh = completed
            .iter()
            .any(|w| w.2 == observed && possibly_latest(w));
        // A write overlapping the read interval also explains the value.
        let overlapping = key_writes
            .iter()
            .any(|(wi, wr, v)| *v == observed && *wi <= responded && *wr >= rec.invoked);
        if !fresh && !overlapping {
            stale.push(StaleRead {
                client: *client,
                key,
                observed,
                freshest: latest.2,
                at: rec.invoked,
            });
        }
    }
    stale
}

#[cfg(test)]
mod tests {
    use super::*;
    use repl_workload::TxnTemplate;

    fn rec(
        txn: Vec<OpTemplate>,
        invoked: u64,
        responded: u64,
        reads: Vec<(Key, Value)>,
    ) -> OpRecord {
        OpRecord {
            op: crate::OpId(0),
            txn: TxnTemplate { ops: txn },
            invoked: SimTime::from_ticks(invoked),
            responded: Some(SimTime::from_ticks(responded)),
            response: Some(crate::Response {
                op: crate::OpId(0),
                committed: true,
                reads,
            }),
            retries: 0,
        }
    }

    #[test]
    fn fresh_read_is_not_stale() {
        let records = vec![
            (
                0,
                rec(vec![OpTemplate::Write(Key(0), Value(5))], 0, 10, vec![]),
            ),
            (
                1,
                rec(
                    vec![OpTemplate::Read(Key(0))],
                    20,
                    30,
                    vec![(Key(0), Value(5))],
                ),
            ),
        ];
        assert!(count_stale_reads(&records).is_empty());
    }

    #[test]
    fn old_value_after_completed_write_is_stale() {
        let records = vec![
            (
                0,
                rec(vec![OpTemplate::Write(Key(0), Value(5))], 0, 10, vec![]),
            ),
            (
                1,
                rec(
                    vec![OpTemplate::Read(Key(0))],
                    20,
                    30,
                    vec![(Key(0), Value(0))],
                ),
            ),
        ];
        let stale = count_stale_reads(&records);
        assert_eq!(stale.len(), 1);
        assert_eq!(stale[0].observed, Value(0));
        assert_eq!(stale[0].freshest, Value(5));
    }

    #[test]
    fn read_before_any_write_is_fresh() {
        let records = vec![
            (
                1,
                rec(
                    vec![OpTemplate::Read(Key(0))],
                    0,
                    5,
                    vec![(Key(0), Value(0))],
                ),
            ),
            (
                0,
                rec(vec![OpTemplate::Write(Key(0), Value(5))], 10, 20, vec![]),
            ),
        ];
        assert!(count_stale_reads(&records).is_empty());
    }

    #[test]
    fn overlapping_write_explains_observation() {
        // Write of 7 overlaps the read; observing 7 is fresh even though
        // the latest *completed* write was 5.
        let records = vec![
            (
                0,
                rec(vec![OpTemplate::Write(Key(0), Value(5))], 0, 10, vec![]),
            ),
            (
                0,
                rec(vec![OpTemplate::Write(Key(0), Value(7))], 20, 60, vec![]),
            ),
            (
                1,
                rec(
                    vec![OpTemplate::Read(Key(0))],
                    30,
                    40,
                    vec![(Key(0), Value(7))],
                ),
            ),
        ];
        assert!(count_stale_reads(&records).is_empty());
    }

    #[test]
    fn uncommitted_and_multiop_records_are_ignored() {
        let mut aborted = rec(
            vec![OpTemplate::Read(Key(0))],
            20,
            30,
            vec![(Key(0), Value(0))],
        );
        aborted.response.as_mut().expect("present").committed = false;
        let records = vec![
            (
                0,
                rec(vec![OpTemplate::Write(Key(0), Value(5))], 0, 10, vec![]),
            ),
            (1, aborted),
            (
                2,
                rec(
                    vec![OpTemplate::Read(Key(0)), OpTemplate::Read(Key(1))],
                    20,
                    30,
                    vec![(Key(0), Value(0)), (Key(1), Value(0))],
                ),
            ),
        ];
        assert!(count_stale_reads(&records).is_empty());
    }
}
