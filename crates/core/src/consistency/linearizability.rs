//! Linearisability and sequential-consistency checking for register
//! histories (Wing & Gong style exhaustive search with memoisation).
//!
//! The paper (Section 2.2): "Distributed systems use linearisability and
//! sequential consistency. … Linearisability is based on real-time
//! dependencies, while sequential consistency only considers the order in
//! which operations are performed on every individual process." The two
//! checkers share one search engine; the flag picks which dependency
//! structure constrains the interleaving.

use std::collections::HashSet;

use repl_db::Value;
use repl_sim::SimTime;

/// One completed register operation as observed by a client.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RegisterOp {
    /// The issuing client.
    pub client: u32,
    /// Invocation time.
    pub invoke: SimTime,
    /// Response time.
    pub response: SimTime,
    /// `Some(v)` for writes.
    pub write: Option<Value>,
    /// The written value, or the value the read observed.
    pub value: Value,
}

/// Why a history failed the check.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ConsistencyError {
    /// No legal linearisation/interleaving exists.
    NoLegalOrder,
    /// The history is too large for exhaustive checking.
    TooLarge(usize),
}

impl std::fmt::Display for ConsistencyError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ConsistencyError::NoLegalOrder => write!(f, "no legal serialization of the history"),
            ConsistencyError::TooLarge(n) => write!(f, "history too large to check ({n} ops)"),
        }
    }
}

impl std::error::Error for ConsistencyError {}

const MAX_OPS: usize = 100;

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Order {
    RealTime,
    PerProcess,
}

/// Checks a single-register history for linearisability starting from
/// `initial`.
///
/// # Errors
///
/// [`ConsistencyError::NoLegalOrder`] if the history is not linearisable;
/// [`ConsistencyError::TooLarge`] beyond 100 operations.
///
/// # Examples
///
/// ```
/// use repl_core::consistency::{check_linearizable, RegisterOp};
/// use repl_db::Value;
/// use repl_sim::SimTime;
///
/// let t = SimTime::from_ticks;
/// // w(1) completes before r()->1: linearizable.
/// let ops = vec![
///     RegisterOp { client: 0, invoke: t(0), response: t(10), write: Some(Value(1)), value: Value(1) },
///     RegisterOp { client: 1, invoke: t(20), response: t(30), write: None, value: Value(1) },
/// ];
/// assert!(check_linearizable(&ops, Value(0)).is_ok());
/// ```
pub fn check_linearizable(ops: &[RegisterOp], initial: Value) -> Result<(), ConsistencyError> {
    search(ops, initial, Order::RealTime)
}

/// Checks a single-register history for sequential consistency starting
/// from `initial` (per-client order must be preserved; real time may not
/// be).
///
/// # Errors
///
/// Same as [`check_linearizable`].
pub fn check_sequentially_consistent(
    ops: &[RegisterOp],
    initial: Value,
) -> Result<(), ConsistencyError> {
    search(ops, initial, Order::PerProcess)
}

fn search(ops: &[RegisterOp], initial: Value, order: Order) -> Result<(), ConsistencyError> {
    let n = ops.len();
    if n == 0 {
        return Ok(());
    }
    if n > MAX_OPS {
        return Err(ConsistencyError::TooLarge(n));
    }
    // For per-process order, precompute each op's predecessor (same client).
    let mut pred: Vec<Option<usize>> = vec![None; n];
    if order == Order::PerProcess {
        use std::collections::HashMap;
        let mut last: HashMap<u32, usize> = HashMap::new();
        let mut by_client: Vec<usize> = (0..n).collect();
        // Program order = invocation order per client.
        by_client.sort_by_key(|&i| (ops[i].client, ops[i].invoke, ops[i].response));
        for &i in &by_client {
            if let Some(&p) = last.get(&ops[i].client) {
                pred[i] = Some(p);
            }
            last.insert(ops[i].client, i);
        }
    }

    let full: u128 = if n == 128 {
        u128::MAX
    } else {
        (1u128 << n) - 1
    };
    let mut visited: HashSet<(u128, i64)> = HashSet::new();
    let mut stack: Vec<(u128, Value)> = vec![(0, initial)];
    while let Some((done, value)) = stack.pop() {
        if done == full {
            return Ok(());
        }
        if !visited.insert((done, value.0)) {
            continue;
        }
        for i in 0..n {
            if done & (1u128 << i) != 0 {
                continue;
            }
            // Dependency constraints.
            let allowed = match order {
                Order::RealTime => (0..n).all(|j| {
                    done & (1u128 << j) != 0 || j == i || ops[j].response >= ops[i].invoke
                }),
                Order::PerProcess => pred[i].is_none_or(|p| done & (1u128 << p) != 0),
            };
            if !allowed {
                continue;
            }
            // Register semantics.
            match ops[i].write {
                Some(v) => stack.push((done | (1u128 << i), v)),
                None => {
                    if ops[i].value == value {
                        stack.push((done | (1u128 << i), value));
                    }
                }
            }
        }
    }
    Err(ConsistencyError::NoLegalOrder)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(x: u64) -> SimTime {
        SimTime::from_ticks(x)
    }
    fn w(client: u32, i: u64, r: u64, v: i64) -> RegisterOp {
        RegisterOp {
            client,
            invoke: t(i),
            response: t(r),
            write: Some(Value(v)),
            value: Value(v),
        }
    }
    fn rd(client: u32, i: u64, r: u64, v: i64) -> RegisterOp {
        RegisterOp {
            client,
            invoke: t(i),
            response: t(r),
            write: None,
            value: Value(v),
        }
    }

    #[test]
    fn empty_history_is_fine() {
        assert!(check_linearizable(&[], Value(0)).is_ok());
        assert!(check_sequentially_consistent(&[], Value(0)).is_ok());
    }

    #[test]
    fn sequential_write_then_read() {
        let ops = [w(0, 0, 10, 5), rd(1, 20, 30, 5)];
        assert!(check_linearizable(&ops, Value(0)).is_ok());
    }

    #[test]
    fn stale_read_after_write_completes_is_not_linearizable() {
        // Write finished at t=10; a read starting at t=20 returns the old
        // value: violates real time.
        let ops = [w(0, 0, 10, 5), rd(1, 20, 30, 0)];
        assert_eq!(
            check_linearizable(&ops, Value(0)),
            Err(ConsistencyError::NoLegalOrder)
        );
        // …but it is sequentially consistent (the read's process may be
        // "behind" — reordering across processes is allowed).
        assert!(check_sequentially_consistent(&ops, Value(0)).is_ok());
    }

    #[test]
    fn concurrent_read_may_see_either_value() {
        let ops_old = [w(0, 0, 100, 5), rd(1, 20, 30, 0)];
        let ops_new = [w(0, 0, 100, 5), rd(1, 20, 30, 5)];
        assert!(check_linearizable(&ops_old, Value(0)).is_ok());
        assert!(check_linearizable(&ops_new, Value(0)).is_ok());
    }

    #[test]
    fn read_of_never_written_value_fails_both() {
        let ops = [w(0, 0, 10, 5), rd(1, 20, 30, 99)];
        assert!(check_linearizable(&ops, Value(0)).is_err());
        assert!(check_sequentially_consistent(&ops, Value(0)).is_err());
    }

    #[test]
    fn fifo_violation_within_one_process_fails_sequential() {
        // One client writes 1 then reads 0 (its own earlier write lost):
        // per-process order makes this illegal even without real time.
        let ops = [w(0, 0, 10, 1), rd(0, 20, 30, 0)];
        assert!(check_sequentially_consistent(&ops, Value(0)).is_err());
    }

    #[test]
    fn interleaved_writes_and_reads_linearize() {
        let ops = [
            w(0, 0, 50, 1),
            w(1, 10, 60, 2),
            rd(2, 70, 80, 1),
            rd(2, 90, 100, 1),
        ];
        // w(2) linearized before w(1): reads of 1 stay legal.
        assert!(check_linearizable(&ops, Value(0)).is_ok());
    }

    #[test]
    fn non_atomic_register_behaviour_detected() {
        // Two sequential reads observe values in an order inconsistent
        // with any single write order: r->2 then r->1 while w1 < w2 in
        // real time and both writes completed before the reads.
        let ops = [
            w(0, 0, 10, 1),
            w(0, 20, 30, 2),
            rd(1, 40, 50, 2),
            rd(1, 60, 70, 1),
        ];
        assert!(check_linearizable(&ops, Value(0)).is_err());
        // Also not sequentially consistent: client 0's program order
        // forces 1 before 2, and client 1 reads 2 then 1.
        assert!(check_sequentially_consistent(&ops, Value(0)).is_err());
    }

    #[test]
    fn oversized_history_reports_too_large() {
        let ops: Vec<RegisterOp> = (0..101)
            .map(|i| w(0, i * 10, i * 10 + 5, i as i64))
            .collect();
        assert_eq!(
            check_linearizable(&ops, Value(0)),
            Err(ConsistencyError::TooLarge(101))
        );
    }
}
