//! The result of one experiment run: everything the figures, tables and
//! oracles need.

use repl_db::{ReplicatedHistory, SerializabilityViolation, TxnId};
use repl_sim::{LatencyHistogram, LatencyStats, Metrics, SimDuration, SimTime};

use crate::client::OpRecord;
use crate::consistency::{count_stale_reads, StaleRead};
use crate::op::OpId;
use crate::phase::{PhaseSkeleton, PhaseTrace};
use crate::technique::Technique;

/// Crash-recovery metrics of one server, populated when the fault plan
/// recovered it at least once. Times are virtual ticks.
#[derive(Debug, Clone, Default)]
pub struct NodeRecovery {
    /// Site index (dense, 0-based).
    pub site: u32,
    /// Recoveries the node went through.
    pub recoveries: u64,
    /// Tick of the last rejoin start (the recovery event).
    pub rejoin_at: Option<u64>,
    /// Ticks from the last rejoin until fully caught up — the node's
    /// contribution to MTTR. `None` if it never finished catching up.
    pub catch_up_ticks: Option<u64>,
    /// State-transfer bytes received across all recoveries.
    pub transfer_bytes: u64,
    /// Transfers served from a redo-log suffix.
    pub log_suffix_transfers: u64,
    /// Transfers served as full snapshots.
    pub snapshot_transfers: u64,
}

/// Durable-tier and disaster accounting of one run, aggregated across
/// servers. All-zero (except possibly the upload counters) on runs
/// without volume-loss faults; entirely zero with the tier disabled.
#[derive(Debug, Clone, Default)]
pub struct DurabilityReport {
    /// Whether the run configured a durable log tier at all.
    pub enabled: bool,
    /// Volume-loss disasters applied across servers (tiered or not).
    pub volume_wipes: u64,
    /// Acknowledged commits erased before they were durable, summed
    /// over all wipes — the realised data-loss window.
    pub lost_commits: u64,
    /// The operations behind [`DurabilityReport::lost_commits`], for
    /// the no-silent-loss oracle (sorted, deduplicated). A loss is only
    /// acceptable when it is claimed here.
    pub claimed_lost: Vec<OpId>,
    /// Volume restores performed from the durable tier.
    pub restores: u64,
    /// Bytes downloaded from the tier during restores.
    pub restore_bytes: u64,
    /// Ticks servers spent deaf in restore downloads and log replay.
    pub restore_ticks: u64,
    /// Object-store PUTs issued by the uploaders.
    pub upload_puts: u64,
    /// Bytes shipped to the object store.
    pub upload_bytes: u64,
    /// Accumulated object-store cost units (per-request + per-KiB).
    pub upload_cost: u64,
    /// Log frames sealed across servers.
    pub frames_sealed: u64,
}

impl DurabilityReport {
    /// True when a disaster actually touched this run — the digest only
    /// mixes durability state in that case, so runs with a (quiescent or
    /// disabled) tier stay byte-identical to the untiered baseline.
    pub fn disaster(&self) -> bool {
        self.volume_wipes > 0 || self.restores > 0 || self.lost_commits > 0
    }
}

/// An acknowledged commit that a disaster silently erased: the client
/// was told "committed", no surviving replica knows the transaction,
/// and the run's data-loss accounting never claimed it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SilentLoss {
    /// The client operation whose commit vanished.
    pub op: OpId,
    /// The transaction id it ran under.
    pub txn: TxnId,
}

impl std::fmt::Display for SilentLoss {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "op {:?} (txn {:?}) was acknowledged committed but no replica remembers it \
             and the data-loss accounting never claimed it",
            self.op, self.txn
        )
    }
}

/// Availability metrics of one run, meaningful under a fault load.
///
/// All durations are virtual ticks. For operations still unanswered when
/// the run ended, the gap is measured to the end of the run (deadline or
/// last completion), so a stuck client shows a large — but finite —
/// window rather than disappearing from the metric.
#[derive(Debug, Clone, Default)]
pub struct Availability {
    /// Per-client worst unavailability window: the longest gap between
    /// submitting a request and receiving its response (client order).
    pub per_client_worst_gap: Vec<SimDuration>,
    /// Failover latency: time from the plan's first crash to the next
    /// committed response observed by any client. `None` when the plan
    /// has no crash or nothing committed afterwards.
    pub failover_latency: Option<SimDuration>,
    /// Disruptive fault events actually applied by the world (crashes,
    /// partitions, link faults).
    pub faults_injected: u64,
    /// Repair events actually applied (recoveries, heals, link repairs).
    pub repairs_applied: u64,
    /// Per-server crash-recovery accounting, for servers that recovered
    /// at least once (site order).
    pub recoveries: Vec<NodeRecovery>,
}

impl Availability {
    /// The worst unavailability window across all clients.
    pub fn worst_gap(&self) -> SimDuration {
        self.per_client_worst_gap
            .iter()
            .copied()
            .max()
            .unwrap_or(SimDuration::ZERO)
    }

    /// The best-off client's worst gap: whether the technique kept
    /// *anyone* fully unaffected (the paper's failure-transparency axis).
    pub fn best_client_gap(&self) -> SimDuration {
        self.per_client_worst_gap
            .iter()
            .copied()
            .min()
            .unwrap_or(SimDuration::ZERO)
    }

    /// Mean time to repair across servers that completed a recovery:
    /// the average catch-up window, in ticks. `None` when no server
    /// finished recovering (or none recovered at all).
    pub fn mttr_ticks(&self) -> Option<u64> {
        let done: Vec<u64> = self
            .recoveries
            .iter()
            .filter_map(|r| r.catch_up_ticks)
            .collect();
        if done.is_empty() {
            return None;
        }
        Some(done.iter().sum::<u64>() / done.len() as u64)
    }

    /// Total recovery state-transfer bytes received across servers.
    pub fn transfer_bytes(&self) -> u64 {
        self.recoveries.iter().map(|r| r.transfer_bytes).sum()
    }
}

/// Aggregated outcome of a [`crate::run`] invocation.
#[derive(Debug)]
pub struct RunReport {
    /// The technique that ran.
    pub technique: Technique,
    /// Number of replica servers.
    pub servers: u32,
    /// Number of clients.
    pub clients: u32,
    /// Virtual time when the run ended.
    pub duration: SimTime,
    /// Response-time samples of completed operations. Empty on
    /// aggregated open-loop runs, which record into
    /// [`RunReport::latency_hist`] instead.
    pub latencies: LatencyStats,
    /// Constant-memory latency histogram, populated only by the
    /// aggregated open-loop engine (`None` on the exact store-all path,
    /// keeping its digests byte-identical to earlier revisions).
    pub latency_hist: Option<LatencyHistogram>,
    /// Peak in-flight operations across all client groups (aggregated
    /// open-loop runs; zero otherwise).
    pub peak_outstanding: u64,
    /// Operations answered (committed or aborted).
    pub ops_completed: u64,
    /// Operations answered with a commit.
    pub ops_committed: u64,
    /// Operations answered with an abort.
    pub ops_aborted: u64,
    /// Operations never answered before the deadline.
    pub ops_unanswered: u64,
    /// Client-side re-submissions.
    pub client_retries: u64,
    /// Network counters.
    pub messages: Metrics,
    /// Final store fingerprints, one per server (site order).
    pub fingerprints: Vec<u64>,
    /// The merged multi-site execution history.
    pub history: ReplicatedHistory,
    /// Phase markers (empty when tracing was disabled).
    pub phase_trace: PhaseTrace,
    /// Raw client records `(client, record)`.
    pub records: Vec<(u32, OpRecord)>,
    /// Writes discarded by lazy reconciliation.
    pub reconciliations: u64,
    /// Wound-wait / detection victims across servers.
    pub wounds: u64,
    /// Server-side transaction aborts (wounds, certification failures).
    pub server_aborts: u64,
    /// Availability metrics (unavailability windows, failover latency,
    /// fault counts).
    pub availability: Availability,
    /// Durable-tier accounting (uploads, disasters, restores, loss).
    pub durability: DurabilityReport,
    /// FNV-1a hash of the world's full trace log (constant for the empty
    /// log when tracing was disabled). Same seed ⇒ same hash; the
    /// determinism oracle compares these across serial and parallel
    /// sweeps.
    pub trace_hash: u64,
}

impl RunReport {
    /// True if every replica ended in the same state.
    pub fn converged(&self) -> bool {
        self.fingerprints.windows(2).all(|w| w[0] == w[1])
    }

    /// Completed operations per million ticks (one tick ≈ 1 µs, so this
    /// reads as operations per second).
    pub fn throughput(&self) -> f64 {
        let t = self.duration.ticks().max(1) as f64;
        self.ops_completed as f64 * 1_000_000.0 / t
    }

    /// Messages per completed operation.
    pub fn messages_per_op(&self) -> f64 {
        if self.ops_completed == 0 {
            return 0.0;
        }
        self.messages.messages_sent as f64 / self.ops_completed as f64
    }

    /// Server↔server coordination messages per completed operation —
    /// the ordering/agreement share of [`RunReport::messages_per_op`].
    /// Client request/response traffic (one invoke plus one reply per
    /// replica that answers) is excluded: it is fixed per transaction
    /// and no ordering-layer optimization can amortize it.
    pub fn coordination_messages_per_op(&self) -> f64 {
        if self.ops_completed == 0 {
            return 0.0;
        }
        self.messages.coordination_messages as f64 / self.ops_completed as f64
    }

    /// The most frequent phase skeleton observed (needs tracing).
    pub fn canonical_skeleton(&self) -> Option<PhaseSkeleton> {
        self.phase_trace.canonical()
    }

    /// Checks one-copy serializability of the merged history.
    ///
    /// # Errors
    ///
    /// Returns the serialization-graph cycle if the history is not 1SR.
    pub fn check_one_copy_serializable(&self) -> Result<Vec<TxnId>, SerializabilityViolation> {
        self.history.check_one_copy_serializable()
    }

    /// The stale reads observed by clients (real-time criterion).
    pub fn stale_reads(&self) -> Vec<StaleRead> {
        count_stale_reads(&self.records)
    }

    /// Disruptive fault events applied during the run (crashes,
    /// partitions, link faults).
    pub fn faults_injected(&self) -> u64 {
        self.availability.faults_injected
    }

    /// Fraction of answered operations that aborted.
    pub fn abort_rate(&self) -> f64 {
        if self.ops_completed == 0 {
            return 0.0;
        }
        self.ops_aborted as f64 / self.ops_completed as f64
    }

    /// A 64-bit FNV-1a digest of everything observable in the report:
    /// counters, latency samples (order-insensitive), per-server
    /// fingerprints, raw client records and the trace hash. Two runs of
    /// the same configuration and seed must produce equal digests
    /// regardless of which thread executed them — the determinism tests
    /// assert exactly that.
    pub fn digest(&self) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        let mut mix = |v: u64| {
            for b in v.to_le_bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01B3);
            }
        };
        mix(self.technique as u64);
        mix(self.servers as u64);
        mix(self.clients as u64);
        mix(self.duration.ticks());
        // Latency samples are hashed through the canonical sorted view so
        // the digest is insensitive to whether a percentile (which sorts
        // in place) was taken first.
        let samples = self.latencies.sorted_samples();
        mix(samples.len() as u64);
        for s in samples {
            mix(s);
        }
        mix(self.ops_completed);
        mix(self.ops_committed);
        mix(self.ops_aborted);
        mix(self.ops_unanswered);
        mix(self.client_retries);
        mix(self.messages.messages_sent);
        mix(self.messages.messages_delivered);
        mix(self.messages.messages_dropped);
        mix(self.messages.bytes_sent);
        mix(self.messages.timers_fired);
        mix(self.messages.events_processed);
        for &f in &self.fingerprints {
            mix(f);
        }
        for (client, rec) in &self.records {
            mix(*client as u64);
            mix(rec.op.0);
            mix(rec.invoked.ticks());
            mix(rec.responded.map_or(u64::MAX, |t| t.ticks()));
            mix(rec.retries as u64);
            match &rec.response {
                None => mix(0),
                Some(resp) => {
                    mix(1 + resp.committed as u64);
                    for (k, v) in &resp.reads {
                        mix(k.0);
                        mix(v.0 as u64);
                    }
                }
            }
        }
        mix(self.reconciliations);
        mix(self.wounds);
        mix(self.server_aborts);
        mix(self.availability.faults_injected);
        mix(self.availability.repairs_applied);
        for &gap in &self.availability.per_client_worst_gap {
            mix(gap.ticks());
        }
        mix(self
            .availability
            .failover_latency
            .map_or(u64::MAX, |d| d.ticks()));
        mix(self.availability.recoveries.len() as u64);
        for r in &self.availability.recoveries {
            mix(r.site as u64);
            mix(r.recoveries);
            mix(r.rejoin_at.unwrap_or(u64::MAX));
            mix(r.catch_up_ticks.unwrap_or(u64::MAX));
            mix(r.transfer_bytes);
            mix(r.log_suffix_transfers);
            mix(r.snapshot_transfers);
        }
        // Durability state is mixed only once a disaster touched the
        // run: a quiescent tier (and upload accounting alone) must keep
        // the digest byte-identical to the untiered baseline.
        if self.durability.disaster() {
            mix(self.durability.volume_wipes);
            mix(self.durability.lost_commits);
            mix(self.durability.claimed_lost.len() as u64);
            for op in &self.durability.claimed_lost {
                mix(op.0);
            }
            mix(self.durability.restores);
            mix(self.durability.restore_bytes);
            mix(self.durability.restore_ticks);
        }
        // The streaming histogram exists only on aggregated open-loop
        // runs; mixing it conditionally keeps every pre-existing mode's
        // digest byte-identical.
        if let Some(hist) = &self.latency_hist {
            mix(hist.fingerprint());
            mix(self.peak_outstanding);
        }
        mix(self.trace_hash);
        h
    }

    /// The no-silent-loss oracle: every update-only operation that was
    /// acknowledged as committed must either still be remembered by at
    /// least one replica's history or be claimed in the run's data-loss
    /// accounting ([`DurabilityReport::claimed_lost`]). Violations mean
    /// a disaster erased an acknowledged commit and nothing owned up to
    /// it.
    ///
    /// Read-only and read-write acknowledgements are exempt: their
    /// reads pin them in history through the surviving replicas, and a
    /// read-only commit has no durable effect to lose.
    ///
    /// # Errors
    ///
    /// Returns every silently lost operation, in client-record order.
    pub fn check_no_silent_loss(&self) -> Result<(), Vec<SilentLoss>> {
        let committed = self.history.committed();
        let mut violations = Vec::new();
        for (_, rec) in &self.records {
            let Some(resp) = &rec.response else { continue };
            if !resp.committed || !resp.reads.is_empty() {
                continue;
            }
            let txn = crate::protocols::common::global_txn(rec.op);
            if committed.contains(&txn) {
                continue;
            }
            if self.durability.claimed_lost.binary_search(&rec.op).is_ok() {
                continue;
            }
            violations.push(SilentLoss { op: rec.op, txn });
        }
        if violations.is_empty() {
            Ok(())
        } else {
            Err(violations)
        }
    }

    /// One-line human-readable summary.
    pub fn summary(&self) -> String {
        let mean = match &self.latency_hist {
            Some(h) if self.latencies.is_empty() => h.mean(),
            _ => self.latencies.mean(),
        };
        format!(
            "{}: n={} clients={} ops={} committed={} aborted={} mean={}t msgs/op={:.1} converged={}",
            self.technique,
            self.servers,
            self.clients,
            self.ops_completed,
            self.ops_committed,
            self.ops_aborted,
            mean.ticks(),
            self.messages_per_op(),
            self.converged(),
        )
    }
}
