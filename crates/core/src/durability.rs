//! Tiered durability: each server's asynchronous uploader into the
//! simulated object store, and the disaster bookkeeping around it.
//!
//! The local WAL and store live on a losable volume; a
//! [`DurabilityTier`] ships every committed writeset to an off-node
//! [`DurableLog`] as sealed frames through an [`ObjectStore`] model.
//! Frames become durable `upload_lag` ticks after sealing (paced by the
//! configured bandwidth), so at any instant the tier splits the node's
//! acknowledged commits into a *durable prefix* and an *exposed
//! suffix* — the data-loss window a volume-loss disaster realises.
//!
//! The tier is strictly passive with respect to the simulation: sealing
//! happens from the settle hook after normal event processing, uploads
//! do not travel the simulated network, and a disabled tier leaves a
//! run bit-for-bit unchanged (the digest-identity tests pin this).

use repl_db::{DurableRestore, TxnId, WriteSet};
use repl_sim::{ObjectStore, ObjectStoreConfig};

/// Configuration of one run's durable log tier.
///
/// # Examples
///
/// ```
/// use repl_core::DurabilityConfig;
///
/// let off = DurabilityConfig::disabled();
/// assert!(!off.enabled);
/// let tiered = DurabilityConfig::with_upload_lag(2_000);
/// assert!(tiered.enabled);
/// assert_eq!(tiered.object_store.upload_lag, 2_000);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DurabilityConfig {
    /// Whether servers run an uploader at all. Disabled (the default)
    /// reproduces the untiered behaviour bit-for-bit.
    pub enabled: bool,
    /// The object-store model backing the tier (latency, bandwidth,
    /// cost accounting).
    pub object_store: ObjectStoreConfig,
    /// Fold durable frames into the tier's backup snapshot once more
    /// than this many entries are retained (restore-cost bound).
    pub compact_after: usize,
}

impl Default for DurabilityConfig {
    fn default() -> Self {
        DurabilityConfig::disabled()
    }
}

impl DurabilityConfig {
    /// No durable tier: the pre-tier behaviour.
    pub fn disabled() -> Self {
        DurabilityConfig {
            enabled: false,
            object_store: ObjectStoreConfig::default(),
            compact_after: 64,
        }
    }

    /// A synchronous durable tier: every commit is durable the instant
    /// it seals, so a disaster loses nothing.
    pub fn synchronous() -> Self {
        DurabilityConfig {
            enabled: true,
            ..DurabilityConfig::disabled()
        }
    }

    /// An asynchronous tier whose PUTs take `lag` ticks — the knob the
    /// P12 study sweeps against the data-loss window.
    pub fn with_upload_lag(lag: u64) -> Self {
        DurabilityConfig {
            enabled: true,
            object_store: ObjectStoreConfig::with_lag(lag),
            ..DurabilityConfig::disabled()
        }
    }

    /// Replaces the object-store model (builder form).
    pub fn with_object_store(mut self, os: ObjectStoreConfig) -> Self {
        self.object_store = os;
        self
    }

    /// Overrides the compaction threshold (builder form).
    pub fn with_compact_after(mut self, after: usize) -> Self {
        self.compact_after = after.max(1);
        self
    }
}

/// What a protocol must do to finish a volume restore: rewind its
/// ordered stream (or WAL position) to `token`, optionally refill its
/// local redo log with the restored `entries`, and only rejoin the
/// group once the simulated download completes, `delay` ticks after
/// the recovery event.
#[derive(Debug)]
pub struct RestorePlan {
    /// Protocol stream/log position to resume from — everything after
    /// it must be re-fetched from the group.
    pub token: u64,
    /// Logical index of the first entry in `entries` (the restored
    /// snapshot's high-water mark).
    pub start: u64,
    /// Logical log index after installing the restore.
    pub high: u64,
    /// The restored durable suffix, for protocols that keep a local
    /// redo log and want it refilled to match the restored store.
    pub entries: Vec<WriteSet>,
    /// Ticks the download plus the local fsync replay takes; the node
    /// stays deaf until they elapse.
    pub delay: u64,
}

/// One server's durable log tier: the uploader state machine plus the
/// disaster/restore accounting the report collects.
#[derive(Debug)]
pub struct DurabilityTier {
    object: ObjectStore,
    log: repl_db::DurableLog,
    /// Writesets committed since the last seal (the exposed,
    /// not-yet-shipped tail).
    pending: Vec<WriteSet>,
    /// Local fsync cost charged when replaying a restored suffix.
    fsync_ticks: u64,
    /// Volume losses survived.
    pub wipes: u64,
    /// Acknowledged commits a disaster erased before they were durable
    /// — the claimed data-loss window, for the no-silent-loss oracle.
    pub lost: Vec<TxnId>,
    /// Restore transfer bytes downloaded from the tier.
    pub restore_bytes: u64,
    /// Ticks spent deaf in restore downloads.
    pub restore_ticks: u64,
    /// Restores performed.
    pub restores: u64,
    /// Set by a wipe; cleared when the restore is planned.
    needs_restore: bool,
    /// True during the download window (the node is deaf).
    restoring: bool,
}

impl DurabilityTier {
    /// Creates the tier for a server whose store uses `keyspace`.
    pub fn new(cfg: &DurabilityConfig, keyspace: repl_db::Keyspace, fsync_ticks: u64) -> Self {
        DurabilityTier {
            object: ObjectStore::new(cfg.object_store),
            log: repl_db::DurableLog::new(keyspace).with_compaction(cfg.compact_after),
            pending: Vec::new(),
            fsync_ticks,
            wipes: 0,
            lost: Vec::new(),
            restore_bytes: 0,
            restore_ticks: 0,
            restores: 0,
            needs_restore: false,
            restoring: false,
        }
    }

    /// Queues a committed writeset for the next seal. No-op while a
    /// restore is being installed (those entries are already durable).
    pub fn note_commit(&mut self, ws: &WriteSet) {
        if !self.restoring {
            self.pending.push(ws.clone());
        }
    }

    /// Seals everything committed since the last seal into one frame
    /// and ships it; `token` is the owning protocol's stream/log
    /// position after those commits. Called from the settle hook, so a
    /// frame closes at the end of every event that committed something.
    pub fn seal(&mut self, now: u64, token: u64) {
        if self.pending.is_empty() {
            return;
        }
        let entries = std::mem::take(&mut self.pending);
        let bytes: u64 = entries.iter().map(|w| w.wire_size() as u64).sum();
        let durable_at = self.object.upload(now, bytes);
        self.log.seal(now, durable_at, token, entries);
    }

    /// A disaster at `now`: drops in-flight frames and the unsealed
    /// tail, records every erased acknowledged commit in
    /// [`DurabilityTier::lost`], and arms the restore. Returns the
    /// erased writesets so the caller can evict their cached responses
    /// (their ops must re-execute when the group replays them).
    pub fn wipe(&mut self, now: u64) -> Vec<WriteSet> {
        let mut erased = self.log.wipe(now);
        erased.append(&mut self.pending);
        self.lost.extend(erased.iter().map(|w| w.txn));
        self.wipes += 1;
        self.needs_restore = true;
        erased
    }

    /// Plans the restore at recovery time: packages the surviving
    /// durable state and the download window. `None` if the volume was
    /// not wiped since the last restore. The caller must install the
    /// transfers, stay deaf for `delay` ticks, then rejoin.
    pub fn plan_restore(&mut self, _now: u64) -> Option<(DurableRestore, RestorePlan)> {
        if !self.needs_restore {
            return None;
        }
        self.needs_restore = false;
        self.restoring = true;
        self.restores += 1;
        let restore = self.log.restore();
        let delay = self.object.download_ticks(restore.bytes)
            + if restore.high > 0 { self.fsync_ticks } else { 0 };
        self.restore_bytes += restore.bytes;
        self.restore_ticks += delay;
        let plan = RestorePlan {
            token: restore.token,
            start: restore.suffix.as_ref().map_or(restore.high, |t| t.start),
            high: restore.high,
            entries: restore
                .suffix
                .as_ref()
                .map_or_else(Vec::new, |t| t.entries.clone()),
            delay,
        };
        Some((restore, plan))
    }

    /// Ends the deaf window; sealing resumes.
    pub fn finish_restore(&mut self) {
        self.restoring = false;
    }

    /// True during the restore download window.
    pub fn restoring(&self) -> bool {
        self.restoring
    }

    /// Commits acknowledged but not yet durable at `now` — the live
    /// data-loss exposure (what a disaster right now would erase).
    pub fn exposed(&self, now: u64) -> u64 {
        self.pending.len() as u64 + (self.log.len() - self.log.durable_high(now))
    }

    /// The object-store model, for upload accounting.
    pub fn object(&self) -> &ObjectStore {
        &self.object
    }

    /// Frames sealed over the tier's lifetime.
    pub fn frames_sealed(&self) -> u64 {
        self.log.frames_sealed()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use repl_db::{Key, Keyspace, Value, WriteRecord};

    fn ws(ts: u64, key: u64, v: i64) -> WriteSet {
        WriteSet {
            txn: TxnId::new(ts, 0),
            writes: vec![WriteRecord {
                key: Key(key),
                value: Value(v),
                version: 1,
            }],
        }
    }

    fn tier(lag: u64) -> DurabilityTier {
        DurabilityTier::new(
            &DurabilityConfig::with_upload_lag(lag),
            Keyspace::dense(8),
            120,
        )
    }

    #[test]
    fn synchronous_tier_has_no_exposure() {
        let mut t = tier(0);
        t.note_commit(&ws(1, 0, 5));
        assert_eq!(t.exposed(10), 1, "unsealed tail is exposed");
        t.seal(10, 1);
        assert_eq!(t.exposed(10), 0, "lag 0: durable at the seal instant");
        assert!(t.wipe(10).is_empty());
        assert!(t.lost.is_empty());
    }

    #[test]
    fn lagged_tier_loses_the_inflight_suffix() {
        let mut t = tier(500);
        t.note_commit(&ws(1, 0, 5));
        t.seal(10, 1); // durable at 510
        t.note_commit(&ws(2, 1, 6));
        t.seal(20, 2); // durable at 520
        t.note_commit(&ws(3, 2, 7)); // never sealed
        let erased = t.wipe(512);
        assert_eq!(erased.len(), 2, "one in-flight frame + the unsealed tail");
        assert_eq!(t.lost, vec![TxnId::new(2, 0), TxnId::new(3, 0)]);
        let (restore, plan) = t.plan_restore(600).expect("wipe armed a restore");
        assert_eq!(restore.high, 1);
        assert_eq!(plan.token, 1);
        assert_eq!(plan.entries.len(), 1);
        assert!(plan.delay >= 120, "fsync replay is charged");
        assert_eq!(t.restores, 1);
        assert!(t.restoring());
        t.note_commit(&ws(9, 0, 9));
        assert_eq!(t.exposed(600), 0, "restore installs are not re-queued");
        t.finish_restore();
        assert!(t.plan_restore(700).is_none(), "restore is one-shot");
    }

    #[test]
    fn restore_of_an_empty_tier_is_fast() {
        let mut t = tier(400);
        t.wipe(5);
        let (restore, plan) = t.plan_restore(10).expect("armed");
        assert_eq!(restore.high, 0);
        assert_eq!(plan.delay, 400, "one GET round-trip, no fsync replay");
        assert_eq!(plan.entries.len(), 0);
    }
}
