//! The closed-loop client driver shared by all techniques.
//!
//! A client submits its transactions one at a time: invoke, wait for the
//! response, think, submit the next. On a response timeout it re-submits
//! the *same* operation (same [`OpId`]) to the next server — the paper's
//! "clients can then be connected to another database server and re-submit
//! the transaction" (Section 4.1). Servers suppress duplicates through
//! their response caches, so retries are exactly-once.

use repl_sim::{impl_as_any, Actor, Context, Message, NodeId, SimDuration, SimTime, TimerId};
use repl_workload::TxnTemplate;

use crate::op::{ClientOp, OpId, Response};
use crate::phase::Phase;

/// A protocol wire type that clients can talk: carries invocations in and
/// responses out.
pub trait ProtocolMsg: Message {
    /// Wraps a client operation for submission.
    fn invoke(op: ClientOp) -> Self;
    /// Extracts a response, if this message is one.
    fn response(&self) -> Option<&Response>;
}

/// What a client observed for one operation.
#[derive(Debug, Clone)]
pub struct OpRecord {
    /// The operation id.
    pub op: OpId,
    /// The submitted transaction.
    pub txn: TxnTemplate,
    /// Invocation time (first submission).
    pub invoked: SimTime,
    /// Response time, if any arrived before the run ended.
    pub responded: Option<SimTime>,
    /// The response, if any.
    pub response: Option<Response>,
    /// Number of re-submissions (0 = first attempt answered).
    pub retries: u32,
}

impl OpRecord {
    /// The observed latency, if the operation completed.
    pub fn latency(&self) -> Option<SimDuration> {
        self.responded.map(|r| r - self.invoked)
    }

    /// True if the operation completed with a commit.
    pub fn committed(&self) -> bool {
        self.response.as_ref().is_some_and(|r| r.committed)
    }
}

const RETRY_TAG: u64 = 1;
const THINK_TAG: u64 = 2;

/// The closed-loop client actor.
///
/// Generic over the protocol's wire type `M`; the technique decides which
/// server the client prefers (its "local" server, the primary, …) via
/// `preferred`.
pub struct ClientActor<M> {
    client_no: u32,
    servers: Vec<NodeId>,
    preferred: usize,
    txns: Vec<TxnTemplate>,
    think: SimDuration,
    retry_after: SimDuration,
    /// Completed and in-flight operation records.
    pub records: Vec<OpRecord>,
    next_txn: usize,
    target: usize,
    done: bool,
    _marker: std::marker::PhantomData<M>,
}

impl<M: ProtocolMsg> ClientActor<M> {
    /// Creates a client that will submit `txns` in order, preferring
    /// `servers[preferred]`.
    ///
    /// # Panics
    ///
    /// Panics if `servers` is empty.
    pub fn new(
        client_no: u32,
        servers: Vec<NodeId>,
        preferred: usize,
        txns: Vec<TxnTemplate>,
        think: SimDuration,
        retry_after: SimDuration,
    ) -> Self {
        assert!(!servers.is_empty(), "client needs at least one server");
        let preferred = preferred % servers.len();
        ClientActor {
            client_no,
            servers,
            preferred,
            txns,
            think,
            retry_after,
            records: Vec::new(),
            next_txn: 0,
            target: preferred,
            done: true,
            _marker: std::marker::PhantomData,
        }
    }

    /// True once every transaction has a response.
    pub fn is_done(&self) -> bool {
        self.done && self.next_txn >= self.txns.len()
    }

    /// The completed operation records.
    pub fn completed(&self) -> impl Iterator<Item = &OpRecord> {
        self.records.iter().filter(|r| r.responded.is_some())
    }

    fn submit_next(&mut self, ctx: &mut Context<'_, M>) {
        if self.next_txn >= self.txns.len() {
            return;
        }
        let seq = self.next_txn as u32;
        let id = OpId::compose(self.client_no, seq);
        let txn = self.txns[self.next_txn].clone();
        self.next_txn += 1;
        self.done = false;
        self.target = self.preferred;
        self.records.push(OpRecord {
            op: id,
            txn: txn.clone(),
            invoked: ctx.now(),
            responded: None,
            response: None,
            retries: 0,
        });
        ctx.mark(Phase::Request.tag(), id.0, 0);
        let op = ClientOp {
            id,
            client: ctx.me(),
            txn,
        };
        ctx.send(self.servers[self.target], M::invoke(op));
        ctx.set_timer(self.retry_after, RETRY_TAG);
    }

    fn retry(&mut self, ctx: &mut Context<'_, M>) {
        let Some(rec) = self.records.last_mut() else {
            return;
        };
        if rec.responded.is_some() {
            return;
        }
        rec.retries += 1;
        self.target = (self.target + 1) % self.servers.len();
        let op = ClientOp {
            id: rec.op,
            client: ctx.me(),
            txn: rec.txn.clone(),
        };
        ctx.send(self.servers[self.target], M::invoke(op));
        ctx.set_timer(self.retry_after, RETRY_TAG);
    }
}

/// An open-loop client: submits transactions at exponentially distributed
/// inter-arrival times regardless of responses, so several operations may
/// be outstanding at once. Unanswered operations are *not* retried — the
/// point of an open-loop driver is to expose saturation, not to mask it.
pub struct OpenLoopClient<M> {
    client_no: u32,
    servers: Vec<NodeId>,
    preferred: usize,
    txns: Vec<TxnTemplate>,
    mean_interarrival: SimDuration,
    /// Completed and in-flight operation records.
    pub records: Vec<OpRecord>,
    next_txn: usize,
    _marker: std::marker::PhantomData<M>,
}

const SUBMIT_TAG: u64 = 3;

impl<M: ProtocolMsg> OpenLoopClient<M> {
    /// Creates an open-loop client with the given mean inter-arrival time.
    ///
    /// # Panics
    ///
    /// Panics if `servers` is empty or the mean inter-arrival is zero.
    pub fn new(
        client_no: u32,
        servers: Vec<NodeId>,
        preferred: usize,
        txns: Vec<TxnTemplate>,
        mean_interarrival: SimDuration,
    ) -> Self {
        assert!(!servers.is_empty(), "client needs at least one server");
        assert!(
            !mean_interarrival.is_zero(),
            "inter-arrival must be positive"
        );
        let preferred = preferred % servers.len();
        OpenLoopClient {
            client_no,
            servers,
            preferred,
            txns,
            mean_interarrival,
            records: Vec::new(),
            next_txn: 0,
            _marker: std::marker::PhantomData,
        }
    }

    /// True once every submitted transaction has been answered *and* all
    /// transactions were submitted.
    pub fn is_done(&self) -> bool {
        self.next_txn >= self.txns.len() && self.records.iter().all(|r| r.responded.is_some())
    }

    /// The completed operation records.
    pub fn completed(&self) -> impl Iterator<Item = &OpRecord> {
        self.records.iter().filter(|r| r.responded.is_some())
    }

    fn arm_next(&mut self, ctx: &mut Context<'_, M>) {
        if self.next_txn >= self.txns.len() {
            return;
        }
        // Exponential inter-arrival from the world's deterministic RNG.
        let u: f64 = rand::Rng::gen_range(ctx.rng(), 1e-9..1.0f64);
        let ticks = (-(u.ln()) * self.mean_interarrival.ticks() as f64).ceil() as u64;
        ctx.set_timer(SimDuration::from_ticks(ticks.max(1)), SUBMIT_TAG);
    }

    fn submit(&mut self, ctx: &mut Context<'_, M>) {
        if self.next_txn >= self.txns.len() {
            return;
        }
        let seq = self.next_txn as u32;
        let id = OpId::compose(self.client_no, seq);
        let txn = self.txns[self.next_txn].clone();
        self.next_txn += 1;
        self.records.push(OpRecord {
            op: id,
            txn: txn.clone(),
            invoked: ctx.now(),
            responded: None,
            response: None,
            retries: 0,
        });
        ctx.mark(Phase::Request.tag(), id.0, 0);
        let op = ClientOp {
            id,
            client: ctx.me(),
            txn,
        };
        ctx.send(self.servers[self.preferred], M::invoke(op));
    }
}

impl<M: ProtocolMsg> Actor<M> for OpenLoopClient<M> {
    fn on_start(&mut self, ctx: &mut Context<'_, M>) {
        self.arm_next(ctx);
    }

    fn on_message(&mut self, ctx: &mut Context<'_, M>, _from: NodeId, msg: M) {
        let Some(resp) = msg.response() else {
            return;
        };
        let Some(rec) = self.records.iter_mut().find(|r| r.op == resp.op) else {
            return;
        };
        if rec.responded.is_some() {
            return;
        }
        rec.responded = Some(ctx.now());
        rec.response = Some(resp.clone());
        ctx.mark(Phase::Response.tag(), resp.op.0, 0);
    }

    fn on_timer(&mut self, ctx: &mut Context<'_, M>, _timer: TimerId, tag: u64) {
        if tag == SUBMIT_TAG {
            self.submit(ctx);
            self.arm_next(ctx);
        }
    }

    impl_as_any!();
}

impl<M: ProtocolMsg> Actor<M> for ClientActor<M> {
    fn on_start(&mut self, ctx: &mut Context<'_, M>) {
        self.submit_next(ctx);
    }

    fn on_message(&mut self, ctx: &mut Context<'_, M>, _from: NodeId, msg: M) {
        let Some(resp) = msg.response() else {
            return;
        };
        let Some(rec) = self.records.iter_mut().find(|r| r.op == resp.op) else {
            return;
        };
        if rec.responded.is_some() {
            return; // duplicate response (active replication answers n times)
        }
        rec.responded = Some(ctx.now());
        rec.response = Some(resp.clone());
        ctx.mark(Phase::Response.tag(), resp.op.0, 0);
        self.done = true;
        if self.next_txn < self.txns.len() {
            ctx.set_timer(self.think, THINK_TAG);
        }
    }

    fn on_timer(&mut self, ctx: &mut Context<'_, M>, _timer: TimerId, tag: u64) {
        match tag {
            RETRY_TAG if !self.done => {
                self.retry(ctx);
            }
            THINK_TAG if self.done => {
                self.submit_next(ctx);
            }
            _ => {}
        }
    }

    impl_as_any!();
}

#[cfg(test)]
mod tests {
    use super::*;
    use repl_db::{Key, Value};
    use repl_sim::{Message, SimConfig, SimTime, World};
    use repl_workload::{OpTemplate, TxnTemplate};

    /// A trivial wire type for driving the clients directly.
    #[derive(Debug, Clone)]
    enum EchoMsg {
        Invoke(ClientOp),
        Reply(crate::Response),
    }
    impl Message for EchoMsg {}
    impl ProtocolMsg for EchoMsg {
        fn invoke(op: ClientOp) -> Self {
            EchoMsg::Invoke(op)
        }
        fn response(&self) -> Option<&crate::Response> {
            match self {
                EchoMsg::Reply(r) => Some(r),
                _ => None,
            }
        }
    }

    /// A server that answers every invoke — unless mute.
    struct EchoServer {
        mute: bool,
        served: u32,
    }
    impl Actor<EchoMsg> for EchoServer {
        fn on_message(&mut self, ctx: &mut Context<'_, EchoMsg>, _from: NodeId, msg: EchoMsg) {
            if let EchoMsg::Invoke(op) = msg {
                self.served += 1;
                if !self.mute {
                    ctx.send(op.client, EchoMsg::Reply(crate::Response::committed(op.id)));
                }
            }
        }
        impl_as_any!();
    }

    fn txns(n: usize) -> Vec<TxnTemplate> {
        (0..n)
            .map(|i| TxnTemplate {
                ops: vec![OpTemplate::Write(Key(i as u64), Value(1))],
            })
            .collect()
    }

    #[test]
    fn closed_loop_runs_all_transactions_in_order() {
        let mut world: World<EchoMsg> = World::new(SimConfig::new(1));
        let s = world.add_actor(Box::new(EchoServer {
            mute: false,
            served: 0,
        }));
        let c = world.add_actor(Box::new(ClientActor::<EchoMsg>::new(
            0,
            vec![s],
            0,
            txns(5),
            SimDuration::from_ticks(100),
            SimDuration::from_ticks(10_000),
        )));
        world.start();
        world.run_to_quiescence(SimTime::from_ticks(1_000_000));
        let client = world.actor_ref::<ClientActor<EchoMsg>>(c);
        assert!(client.is_done());
        assert_eq!(client.completed().count(), 5);
        // Strictly sequential: each op invoked after the previous response.
        for w in client.records.windows(2) {
            assert!(w[1].invoked >= w[0].responded.expect("responded"));
        }
        assert_eq!(world.actor_ref::<EchoServer>(s).served, 5);
    }

    #[test]
    fn closed_loop_retries_rotate_to_the_next_server() {
        let mut world: World<EchoMsg> = World::new(SimConfig::new(2));
        let dead = world.add_actor(Box::new(EchoServer {
            mute: true,
            served: 0,
        }));
        let live = world.add_actor(Box::new(EchoServer {
            mute: false,
            served: 0,
        }));
        let c = world.add_actor(Box::new(ClientActor::<EchoMsg>::new(
            0,
            vec![dead, live],
            0, // prefers the mute server
            txns(2),
            SimDuration::from_ticks(100),
            SimDuration::from_ticks(2_000),
        )));
        world.start();
        world.run_until(SimTime::from_ticks(100_000));
        let client = world.actor_ref::<ClientActor<EchoMsg>>(c);
        assert!(client.is_done(), "failover retry did not happen");
        assert!(client.records.iter().all(|r| r.retries >= 1));
        assert!(world.actor_ref::<EchoServer>(dead).served >= 2);
        assert!(world.actor_ref::<EchoServer>(live).served >= 2);
    }

    #[test]
    fn duplicate_responses_are_recorded_once() {
        // An echo server that answers twice.
        struct DoubleEcho;
        impl Actor<EchoMsg> for DoubleEcho {
            fn on_message(&mut self, ctx: &mut Context<'_, EchoMsg>, _: NodeId, msg: EchoMsg) {
                if let EchoMsg::Invoke(op) = msg {
                    ctx.send(op.client, EchoMsg::Reply(crate::Response::committed(op.id)));
                    ctx.send(op.client, EchoMsg::Reply(crate::Response::committed(op.id)));
                }
            }
            impl_as_any!();
        }
        let mut world: World<EchoMsg> = World::new(SimConfig::new(3));
        let s = world.add_actor(Box::new(DoubleEcho));
        let c = world.add_actor(Box::new(ClientActor::<EchoMsg>::new(
            0,
            vec![s],
            0,
            txns(3),
            SimDuration::from_ticks(50),
            SimDuration::from_ticks(10_000),
        )));
        world.start();
        world.run_to_quiescence(SimTime::from_ticks(1_000_000));
        let client = world.actor_ref::<ClientActor<EchoMsg>>(c);
        assert!(client.is_done());
        assert_eq!(client.records.len(), 3, "no duplicate records");
    }

    #[test]
    fn open_loop_pipelines_and_reports_unanswered() {
        let mut world: World<EchoMsg> = World::new(SimConfig::new(4));
        let s = world.add_actor(Box::new(EchoServer {
            mute: true,
            served: 0,
        }));
        let c = world.add_actor(Box::new(OpenLoopClient::<EchoMsg>::new(
            0,
            vec![s],
            0,
            txns(4),
            SimDuration::from_ticks(100),
        )));
        world.start();
        world.run_until(SimTime::from_ticks(50_000));
        let client = world.actor_ref::<OpenLoopClient<EchoMsg>>(c);
        // All submitted (server is mute, so none answered) — open loop
        // does not block on responses.
        assert_eq!(client.records.len(), 4);
        assert!(!client.is_done());
        assert_eq!(client.completed().count(), 0);
    }

    #[test]
    fn op_record_latency_math() {
        let rec = OpRecord {
            op: OpId(1),
            txn: TxnTemplate {
                ops: vec![OpTemplate::Read(Key(0))],
            },
            invoked: SimTime::from_ticks(100),
            responded: Some(SimTime::from_ticks(175)),
            response: Some(crate::Response::committed(OpId(1))),
            retries: 0,
        };
        assert_eq!(rec.latency(), Some(SimDuration::from_ticks(75)));
        assert!(rec.committed());
        let unanswered = OpRecord {
            responded: None,
            response: None,
            ..rec
        };
        assert_eq!(unanswered.latency(), None);
        assert!(!unanswered.committed());
    }
}
