//! The closed-loop client driver shared by all techniques.
//!
//! A client submits its transactions one at a time: invoke, wait for the
//! response, think, submit the next. On a response timeout it re-submits
//! the *same* operation (same [`OpId`]) to the next server — the paper's
//! "clients can then be connected to another database server and re-submit
//! the transaction" (Section 4.1). Servers suppress duplicates through
//! their response caches, so retries are exactly-once.
//!
//! The first retry fires exactly `retry_after` after submission; later
//! retries back off exponentially (doubling, capped at 8×`retry_after`)
//! with a small deterministic jitter so that the clients stranded by one
//! outage do not re-submit in lockstep. The jitter is hashed from
//! `(client, op, attempt)` rather than drawn from the simulator's RNG:
//! retry schedules must not perturb the recorded run state, so identical
//! seeds replay identically whether or not retries happen.

use repl_sim::{impl_as_any, Actor, Context, Message, NodeId, SimDuration, SimTime, TimerId};
use repl_workload::TxnTemplate;

use crate::op::{ClientOp, OpId, Response};
use crate::phase::Phase;

/// A protocol wire type that clients can talk: carries invocations in and
/// responses out.
pub trait ProtocolMsg: Message {
    /// Wraps a client operation for submission.
    fn invoke(op: ClientOp) -> Self;
    /// Extracts a response, if this message is one.
    fn response(&self) -> Option<&Response>;
}

/// What a client observed for one operation.
#[derive(Debug, Clone)]
pub struct OpRecord {
    /// The operation id.
    pub op: OpId,
    /// The submitted transaction.
    pub txn: TxnTemplate,
    /// Invocation time (first submission).
    pub invoked: SimTime,
    /// Response time, if any arrived before the run ended.
    pub responded: Option<SimTime>,
    /// The response, if any.
    pub response: Option<Response>,
    /// Number of re-submissions (0 = first attempt answered).
    pub retries: u32,
}

impl OpRecord {
    /// The observed latency, if the operation completed.
    pub fn latency(&self) -> Option<SimDuration> {
        self.responded.map(|r| r - self.invoked)
    }

    /// True if the operation completed with a commit.
    pub fn committed(&self) -> bool {
        self.response.as_ref().is_some_and(|r| r.committed)
    }
}

const RETRY_TAG: u64 = 1;
const THINK_TAG: u64 = 2;

/// Growth cap for the retry backoff: waits never exceed
/// `retry_after << MAX_BACKOFF_SHIFT` (plus jitter).
const MAX_BACKOFF_SHIFT: u32 = 3;

/// Deterministic decorrelation jitter (FNV-1a over client, op, attempt):
/// a pseudo-random but replayable offset in `[0, bound]`.
fn retry_jitter(client_no: u32, op: OpId, attempt: u32, bound: u64) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in client_no
        .to_le_bytes()
        .into_iter()
        .chain(op.0.to_le_bytes())
        .chain(attempt.to_le_bytes())
    {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    if bound == 0 {
        0
    } else {
        h % (bound + 1)
    }
}

/// The wait before retry number `attempt` (1-based): exactly
/// `retry_after` for the first, then doubling up to the cap, with jitter
/// of at most a quarter of the backoff so staggered clients stay spread.
fn retry_delay(retry_after: SimDuration, client_no: u32, op: OpId, attempt: u32) -> SimDuration {
    let base = retry_after.ticks().max(1);
    if attempt <= 1 {
        return SimDuration::from_ticks(base);
    }
    let backoff = base << (attempt - 1).min(MAX_BACKOFF_SHIFT);
    let jitter = retry_jitter(client_no, op, attempt, backoff / 4);
    SimDuration::from_ticks(backoff + jitter)
}

/// The closed-loop client actor.
///
/// Generic over the protocol's wire type `M`; the technique decides which
/// server the client prefers (its "local" server, the primary, …) via
/// `preferred`.
pub struct ClientActor<M> {
    client_no: u32,
    servers: Vec<NodeId>,
    preferred: usize,
    txns: Vec<TxnTemplate>,
    think: SimDuration,
    retry_after: SimDuration,
    /// Completed and in-flight operation records.
    pub records: Vec<OpRecord>,
    next_txn: usize,
    target: usize,
    done: bool,
    _marker: std::marker::PhantomData<M>,
}

impl<M: ProtocolMsg> ClientActor<M> {
    /// Creates a client that will submit `txns` in order, preferring
    /// `servers[preferred]`.
    ///
    /// # Panics
    ///
    /// Panics if `servers` is empty.
    pub fn new(
        client_no: u32,
        servers: Vec<NodeId>,
        preferred: usize,
        txns: Vec<TxnTemplate>,
        think: SimDuration,
        retry_after: SimDuration,
    ) -> Self {
        assert!(!servers.is_empty(), "client needs at least one server");
        let preferred = preferred % servers.len();
        ClientActor {
            client_no,
            servers,
            preferred,
            txns,
            think,
            retry_after,
            records: Vec::new(),
            next_txn: 0,
            target: preferred,
            done: true,
            _marker: std::marker::PhantomData,
        }
    }

    /// True once every transaction has a response.
    pub fn is_done(&self) -> bool {
        self.done && self.next_txn >= self.txns.len()
    }

    /// The completed operation records.
    pub fn completed(&self) -> impl Iterator<Item = &OpRecord> {
        self.records.iter().filter(|r| r.responded.is_some())
    }

    fn submit_next(&mut self, ctx: &mut Context<'_, M>) {
        if self.next_txn >= self.txns.len() {
            return;
        }
        let seq = self.next_txn as u32;
        let id = OpId::compose(self.client_no, seq);
        let txn = self.txns[self.next_txn].clone();
        self.next_txn += 1;
        self.done = false;
        self.target = self.preferred;
        self.records.push(OpRecord {
            op: id,
            txn: txn.clone(),
            invoked: ctx.now(),
            responded: None,
            response: None,
            retries: 0,
        });
        ctx.mark(Phase::Request.tag(), id.0, 0);
        let op = ClientOp {
            id,
            client: ctx.me(),
            txn,
        };
        ctx.send(self.servers[self.target], M::invoke(op));
        ctx.set_timer(
            retry_delay(self.retry_after, self.client_no, id, 1),
            RETRY_TAG,
        );
    }

    fn retry(&mut self, ctx: &mut Context<'_, M>) {
        let Some(rec) = self.records.last_mut() else {
            return;
        };
        if rec.responded.is_some() {
            return;
        }
        rec.retries += 1;
        self.target = (self.target + 1) % self.servers.len();
        let op = ClientOp {
            id: rec.op,
            client: ctx.me(),
            txn: rec.txn.clone(),
        };
        ctx.send(self.servers[self.target], M::invoke(op));
        // Arm the *next* retry with backoff: this one was attempt
        // `rec.retries`, so the wait ahead belongs to the one after it.
        ctx.set_timer(
            retry_delay(self.retry_after, self.client_no, rec.op, rec.retries + 1),
            RETRY_TAG,
        );
    }
}

/// An open-loop client: submits transactions at exponentially distributed
/// inter-arrival times regardless of responses, so several operations may
/// be outstanding at once. Unanswered operations are *not* retried — the
/// point of an open-loop driver is to expose saturation, not to mask it.
pub struct OpenLoopClient<M> {
    client_no: u32,
    servers: Vec<NodeId>,
    preferred: usize,
    txns: Vec<TxnTemplate>,
    mean_interarrival: SimDuration,
    /// Completed and in-flight operation records.
    pub records: Vec<OpRecord>,
    next_txn: usize,
    _marker: std::marker::PhantomData<M>,
}

const SUBMIT_TAG: u64 = 3;

impl<M: ProtocolMsg> OpenLoopClient<M> {
    /// Creates an open-loop client with the given mean inter-arrival time.
    ///
    /// # Panics
    ///
    /// Panics if `servers` is empty or the mean inter-arrival is zero.
    pub fn new(
        client_no: u32,
        servers: Vec<NodeId>,
        preferred: usize,
        txns: Vec<TxnTemplate>,
        mean_interarrival: SimDuration,
    ) -> Self {
        assert!(!servers.is_empty(), "client needs at least one server");
        assert!(
            !mean_interarrival.is_zero(),
            "inter-arrival must be positive"
        );
        let preferred = preferred % servers.len();
        OpenLoopClient {
            client_no,
            servers,
            preferred,
            txns,
            mean_interarrival,
            records: Vec::new(),
            next_txn: 0,
            _marker: std::marker::PhantomData,
        }
    }

    /// True once every submitted transaction has been answered *and* all
    /// transactions were submitted.
    pub fn is_done(&self) -> bool {
        self.next_txn >= self.txns.len() && self.records.iter().all(|r| r.responded.is_some())
    }

    /// The completed operation records.
    pub fn completed(&self) -> impl Iterator<Item = &OpRecord> {
        self.records.iter().filter(|r| r.responded.is_some())
    }

    fn arm_next(&mut self, ctx: &mut Context<'_, M>) {
        if self.next_txn >= self.txns.len() {
            return;
        }
        // Exponential inter-arrival from the world's deterministic RNG.
        let u: f64 = rand::Rng::gen_range(ctx.rng(), 1e-9..1.0f64);
        let ticks = (-(u.ln()) * self.mean_interarrival.ticks() as f64).ceil() as u64;
        ctx.set_timer(SimDuration::from_ticks(ticks.max(1)), SUBMIT_TAG);
    }

    fn submit(&mut self, ctx: &mut Context<'_, M>) {
        if self.next_txn >= self.txns.len() {
            return;
        }
        let seq = self.next_txn as u32;
        let id = OpId::compose(self.client_no, seq);
        let txn = self.txns[self.next_txn].clone();
        self.next_txn += 1;
        self.records.push(OpRecord {
            op: id,
            txn: txn.clone(),
            invoked: ctx.now(),
            responded: None,
            response: None,
            retries: 0,
        });
        ctx.mark(Phase::Request.tag(), id.0, 0);
        let op = ClientOp {
            id,
            client: ctx.me(),
            txn,
        };
        ctx.send(self.servers[self.preferred], M::invoke(op));
    }
}

impl<M: ProtocolMsg> Actor<M> for OpenLoopClient<M> {
    fn on_start(&mut self, ctx: &mut Context<'_, M>) {
        self.arm_next(ctx);
    }

    fn on_message(&mut self, ctx: &mut Context<'_, M>, _from: NodeId, msg: M) {
        let Some(resp) = msg.response() else {
            return;
        };
        let Some(rec) = self.records.iter_mut().find(|r| r.op == resp.op) else {
            return;
        };
        if rec.responded.is_some() {
            return;
        }
        rec.responded = Some(ctx.now());
        rec.response = Some(resp.clone());
        ctx.mark(Phase::Response.tag(), resp.op.0, 0);
    }

    fn on_timer(&mut self, ctx: &mut Context<'_, M>, _timer: TimerId, tag: u64) {
        if tag == SUBMIT_TAG {
            self.submit(ctx);
            self.arm_next(ctx);
        }
    }

    impl_as_any!();
}

impl<M: ProtocolMsg> Actor<M> for ClientActor<M> {
    fn on_start(&mut self, ctx: &mut Context<'_, M>) {
        self.submit_next(ctx);
    }

    fn on_message(&mut self, ctx: &mut Context<'_, M>, _from: NodeId, msg: M) {
        let Some(resp) = msg.response() else {
            return;
        };
        let Some(rec) = self.records.iter_mut().find(|r| r.op == resp.op) else {
            return;
        };
        if rec.responded.is_some() {
            return; // duplicate response (active replication answers n times)
        }
        rec.responded = Some(ctx.now());
        rec.response = Some(resp.clone());
        ctx.mark(Phase::Response.tag(), resp.op.0, 0);
        self.done = true;
        if self.next_txn < self.txns.len() {
            ctx.set_timer(self.think, THINK_TAG);
        }
    }

    fn on_timer(&mut self, ctx: &mut Context<'_, M>, _timer: TimerId, tag: u64) {
        match tag {
            RETRY_TAG if !self.done => {
                self.retry(ctx);
            }
            THINK_TAG if self.done => {
                self.submit_next(ctx);
            }
            _ => {}
        }
    }

    impl_as_any!();
}

#[cfg(test)]
mod tests {
    use super::*;
    use repl_db::{Key, Value};
    use repl_sim::{Message, SimConfig, SimTime, World};
    use repl_workload::{OpTemplate, TxnTemplate};

    /// A trivial wire type for driving the clients directly.
    #[derive(Debug, Clone)]
    enum EchoMsg {
        Invoke(ClientOp),
        Reply(crate::Response),
    }
    impl Message for EchoMsg {}
    impl ProtocolMsg for EchoMsg {
        fn invoke(op: ClientOp) -> Self {
            EchoMsg::Invoke(op)
        }
        fn response(&self) -> Option<&crate::Response> {
            match self {
                EchoMsg::Reply(r) => Some(r),
                _ => None,
            }
        }
    }

    /// A server that answers every invoke — unless mute.
    struct EchoServer {
        mute: bool,
        served: u32,
    }
    impl Actor<EchoMsg> for EchoServer {
        fn on_message(&mut self, ctx: &mut Context<'_, EchoMsg>, _from: NodeId, msg: EchoMsg) {
            if let EchoMsg::Invoke(op) = msg {
                self.served += 1;
                if !self.mute {
                    ctx.send(op.client, EchoMsg::Reply(crate::Response::committed(op.id)));
                }
            }
        }
        impl_as_any!();
    }

    fn txns(n: usize) -> Vec<TxnTemplate> {
        (0..n)
            .map(|i| TxnTemplate {
                ops: vec![OpTemplate::Write(Key(i as u64), Value(1))],
            })
            .collect()
    }

    #[test]
    fn closed_loop_runs_all_transactions_in_order() {
        let mut world: World<EchoMsg> = World::new(SimConfig::new(1));
        let s = world.add_actor(Box::new(EchoServer {
            mute: false,
            served: 0,
        }));
        let c = world.add_actor(Box::new(ClientActor::<EchoMsg>::new(
            0,
            vec![s],
            0,
            txns(5),
            SimDuration::from_ticks(100),
            SimDuration::from_ticks(10_000),
        )));
        world.start();
        world.run_to_quiescence(SimTime::from_ticks(1_000_000));
        let client = world.actor_ref::<ClientActor<EchoMsg>>(c);
        assert!(client.is_done());
        assert_eq!(client.completed().count(), 5);
        // Strictly sequential: each op invoked after the previous response.
        for w in client.records.windows(2) {
            assert!(w[1].invoked >= w[0].responded.expect("responded"));
        }
        assert_eq!(world.actor_ref::<EchoServer>(s).served, 5);
    }

    #[test]
    fn closed_loop_retries_rotate_to_the_next_server() {
        let mut world: World<EchoMsg> = World::new(SimConfig::new(2));
        let dead = world.add_actor(Box::new(EchoServer {
            mute: true,
            served: 0,
        }));
        let live = world.add_actor(Box::new(EchoServer {
            mute: false,
            served: 0,
        }));
        let c = world.add_actor(Box::new(ClientActor::<EchoMsg>::new(
            0,
            vec![dead, live],
            0, // prefers the mute server
            txns(2),
            SimDuration::from_ticks(100),
            SimDuration::from_ticks(2_000),
        )));
        world.start();
        world.run_until(SimTime::from_ticks(100_000));
        let client = world.actor_ref::<ClientActor<EchoMsg>>(c);
        assert!(client.is_done(), "failover retry did not happen");
        assert!(client.records.iter().all(|r| r.retries >= 1));
        assert!(world.actor_ref::<EchoServer>(dead).served >= 2);
        assert!(world.actor_ref::<EchoServer>(live).served >= 2);
    }

    #[test]
    fn duplicate_responses_are_recorded_once() {
        // An echo server that answers twice.
        struct DoubleEcho;
        impl Actor<EchoMsg> for DoubleEcho {
            fn on_message(&mut self, ctx: &mut Context<'_, EchoMsg>, _: NodeId, msg: EchoMsg) {
                if let EchoMsg::Invoke(op) = msg {
                    ctx.send(op.client, EchoMsg::Reply(crate::Response::committed(op.id)));
                    ctx.send(op.client, EchoMsg::Reply(crate::Response::committed(op.id)));
                }
            }
            impl_as_any!();
        }
        let mut world: World<EchoMsg> = World::new(SimConfig::new(3));
        let s = world.add_actor(Box::new(DoubleEcho));
        let c = world.add_actor(Box::new(ClientActor::<EchoMsg>::new(
            0,
            vec![s],
            0,
            txns(3),
            SimDuration::from_ticks(50),
            SimDuration::from_ticks(10_000),
        )));
        world.start();
        world.run_to_quiescence(SimTime::from_ticks(1_000_000));
        let client = world.actor_ref::<ClientActor<EchoMsg>>(c);
        assert!(client.is_done());
        assert_eq!(client.records.len(), 3, "no duplicate records");
    }

    #[test]
    fn open_loop_pipelines_and_reports_unanswered() {
        let mut world: World<EchoMsg> = World::new(SimConfig::new(4));
        let s = world.add_actor(Box::new(EchoServer {
            mute: true,
            served: 0,
        }));
        let c = world.add_actor(Box::new(OpenLoopClient::<EchoMsg>::new(
            0,
            vec![s],
            0,
            txns(4),
            SimDuration::from_ticks(100),
        )));
        world.start();
        world.run_until(SimTime::from_ticks(50_000));
        let client = world.actor_ref::<OpenLoopClient<EchoMsg>>(c);
        // All submitted (server is mute, so none answered) — open loop
        // does not block on responses.
        assert_eq!(client.records.len(), 4);
        assert!(!client.is_done());
        assert_eq!(client.completed().count(), 0);
    }

    #[test]
    fn retry_backoff_is_exact_then_capped_exponential() {
        let ra = SimDuration::from_ticks(1_000);
        let op = OpId::compose(3, 7);
        // The first retry interval is exactly retry_after — the failover
        // experiments calibrate unavailability windows against it.
        assert_eq!(retry_delay(ra, 3, op, 1), ra);
        let mut prev = ra.ticks();
        for attempt in 2..=10u32 {
            let d = retry_delay(ra, 3, op, attempt).ticks();
            let backoff = ra.ticks() << (attempt - 1).min(MAX_BACKOFF_SHIFT);
            assert!(d >= backoff, "attempt {attempt}: {d} < base {backoff}");
            assert!(
                d <= backoff + backoff / 4,
                "attempt {attempt}: jitter exceeds a quarter of the backoff"
            );
            assert!(d >= prev.min(backoff), "backoff shrank at {attempt}");
            prev = d;
        }
        // Capped: attempts far out never exceed 8x + jitter.
        let far = retry_delay(ra, 3, op, 40).ticks();
        assert!(far <= 8_000 + 2_000);
        // Deterministic and client/op-dependent.
        assert_eq!(retry_delay(ra, 3, op, 5), retry_delay(ra, 3, op, 5));
        let spread: std::collections::HashSet<u64> =
            (0..16).map(|c| retry_delay(ra, c, op, 4).ticks()).collect();
        assert!(spread.len() > 8, "jitter failed to spread clients");
    }

    #[test]
    fn retries_back_off_against_a_mute_server() {
        // One mute server: every attempt lands there, so the arrival
        // gaps are exactly the retry waits — first gap retry_after, later
        // gaps strictly wider, none wider than the cap allows.
        struct Recorder {
            arrivals: Vec<u64>,
        }
        impl Actor<EchoMsg> for Recorder {
            fn on_message(&mut self, ctx: &mut Context<'_, EchoMsg>, _: NodeId, msg: EchoMsg) {
                if let EchoMsg::Invoke(_) = msg {
                    self.arrivals.push(ctx.now().ticks());
                }
            }
            impl_as_any!();
        }
        let mut world: World<EchoMsg> = World::new(SimConfig::new(9));
        let s = world.add_actor(Box::new(Recorder {
            arrivals: Vec::new(),
        }));
        let c = world.add_actor(Box::new(ClientActor::<EchoMsg>::new(
            0,
            vec![s],
            0,
            txns(1),
            SimDuration::from_ticks(100),
            SimDuration::from_ticks(1_000),
        )));
        world.start();
        world.run_until(SimTime::from_ticks(60_000));
        let client = world.actor_ref::<ClientActor<EchoMsg>>(c);
        assert!(!client.is_done());
        let arrivals = &world.actor_ref::<Recorder>(s).arrivals;
        assert!(arrivals.len() >= 5, "not enough attempts: {arrivals:?}");
        let gaps: Vec<u64> = arrivals.windows(2).map(|w| w[1] - w[0]).collect();
        // Arrival gaps carry per-message network jitter on top of the
        // timer waits; the first must still sit at ~retry_after and the
        // second must be clearly wider (the backoff doubles).
        assert!(
            (900..=1_100).contains(&gaps[0]),
            "first retry not at retry_after: {gaps:?}"
        );
        assert!(gaps[1] > gaps[0] + 500, "no backoff: {gaps:?}");
        for g in &gaps {
            assert!(*g <= 8_000 + 2_000 + 100, "gap beyond cap+jitter: {gaps:?}");
        }
    }

    #[test]
    fn op_record_latency_math() {
        let rec = OpRecord {
            op: OpId(1),
            txn: TxnTemplate {
                ops: vec![OpTemplate::Read(Key(0))],
            },
            invoked: SimTime::from_ticks(100),
            responded: Some(SimTime::from_ticks(175)),
            response: Some(crate::Response::committed(OpId(1))),
            retries: 0,
        };
        assert_eq!(rec.latency(), Some(SimDuration::from_ticks(75)));
        assert!(rec.committed());
        let unanswered = OpRecord {
            responded: None,
            response: None,
            ..rec
        };
        assert_eq!(unanswered.latency(), None);
        assert!(!unanswered.committed());
    }
}
