//! The closed-loop client driver shared by all techniques.
//!
//! A client submits its transactions one at a time: invoke, wait for the
//! response, think, submit the next. On a response timeout it re-submits
//! the *same* operation (same [`OpId`]) to the next server — the paper's
//! "clients can then be connected to another database server and re-submit
//! the transaction" (Section 4.1). Servers suppress duplicates through
//! their response caches, so retries are exactly-once.
//!
//! The first retry fires exactly `retry_after` after submission; later
//! retries back off exponentially (doubling, capped at 8×`retry_after`)
//! with a small deterministic jitter so that the clients stranded by one
//! outage do not re-submit in lockstep. The jitter is hashed from
//! `(client, op, attempt)` rather than drawn from the simulator's RNG:
//! retry schedules must not perturb the recorded run state, so identical
//! seeds replay identically whether or not retries happen.

use repl_sim::{
    impl_as_any, Actor, Context, LatencyHistogram, Message, NodeId, SimDuration, SimTime, TimerId,
};
use repl_workload::{ArrivalStream, TxnTemplate, WorkloadGen};

use crate::op::{ClientOp, OpId, Response};
use crate::phase::Phase;

/// A protocol wire type that clients can talk: carries invocations in and
/// responses out.
pub trait ProtocolMsg: Message {
    /// Wraps a client operation for submission.
    fn invoke(op: ClientOp) -> Self;
    /// Extracts a response, if this message is one.
    fn response(&self) -> Option<&Response>;
}

/// What a client observed for one operation.
#[derive(Debug, Clone)]
pub struct OpRecord {
    /// The operation id.
    pub op: OpId,
    /// The submitted transaction.
    pub txn: TxnTemplate,
    /// Invocation time (first submission).
    pub invoked: SimTime,
    /// Response time, if any arrived before the run ended.
    pub responded: Option<SimTime>,
    /// The response, if any.
    pub response: Option<Response>,
    /// Number of re-submissions (0 = first attempt answered).
    pub retries: u32,
}

impl OpRecord {
    /// The observed latency, if the operation completed.
    pub fn latency(&self) -> Option<SimDuration> {
        self.responded.map(|r| r - self.invoked)
    }

    /// True if the operation completed with a commit.
    pub fn committed(&self) -> bool {
        self.response.as_ref().is_some_and(|r| r.committed)
    }
}

const RETRY_TAG: u64 = 1;
const THINK_TAG: u64 = 2;

/// Growth cap for the retry backoff: waits never exceed
/// `retry_after << MAX_BACKOFF_SHIFT` (plus jitter).
const MAX_BACKOFF_SHIFT: u32 = 3;

/// Deterministic decorrelation jitter (FNV-1a over client, op, attempt):
/// a pseudo-random but replayable offset in `[0, bound]`.
fn retry_jitter(client_no: u32, op: OpId, attempt: u32, bound: u64) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in client_no
        .to_le_bytes()
        .into_iter()
        .chain(op.0.to_le_bytes())
        .chain(attempt.to_le_bytes())
    {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    if bound == 0 {
        0
    } else {
        h % (bound + 1)
    }
}

/// The wait before retry number `attempt` (1-based): exactly
/// `retry_after` for the first, then doubling up to the cap, with jitter
/// of at most a quarter of the backoff so staggered clients stay spread.
fn retry_delay(retry_after: SimDuration, client_no: u32, op: OpId, attempt: u32) -> SimDuration {
    let base = retry_after.ticks().max(1);
    if attempt <= 1 {
        return SimDuration::from_ticks(base);
    }
    let backoff = base << (attempt - 1).min(MAX_BACKOFF_SHIFT);
    let jitter = retry_jitter(client_no, op, attempt, backoff / 4);
    SimDuration::from_ticks(backoff + jitter)
}

/// The closed-loop client actor.
///
/// Generic over the protocol's wire type `M`; the technique decides which
/// server the client prefers (its "local" server, the primary, …) via
/// `preferred`.
pub struct ClientActor<M> {
    client_no: u32,
    servers: Vec<NodeId>,
    preferred: usize,
    txns: Vec<TxnTemplate>,
    think: SimDuration,
    retry_after: SimDuration,
    /// Completed and in-flight operation records.
    pub records: Vec<OpRecord>,
    next_txn: usize,
    target: usize,
    done: bool,
    _marker: std::marker::PhantomData<M>,
}

impl<M: ProtocolMsg> ClientActor<M> {
    /// Creates a client that will submit `txns` in order, preferring
    /// `servers[preferred]`.
    ///
    /// # Panics
    ///
    /// Panics if `servers` is empty.
    pub fn new(
        client_no: u32,
        servers: Vec<NodeId>,
        preferred: usize,
        txns: Vec<TxnTemplate>,
        think: SimDuration,
        retry_after: SimDuration,
    ) -> Self {
        assert!(!servers.is_empty(), "client needs at least one server");
        let preferred = preferred % servers.len();
        ClientActor {
            client_no,
            servers,
            preferred,
            txns,
            think,
            retry_after,
            records: Vec::new(),
            next_txn: 0,
            target: preferred,
            done: true,
            _marker: std::marker::PhantomData,
        }
    }

    /// True once every transaction has a response.
    pub fn is_done(&self) -> bool {
        self.done && self.next_txn >= self.txns.len()
    }

    /// The completed operation records.
    pub fn completed(&self) -> impl Iterator<Item = &OpRecord> {
        self.records.iter().filter(|r| r.responded.is_some())
    }

    fn submit_next(&mut self, ctx: &mut Context<'_, M>) {
        if self.next_txn >= self.txns.len() {
            return;
        }
        let seq = self.next_txn as u32;
        let id = OpId::compose(self.client_no, seq);
        let txn = self.txns[self.next_txn].clone();
        self.next_txn += 1;
        self.done = false;
        self.target = self.preferred;
        self.records.push(OpRecord {
            op: id,
            txn: txn.clone(),
            invoked: ctx.now(),
            responded: None,
            response: None,
            retries: 0,
        });
        ctx.mark(Phase::Request.tag(), id.0, 0);
        let op = ClientOp {
            id,
            client: ctx.me(),
            txn,
        };
        ctx.send(self.servers[self.target], M::invoke(op));
        ctx.set_timer(
            retry_delay(self.retry_after, self.client_no, id, 1),
            RETRY_TAG,
        );
    }

    fn retry(&mut self, ctx: &mut Context<'_, M>) {
        let Some(rec) = self.records.last_mut() else {
            return;
        };
        if rec.responded.is_some() {
            return;
        }
        rec.retries += 1;
        self.target = (self.target + 1) % self.servers.len();
        let op = ClientOp {
            id: rec.op,
            client: ctx.me(),
            txn: rec.txn.clone(),
        };
        ctx.send(self.servers[self.target], M::invoke(op));
        // Arm the *next* retry with backoff: this one was attempt
        // `rec.retries`, so the wait ahead belongs to the one after it.
        ctx.set_timer(
            retry_delay(self.retry_after, self.client_no, rec.op, rec.retries + 1),
            RETRY_TAG,
        );
    }
}

/// An open-loop client: submits transactions at exponentially distributed
/// inter-arrival times regardless of responses, so several operations may
/// be outstanding at once. Unanswered operations are *not* retried — the
/// point of an open-loop driver is to expose saturation, not to mask it.
pub struct OpenLoopClient<M> {
    client_no: u32,
    servers: Vec<NodeId>,
    preferred: usize,
    txns: Vec<TxnTemplate>,
    mean_interarrival: SimDuration,
    /// Completed and in-flight operation records.
    pub records: Vec<OpRecord>,
    next_txn: usize,
    _marker: std::marker::PhantomData<M>,
}

const SUBMIT_TAG: u64 = 3;

impl<M: ProtocolMsg> OpenLoopClient<M> {
    /// Creates an open-loop client with the given mean inter-arrival time.
    ///
    /// # Panics
    ///
    /// Panics if `servers` is empty or the mean inter-arrival is zero.
    pub fn new(
        client_no: u32,
        servers: Vec<NodeId>,
        preferred: usize,
        txns: Vec<TxnTemplate>,
        mean_interarrival: SimDuration,
    ) -> Self {
        assert!(!servers.is_empty(), "client needs at least one server");
        assert!(
            !mean_interarrival.is_zero(),
            "inter-arrival must be positive"
        );
        let preferred = preferred % servers.len();
        OpenLoopClient {
            client_no,
            servers,
            preferred,
            txns,
            mean_interarrival,
            records: Vec::new(),
            next_txn: 0,
            _marker: std::marker::PhantomData,
        }
    }

    /// True once every submitted transaction has been answered *and* all
    /// transactions were submitted.
    pub fn is_done(&self) -> bool {
        self.next_txn >= self.txns.len() && self.records.iter().all(|r| r.responded.is_some())
    }

    /// The completed operation records.
    pub fn completed(&self) -> impl Iterator<Item = &OpRecord> {
        self.records.iter().filter(|r| r.responded.is_some())
    }

    fn arm_next(&mut self, ctx: &mut Context<'_, M>) {
        if self.next_txn >= self.txns.len() {
            return;
        }
        // Exponential inter-arrival from the world's deterministic RNG.
        let u: f64 = rand::Rng::gen_range(ctx.rng(), 1e-9..1.0f64);
        let ticks = (-(u.ln()) * self.mean_interarrival.ticks() as f64).ceil() as u64;
        ctx.set_timer(SimDuration::from_ticks(ticks.max(1)), SUBMIT_TAG);
    }

    fn submit(&mut self, ctx: &mut Context<'_, M>) {
        if self.next_txn >= self.txns.len() {
            return;
        }
        let seq = self.next_txn as u32;
        let id = OpId::compose(self.client_no, seq);
        let txn = self.txns[self.next_txn].clone();
        self.next_txn += 1;
        self.records.push(OpRecord {
            op: id,
            txn: txn.clone(),
            invoked: ctx.now(),
            responded: None,
            response: None,
            retries: 0,
        });
        ctx.mark(Phase::Request.tag(), id.0, 0);
        let op = ClientOp {
            id,
            client: ctx.me(),
            txn,
        };
        ctx.send(self.servers[self.preferred], M::invoke(op));
    }
}

/// The set of virtual clients one [`AggregateClients`] actor stands for:
/// `count` clients with ids `first, first + stride, first + 2·stride, …`.
///
/// The runner groups clients by preferred server; with `servers` replicas
/// and round-robin preference, server `s`'s group is
/// `{first: s, stride: servers}`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ClientGroup {
    /// First virtual client id in the group.
    pub first: u32,
    /// Id spacing between successive members.
    pub stride: u32,
    /// Number of virtual clients in the group.
    pub count: u32,
}

impl ClientGroup {
    /// Total operation budget of the group at `txns_per_client`
    /// transactions per virtual client.
    pub fn budget(&self, txns_per_client: u32) -> u64 {
        u64::from(self.count) * u64::from(txns_per_client)
    }

    /// The virtual client id and per-client sequence number of the
    /// group's `i`-th arrival (round-robin over the members, so every
    /// member advances at the group's aggregate rate divided by count).
    pub fn virtual_op(&self, i: u64) -> (u32, u32) {
        let member = (i % u64::from(self.count)) as u32;
        let seq = (i / u64::from(self.count)) as u32;
        (self.first + member * self.stride, seq)
    }
}

/// One aggregated open-loop arrival process standing for a whole group
/// of virtual clients — the engine that makes the client count a
/// parameter instead of an actor count.
///
/// Instead of one actor (stack, timer, record vector) per client, one
/// actor per *server group* draws arrivals from a single seeded
/// [`ArrivalStream`] whose mean gap is the per-client gap divided by the
/// group size (for Poisson arrivals this superposition is exact).
/// Each arrival is attributed round-robin to a virtual client id, so
/// server-side transaction ids, wound-wait ages and key access patterns
/// look exactly like a real population of that size.
///
/// Memory is constant in the operation count: latencies stream into a
/// [`LatencyHistogram`], and only the in-flight operations are tracked.
/// Like [`OpenLoopClient`], it never retries — open loops expose
/// saturation rather than masking it.
pub struct AggregateClients<M> {
    group: ClientGroup,
    servers: Vec<NodeId>,
    preferred: usize,
    gen: WorkloadGen,
    arrivals: ArrivalStream,
    budget: u64,
    issued: u64,
    /// In-flight operations: id → invocation time.
    pub outstanding: std::collections::HashMap<OpId, SimTime>,
    /// Streaming latency histogram of answered operations.
    pub hist: LatencyHistogram,
    /// Answered operations that committed.
    pub committed: u64,
    /// Answered operations that aborted.
    pub aborted: u64,
    /// Time of the last response observed.
    pub last_response: Option<SimTime>,
    /// Worst request→response gap among answered operations.
    pub worst_gap: SimDuration,
    /// High-water mark of in-flight operations.
    pub peak_outstanding: u64,
    _marker: std::marker::PhantomData<M>,
}

impl<M: ProtocolMsg> AggregateClients<M> {
    /// Creates the aggregate for `group`, submitting to
    /// `servers[preferred]`. `gen` supplies the transactions (one
    /// generator for the whole group), `arrivals` the aggregate gap
    /// stream (its mean should be the per-client mean divided by
    /// `group.count`), and `txns_per_client` bounds the budget.
    ///
    /// # Panics
    ///
    /// Panics if `servers` is empty or the group is empty.
    pub fn new(
        group: ClientGroup,
        servers: Vec<NodeId>,
        preferred: usize,
        gen: WorkloadGen,
        arrivals: ArrivalStream,
        txns_per_client: u32,
    ) -> Self {
        assert!(!servers.is_empty(), "client group needs at least one server");
        assert!(group.count > 0, "client group must not be empty");
        let preferred = preferred % servers.len();
        let budget = group.budget(txns_per_client);
        AggregateClients {
            group,
            servers,
            preferred,
            gen,
            arrivals,
            budget,
            issued: 0,
            outstanding: std::collections::HashMap::new(),
            hist: LatencyHistogram::new(),
            committed: 0,
            aborted: 0,
            last_response: None,
            worst_gap: SimDuration::ZERO,
            peak_outstanding: 0,
            _marker: std::marker::PhantomData,
        }
    }

    /// Operations submitted so far.
    pub fn issued(&self) -> u64 {
        self.issued
    }

    /// The group's total operation budget.
    pub fn budget(&self) -> u64 {
        self.budget
    }

    /// True once the whole budget was submitted and answered.
    pub fn is_done(&self) -> bool {
        self.issued >= self.budget && self.outstanding.is_empty()
    }

    fn arm_next(&mut self, ctx: &mut Context<'_, M>) {
        if self.issued >= self.budget {
            return;
        }
        let gap = self.arrivals.next_gap();
        ctx.set_timer(SimDuration::from_ticks(gap), SUBMIT_TAG);
    }

    fn submit(&mut self, ctx: &mut Context<'_, M>) {
        if self.issued >= self.budget {
            return;
        }
        let (client, seq) = self.group.virtual_op(self.issued);
        self.issued += 1;
        let id = OpId::compose(client, seq);
        let txn = self.gen.next_txn();
        self.outstanding.insert(id, ctx.now());
        self.peak_outstanding = self.peak_outstanding.max(self.outstanding.len() as u64);
        ctx.mark(Phase::Request.tag(), id.0, 0);
        let op = ClientOp {
            id,
            client: ctx.me(),
            txn,
        };
        ctx.send(self.servers[self.preferred], M::invoke(op));
    }
}

impl<M: ProtocolMsg> Actor<M> for AggregateClients<M> {
    fn on_start(&mut self, ctx: &mut Context<'_, M>) {
        self.arm_next(ctx);
    }

    fn on_message(&mut self, ctx: &mut Context<'_, M>, _from: NodeId, msg: M) {
        let Some(resp) = msg.response() else {
            return;
        };
        // Active-style techniques answer once per replica; only the first
        // response of an op still in flight counts.
        let Some(invoked) = self.outstanding.remove(&resp.op) else {
            return;
        };
        let now = ctx.now();
        let gap = now - invoked;
        self.hist.record(gap);
        if gap > self.worst_gap {
            self.worst_gap = gap;
        }
        self.last_response = Some(now);
        if resp.committed {
            self.committed += 1;
        } else {
            self.aborted += 1;
        }
        ctx.mark(Phase::Response.tag(), resp.op.0, 0);
    }

    fn on_timer(&mut self, ctx: &mut Context<'_, M>, _timer: TimerId, tag: u64) {
        if tag == SUBMIT_TAG {
            self.submit(ctx);
            self.arm_next(ctx);
        }
    }

    impl_as_any!();
}

impl<M: ProtocolMsg> Actor<M> for OpenLoopClient<M> {
    fn on_start(&mut self, ctx: &mut Context<'_, M>) {
        self.arm_next(ctx);
    }

    fn on_message(&mut self, ctx: &mut Context<'_, M>, _from: NodeId, msg: M) {
        let Some(resp) = msg.response() else {
            return;
        };
        let Some(rec) = self.records.iter_mut().find(|r| r.op == resp.op) else {
            return;
        };
        if rec.responded.is_some() {
            return;
        }
        rec.responded = Some(ctx.now());
        rec.response = Some(resp.clone());
        ctx.mark(Phase::Response.tag(), resp.op.0, 0);
    }

    fn on_timer(&mut self, ctx: &mut Context<'_, M>, _timer: TimerId, tag: u64) {
        if tag == SUBMIT_TAG {
            self.submit(ctx);
            self.arm_next(ctx);
        }
    }

    impl_as_any!();
}

impl<M: ProtocolMsg> Actor<M> for ClientActor<M> {
    fn on_start(&mut self, ctx: &mut Context<'_, M>) {
        self.submit_next(ctx);
    }

    fn on_message(&mut self, ctx: &mut Context<'_, M>, _from: NodeId, msg: M) {
        let Some(resp) = msg.response() else {
            return;
        };
        let Some(rec) = self.records.iter_mut().find(|r| r.op == resp.op) else {
            return;
        };
        if rec.responded.is_some() {
            return; // duplicate response (active replication answers n times)
        }
        rec.responded = Some(ctx.now());
        rec.response = Some(resp.clone());
        ctx.mark(Phase::Response.tag(), resp.op.0, 0);
        self.done = true;
        if self.next_txn < self.txns.len() {
            ctx.set_timer(self.think, THINK_TAG);
        }
    }

    fn on_timer(&mut self, ctx: &mut Context<'_, M>, _timer: TimerId, tag: u64) {
        match tag {
            RETRY_TAG if !self.done => {
                self.retry(ctx);
            }
            THINK_TAG if self.done => {
                self.submit_next(ctx);
            }
            _ => {}
        }
    }

    impl_as_any!();
}

#[cfg(test)]
mod tests {
    use super::*;
    use repl_db::{Key, Value};
    use repl_sim::{Message, SimConfig, SimTime, World};
    use repl_workload::{OpTemplate, TxnTemplate};

    /// A trivial wire type for driving the clients directly.
    #[derive(Debug, Clone)]
    enum EchoMsg {
        Invoke(ClientOp),
        Reply(crate::Response),
    }
    impl Message for EchoMsg {}
    impl ProtocolMsg for EchoMsg {
        fn invoke(op: ClientOp) -> Self {
            EchoMsg::Invoke(op)
        }
        fn response(&self) -> Option<&crate::Response> {
            match self {
                EchoMsg::Reply(r) => Some(r),
                _ => None,
            }
        }
    }

    /// A server that answers every invoke — unless mute.
    struct EchoServer {
        mute: bool,
        served: u32,
    }
    impl Actor<EchoMsg> for EchoServer {
        fn on_message(&mut self, ctx: &mut Context<'_, EchoMsg>, _from: NodeId, msg: EchoMsg) {
            if let EchoMsg::Invoke(op) = msg {
                self.served += 1;
                if !self.mute {
                    ctx.send(op.client, EchoMsg::Reply(crate::Response::committed(op.id)));
                }
            }
        }
        impl_as_any!();
    }

    fn txns(n: usize) -> Vec<TxnTemplate> {
        (0..n)
            .map(|i| TxnTemplate {
                ops: vec![OpTemplate::Write(Key(i as u64), Value(1))],
            })
            .collect()
    }

    #[test]
    fn closed_loop_runs_all_transactions_in_order() {
        let mut world: World<EchoMsg> = World::new(SimConfig::new(1));
        let s = world.add_actor(Box::new(EchoServer {
            mute: false,
            served: 0,
        }));
        let c = world.add_actor(Box::new(ClientActor::<EchoMsg>::new(
            0,
            vec![s],
            0,
            txns(5),
            SimDuration::from_ticks(100),
            SimDuration::from_ticks(10_000),
        )));
        world.start();
        world.run_to_quiescence(SimTime::from_ticks(1_000_000));
        let client = world.actor_ref::<ClientActor<EchoMsg>>(c);
        assert!(client.is_done());
        assert_eq!(client.completed().count(), 5);
        // Strictly sequential: each op invoked after the previous response.
        for w in client.records.windows(2) {
            assert!(w[1].invoked >= w[0].responded.expect("responded"));
        }
        assert_eq!(world.actor_ref::<EchoServer>(s).served, 5);
    }

    #[test]
    fn closed_loop_retries_rotate_to_the_next_server() {
        let mut world: World<EchoMsg> = World::new(SimConfig::new(2));
        let dead = world.add_actor(Box::new(EchoServer {
            mute: true,
            served: 0,
        }));
        let live = world.add_actor(Box::new(EchoServer {
            mute: false,
            served: 0,
        }));
        let c = world.add_actor(Box::new(ClientActor::<EchoMsg>::new(
            0,
            vec![dead, live],
            0, // prefers the mute server
            txns(2),
            SimDuration::from_ticks(100),
            SimDuration::from_ticks(2_000),
        )));
        world.start();
        world.run_until(SimTime::from_ticks(100_000));
        let client = world.actor_ref::<ClientActor<EchoMsg>>(c);
        assert!(client.is_done(), "failover retry did not happen");
        assert!(client.records.iter().all(|r| r.retries >= 1));
        assert!(world.actor_ref::<EchoServer>(dead).served >= 2);
        assert!(world.actor_ref::<EchoServer>(live).served >= 2);
    }

    #[test]
    fn duplicate_responses_are_recorded_once() {
        // An echo server that answers twice.
        struct DoubleEcho;
        impl Actor<EchoMsg> for DoubleEcho {
            fn on_message(&mut self, ctx: &mut Context<'_, EchoMsg>, _: NodeId, msg: EchoMsg) {
                if let EchoMsg::Invoke(op) = msg {
                    ctx.send(op.client, EchoMsg::Reply(crate::Response::committed(op.id)));
                    ctx.send(op.client, EchoMsg::Reply(crate::Response::committed(op.id)));
                }
            }
            impl_as_any!();
        }
        let mut world: World<EchoMsg> = World::new(SimConfig::new(3));
        let s = world.add_actor(Box::new(DoubleEcho));
        let c = world.add_actor(Box::new(ClientActor::<EchoMsg>::new(
            0,
            vec![s],
            0,
            txns(3),
            SimDuration::from_ticks(50),
            SimDuration::from_ticks(10_000),
        )));
        world.start();
        world.run_to_quiescence(SimTime::from_ticks(1_000_000));
        let client = world.actor_ref::<ClientActor<EchoMsg>>(c);
        assert!(client.is_done());
        assert_eq!(client.records.len(), 3, "no duplicate records");
    }

    #[test]
    fn open_loop_pipelines_and_reports_unanswered() {
        let mut world: World<EchoMsg> = World::new(SimConfig::new(4));
        let s = world.add_actor(Box::new(EchoServer {
            mute: true,
            served: 0,
        }));
        let c = world.add_actor(Box::new(OpenLoopClient::<EchoMsg>::new(
            0,
            vec![s],
            0,
            txns(4),
            SimDuration::from_ticks(100),
        )));
        world.start();
        world.run_until(SimTime::from_ticks(50_000));
        let client = world.actor_ref::<OpenLoopClient<EchoMsg>>(c);
        // All submitted (server is mute, so none answered) — open loop
        // does not block on responses.
        assert_eq!(client.records.len(), 4);
        assert!(!client.is_done());
        assert_eq!(client.completed().count(), 0);
    }

    #[test]
    fn aggregate_clients_drain_their_whole_budget() {
        use repl_workload::{ArrivalDist, ArrivalStream, WorkloadGen, WorkloadSpec};
        let mut world: World<EchoMsg> = World::new(SimConfig::new(11));
        let s = world.add_actor(Box::new(EchoServer {
            mute: false,
            served: 0,
        }));
        let group = ClientGroup {
            first: 0,
            stride: 1,
            count: 10,
        };
        let spec = WorkloadSpec::default().with_txns_per_client(3);
        let agg = AggregateClients::<EchoMsg>::new(
            group,
            vec![s],
            0,
            WorkloadGen::new(&spec, 5),
            // Per-client mean 500 ticks over 10 clients = 50-tick gaps.
            ArrivalStream::new(ArrivalDist::Poisson, 50.0, 5),
            3,
        );
        assert_eq!(agg.budget(), 30);
        let c = world.add_actor(Box::new(agg));
        world.start();
        world.run_to_quiescence(SimTime::from_ticks(1_000_000));
        let agg = world.actor_ref::<AggregateClients<EchoMsg>>(c);
        assert!(agg.is_done());
        assert_eq!(agg.issued(), 30);
        assert_eq!(agg.committed, 30);
        assert_eq!(agg.hist.count(), 30);
        assert!(agg.peak_outstanding >= 1);
        assert!(agg.last_response.is_some());
        assert!(agg.worst_gap >= agg.hist.min());
    }

    #[test]
    fn client_group_round_robins_virtual_ids() {
        let g = ClientGroup {
            first: 2,
            stride: 3,
            count: 4,
        };
        // Members are 2, 5, 8, 11; arrival i advances round-robin.
        assert_eq!(g.virtual_op(0), (2, 0));
        assert_eq!(g.virtual_op(1), (5, 0));
        assert_eq!(g.virtual_op(3), (11, 0));
        assert_eq!(g.virtual_op(4), (2, 1));
        assert_eq!(g.virtual_op(7), (11, 1));
        assert_eq!(g.budget(5), 20);
    }

    #[test]
    fn retry_backoff_is_exact_then_capped_exponential() {
        let ra = SimDuration::from_ticks(1_000);
        let op = OpId::compose(3, 7);
        // The first retry interval is exactly retry_after — the failover
        // experiments calibrate unavailability windows against it.
        assert_eq!(retry_delay(ra, 3, op, 1), ra);
        let mut prev = ra.ticks();
        for attempt in 2..=10u32 {
            let d = retry_delay(ra, 3, op, attempt).ticks();
            let backoff = ra.ticks() << (attempt - 1).min(MAX_BACKOFF_SHIFT);
            assert!(d >= backoff, "attempt {attempt}: {d} < base {backoff}");
            assert!(
                d <= backoff + backoff / 4,
                "attempt {attempt}: jitter exceeds a quarter of the backoff"
            );
            assert!(d >= prev.min(backoff), "backoff shrank at {attempt}");
            prev = d;
        }
        // Capped: attempts far out never exceed 8x + jitter.
        let far = retry_delay(ra, 3, op, 40).ticks();
        assert!(far <= 8_000 + 2_000);
        // Deterministic and client/op-dependent.
        assert_eq!(retry_delay(ra, 3, op, 5), retry_delay(ra, 3, op, 5));
        let spread: std::collections::HashSet<u64> =
            (0..16).map(|c| retry_delay(ra, c, op, 4).ticks()).collect();
        assert!(spread.len() > 8, "jitter failed to spread clients");
    }

    #[test]
    fn retries_back_off_against_a_mute_server() {
        // One mute server: every attempt lands there, so the arrival
        // gaps are exactly the retry waits — first gap retry_after, later
        // gaps strictly wider, none wider than the cap allows.
        struct Recorder {
            arrivals: Vec<u64>,
        }
        impl Actor<EchoMsg> for Recorder {
            fn on_message(&mut self, ctx: &mut Context<'_, EchoMsg>, _: NodeId, msg: EchoMsg) {
                if let EchoMsg::Invoke(_) = msg {
                    self.arrivals.push(ctx.now().ticks());
                }
            }
            impl_as_any!();
        }
        let mut world: World<EchoMsg> = World::new(SimConfig::new(9));
        let s = world.add_actor(Box::new(Recorder {
            arrivals: Vec::new(),
        }));
        let c = world.add_actor(Box::new(ClientActor::<EchoMsg>::new(
            0,
            vec![s],
            0,
            txns(1),
            SimDuration::from_ticks(100),
            SimDuration::from_ticks(1_000),
        )));
        world.start();
        world.run_until(SimTime::from_ticks(60_000));
        let client = world.actor_ref::<ClientActor<EchoMsg>>(c);
        assert!(!client.is_done());
        let arrivals = &world.actor_ref::<Recorder>(s).arrivals;
        assert!(arrivals.len() >= 5, "not enough attempts: {arrivals:?}");
        let gaps: Vec<u64> = arrivals.windows(2).map(|w| w[1] - w[0]).collect();
        // Arrival gaps carry per-message network jitter on top of the
        // timer waits; the first must still sit at ~retry_after and the
        // second must be clearly wider (the backoff doubles).
        assert!(
            (900..=1_100).contains(&gaps[0]),
            "first retry not at retry_after: {gaps:?}"
        );
        assert!(gaps[1] > gaps[0] + 500, "no backoff: {gaps:?}");
        for g in &gaps {
            assert!(*g <= 8_000 + 2_000 + 100, "gap beyond cap+jitter: {gaps:?}");
        }
    }

    #[test]
    fn op_record_latency_math() {
        let rec = OpRecord {
            op: OpId(1),
            txn: TxnTemplate {
                ops: vec![OpTemplate::Read(Key(0))],
            },
            invoked: SimTime::from_ticks(100),
            responded: Some(SimTime::from_ticks(175)),
            response: Some(crate::Response::committed(OpId(1))),
            retries: 0,
        };
        assert_eq!(rec.latency(), Some(SimDuration::from_ticks(75)));
        assert!(rec.committed());
        let unanswered = OpRecord {
            responded: None,
            response: None,
            ..rec
        };
        assert_eq!(unanswered.latency(), None);
        assert!(!unanswered.committed());
    }
}
