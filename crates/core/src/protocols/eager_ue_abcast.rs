//! Eager update everywhere based on Atomic Broadcast (paper §4.4.2,
//! Fig. 9).
//!
//! The client submits to its local server, which relays the operation to
//! the whole group through ABCAST; every server executes operations in
//! delivery order (conflicting operations are therefore serialized the
//! same way everywhere), and the local server answers as soon as *it* has
//! executed. The total order replaces both distributed locking and the
//! final 2PC — there is **no** Agreement Coordination phase.
//! Skeleton: `RE SC EX END`.
//!
//! Like active replication this relies on deterministic execution; the
//! paper points to \[KA98\] for when that assumption is safe.

use std::collections::HashSet;

use repl_db::Keyspace;
use repl_gcs::{BatchConfig, Outbox};
use repl_sim::{impl_as_any, Actor, Context, Message, NodeId, SimDuration, SimTime, TimerId};

use crate::client::ProtocolMsg;
use crate::op::{ClientOp, OpId, Response};
use crate::phase::Phase;
use crate::protocols::common::{
    global_txn, settle_rejoin, AbMsg, AbcastEndpoint, AbcastImpl, ExecutionMode, ServerBase,
    RESTORE_TAG,
};
use repl_gcs::ConsensusConfig;

/// Wire messages of eager update everywhere over ABCAST.
#[derive(Debug, Clone)]
pub enum EuaMsg {
    /// Client → local server.
    Invoke(ClientOp),
    /// Server ↔ server ABCAST traffic.
    Ab(AbMsg<ClientOp>),
    /// Local server → client.
    Reply(Response),
}

impl Message for EuaMsg {
    fn wire_size(&self) -> usize {
        match self {
            EuaMsg::Invoke(op) => 8 + op.wire_size(),
            EuaMsg::Ab(m) => m.wire_size(),
            EuaMsg::Reply(r) => 8 + r.wire_size(),
        }
    }
}

impl ProtocolMsg for EuaMsg {
    fn invoke(op: ClientOp) -> Self {
        EuaMsg::Invoke(op)
    }
    fn response(&self) -> Option<&Response> {
        match self {
            EuaMsg::Reply(r) => Some(r),
            _ => None,
        }
    }
}

/// A server for eager update everywhere over ABCAST.
pub struct EuaServer {
    /// Shared database/server state (public for post-run inspection).
    pub base: ServerBase,
    ab: AbcastEndpoint<ClientOp>,
    /// Operations this server relayed (it is their delegate and answers).
    delegated: HashSet<OpId>,
    marks: bool,
}

impl EuaServer {
    /// Creates server `site` of `group`.
    pub fn new(
        site: u32,
        me: NodeId,
        group: Vec<NodeId>,
        keyspace: impl Into<Keyspace>,
        exec: ExecutionMode,
        abcast: AbcastImpl,
        cons: ConsensusConfig,
    ) -> Self {
        EuaServer {
            base: ServerBase::new(site, keyspace, exec),
            ab: AbcastEndpoint::new(abcast, me, group, cons),
            delegated: HashSet::new(),
            marks: site == 0,
        }
    }

    /// Sets the ordering-layer batching window (builder form).
    pub fn with_batching(mut self, batch: BatchConfig) -> Self {
        self.ab.set_batching(batch);
        self
    }

    fn drain(
        &mut self,
        ctx: &mut Context<'_, EuaMsg>,
        out: Outbox<AbMsg<ClientOp>, repl_gcs::AbDeliver<ClientOp>>,
    ) {
        let deliveries = repl_gcs::apply_outbox(ctx, out, 0, EuaMsg::Ab);
        for d in deliveries {
            let op = d.payload;
            if self.base.cached(op.id).is_some() {
                continue;
            }
            if self.marks {
                ctx.mark(Phase::ServerCoordination.tag(), op.id.0, d.gseq);
                ctx.mark(Phase::Execution.tag(), op.id.0, 0);
            }
            let (_ws, resp) = self.base.execute_commit(&op, global_txn(op.id));
            self.base.remember(&resp);
            // Only the delegate (the server the client contacted) answers.
            if self.delegated.contains(&op.id) {
                ctx.send(op.client, EuaMsg::Reply(resp));
            }
        }
        settle_rejoin(&mut self.ab, &mut self.base, ctx.now().ticks());
    }

    fn rejoin_now(&mut self, ctx: &mut Context<'_, EuaMsg>) {
        let mut out = Outbox::new();
        self.ab.rejoin(&mut out);
        self.drain(ctx, out);
    }
}

impl Actor<EuaMsg> for EuaServer {
    fn on_message(&mut self, ctx: &mut Context<'_, EuaMsg>, from: NodeId, msg: EuaMsg) {
        if self.base.restoring() {
            return; // deaf until the volume restore download completes
        }
        match msg {
            EuaMsg::Invoke(op) => {
                if let Some(resp) = self.base.cached(op.id) {
                    ctx.send(op.client, EuaMsg::Reply(resp));
                    return;
                }
                if !self.delegated.insert(op.id) {
                    return;
                }
                let mut out = Outbox::new();
                self.ab.broadcast(op, &mut out);
                self.drain(ctx, out);
            }
            EuaMsg::Ab(m) => {
                let mut out = Outbox::new();
                self.ab.on_message(from, m, &mut out);
                self.drain(ctx, out);
            }
            EuaMsg::Reply(_) => {}
        }
    }

    fn on_timer(&mut self, ctx: &mut Context<'_, EuaMsg>, _timer: TimerId, tag: u64) {
        if tag == RESTORE_TAG {
            self.base.finish_restore();
            self.rejoin_now(ctx);
            return;
        }
        if self.base.restoring() {
            return;
        }
        let mut out = Outbox::new();
        self.ab.on_timer(tag, &mut out);
        self.drain(ctx, out);
    }

    fn on_recover(&mut self, ctx: &mut Context<'_, EuaMsg>) {
        // Refill the missed ABCAST suffix and re-execute it; the
        // response cache suppresses ops executed before the crash.
        self.base.recovery.begin(ctx.now().ticks());
        if let Some(plan) = self.base.begin_restore(ctx.now().ticks()) {
            self.ab.rewind_to(plan.token);
            if plan.delay > 0 {
                ctx.set_timer(SimDuration::from_ticks(plan.delay), RESTORE_TAG);
                return;
            }
            self.base.finish_restore();
        }
        self.rejoin_now(ctx);
    }

    fn on_volume_loss(&mut self, now: SimTime) {
        self.base.wipe_volume(now.ticks());
    }

    fn on_settle(&mut self, ctx: &mut Context<'_, EuaMsg>) {
        self.base.seal_now(ctx.now().ticks(), self.ab.position());
    }

    impl_as_any!();
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client::ClientActor;
    use repl_db::{Key, Value};
    use repl_sim::{SimConfig, SimDuration, SimTime, World};
    use repl_workload::{OpTemplate, TxnTemplate};

    fn write(k: u64, v: i64) -> TxnTemplate {
        TxnTemplate {
            ops: vec![OpTemplate::Write(Key(k), Value(v))],
        }
    }
    fn rmw(k: u64, v: i64) -> TxnTemplate {
        TxnTemplate {
            ops: vec![
                OpTemplate::Read(Key(k)),
                OpTemplate::Write(Key(k), Value(v)),
            ],
        }
    }

    fn build(
        n: u32,
        txns: Vec<Vec<TxnTemplate>>,
        seed: u64,
    ) -> (World<EuaMsg>, Vec<NodeId>, Vec<NodeId>) {
        let mut world = World::new(SimConfig::new(seed));
        let servers: Vec<NodeId> = (0..n).map(NodeId::new).collect();
        for i in 0..n {
            world.add_actor(Box::new(EuaServer::new(
                i,
                NodeId::new(i),
                servers.clone(),
                16,
                ExecutionMode::Deterministic,
                AbcastImpl::Sequencer,
                ConsensusConfig::default(),
            )));
        }
        let mut clients = Vec::new();
        for (c, t) in txns.into_iter().enumerate() {
            let client = ClientActor::<EuaMsg>::new(
                c as u32,
                servers.clone(),
                c % n as usize,
                t,
                SimDuration::from_ticks(100),
                SimDuration::from_ticks(20_000),
            );
            clients.push(world.add_actor(Box::new(client)));
        }
        (world, servers, clients)
    }

    #[test]
    fn conflicting_updates_from_different_sites_serialize_identically() {
        let (mut world, servers, clients) = build(
            3,
            vec![
                vec![rmw(0, 1), rmw(1, 2)],
                vec![rmw(0, 10), rmw(1, 20)],
                vec![rmw(0, 100)],
            ],
            1,
        );
        world.start();
        world.run_until(SimTime::from_ticks(500_000));
        for &c in &clients {
            assert!(world.actor_ref::<ClientActor<EuaMsg>>(c).is_done());
        }
        let fp0 = world
            .actor_ref::<EuaServer>(servers[0])
            .base
            .store
            .fingerprint();
        for &s in &servers[1..] {
            assert_eq!(
                world.actor_ref::<EuaServer>(s).base.store.fingerprint(),
                fp0
            );
        }
        let mut merged = repl_db::ReplicatedHistory::new();
        for &s in &servers {
            merged.merge(&world.actor_ref::<EuaServer>(s).base.history);
        }
        merged
            .check_one_copy_serializable()
            .expect("total order must imply 1SR");
    }

    #[test]
    fn only_the_delegate_answers() {
        let (mut world, _servers, clients) = build(3, vec![vec![write(0, 1)]], 2);
        world.start();
        world.run_until(SimTime::from_ticks(200_000));
        let client = world.actor_ref::<ClientActor<EuaMsg>>(clients[0]);
        assert!(client.is_done());
        // Exactly one reply reached the client: its record has a response
        // and no duplicate-response path was exercised (active replication
        // sends n replies; here it must be 1). We verify by counting Reply
        // deliveries to the client in the trace.
        let client_node = clients[0];
        let replies = world
            .trace()
            .iter()
            .filter(|r| {
                r.node == client_node
                    && matches!(r.event, repl_sim::TraceEvent::MsgDelivered { .. })
            })
            .count();
        assert_eq!(replies, 1, "non-delegate servers must stay silent");
    }

    #[test]
    fn phase_skeleton_matches_figure_9() {
        let (mut world, _s, _c) = build(3, vec![vec![write(0, 1)]], 3);
        world.start();
        world.run_until(SimTime::from_ticks(200_000));
        let pt = crate::phase::PhaseTrace::from_trace(world.trace());
        assert_eq!(pt.canonical().expect("op done").to_string(), "RE SC EX END");
    }
}
