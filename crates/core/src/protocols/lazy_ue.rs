//! Lazy update everywhere with reconciliation (paper §4.6, Fig. 11).
//!
//! Any copy takes updates, commits and answers immediately; changes
//! propagate afterwards. Because other sites may have committed
//! conflicting transactions in the meantime, copies can be not merely
//! stale but *inconsistent*, and a reconciliation rule decides which
//! updates win (the paper: "Reconciliation is needed to decide which
//! updates are the winners"). Skeleton: `RE EX END AC`.
//!
//! Two reconciliation rules, selectable with [`ReconcileMode`]:
//!
//! * [`ReconcileMode::Lww`] — per-object last-writer-wins by commit
//!   timestamp with site tie-break (the Thomas write rule); exactly the
//!   per-object scheme whose limitation the paper notes.
//! * [`ReconcileMode::AbcastOrder`] — the paper's suggested alternative
//!   ("a straightforward solution … is to run an Atomic Broadcast and
//!   determine the after-commit-order according to the order of the
//!   atomic broadcast"): committed writesets are ABCAST and applied in
//!   total order everywhere.
//!
//! Discarded/overridden optimistic writes are counted in
//! [`LazyUeServer::reconciliations`] — the conflict-intensity experiment
//! sweeps them.

use std::collections::{HashMap, HashSet};

use repl_db::{Key, Keyspace, TransferStrategy, TxnId, Value, WriteRecord, WriteSet};
use repl_gcs::Outbox;
use repl_sim::{impl_as_any, Actor, Context, Message, NodeId, SimDuration, SimTime, TimerId};
use repl_workload::OpTemplate;

use crate::client::ProtocolMsg;
use crate::op::{ClientOp, Response};
use crate::phase::Phase;
use crate::protocols::common::{
    global_txn, op_of_txn, settle_rejoin, AbMsg, AbcastEndpoint, AbcastImpl, ExecutionMode,
    ServerBase, RESTORE_TAG,
};

/// How conflicting lazy updates are reconciled (paper §4.6).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ReconcileMode {
    /// Per-object last-writer-wins (Thomas write rule).
    #[default]
    Lww,
    /// After-commit order decided by Atomic Broadcast.
    AbcastOrder,
}

/// A committed writeset travelling through the ABCAST (AbcastOrder mode).
///
/// The ordering uses the fixed-sequencer ABCAST (`servers[0]` sequences);
/// lazy techniques are not run in the crash experiments (the paper studies
/// them for performance, not fault tolerance), so the cheap primitive is
/// the right default here.
#[derive(Debug, Clone)]
pub struct OrderedWs(pub WriteSet);

impl Message for OrderedWs {
    fn wire_size(&self) -> usize {
        self.0.wire_size()
    }
}

/// Wire messages of lazy update everywhere.
#[derive(Debug, Clone)]
pub enum LazyUeMsg {
    /// Client → its local server.
    Invoke(ClientOp),
    /// Server → all other servers, after commit.
    Propagate {
        /// The committed redo records.
        ws: WriteSet,
        /// Commit timestamp (virtual-time ticks) for last-writer-wins.
        commit_ts: u64,
        /// Committing site (timestamp tie-break).
        site: u32,
    },
    /// ABCAST traffic (AbcastOrder reconciliation).
    Ab(AbMsg<OrderedWs>),
    /// Recovering replica → every peer (Lww mode): send me your stamped
    /// committed state. Propagations sent during the outage were dropped
    /// and are never re-sent, so rejoin is anti-entropy: merge each
    /// peer's state under the same Thomas write rule as live traffic.
    SyncReq,
    /// Peer → recovering replica: stamped committed state, key-sorted.
    SyncData {
        /// `(key, value, commit_ts, site)` for every key the peer has
        /// accepted a stamped write for.
        items: Vec<(Key, Value, u64, u32)>,
    },
    /// Server → client.
    Reply(Response),
}

impl Message for LazyUeMsg {
    fn wire_size(&self) -> usize {
        match self {
            LazyUeMsg::Invoke(op) => 8 + op.wire_size(),
            LazyUeMsg::Propagate { ws, .. } => 20 + ws.wire_size(),
            LazyUeMsg::Ab(m) => m.wire_size(),
            LazyUeMsg::SyncReq => 8,
            LazyUeMsg::SyncData { items } => 8 + items.len() * 28,
            LazyUeMsg::Reply(r) => 8 + r.wire_size(),
        }
    }
}

impl ProtocolMsg for LazyUeMsg {
    fn invoke(op: ClientOp) -> Self {
        LazyUeMsg::Invoke(op)
    }
    fn response(&self) -> Option<&Response> {
        match self {
            LazyUeMsg::Reply(r) => Some(r),
            _ => None,
        }
    }
}

const FLUSH_TAG: u64 = 1;

/// A lazy-update-everywhere server.
pub struct LazyUeServer {
    /// Shared database/server state (public for post-run inspection).
    pub base: ServerBase,
    me: NodeId,
    servers: Vec<NodeId>,
    propagation_delay: SimDuration,
    /// Last accepted writer per key: `(commit_ts, site)`.
    last_writer: HashMap<Key, (u64, u32)>,
    outbound: Vec<(WriteSet, u64)>,
    flush_armed: bool,
    mode: ReconcileMode,
    ab: AbcastEndpoint<OrderedWs>,
    /// Locally committed transactions not yet confirmed by the total
    /// order (AbcastOrder mode).
    local_pending: HashSet<TxnId>,
    /// Writes discarded by the Thomas write rule (losers of concurrent
    /// conflicting updates).
    pub reconciliations: u64,
    /// Lww only: restored entries to re-propagate at stamp 0 once the
    /// restore download completes (peers adopt only keys they never saw).
    reship: Vec<WriteSet>,
    marks: bool,
}

impl LazyUeServer {
    /// Creates server `site` of `servers`.
    pub fn new(
        site: u32,
        me: NodeId,
        servers: Vec<NodeId>,
        keyspace: impl Into<Keyspace>,
        exec: ExecutionMode,
        propagation_delay: SimDuration,
    ) -> Self {
        let servers_copy = servers.clone();
        LazyUeServer {
            base: ServerBase::new(site, keyspace, exec),
            me,
            servers,
            propagation_delay,
            last_writer: HashMap::new(),
            outbound: Vec::new(),
            flush_armed: false,
            mode: ReconcileMode::Lww,
            ab: AbcastEndpoint::new(
                AbcastImpl::Sequencer,
                me,
                servers_copy,
                repl_gcs::ConsensusConfig::default(),
            ),
            local_pending: HashSet::new(),
            reconciliations: 0,
            reship: Vec::new(),
            marks: site == 0,
        }
    }

    /// Selects the reconciliation rule (default: last-writer-wins).
    pub fn with_reconcile(mut self, mode: ReconcileMode) -> Self {
        self.mode = mode;
        self
    }

    fn flush(&mut self, ctx: &mut Context<'_, LazyUeMsg>) {
        let pending = std::mem::take(&mut self.outbound);
        self.flush_armed = false;
        let site = self.base.site;
        for (ws, commit_ts) in pending {
            if self.marks {
                ctx.mark(Phase::AgreementCoordination.tag(), op_of_txn(ws.txn).0, 0);
            }
            match self.mode {
                ReconcileMode::Lww => {
                    for &s in &self.servers {
                        if s != self.me {
                            ctx.send(
                                s,
                                LazyUeMsg::Propagate {
                                    ws: ws.clone(),
                                    commit_ts,
                                    site,
                                },
                            );
                        }
                    }
                }
                ReconcileMode::AbcastOrder => {
                    let mut out = Outbox::new();
                    self.ab.broadcast(OrderedWs(ws), &mut out);
                    self.drive_ab(ctx, out);
                }
            }
        }
    }

    /// Applies ABCAST-ordered writesets: the total order *is* the
    /// after-commit order, so every site replays the same sequence.
    fn drive_ab(
        &mut self,
        ctx: &mut Context<'_, LazyUeMsg>,
        out: Outbox<AbMsg<OrderedWs>, repl_gcs::AbDeliver<OrderedWs>>,
    ) {
        let deliveries = repl_gcs::apply_outbox(ctx, out, 0, LazyUeMsg::Ab);
        for d in deliveries {
            let ws = d.payload.0;
            let own = self.local_pending.remove(&ws.txn);
            let mut noted = WriteSet {
                txn: ws.txn,
                writes: Vec::with_capacity(ws.writes.len()),
            };
            for w in &ws.writes {
                // An optimistic local value that had not reached the total
                // order yet is being overridden: that is a reconciliation.
                if let Some(current) = self.base.store.read(w.key) {
                    if let Some(writer) = current.writer {
                        if writer != ws.txn && self.local_pending.contains(&writer) {
                            self.reconciliations += 1;
                        }
                    }
                }
                let after = self.base.store.write(w.key, w.value, ws.txn);
                noted.writes.push(WriteRecord {
                    key: w.key,
                    value: w.value,
                    version: after.version,
                });
                if !own {
                    self.base.history.record(
                        self.base.site,
                        ws.txn,
                        w.key,
                        repl_db::AccessKind::Write,
                    );
                }
            }
            // The tier notes at *delivery*, not at the optimistic local
            // commit: the sealed state is then exactly a prefix of the
            // total order, so a restore can rewind the stream to the
            // frame token and replay forward consistently.
            if let Some(t) = &mut self.base.tier {
                t.note_commit(&noted);
            }
            if !own {
                self.base.history.mark_committed(ws.txn);
                self.base.committed += 1;
            }
        }
        settle_rejoin(&mut self.ab, &mut self.base, ctx.now().ticks());
    }

    /// Every key this replica has accepted a stamped write for, with its
    /// winning stamp, key-sorted (the `last_writer` map iterates in hash
    /// order, which must not leak into the wire stream).
    fn stamped_state(&self) -> Vec<(Key, Value, u64, u32)> {
        let mut items: Vec<(Key, Value, u64, u32)> = self
            .last_writer
            .iter()
            .map(|(&k, &(ts, site))| {
                let v = self.base.store.read(k).map_or(Value(0), |v| v.value);
                (k, v, ts, site)
            })
            .collect();
        items.sort_by_key(|e| e.0);
        items
    }

    /// Merges a peer's stamped state under the Thomas write rule. Keys
    /// the peer never saw keep this replica's surviving values; losing
    /// stamps are not counted as reconciliations (nothing optimistic is
    /// being discarded — this is catch-up, not conflict).
    fn merge_stamped(&mut self, items: Vec<(Key, Value, u64, u32)>) {
        for (k, v, ts, site) in items {
            let stamp = (ts, site);
            let current = self.last_writer.get(&k).copied().unwrap_or((0, u32::MAX));
            let newer = stamp.0 > current.0 || (stamp.0 == current.0 && stamp.1 < current.1);
            if newer {
                self.last_writer.insert(k, stamp);
                let txn = TxnId::new(ts, site);
                let after = self.base.store.write(k, v, txn);
                if let Some(t) = &mut self.base.tier {
                    t.note_commit(&WriteSet {
                        txn,
                        writes: vec![WriteRecord {
                            key: k,
                            value: v,
                            version: after.version,
                        }],
                    });
                }
            }
        }
    }

    /// Applies a remote writeset under the Thomas write rule.
    fn reconcile(&mut self, ws: &WriteSet, commit_ts: u64, site: u32) {
        let mut any_applied = false;
        let mut applied = Vec::new();
        for w in &ws.writes {
            let stamp = (commit_ts, site);
            let current = self
                .last_writer
                .get(&w.key)
                .copied()
                .unwrap_or((0, u32::MAX));
            // Newer stamp wins; on equal timestamps the lower site wins
            // (any deterministic rule works, it just has to be the same
            // everywhere).
            let newer = stamp.0 > current.0 || (stamp.0 == current.0 && stamp.1 < current.1);
            if newer {
                self.last_writer.insert(w.key, stamp);
                let after = self.base.store.write(w.key, w.value, ws.txn);
                self.base
                    .history
                    .record(self.base.site, ws.txn, w.key, repl_db::AccessKind::Write);
                applied.push(WriteRecord {
                    key: w.key,
                    value: w.value,
                    version: after.version,
                });
                any_applied = true;
            } else {
                self.reconciliations += 1;
            }
        }
        if any_applied {
            self.base.history.mark_committed(ws.txn);
            self.base.committed += 1;
            // Only the winning subset is durable state worth restoring.
            if let Some(t) = &mut self.base.tier {
                t.note_commit(&WriteSet {
                    txn: ws.txn,
                    writes: applied,
                });
            }
        }
    }

    /// Re-enters service after the database state is back in place
    /// (directly on crash recovery; after the restore download when a
    /// volume loss forced a rebuild from the durable tier).
    fn rejoin_now(&mut self, ctx: &mut Context<'_, LazyUeMsg>) {
        // Timers died with the crash: anything still queued for
        // propagation goes out now.
        self.flush_armed = false;
        if !self.outbound.is_empty() {
            self.flush(ctx);
        }
        let reship = std::mem::take(&mut self.reship);
        if !reship.is_empty() {
            let site = self.base.site;
            for ws in &reship {
                for &s in &self.servers {
                    if s != self.me {
                        ctx.send(
                            s,
                            LazyUeMsg::Propagate {
                                ws: ws.clone(),
                                commit_ts: 0,
                                site,
                            },
                        );
                    }
                }
            }
        }
        match self.mode {
            ReconcileMode::Lww => {
                if self.servers.len() <= 1 {
                    let now = ctx.now().ticks();
                    self.base.recovery.complete(now);
                    return;
                }
                for &s in &self.servers {
                    if s != self.me {
                        ctx.send(s, LazyUeMsg::SyncReq);
                    }
                }
            }
            ReconcileMode::AbcastOrder => {
                // The ordered stream is the shared log: re-request the
                // missed deliveries from the sequencer.
                let mut out = Outbox::new();
                self.ab.rejoin(&mut out);
                self.drive_ab(ctx, out);
            }
        }
    }
}

impl Actor<LazyUeMsg> for LazyUeServer {
    fn on_recover(&mut self, ctx: &mut Context<'_, LazyUeMsg>) {
        self.base.recovery.begin(ctx.now().ticks());
        if let Some(plan) = self.base.begin_restore(ctx.now().ticks()) {
            match self.mode {
                ReconcileMode::Lww => {
                    // Stamps cannot be restored (the tier keeps values,
                    // not clocks): re-propagate the restored entries at
                    // stamp 0 so peers adopt only keys they never saw,
                    // and let the rejoin anti-entropy reinstate the
                    // group's winning stamps here.
                    self.reship = plan.entries;
                }
                ReconcileMode::AbcastOrder => self.ab.rewind_to(plan.token),
            }
            if plan.delay > 0 {
                ctx.set_timer(SimDuration::from_ticks(plan.delay), RESTORE_TAG);
                return;
            }
            self.base.finish_restore();
        }
        self.rejoin_now(ctx);
    }

    fn on_message(&mut self, ctx: &mut Context<'_, LazyUeMsg>, from: NodeId, msg: LazyUeMsg) {
        if self.base.restoring() {
            return; // deaf until the volume restore download completes
        }
        match msg {
            LazyUeMsg::Invoke(op) => {
                if let Some(resp) = self.base.cached(op.id) {
                    ctx.send(op.client, LazyUeMsg::Reply(resp));
                    return;
                }
                if self.marks {
                    ctx.mark(Phase::Execution.tag(), op.id.0, 0);
                }
                let txn = global_txn(op.id);
                // Execute locally, against possibly-divergent local state.
                let mut reads = Vec::new();
                let mut writes = Vec::new();
                for tpl in &op.txn.ops {
                    match *tpl {
                        OpTemplate::Read(k) => {
                            reads.push((k, self.base.read_committed(txn, k)));
                        }
                        OpTemplate::Write(k, v) => {
                            let v = self.base.effective_value(v);
                            let after = self.base.store.write(k, v, txn);
                            self.base.history.record(
                                self.base.site,
                                txn,
                                k,
                                repl_db::AccessKind::Write,
                            );
                            self.last_writer
                                .insert(k, (ctx.now().ticks(), self.base.site));
                            writes.push(repl_db::WriteRecord {
                                key: k,
                                value: v,
                                version: after.version,
                            });
                        }
                    }
                }
                self.base.history.mark_committed(txn);
                self.base.committed += 1;
                let resp = Response {
                    op: op.id,
                    committed: true,
                    reads,
                };
                self.base.remember(&resp);
                // Lazy: reply before any coordination.
                ctx.send(op.client, LazyUeMsg::Reply(resp));
                if !writes.is_empty() {
                    if self.mode == ReconcileMode::AbcastOrder {
                        self.local_pending.insert(txn);
                    }
                    let ws = WriteSet { txn, writes };
                    // Lww seals optimistic commits as they happen; in
                    // AbcastOrder the tier notes at ordered delivery
                    // instead (see `drive_ab`), so a restored store is a
                    // clean prefix of the stream.
                    if self.mode == ReconcileMode::Lww {
                        if let Some(t) = &mut self.base.tier {
                            t.note_commit(&ws);
                        }
                    }
                    self.outbound.push((ws, ctx.now().ticks()));
                    if self.propagation_delay.is_zero() {
                        self.flush(ctx);
                    } else if !self.flush_armed {
                        self.flush_armed = true;
                        ctx.set_timer(self.propagation_delay, FLUSH_TAG);
                    }
                }
            }
            LazyUeMsg::Propagate {
                ws,
                commit_ts,
                site,
            } => {
                self.reconcile(&ws, commit_ts, site);
            }
            LazyUeMsg::Ab(m) => {
                let mut out = Outbox::new();
                self.ab.on_message(from, m, &mut out);
                self.drive_ab(ctx, out);
            }
            LazyUeMsg::SyncReq => {
                let items = self.stamped_state();
                ctx.send(from, LazyUeMsg::SyncData { items });
            }
            LazyUeMsg::SyncData { items } => {
                // First reply ends the recovery window (this replica can
                // serve again); later replies still merge — anti-entropy
                // is commutative, extra rounds only add coverage.
                self.base
                    .recovery
                    .record_transfer(TransferStrategy::Snapshot, (8 + items.len() * 28) as u64);
                self.merge_stamped(items);
                self.base.recovery.complete(ctx.now().ticks());
            }
            LazyUeMsg::Reply(_) => {}
        }
    }

    fn on_timer(&mut self, ctx: &mut Context<'_, LazyUeMsg>, _timer: TimerId, tag: u64) {
        if tag == RESTORE_TAG {
            self.base.finish_restore();
            self.rejoin_now(ctx);
            return;
        }
        if self.base.restoring() {
            return;
        }
        if tag == FLUSH_TAG {
            self.flush(ctx);
        } else {
            let mut out = Outbox::new();
            self.ab.on_timer(tag, &mut out);
            self.drive_ab(ctx, out);
        }
    }

    fn on_volume_loss(&mut self, now: SimTime) {
        // Acked commits still waiting for the total order vanish with the
        // volume (they were never noted): claim them so silent-loss
        // accounting holds. The sequencer may still resupply the flushed
        // ones — a safe over-claim.
        if self.mode == ReconcileMode::AbcastOrder {
            let mut pend: Vec<TxnId> = self.local_pending.iter().copied().collect();
            pend.sort();
            if let Some(t) = &mut self.base.tier {
                t.lost.extend(pend);
            }
        }
        self.base.wipe_volume(now.ticks());
        self.last_writer.clear();
        self.outbound.clear();
        self.flush_armed = false;
        self.local_pending.clear();
        self.reship.clear();
    }

    fn on_settle(&mut self, ctx: &mut Context<'_, LazyUeMsg>) {
        let token = match self.mode {
            // No stream exists; Lww restores never rewind by token.
            ReconcileMode::Lww => self.base.committed,
            ReconcileMode::AbcastOrder => self.ab.position(),
        };
        self.base.seal_now(ctx.now().ticks(), token);
    }

    impl_as_any!();
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client::ClientActor;
    use repl_db::Value;
    use repl_sim::{SimConfig, SimTime, World};
    use repl_workload::TxnTemplate;

    fn write(k: u64, v: i64) -> TxnTemplate {
        TxnTemplate {
            ops: vec![OpTemplate::Write(Key(k), Value(v))],
        }
    }

    fn build(
        n: u32,
        txns: Vec<Vec<TxnTemplate>>,
        delay: u64,
        seed: u64,
    ) -> (World<LazyUeMsg>, Vec<NodeId>, Vec<NodeId>) {
        let mut world = World::new(SimConfig::new(seed));
        let servers: Vec<NodeId> = (0..n).map(NodeId::new).collect();
        for i in 0..n {
            world.add_actor(Box::new(LazyUeServer::new(
                i,
                NodeId::new(i),
                servers.clone(),
                16,
                ExecutionMode::Deterministic,
                SimDuration::from_ticks(delay),
            )));
        }
        let mut clients = Vec::new();
        for (c, t) in txns.into_iter().enumerate() {
            let client = ClientActor::<LazyUeMsg>::new(
                c as u32,
                servers.clone(),
                c % n as usize,
                t,
                SimDuration::from_ticks(100),
                SimDuration::from_ticks(20_000),
            );
            clients.push(world.add_actor(Box::new(client)));
        }
        (world, servers, clients)
    }

    #[test]
    fn disjoint_updates_converge_without_reconciliation() {
        let (mut world, servers, _clients) = build(
            3,
            vec![vec![write(0, 1)], vec![write(1, 2)], vec![write(2, 3)]],
            0,
            1,
        );
        world.start();
        world.run_until(SimTime::from_ticks(300_000));
        let fp0 = world
            .actor_ref::<LazyUeServer>(servers[0])
            .base
            .store
            .fingerprint();
        for &s in &servers[1..] {
            let srv = world.actor_ref::<LazyUeServer>(s);
            assert_eq!(srv.base.store.fingerprint(), fp0);
            assert_eq!(srv.reconciliations, 0);
        }
    }

    #[test]
    fn conflicting_updates_reconcile_to_one_winner_everywhere() {
        // Two clients write the same key at different sites at (almost)
        // the same time: each site commits its own value first, then
        // reconciliation picks a single global winner.
        let (mut world, servers, clients) =
            build(2, vec![vec![write(0, 111)], vec![write(0, 222)]], 2_000, 2);
        world.start();
        world.run_until(SimTime::from_ticks(500_000));
        for &c in &clients {
            assert!(world.actor_ref::<ClientActor<LazyUeMsg>>(c).is_done());
        }
        let s0 = world.actor_ref::<LazyUeServer>(servers[0]);
        let s1 = world.actor_ref::<LazyUeServer>(servers[1]);
        let v0 = s0.base.store.read(Key(0)).expect("e").value;
        let v1 = s1.base.store.read(Key(0)).expect("e").value;
        assert_eq!(v0, v1, "reconciliation did not converge");
        assert!(v0 == Value(111) || v0 == Value(222));
        let total_reconciliations = s0.reconciliations + s1.reconciliations;
        assert!(
            total_reconciliations >= 1,
            "a conflicting write must have been discarded"
        );
    }

    #[test]
    fn both_clients_got_optimistic_commits_despite_conflict() {
        // The dark side of lazy update everywhere: both clients were told
        // "committed", but one update was silently reconciled away.
        let (mut world, servers, clients) =
            build(2, vec![vec![write(0, 111)], vec![write(0, 222)]], 2_000, 3);
        world.start();
        world.run_until(SimTime::from_ticks(500_000));
        for &c in &clients {
            let client = world.actor_ref::<ClientActor<LazyUeMsg>>(c);
            assert!(
                client.records[0].committed(),
                "lazy always answers committed"
            );
        }
        let winner = world
            .actor_ref::<LazyUeServer>(servers[0])
            .base
            .store
            .read(Key(0))
            .expect("e")
            .value;
        // Exactly one of the two committed values survived.
        assert!(winner == Value(111) || winner == Value(222));
    }

    #[test]
    fn reconciliation_count_grows_with_conflict_rate() {
        // All clients hammer one key vs. spread keys: the hot-key run must
        // reconcile strictly more.
        let run = |spread: bool, seed: u64| -> u64 {
            let txns: Vec<Vec<TxnTemplate>> = (0..4u64)
                .map(|c| {
                    (0..5)
                        .map(|i| write(if spread { c * 8 + i } else { 0 }, (c * 100 + i) as i64))
                        .collect()
                })
                .collect();
            let (mut world, servers, _clients) = build(4, txns, 1_500, seed);
            world.start();
            world.run_until(SimTime::from_ticks(1_000_000));
            servers
                .iter()
                .map(|&s| world.actor_ref::<LazyUeServer>(s).reconciliations)
                .sum()
        };
        let hot = run(false, 4);
        let cold = run(true, 5);
        assert!(
            hot > cold,
            "hot-key workload should reconcile more (hot={hot}, cold={cold})"
        );
    }

    #[test]
    fn phase_skeleton_matches_figure_11() {
        let (mut world, _s, _c) = build(3, vec![vec![write(0, 1)]], 1_000, 6);
        world.start();
        world.run_until(SimTime::from_ticks(300_000));
        let pt = crate::phase::PhaseTrace::from_trace(world.trace());
        assert_eq!(pt.canonical().expect("op done").to_string(), "RE EX END AC");
    }
}
