//! Active replication — the state machine approach (paper §3.2, Fig. 2).
//!
//! Every replica receives the same totally ordered request stream (Atomic
//! Broadcast) and executes every request; determinism makes the replicas
//! interchangeable, so failures are fully transparent: the client simply
//! takes the first of the n replies.
//!
//! Phases: RE and SC merge into the ABCAST; there is **no** agreement
//! coordination. Skeleton: `RE SC EX END`.
//!
//! The client addresses the group through a contact replica which relays
//! the request into the ABCAST; on timeout it re-contacts another replica
//! (duplicates are suppressed by the order-delivery path).

use std::collections::HashSet;

use repl_db::Keyspace;
use repl_gcs::{BatchConfig, Outbox};
use repl_sim::{impl_as_any, Actor, Context, Message, NodeId, SimDuration, SimTime, TimerId};

use crate::client::ProtocolMsg;
use crate::op::{ClientOp, OpId, Response};
use crate::phase::Phase;
use crate::protocols::common::{
    global_txn, settle_rejoin, AbMsg, AbcastEndpoint, AbcastImpl, ExecutionMode, ServerBase,
    RESTORE_TAG,
};
use repl_gcs::ConsensusConfig;

/// Wire messages of active replication.
#[derive(Debug, Clone)]
pub enum ActiveMsg {
    /// Client → contact replica.
    Invoke(ClientOp),
    /// Replica ↔ replica ABCAST traffic.
    Ab(AbMsg<ClientOp>),
    /// Replica → client.
    Reply(Response),
}

impl Message for ActiveMsg {
    fn wire_size(&self) -> usize {
        match self {
            ActiveMsg::Invoke(op) => 8 + op.wire_size(),
            ActiveMsg::Ab(m) => m.wire_size(),
            ActiveMsg::Reply(r) => 8 + r.wire_size(),
        }
    }
}

impl ProtocolMsg for ActiveMsg {
    fn invoke(op: ClientOp) -> Self {
        ActiveMsg::Invoke(op)
    }
    fn response(&self) -> Option<&Response> {
        match self {
            ActiveMsg::Reply(r) => Some(r),
            _ => None,
        }
    }
}

/// An active-replication server.
pub struct ActiveServer {
    /// Shared database/server state (public for post-run inspection).
    pub base: ServerBase,
    ab: AbcastEndpoint<ClientOp>,
    relayed: HashSet<OpId>,
    marks: bool,
}

impl ActiveServer {
    /// Creates server `site` of `group`.
    pub fn new(
        site: u32,
        me: NodeId,
        group: Vec<NodeId>,
        keyspace: impl Into<Keyspace>,
        exec: ExecutionMode,
        abcast: AbcastImpl,
        cons: ConsensusConfig,
    ) -> Self {
        ActiveServer {
            base: ServerBase::new(site, keyspace, exec),
            ab: AbcastEndpoint::new(abcast, me, group, cons),
            relayed: HashSet::new(),
            // Exactly one process marks server-side phases (see phase.rs).
            marks: site == 0,
        }
    }

    /// Sets the ordering-layer batching window (builder form).
    pub fn with_batching(mut self, batch: BatchConfig) -> Self {
        self.ab.set_batching(batch);
        self
    }

    fn drain(
        &mut self,
        ctx: &mut Context<'_, ActiveMsg>,
        out: Outbox<AbMsg<ClientOp>, repl_gcs::AbDeliver<ClientOp>>,
    ) {
        let deliveries = repl_gcs::apply_outbox(ctx, out, 0, ActiveMsg::Ab);
        for d in deliveries {
            let op = d.payload;
            if self.base.cached(op.id).is_some() {
                continue; // duplicate ordering of a retried op
            }
            if self.marks {
                ctx.mark(Phase::ServerCoordination.tag(), op.id.0, d.gseq);
                ctx.mark(Phase::Execution.tag(), op.id.0, 0);
            }
            let (_ws, resp) = self.base.execute_commit(&op, global_txn(op.id));
            self.base.remember(&resp);
            // Every replica answers; the client keeps the first reply.
            ctx.send(op.client, ActiveMsg::Reply(resp));
        }
        settle_rejoin(&mut self.ab, &mut self.base, ctx.now().ticks());
    }

    fn rejoin_now(&mut self, ctx: &mut Context<'_, ActiveMsg>) {
        let mut out = Outbox::new();
        self.ab.rejoin(&mut out);
        self.drain(ctx, out);
    }
}

impl Actor<ActiveMsg> for ActiveServer {
    fn on_message(&mut self, ctx: &mut Context<'_, ActiveMsg>, from: NodeId, msg: ActiveMsg) {
        if self.base.restoring() {
            return; // deaf until the volume restore download completes
        }
        match msg {
            ActiveMsg::Invoke(op) => {
                if let Some(resp) = self.base.cached(op.id) {
                    ctx.send(op.client, ActiveMsg::Reply(resp));
                    return;
                }
                if !self.relayed.insert(op.id) {
                    return; // already in the ordering pipeline
                }
                let mut out = Outbox::new();
                self.ab.broadcast(op, &mut out);
                self.drain(ctx, out);
            }
            ActiveMsg::Ab(m) => {
                let mut out = Outbox::new();
                self.ab.on_message(from, m, &mut out);
                self.drain(ctx, out);
            }
            ActiveMsg::Reply(_) => {}
        }
    }

    fn on_timer(&mut self, ctx: &mut Context<'_, ActiveMsg>, _timer: TimerId, tag: u64) {
        if tag == RESTORE_TAG {
            self.base.finish_restore();
            self.rejoin_now(ctx);
            return;
        }
        if self.base.restoring() {
            return;
        }
        let mut out = Outbox::new();
        self.ab.on_timer(tag, &mut out);
        self.drain(ctx, out);
    }

    fn on_recover(&mut self, ctx: &mut Context<'_, ActiveMsg>) {
        // State survives the crash; the ordered stream does not. Rejoin
        // the ABCAST to refill the missed suffix — replaying it through
        // the normal delivery path re-executes exactly the missed ops
        // (executed ones are suppressed by the response cache).
        self.base.recovery.begin(ctx.now().ticks());
        if let Some(plan) = self.base.begin_restore(ctx.now().ticks()) {
            // The volume is gone: the durable tier restored a prefix;
            // rewind the stream cursor so the rejoin replays the rest.
            self.ab.rewind_to(plan.token);
            if plan.delay > 0 {
                ctx.set_timer(SimDuration::from_ticks(plan.delay), RESTORE_TAG);
                return;
            }
            self.base.finish_restore();
        }
        self.rejoin_now(ctx);
    }

    fn on_volume_loss(&mut self, now: SimTime) {
        self.base.wipe_volume(now.ticks());
    }

    fn on_settle(&mut self, ctx: &mut Context<'_, ActiveMsg>) {
        self.base.seal_now(ctx.now().ticks(), self.ab.position());
    }

    impl_as_any!();
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client::ClientActor;
    use repl_db::{Key, Value};
    use repl_sim::{SimConfig, SimDuration, SimTime, World};
    use repl_workload::{OpTemplate, TxnTemplate};

    fn write(k: u64, v: i64) -> TxnTemplate {
        TxnTemplate {
            ops: vec![OpTemplate::Write(Key(k), Value(v))],
        }
    }
    fn read(k: u64) -> TxnTemplate {
        TxnTemplate {
            ops: vec![OpTemplate::Read(Key(k))],
        }
    }

    fn build(
        n_servers: u32,
        txns_per_client: Vec<Vec<TxnTemplate>>,
        abcast: AbcastImpl,
        exec: ExecutionMode,
        seed: u64,
    ) -> (World<ActiveMsg>, Vec<NodeId>, Vec<NodeId>) {
        let mut world = World::new(SimConfig::new(seed));
        let servers: Vec<NodeId> = (0..n_servers).map(NodeId::new).collect();
        for i in 0..n_servers {
            world.add_actor(Box::new(ActiveServer::new(
                i,
                NodeId::new(i),
                servers.clone(),
                16,
                exec,
                abcast,
                ConsensusConfig::default(),
            )));
        }
        let mut clients = Vec::new();
        for (c, txns) in txns_per_client.into_iter().enumerate() {
            let client = ClientActor::<ActiveMsg>::new(
                c as u32,
                servers.clone(),
                c % n_servers as usize,
                txns,
                SimDuration::from_ticks(100),
                SimDuration::from_ticks(20_000),
            );
            clients.push(world.add_actor(Box::new(client)));
        }
        (world, servers, clients)
    }

    #[test]
    fn single_client_write_then_read() {
        let (mut world, servers, clients) = build(
            3,
            vec![vec![write(1, 7), read(1)]],
            AbcastImpl::Sequencer,
            ExecutionMode::Deterministic,
            1,
        );
        world.start();
        world.run_until(SimTime::from_ticks(200_000));
        let client = world.actor_ref::<ClientActor<ActiveMsg>>(clients[0]);
        assert!(client.is_done());
        let recs: Vec<_> = client.completed().collect();
        assert_eq!(recs.len(), 2);
        assert_eq!(
            recs[1].response.as_ref().expect("responded").reads,
            vec![(Key(1), Value(7))]
        );
        // All replicas converge.
        let fp0 = world
            .actor_ref::<ActiveServer>(servers[0])
            .base
            .store
            .fingerprint();
        for &s in &servers[1..] {
            assert_eq!(
                world.actor_ref::<ActiveServer>(s).base.store.fingerprint(),
                fp0
            );
        }
    }

    #[test]
    fn concurrent_writers_converge_with_determinism() {
        let (mut world, servers, _clients) = build(
            4,
            vec![
                vec![write(0, 1), write(1, 2), write(2, 3)],
                vec![write(0, 10), write(1, 20), write(2, 30)],
                vec![write(0, 100), write(2, 300)],
            ],
            AbcastImpl::Sequencer,
            ExecutionMode::Deterministic,
            7,
        );
        world.start();
        world.run_until(SimTime::from_ticks(500_000));
        let fp0 = world
            .actor_ref::<ActiveServer>(servers[0])
            .base
            .store
            .fingerprint();
        for &s in &servers[1..] {
            assert_eq!(
                world.actor_ref::<ActiveServer>(s).base.store.fingerprint(),
                fp0,
                "replica {s} diverged despite total order + determinism"
            );
        }
    }

    #[test]
    fn nondeterminism_breaks_active_replication() {
        // The paper's determinism requirement, demonstrated: with
        // site-dependent execution, replicas diverge.
        let (mut world, servers, _clients) = build(
            3,
            vec![vec![write(0, 1)]],
            AbcastImpl::Sequencer,
            ExecutionMode::NonDeterministic,
            2,
        );
        world.start();
        world.run_until(SimTime::from_ticks(200_000));
        let fp0 = world
            .actor_ref::<ActiveServer>(servers[0])
            .base
            .store
            .fingerprint();
        let fp1 = world
            .actor_ref::<ActiveServer>(servers[1])
            .base
            .store
            .fingerprint();
        assert_ne!(fp0, fp1, "divergence expected without determinism");
    }

    #[test]
    fn replica_crash_is_transparent_to_clients() {
        // With consensus-based ABCAST, a replica crash (even the round-0
        // coordinator) neither loses operations nor requires the client to
        // do anything beyond its normal retry.
        let (mut world, servers, clients) = build(
            5,
            vec![vec![write(0, 1), write(1, 2), read(0)]],
            AbcastImpl::Consensus,
            ExecutionMode::Deterministic,
            3,
        );
        world.schedule_crash(SimTime::from_ticks(500), servers[0]);
        world.start();
        world.run_until(SimTime::from_ticks(2_000_000));
        let client = world.actor_ref::<ClientActor<ActiveMsg>>(clients[0]);
        assert!(client.is_done(), "client did not finish after crash");
        let last = client.records.last().expect("records exist");
        assert_eq!(
            last.response.as_ref().expect("responded").reads,
            vec![(Key(0), Value(1))]
        );
        // Surviving replicas converge.
        let fp1 = world
            .actor_ref::<ActiveServer>(servers[1])
            .base
            .store
            .fingerprint();
        for &s in &servers[2..] {
            assert_eq!(
                world.actor_ref::<ActiveServer>(s).base.store.fingerprint(),
                fp1
            );
        }
    }

    #[test]
    fn history_is_one_copy_serializable() {
        let (mut world, servers, _clients) = build(
            3,
            vec![vec![write(0, 1), read(1)], vec![write(1, 2), read(0)]],
            AbcastImpl::Sequencer,
            ExecutionMode::Deterministic,
            9,
        );
        world.start();
        world.run_until(SimTime::from_ticks(500_000));
        let mut merged = repl_db::ReplicatedHistory::new();
        for &s in &servers {
            merged.merge(&world.actor_ref::<ActiveServer>(s).base.history);
        }
        assert!(merged.check_one_copy_serializable().is_ok());
    }

    #[test]
    fn volume_loss_restores_from_the_durable_tier() {
        // A replica's volume dies mid-run; the durable tier restores the
        // shipped prefix and the ABCAST rejoin replays the rest — the
        // group converges and the client never notices.
        for lag in [0u64, 2_000] {
            let mut world = World::new(SimConfig::new(11));
            let servers: Vec<NodeId> = (0..3).map(NodeId::new).collect();
            for i in 0..3u32 {
                let mut srv = ActiveServer::new(
                    i,
                    NodeId::new(i),
                    servers.clone(),
                    16,
                    ExecutionMode::Deterministic,
                    AbcastImpl::Sequencer,
                    ConsensusConfig::default(),
                );
                srv.base.set_durability(
                    &crate::durability::DurabilityConfig::with_upload_lag(lag),
                    120,
                );
                world.add_actor(Box::new(srv));
            }
            let txns: Vec<TxnTemplate> = (0..12).map(|i| write(i % 16, i as i64)).collect();
            let client = ClientActor::<ActiveMsg>::new(
                0,
                servers.clone(),
                1,
                txns,
                SimDuration::from_ticks(100),
                SimDuration::from_ticks(20_000),
            );
            let client = world.add_actor(Box::new(client));
            world.schedule_volume_loss(SimTime::from_ticks(900), servers[2]);
            world.schedule_recover(SimTime::from_ticks(5_000), servers[2]);
            world.start();
            world.run_until(SimTime::from_ticks(400_000));
            assert!(
                world.actor_ref::<ClientActor<ActiveMsg>>(client).is_done(),
                "lag {lag}: client stalled after the disaster"
            );
            let fp0 = world
                .actor_ref::<ActiveServer>(servers[0])
                .base
                .store
                .fingerprint();
            let wiped = world.actor_ref::<ActiveServer>(servers[2]);
            assert_eq!(
                wiped.base.store.fingerprint(),
                fp0,
                "lag {lag}: wiped replica did not converge"
            );
            assert_eq!(wiped.base.volume_wipes, 1);
            let tier = wiped.base.tier.as_ref().expect("tier attached");
            assert_eq!(tier.restores, 1, "lag {lag}: restore did not run");
            assert!(!tier.restoring());
            if lag == 0 {
                assert!(
                    tier.lost.is_empty(),
                    "a synchronous tier must lose nothing"
                );
            }
            let mut merged = repl_db::ReplicatedHistory::new();
            for &s in &servers {
                merged.merge(&world.actor_ref::<ActiveServer>(s).base.history);
            }
            assert!(merged.check_one_copy_serializable().is_ok());
        }
    }

    #[test]
    fn phase_skeleton_matches_figure_2() {
        let (mut world, _servers, _clients) = build(
            3,
            vec![vec![write(0, 1)]],
            AbcastImpl::Sequencer,
            ExecutionMode::Deterministic,
            4,
        );
        world.start();
        world.run_until(SimTime::from_ticks(200_000));
        let pt = crate::phase::PhaseTrace::from_trace(world.trace());
        let sk = pt.canonical().expect("an op completed");
        assert_eq!(sk.to_string(), "RE SC EX END");
    }
}
