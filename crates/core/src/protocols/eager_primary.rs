//! Eager primary copy replication (paper §4.3 Fig. 7; §5.2 Fig. 12).
//!
//! All updates execute first at the primary; the resulting log records
//! propagate to the secondaries and a 2PC decides the commit before the
//! client hears anything. Skeleton: `RE EX AC END`; with multi-operation
//! transactions the EX/AC pair loops per operation before the final 2PC
//! (`RE EX AC EX AC … END`, Fig. 12).
//!
//! Read-only transactions may execute at any site (the paper: "reading
//! transactions can be performed on any site and will always see the
//! latest version").
//!
//! Fault tolerance is the paper's hot-standby model: the primary is a
//! single point of failure, and takeover is by rank once the failure
//! detector fires (the paper's "operator intervention", mechanised).
//! Active transactions at the failed primary abort; clients re-submit.

use std::collections::{HashMap, HashSet, VecDeque};
use std::sync::Arc;

use repl_db::{
    Acquire, DeadlockPolicy, Key, Keyspace, LockManager, LockMode, RedoLog, TpcCoordinator,
    TpcDecision, Transfer, TransferStrategy, TxnId, Value, WriteSet,
};
use repl_gcs::{BatchConfig, Component, FdConfig, FdEvent, FdMsg, HeartbeatFd, Outbox};
use repl_sim::{impl_as_any, Actor, Context, Message, NodeId, SimDuration, SimTime, TimerId};
use repl_workload::OpTemplate;

use crate::client::ProtocolMsg;
use crate::op::{ClientOp, OpId, Response};
use crate::phase::Phase;
use crate::protocols::common::{global_txn, op_of_txn, ExecutionMode, ServerBase, RESTORE_TAG};

/// Wire messages of eager primary copy replication.
#[derive(Debug, Clone)]
pub enum EagerPrimaryMsg {
    /// Client → primary (any server forwards).
    Invoke(ClientOp),
    /// Primary → secondaries: one operation's log records (multi-op loop).
    Propagate {
        /// The transaction.
        txn: TxnId,
        /// Which operation of the transaction this is.
        step: u32,
        /// The log records of this step (shared across the fan-out).
        ws: Arc<WriteSet>,
    },
    /// Secondary → primary: step applied.
    PropAck {
        /// The transaction.
        txn: TxnId,
        /// The acknowledged step.
        step: u32,
    },
    /// Primary → secondaries: prepare to commit (carries the full
    /// writeset for single-operation transactions).
    Prepare {
        /// The transaction.
        txn: TxnId,
        /// The full writeset (empty if already propagated step-wise;
        /// shared across the fan-out).
        ws: Arc<WriteSet>,
        /// The response, cached by secondaries for retried clients.
        resp: Response,
    },
    /// Secondary → primary: vote.
    Vote {
        /// The transaction.
        txn: TxnId,
        /// Yes or no.
        yes: bool,
    },
    /// Primary → secondaries: global decision.
    Decision {
        /// The transaction.
        txn: TxnId,
        /// Commit or abort.
        commit: bool,
    },
    /// Primary → secondaries: one batching window's worth of commit
    /// decisions, flushed together with a single group-committed log
    /// force at the primary.
    DecisionBatch {
        /// (transaction, commit?) in decision order.
        entries: Arc<Vec<(TxnId, bool)>>,
    },
    /// Failure-detector heartbeats among servers.
    Fd(FdMsg),
    /// Server → client.
    Reply(Response),
    /// Recovering server → group: request catch-up from the carried
    /// redo-log position. Receipt doubles as proof of life: the donor
    /// re-trusts the sender so subsequent decisions reach it.
    SyncReq(u64),
    /// Donor → recovering server: log suffix or snapshot.
    SyncData(Box<Transfer>),
}

impl Message for EagerPrimaryMsg {
    fn wire_size(&self) -> usize {
        match self {
            EagerPrimaryMsg::Invoke(op) => 8 + op.wire_size(),
            EagerPrimaryMsg::Propagate { ws, .. } => 24 + ws.wire_size(),
            EagerPrimaryMsg::PropAck { .. } => 24,
            EagerPrimaryMsg::Prepare { ws, resp, .. } => 16 + ws.wire_size() + resp.wire_size(),
            EagerPrimaryMsg::Vote { .. } => 24,
            EagerPrimaryMsg::Decision { .. } => 24,
            EagerPrimaryMsg::DecisionBatch { entries } => 8 + 24 * entries.len(),
            EagerPrimaryMsg::Fd(m) => m.wire_size(),
            EagerPrimaryMsg::Reply(r) => 8 + r.wire_size(),
            EagerPrimaryMsg::SyncReq(_) => 16,
            EagerPrimaryMsg::SyncData(t) => 8 + t.wire_size(),
        }
    }
}

impl ProtocolMsg for EagerPrimaryMsg {
    fn invoke(op: ClientOp) -> Self {
        EagerPrimaryMsg::Invoke(op)
    }
    fn response(&self) -> Option<&Response> {
        match self {
            EagerPrimaryMsg::Reply(r) => Some(r),
            _ => None,
        }
    }
}

/// Where an in-flight primary-side transaction stands.
#[derive(Debug)]
enum TxnPhase {
    /// Waiting for a lock.
    LockWait,
    /// Waiting for propagation acks for `step`.
    PropWait {
        step: u32,
        awaiting: HashSet<NodeId>,
    },
    /// 2PC in progress.
    Committing(TpcCoordinator<NodeId>),
}

#[derive(Debug)]
struct PrimaryTxn {
    op: ClientOp,
    step: usize,
    reads: Vec<(Key, Value)>,
    phase: TxnPhase,
    retries: u32,
}

const MAX_WOUND_RETRIES: u32 = 25;
const FD_BASE: u64 = 1 << 40;
const DECISION_FLUSH_TAG: u64 = 0;

/// An eager-primary-copy server.
pub struct EagerPrimaryServer {
    /// Shared database/server state (public for post-run inspection).
    pub base: ServerBase,
    me: NodeId,
    servers: Vec<NodeId>,
    lm: LockManager,
    fd: HeartbeatFd,
    alive: HashSet<NodeId>,
    /// Primary-side in-flight transactions.
    inflight: HashMap<TxnId, PrimaryTxn>,
    /// Ops wounded and awaiting re-execution.
    requeue: VecDeque<(ClientOp, u32)>,
    /// Secondary-side tentative transactions (undo-able until decision).
    tentative: HashMap<TxnId, (OpId, Option<Response>)>,
    /// Primary-side redo log (public for post-run inspection); with
    /// batching on, a window's commits share one group-commit force.
    pub wal: RedoLog,
    batching: BatchConfig,
    /// Commit decisions staged during the current batching window.
    staged_decisions: Vec<(TxnId, bool)>,
    /// Client acks deferred until the window's log force.
    staged_replies: Vec<(NodeId, Response)>,
    /// Writesets awaiting the window's log force before the durable tier
    /// may see them (the tier mirrors the *flushed* stream).
    staged_notes: Vec<WriteSet>,
    /// Remembered retention cap, re-applied when a volume loss forces a
    /// fresh redo log.
    wal_retention: Option<usize>,
    flush_armed: bool,
    /// Initial post-crash sync: silent (no heartbeats, no participation)
    /// until the first catch-up transfer lands.
    recovering: bool,
    /// Filling a decision gap noticed after rejoining; participates
    /// normally while the suffix is in flight.
    resync: bool,
    marks: bool,
}

impl EagerPrimaryServer {
    /// Creates server `site` of `servers`; the initial primary is rank 0.
    pub fn new(
        site: u32,
        me: NodeId,
        servers: Vec<NodeId>,
        keyspace: impl Into<Keyspace>,
        exec: ExecutionMode,
        fd: FdConfig,
    ) -> Self {
        let ks = keyspace.into();
        EagerPrimaryServer {
            base: ServerBase::new(site, ks, exec),
            me,
            servers: servers.clone(),
            lm: LockManager::with_keyspace(DeadlockPolicy::WoundWait, ks),
            fd: HeartbeatFd::new(me, servers, fd),
            alive: HashSet::new(),
            inflight: HashMap::new(),
            requeue: VecDeque::new(),
            tentative: HashMap::new(),
            wal: RedoLog::new(),
            batching: BatchConfig::disabled(),
            staged_decisions: Vec::new(),
            staged_replies: Vec::new(),
            staged_notes: Vec::new(),
            wal_retention: None,
            flush_armed: false,
            recovering: false,
            resync: false,
            marks: site == 0,
        }
    }

    /// Sets the decision-round batching window (builder form).
    pub fn with_batching(mut self, batch: BatchConfig) -> Self {
        self.batching = batch;
        self
    }

    /// Bounds the redo-log retention at every replica: recovery requests
    /// that fall behind the truncation point get a snapshot transfer.
    pub fn set_log_retention(&mut self, retention: Option<usize>) {
        self.wal_retention = retention;
        self.wal.set_retention(retention);
    }

    /// The current primary: the lowest-ranked unsuspected server.
    pub fn primary(&self) -> NodeId {
        self.servers
            .iter()
            .copied()
            .find(|&s| !self.fd.is_suspected(s))
            .unwrap_or(self.me)
    }

    fn is_primary(&self) -> bool {
        self.primary() == self.me
    }

    fn secondaries(&self) -> Vec<NodeId> {
        self.servers
            .iter()
            .copied()
            .filter(|&s| s != self.me && !self.fd.is_suspected(s))
            .collect()
    }

    fn drive_fd(&mut self, ctx: &mut Context<'_, EagerPrimaryMsg>, out: Outbox<FdMsg, FdEvent>) {
        let events = repl_gcs::apply_outbox(ctx, out, FD_BASE, EagerPrimaryMsg::Fd);
        for ev in events {
            match ev {
                FdEvent::Suspect(n) => {
                    self.alive.remove(&n);
                    self.on_server_death(ctx, n);
                }
                FdEvent::Trust(n) => {
                    self.alive.insert(n);
                }
            }
        }
    }

    /// Reactions to a detected server crash: the primary drops the dead
    /// secondary from pending waits; secondaries of a dead primary abort
    /// its tentative transactions (the paper's takeover semantics).
    fn on_server_death(&mut self, ctx: &mut Context<'_, EagerPrimaryMsg>, dead: NodeId) {
        if dead == self.me {
            return;
        }
        // Primary: stop waiting for the dead secondary.
        let mut ids: Vec<TxnId> = self.inflight.keys().copied().collect(); // sorted-below
        ids.sort_unstable(); // map order is unspecified; resume deterministically
        for txn in ids {
            let advance = {
                let t = self.inflight.get_mut(&txn).expect("present");
                match &mut t.phase {
                    TxnPhase::PropWait { awaiting, .. } => {
                        awaiting.remove(&dead);
                        awaiting.is_empty()
                    }
                    TxnPhase::Committing(c) => c.on_vote(dead, true) == Some(TpcDecision::Commit),
                    TxnPhase::LockWait => false,
                }
            };
            if advance {
                self.resume(ctx, txn);
            }
        }
        // Secondary: if the dead server was the acting primary (every
        // lower-ranked server is also suspected), abort its tentative
        // transactions. The sim delivers a primary's decision multicast
        // atomically at event granularity, so either every secondary
        // decided or every one is still tentative — the verdicts agree.
        let was_primary = self
            .servers
            .iter()
            .take_while(|&&s| s != dead)
            .all(|&s| self.fd.is_suspected(s));
        if was_primary {
            let mut stale: Vec<TxnId> = self.tentative.keys().copied().collect(); // sorted-below
            stale.sort_unstable();
            for txn in stale {
                self.abort_tentative(txn);
            }
        }
        let _ = ctx;
    }

    fn abort_tentative(&mut self, txn: TxnId) {
        if self.tentative.remove(&txn).is_some() {
            let _ = self.base.tm.abort(&mut self.base.store, txn);
            self.base.history.purge(txn);
            self.base.aborted += 1;
        }
    }

    /// Starts or restarts a transaction at the primary.
    fn begin_txn(&mut self, ctx: &mut Context<'_, EagerPrimaryMsg>, op: ClientOp, retries: u32) {
        let txn = global_txn(op.id);
        if self.inflight.contains_key(&txn) {
            return;
        }
        if self.marks && retries == 0 {
            ctx.mark(Phase::Execution.tag(), op.id.0, 0);
        }
        self.base.tm.begin(txn);
        self.inflight.insert(
            txn,
            PrimaryTxn {
                op,
                step: 0,
                reads: Vec::new(),
                phase: TxnPhase::LockWait,
                retries,
            },
        );
        self.advance(ctx, txn);
    }

    /// Drives a primary-side transaction as far as possible.
    fn advance(&mut self, ctx: &mut Context<'_, EagerPrimaryMsg>, txn: TxnId) {
        loop {
            let Some(t) = self.inflight.get(&txn) else {
                return;
            };
            let step = t.step;
            let total = t.op.txn.ops.len();
            if step >= total {
                self.start_commit(ctx, txn);
                return;
            }
            let template = t.op.txn.ops[step];
            let (key, mode) = match template {
                OpTemplate::Read(k) => (k, LockMode::Shared),
                OpTemplate::Write(k, _) => (k, LockMode::Exclusive),
            };
            match self.lm.acquire(txn, key, mode) {
                Acquire::Granted => {}
                Acquire::Waiting { wounded } => {
                    self.inflight.get_mut(&txn).expect("present").phase = TxnPhase::LockWait;
                    for v in wounded {
                        self.wound(ctx, v);
                    }
                    return;
                }
            }
            // Lock held: execute the step.
            let secondaries = self.secondaries();
            let t = self.inflight.get_mut(&txn).expect("present");
            match template {
                OpTemplate::Read(k) => {
                    let v = self
                        .base
                        .tm
                        .read(&self.base.store, txn, k)
                        .expect("active")
                        .map_or(Value(0), |v| v.value);
                    self.base
                        .history
                        .record(self.base.site, txn, k, repl_db::AccessKind::Read);
                    t.reads.push((k, v));
                    t.step += 1;
                    // Reads propagate nothing.
                }
                OpTemplate::Write(k, v) => {
                    let v = self.base.effective_value(v);
                    let after = self
                        .base
                        .tm
                        .write(&mut self.base.store, txn, k, v)
                        .expect("active");
                    self.base
                        .history
                        .record(self.base.site, txn, k, repl_db::AccessKind::Write);
                    t.step += 1;
                    // Per-operation change propagation (Fig. 12) only for
                    // multi-operation transactions; single-op transactions
                    // piggyback the writeset on Prepare (Fig. 7).
                    if total > 1 {
                        let step_no = (t.step - 1) as u32;
                        let ws = Arc::new(WriteSet {
                            txn,
                            writes: vec![repl_db::WriteRecord {
                                key: k,
                                value: v,
                                version: after.version,
                            }],
                        });
                        if !secondaries.is_empty() {
                            if self.marks {
                                ctx.mark(
                                    Phase::AgreementCoordination.tag(),
                                    t.op.id.0,
                                    step_no as u64,
                                );
                            }
                            let awaiting: HashSet<NodeId> = secondaries.iter().copied().collect();
                            t.phase = TxnPhase::PropWait {
                                step: step_no,
                                awaiting,
                            };
                            for s in secondaries {
                                ctx.send(
                                    s,
                                    EagerPrimaryMsg::Propagate {
                                        txn,
                                        step: step_no,
                                        ws: ws.clone(),
                                    },
                                );
                            }
                            if self.marks && t.step < total {
                                // Next EX will be marked when we resume.
                            }
                            return;
                        }
                    }
                }
            }
            if self.marks {
                if let Some(t) = self.inflight.get(&txn) {
                    if t.step < total && total > 1 {
                        ctx.mark(Phase::Execution.tag(), t.op.id.0, t.step as u64);
                    }
                }
            }
        }
    }

    /// Resumes a transaction blocked on propagation acks or votes.
    fn resume(&mut self, ctx: &mut Context<'_, EagerPrimaryMsg>, txn: TxnId) {
        let Some(t) = self.inflight.get_mut(&txn) else {
            return;
        };
        match &t.phase {
            TxnPhase::PropWait { .. } => {
                if self.marks && t.step < t.op.txn.ops.len() {
                    ctx.mark(Phase::Execution.tag(), t.op.id.0, t.step as u64);
                }
                self.advance(ctx, txn);
            }
            TxnPhase::Committing(_) => self.finish_commit(ctx, txn, true),
            TxnPhase::LockWait => self.advance(ctx, txn),
        }
    }

    /// Begins the final 2PC round (Agreement Coordination).
    fn start_commit(&mut self, ctx: &mut Context<'_, EagerPrimaryMsg>, txn: TxnId) {
        let secondaries = self.secondaries();
        let t = self.inflight.get_mut(&txn).expect("present");
        let resp = Response {
            op: t.op.id,
            committed: true,
            reads: t.reads.clone(),
        };
        if self.marks {
            ctx.mark(Phase::AgreementCoordination.tag(), t.op.id.0, u64::MAX);
        }
        let single = t.op.txn.ops.len() == 1;
        let mut coord = TpcCoordinator::new(secondaries.clone());
        coord.start();
        if secondaries.is_empty() {
            t.phase = TxnPhase::Committing(coord);
            self.finish_commit(ctx, txn, true);
            return;
        }
        // For single-op transactions the Prepare carries the writeset; for
        // multi-op it was already propagated step-wise.
        let ws = if single {
            // Peek the pending writeset without committing yet.
            WriteSet {
                txn,
                writes: Vec::new(), // filled below from commit
            }
        } else {
            WriteSet::empty(txn)
        };
        let _ = ws;
        t.phase = TxnPhase::Committing(coord);
        // We commit locally at decision time; to ship the writeset for the
        // single-op case we reconstruct it from the store's pending state.
        let full_ws = Arc::new(self.pending_writeset(txn));
        let t = self.inflight.get(&txn).expect("present");
        for s in secondaries {
            ctx.send(
                s,
                EagerPrimaryMsg::Prepare {
                    txn,
                    ws: full_ws.clone(),
                    resp: resp.clone(),
                },
            );
        }
        let _ = t;
    }

    /// The writes a still-active transaction has performed so far.
    fn pending_writeset(&self, txn: TxnId) -> WriteSet {
        // The transaction manager tracks after-images; commit() would
        // consume the transaction, so reconstruct from the in-flight op.
        let Some(t) = self.inflight.get(&txn) else {
            return WriteSet::empty(txn);
        };
        let mut writes = Vec::new();
        if t.op.txn.ops.len() == 1 {
            for tpl in &t.op.txn.ops {
                if let OpTemplate::Write(k, _) = tpl {
                    if let Some(v) = self.base.store.read(*k) {
                        writes.push(repl_db::WriteRecord {
                            key: *k,
                            value: v.value,
                            version: v.version,
                        });
                    }
                }
            }
        }
        WriteSet { txn, writes }
    }

    fn finish_commit(&mut self, ctx: &mut Context<'_, EagerPrimaryMsg>, txn: TxnId, commit: bool) {
        let Some(t) = self.inflight.remove(&txn) else {
            return;
        };
        let resp = Response {
            op: t.op.id,
            committed: commit,
            reads: t.reads.clone(),
        };
        if commit {
            let ws = self
                .base
                .tm
                .commit(txn)
                .unwrap_or_else(|_| WriteSet::empty(txn));
            self.base.history.mark_committed(txn);
            self.base.committed += 1;
            self.base.remember(&resp);
            if self.batching.enabled() {
                // Group commit: stage the redo record and defer both the
                // decision round and the client ack to the window's
                // single shared log force. The durable tier waits for the
                // force too, so a volume loss can only erase unacked
                // staged commits (their cached replies are evicted).
                self.staged_notes.push(ws.clone());
                self.wal.stage(ws);
                self.staged_decisions.push((txn, commit));
                self.staged_replies.push((t.op.client, resp));
                if self.staged_decisions.len() >= self.batching.max_batch {
                    self.flush_decisions(ctx);
                } else if !self.flush_armed {
                    self.flush_armed = true;
                    ctx.set_timer(
                        SimDuration::from_ticks(self.batching.max_delay_ticks),
                        DECISION_FLUSH_TAG,
                    );
                }
            } else {
                if let Some(tier) = &mut self.base.tier {
                    tier.note_commit(&ws);
                }
                self.wal.append(ws);
                for s in self.secondaries() {
                    ctx.send(s, EagerPrimaryMsg::Decision { txn, commit });
                }
                ctx.send(t.op.client, EagerPrimaryMsg::Reply(resp));
            }
        } else {
            // Aborts are never batched: the sooner secondaries undo a
            // doomed tentative transaction, the sooner its locks clear.
            for s in self.secondaries() {
                ctx.send(s, EagerPrimaryMsg::Decision { txn, commit });
            }
            let _ = self.base.tm.abort(&mut self.base.store, txn);
            self.base.history.purge(txn);
            self.base.aborted += 1;
        }
        let granted = self.lm.release_all(txn);
        for (g, _, _) in granted {
            self.resume(ctx, g);
        }
        // Retry wounded ops.
        while let Some((op, retries)) = self.requeue.pop_front() {
            self.begin_txn(ctx, op, retries);
        }
    }

    /// Flushes the staged decision window: one shared log force, one
    /// batched decision message per secondary, then the deferred acks.
    fn flush_decisions(&mut self, ctx: &mut Context<'_, EagerPrimaryMsg>) {
        if self.staged_decisions.is_empty() {
            return;
        }
        let _ = self.wal.flush_group();
        for ws in std::mem::take(&mut self.staged_notes) {
            if let Some(tier) = &mut self.base.tier {
                tier.note_commit(&ws);
            }
        }
        let entries = Arc::new(std::mem::take(&mut self.staged_decisions));
        for s in self.secondaries() {
            ctx.send(
                s,
                EagerPrimaryMsg::DecisionBatch {
                    entries: entries.clone(),
                },
            );
        }
        for (client, resp) in std::mem::take(&mut self.staged_replies) {
            ctx.send(client, EagerPrimaryMsg::Reply(resp));
        }
    }

    /// Secondary side: applies one primary decision to a tentative
    /// transaction (shared by `Decision` and `DecisionBatch`). Returns
    /// false for a commit decision whose transaction we never saw —
    /// the writes were propagated while this server was excluded, so
    /// only a state transfer can supply them.
    fn apply_decision(&mut self, txn: TxnId, commit: bool) -> bool {
        if let Some((_, resp)) = self.tentative.remove(&txn) {
            if commit {
                let ws = self
                    .base
                    .tm
                    .commit(txn)
                    .unwrap_or_else(|_| WriteSet::empty(txn));
                // Mirror the decision stream into the local redo log so
                // any server can donate a catch-up suffix. FIFO links
                // keep the mirrored order identical to the primary's.
                if let Some(tier) = &mut self.base.tier {
                    tier.note_commit(&ws);
                }
                self.wal.append(ws);
                self.base.history.mark_committed(txn);
                self.base.committed += 1;
                if let Some(r) = resp {
                    self.base.remember(&r);
                }
            } else {
                let _ = self.base.tm.abort(&mut self.base.store, txn);
                self.base.history.purge(txn);
                self.base.aborted += 1;
            }
            true
        } else {
            !commit
        }
    }

    /// Asks `donor` for the decisions we turned out to have missed
    /// (noticed via a commit decision for an unknown transaction).
    fn request_resync(&mut self, ctx: &mut Context<'_, EagerPrimaryMsg>, donor: NodeId) {
        if !self.resync {
            self.resync = true;
            ctx.send(donor, EagerPrimaryMsg::SyncReq(self.wal.len() as u64));
        }
    }

    /// Re-enters the group after the database state is back in place
    /// (directly on crash recovery; after the restore download when a
    /// volume loss forced a rebuild from the durable tier).
    fn rejoin_now(&mut self, ctx: &mut Context<'_, EagerPrimaryMsg>) {
        if self.servers.len() == 1 {
            self.fd.reset();
            let mut out = Outbox::new();
            self.fd.on_start(&mut out);
            self.drive_fd(ctx, out);
            self.base.recovery.complete(ctx.now().ticks());
            return;
        }
        // Stay silent (no heartbeats) until the transfer lands, so the
        // acting primary keeps excluding us from 2PC cohorts meanwhile.
        self.recovering = true;
        let have = self.wal.len() as u64;
        for &s in &self.servers.clone() {
            if s != self.me {
                ctx.send(s, EagerPrimaryMsg::SyncReq(have));
            }
        }
    }

    /// Wounds (aborts and requeues) a younger transaction.
    fn wound(&mut self, ctx: &mut Context<'_, EagerPrimaryMsg>, victim: TxnId) {
        let Some(t) = self.inflight.remove(&victim) else {
            return;
        };
        for s in self.secondaries() {
            ctx.send(
                s,
                EagerPrimaryMsg::Decision {
                    txn: victim,
                    commit: false,
                },
            );
        }
        let _ = self.base.tm.abort(&mut self.base.store, victim);
        self.base.history.purge(victim);
        self.base.aborted += 1;
        let granted = self.lm.release_all(victim);
        if t.retries < MAX_WOUND_RETRIES {
            self.requeue.push_back((t.op, t.retries + 1));
        } else {
            ctx.send(
                t.op.client,
                EagerPrimaryMsg::Reply(Response::aborted(t.op.id)),
            );
        }
        for (g, _, _) in granted {
            self.resume(ctx, g);
        }
    }
}

impl Actor<EagerPrimaryMsg> for EagerPrimaryServer {
    fn on_start(&mut self, ctx: &mut Context<'_, EagerPrimaryMsg>) {
        self.alive = self.servers.iter().copied().collect();
        let mut out = Outbox::new();
        self.fd.on_start(&mut out);
        self.drive_fd(ctx, out);
    }

    fn on_message(
        &mut self,
        ctx: &mut Context<'_, EagerPrimaryMsg>,
        from: NodeId,
        msg: EagerPrimaryMsg,
    ) {
        if self.base.restoring() {
            return; // deaf until the volume restore download completes
        }
        match msg {
            EagerPrimaryMsg::Invoke(op) => {
                if let Some(resp) = self.base.cached(op.id) {
                    ctx.send(op.client, EagerPrimaryMsg::Reply(resp));
                    return;
                }
                if self.recovering {
                    return; // not a member yet; the client retries elsewhere
                }
                // Read-only transactions execute locally at any secondary —
                // unless this site holds tentative (undecided) writes, in
                // which case the read forwards to the primary to avoid
                // observing dirty data. At the primary, read-only
                // transactions go through the lock manager like any other.
                if op.is_read_only() && !self.is_primary() && self.tentative.is_empty() {
                    if self.marks {
                        ctx.mark(Phase::Execution.tag(), op.id.0, 0);
                    }
                    let txn = global_txn(op.id);
                    let mut reads = Vec::new();
                    for tpl in &op.txn.ops {
                        if let OpTemplate::Read(k) = tpl {
                            reads.push((*k, self.base.read_committed(txn, *k)));
                        }
                    }
                    self.base.history.mark_committed(txn);
                    let resp = Response {
                        op: op.id,
                        committed: true,
                        reads,
                    };
                    self.base.remember(&resp);
                    ctx.send(op.client, EagerPrimaryMsg::Reply(resp));
                    return;
                }
                if self.is_primary() {
                    let txn = global_txn(op.id);
                    if !self.inflight.contains_key(&txn)
                        && !self.requeue.iter().any(|(o, _)| o.id == op.id)
                    {
                        self.begin_txn(ctx, op, 0);
                    }
                } else {
                    let p = self.primary();
                    if p != self.me {
                        ctx.send(p, EagerPrimaryMsg::Invoke(op));
                    }
                }
            }
            EagerPrimaryMsg::Propagate { txn, step, ws } => {
                if self.recovering {
                    return; // the primary is not awaiting us while excluded
                }
                // Secondary: apply tentatively (undo-able).
                self.base.tm.begin(txn);
                for w in &ws.writes {
                    let _ = self
                        .base
                        .tm
                        .write(&mut self.base.store, txn, w.key, w.value);
                    self.base.history.record(
                        self.base.site,
                        txn,
                        w.key,
                        repl_db::AccessKind::Write,
                    );
                }
                self.tentative.entry(txn).or_insert((OpId(0), None));
                ctx.send(from, EagerPrimaryMsg::PropAck { txn, step });
            }
            EagerPrimaryMsg::PropAck { txn, step } => {
                let done = {
                    let Some(t) = self.inflight.get_mut(&txn) else {
                        return;
                    };
                    match &mut t.phase {
                        TxnPhase::PropWait { step: s, awaiting } if *s == step => {
                            awaiting.remove(&from);
                            awaiting.is_empty()
                        }
                        _ => false,
                    }
                };
                if done {
                    self.resume(ctx, txn);
                }
            }
            EagerPrimaryMsg::Prepare { txn, ws, resp } => {
                if self.recovering {
                    return; // not in this transaction's 2PC cohort
                }
                // Secondary: apply the (single-op) writeset tentatively,
                // remember the response, vote.
                self.base.tm.begin(txn);
                for w in &ws.writes {
                    let _ = self
                        .base
                        .tm
                        .write(&mut self.base.store, txn, w.key, w.value);
                    self.base.history.record(
                        self.base.site,
                        txn,
                        w.key,
                        repl_db::AccessKind::Write,
                    );
                }
                self.tentative.insert(txn, (resp.op, Some(resp)));
                ctx.send(from, EagerPrimaryMsg::Vote { txn, yes: true });
            }
            EagerPrimaryMsg::Vote { txn, yes } => {
                let decision = {
                    let Some(t) = self.inflight.get_mut(&txn) else {
                        return;
                    };
                    match &mut t.phase {
                        TxnPhase::Committing(c) => c.on_vote(from, yes),
                        _ => None,
                    }
                };
                match decision {
                    Some(TpcDecision::Commit) => self.finish_commit(ctx, txn, true),
                    Some(TpcDecision::Abort) => self.finish_commit(ctx, txn, false),
                    None => {}
                }
            }
            EagerPrimaryMsg::Decision { txn, commit } => {
                if self.recovering {
                    return; // covered by the pending state transfer
                }
                if !self.apply_decision(txn, commit) {
                    self.request_resync(ctx, from);
                }
            }
            EagerPrimaryMsg::DecisionBatch { entries } => {
                if self.recovering {
                    return;
                }
                let mut gap = false;
                for &(txn, commit) in entries.iter() {
                    gap |= !self.apply_decision(txn, commit);
                }
                if gap {
                    self.request_resync(ctx, from);
                }
            }
            EagerPrimaryMsg::Fd(m) => {
                let mut out = Outbox::new();
                self.fd.on_message(from, m, &mut out);
                self.drive_fd(ctx, out);
            }
            EagerPrimaryMsg::Reply(_) => {}
            EagerPrimaryMsg::SyncReq(have) => {
                if self.recovering || self.resync {
                    return;
                }
                // Proof of life: re-admit the requester *before* building
                // the transfer, so every decision from this instant on is
                // multicast to it — the transfer covers everything prior,
                // leaving no gap in between.
                let mut out = Outbox::new();
                self.fd.trust(from, &mut out);
                self.drive_fd(ctx, out);
                let t = if self.wal.has_suffix(have) {
                    Transfer::from_log(&self.wal, &self.base.store, have)
                } else {
                    // Snapshot fallback: roll tentative 2PC writes back so
                    // the requester only installs committed data.
                    Transfer::committed_snapshot(
                        &self.base.store,
                        &self.base.tm,
                        self.wal.len() as u64,
                    )
                };
                ctx.send(from, EagerPrimaryMsg::SyncData(Box::new(t)));
            }
            EagerPrimaryMsg::SyncData(t) => {
                let cur = self.wal.len() as u64;
                if t.high > cur {
                    self.base
                        .recovery
                        .record_transfer(t.strategy, t.wire_size() as u64);
                    match t.strategy {
                        TransferStrategy::LogSuffix => {
                            // Several donors may answer; skip the prefix an
                            // earlier (staler) transfer already installed.
                            for (i, ws) in t.entries.iter().enumerate() {
                                if t.start + i as u64 >= cur {
                                    self.base.install_writeset(ws);
                                    self.wal.append(ws.clone());
                                }
                            }
                        }
                        TransferStrategy::Snapshot => {
                            self.base.store.install_snapshot(&t.snapshot);
                            self.base.note_snapshot(&t.snapshot);
                            self.wal.skip_to(t.high);
                        }
                    }
                }
                if self.recovering {
                    self.recovering = false;
                    // Resume heartbeats only now: announcing earlier would
                    // draw 2PC traffic at a server with a stale store. The
                    // reset drops pre-crash miss counters, which would
                    // otherwise let the first tick suspect a live peer.
                    self.fd.reset();
                    let mut out = Outbox::new();
                    self.fd.on_start(&mut out);
                    self.drive_fd(ctx, out);
                }
                self.resync = false;
                self.base.recovery.complete(ctx.now().ticks());
            }
        }
    }

    fn on_timer(&mut self, ctx: &mut Context<'_, EagerPrimaryMsg>, _timer: TimerId, tag: u64) {
        // RESTORE_TAG exceeds FD_BASE, so it must be matched before the
        // range dispatch below.
        if tag == RESTORE_TAG {
            self.base.finish_restore();
            self.rejoin_now(ctx);
            return;
        }
        if self.base.restoring() {
            return;
        }
        if tag >= FD_BASE {
            let mut out = Outbox::new();
            self.fd.on_timer(tag - FD_BASE, &mut out);
            self.drive_fd(ctx, out);
        } else if tag == DECISION_FLUSH_TAG {
            self.flush_armed = false;
            self.flush_decisions(ctx);
        }
    }

    fn on_recover(&mut self, ctx: &mut Context<'_, EagerPrimaryMsg>) {
        self.base.recovery.begin(ctx.now().ticks());
        // In-flight coordination died with the process: undo every
        // tentative and primary-side transaction (clients re-submit).
        let mut stale: Vec<TxnId> = self.tentative.keys().copied().collect(); // sorted-below
        stale.sort_unstable();
        for txn in stale {
            self.abort_tentative(txn);
        }
        let mut mine: Vec<TxnId> = self.inflight.keys().copied().collect(); // sorted-below
        mine.sort_unstable();
        for txn in mine {
            self.inflight.remove(&txn);
            let _ = self.base.tm.abort(&mut self.base.store, txn);
            self.base.history.purge(txn);
            self.base.aborted += 1;
            let _ = self.lm.release_all(txn);
        }
        self.requeue.clear();
        self.staged_decisions.clear();
        self.staged_replies.clear();
        self.staged_notes.clear();
        self.flush_armed = false;
        if let Some(plan) = self.base.begin_restore(ctx.now().ticks()) {
            // The tier mirrors the flushed decision stream one-for-one,
            // so the restored cursor is a redo-log length; the log itself
            // restarts empty at that position (peers donate anything
            // earlier, exactly as after a snapshot catch-up).
            self.wal = RedoLog::new();
            self.wal.set_retention(self.wal_retention);
            self.wal.skip_to(plan.token);
            if plan.delay > 0 {
                ctx.set_timer(SimDuration::from_ticks(plan.delay), RESTORE_TAG);
                return;
            }
            self.base.finish_restore();
        }
        self.rejoin_now(ctx);
    }

    fn on_volume_loss(&mut self, now: SimTime) {
        // Staged commits never reached the log force: unacked (replies
        // were staged too) and never noted to the tier, so evict their
        // cached responses — the client must re-execute, not be told
        // "committed" about state that no longer exists anywhere here.
        for (txn, _) in &self.staged_decisions {
            self.base.cache.remove(&op_of_txn(*txn));
        }
        self.base.wipe_volume(now.ticks());
        self.lm = LockManager::with_keyspace(DeadlockPolicy::WoundWait, self.base.keyspace());
        self.inflight.clear();
        self.requeue.clear();
        self.tentative.clear();
        self.staged_decisions.clear();
        self.staged_replies.clear();
        self.staged_notes.clear();
        self.flush_armed = false;
        self.resync = false;
        self.wal = RedoLog::new();
        self.wal.set_retention(self.wal_retention);
    }

    fn on_settle(&mut self, ctx: &mut Context<'_, EagerPrimaryMsg>) {
        // The flushed redo-log length is the frame token: tier notes and
        // log entries move in lockstep on both primaries and secondaries.
        self.base.seal_now(ctx.now().ticks(), self.wal.len() as u64);
    }

    impl_as_any!();
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client::ClientActor;
    use repl_sim::{SimConfig, SimDuration, SimTime, World};
    use repl_workload::TxnTemplate;

    fn write(k: u64, v: i64) -> TxnTemplate {
        TxnTemplate {
            ops: vec![OpTemplate::Write(Key(k), Value(v))],
        }
    }
    fn read(k: u64) -> TxnTemplate {
        TxnTemplate {
            ops: vec![OpTemplate::Read(Key(k))],
        }
    }
    fn multi(ops: Vec<OpTemplate>) -> TxnTemplate {
        TxnTemplate { ops }
    }

    fn build(
        n: u32,
        txns: Vec<Vec<TxnTemplate>>,
        seed: u64,
    ) -> (World<EagerPrimaryMsg>, Vec<NodeId>, Vec<NodeId>) {
        let mut world = World::new(SimConfig::new(seed));
        let servers: Vec<NodeId> = (0..n).map(NodeId::new).collect();
        for i in 0..n {
            world.add_actor(Box::new(EagerPrimaryServer::new(
                i,
                NodeId::new(i),
                servers.clone(),
                16,
                ExecutionMode::Deterministic,
                FdConfig::default(),
            )));
        }
        let mut clients = Vec::new();
        for (c, t) in txns.into_iter().enumerate() {
            let client = ClientActor::<EagerPrimaryMsg>::new(
                c as u32,
                servers.clone(),
                0,
                t,
                SimDuration::from_ticks(100),
                SimDuration::from_ticks(20_000),
            );
            clients.push(world.add_actor(Box::new(client)));
        }
        (world, servers, clients)
    }

    #[test]
    fn single_op_commit_replicates_everywhere() {
        let (mut world, servers, clients) = build(3, vec![vec![write(1, 7), read(1)]], 1);
        world.start();
        world.run_until(SimTime::from_ticks(200_000));
        let client = world.actor_ref::<ClientActor<EagerPrimaryMsg>>(clients[0]);
        assert!(client.is_done());
        let fp0 = world
            .actor_ref::<EagerPrimaryServer>(servers[0])
            .base
            .store
            .fingerprint();
        for &s in &servers[1..] {
            assert_eq!(
                world
                    .actor_ref::<EagerPrimaryServer>(s)
                    .base
                    .store
                    .fingerprint(),
                fp0
            );
            assert_eq!(
                world
                    .actor_ref::<EagerPrimaryServer>(s)
                    .base
                    .store
                    .read(Key(1))
                    .expect("e")
                    .value,
                Value(7)
            );
        }
    }

    #[test]
    fn multi_op_transaction_propagates_per_operation() {
        let (mut world, servers, clients) = build(
            3,
            vec![vec![multi(vec![
                OpTemplate::Write(Key(0), Value(1)),
                OpTemplate::Write(Key(1), Value(2)),
                OpTemplate::Read(Key(0)),
            ])]],
            2,
        );
        world.start();
        world.run_until(SimTime::from_ticks(300_000));
        let client = world.actor_ref::<ClientActor<EagerPrimaryMsg>>(clients[0]);
        assert!(client.is_done());
        let rec = client.records.last().expect("present");
        assert_eq!(
            rec.response.as_ref().expect("r").reads,
            vec![(Key(0), Value(1))]
        );
        let fp0 = world
            .actor_ref::<EagerPrimaryServer>(servers[0])
            .base
            .store
            .fingerprint();
        for &s in &servers[1..] {
            assert_eq!(
                world
                    .actor_ref::<EagerPrimaryServer>(s)
                    .base
                    .store
                    .fingerprint(),
                fp0
            );
        }
    }

    #[test]
    fn reads_execute_at_any_site_and_see_fresh_data() {
        let (mut world, _servers, clients) = build(3, vec![vec![write(2, 5)]], 3);
        // Add a reader client attached to a secondary.
        let reader = ClientActor::<EagerPrimaryMsg>::new(
            1,
            (0..3).map(NodeId::new).collect(),
            2,
            vec![read(2)],
            SimDuration::from_ticks(3_000), // think long enough for the write to land
            SimDuration::from_ticks(20_000),
        );
        let r_id = world.add_actor(Box::new(reader));
        world.start();
        world.run_until(SimTime::from_ticks(300_000));
        let _ = clients;
        let reader = world.actor_ref::<ClientActor<EagerPrimaryMsg>>(r_id);
        assert!(reader.is_done());
        // Eager: the secondary read is allowed to run before the write
        // commits (it sees 0) or after (it sees 5) — but the site must
        // answer locally, which we verify by it having answered at all and
        // having recorded a local read.
        let resp = reader.records[0].response.as_ref().expect("responded");
        assert!(resp.committed);
    }

    #[test]
    fn contended_multi_op_transactions_remain_serializable() {
        // Two clients write the same two keys in opposite orders — the
        // classic deadlock pattern. Wound-wait must resolve it and the
        // final history must be 1SR.
        let (mut world, servers, clients) = build(
            3,
            vec![
                vec![multi(vec![
                    OpTemplate::Write(Key(0), Value(1)),
                    OpTemplate::Write(Key(1), Value(2)),
                ])],
                vec![multi(vec![
                    OpTemplate::Write(Key(1), Value(20)),
                    OpTemplate::Write(Key(0), Value(10)),
                ])],
            ],
            4,
        );
        world.start();
        world.run_until(SimTime::from_ticks(2_000_000));
        for &c in &clients {
            assert!(
                world.actor_ref::<ClientActor<EagerPrimaryMsg>>(c).is_done(),
                "client {c} stuck (deadlock?)"
            );
        }
        let mut merged = repl_db::ReplicatedHistory::new();
        for &s in &servers {
            merged.merge(&world.actor_ref::<EagerPrimaryServer>(s).base.history);
        }
        assert!(merged.check_one_copy_serializable().is_ok());
        let fp0 = world
            .actor_ref::<EagerPrimaryServer>(servers[0])
            .base
            .store
            .fingerprint();
        for &s in &servers[1..] {
            assert_eq!(
                world
                    .actor_ref::<EagerPrimaryServer>(s)
                    .base
                    .store
                    .fingerprint(),
                fp0
            );
        }
    }

    #[test]
    fn primary_crash_takeover_by_rank() {
        let (mut world, servers, clients) =
            build(3, vec![vec![write(0, 1), write(1, 2), write(2, 3)]], 5);
        world.schedule_crash(SimTime::from_ticks(1_500), servers[0]);
        world.start();
        world.run_until(SimTime::from_ticks(3_000_000));
        let client = world.actor_ref::<ClientActor<EagerPrimaryMsg>>(clients[0]);
        assert!(client.is_done(), "client stuck after primary crash");
        let s1 = world.actor_ref::<EagerPrimaryServer>(servers[1]);
        assert!(s1.is_primary() || !s1.fd.is_suspected(servers[1]));
        let fp1 = s1.base.store.fingerprint();
        let s2 = world.actor_ref::<EagerPrimaryServer>(servers[2]);
        assert_eq!(s2.base.store.fingerprint(), fp1, "survivors diverged");
    }

    #[test]
    fn batched_decisions_group_commit_and_converge() {
        // Three concurrent writers land in one decision window: the
        // primary logs every commit but shares the log force, and every
        // replica converges after the batched decision round.
        let mut world = World::new(SimConfig::new(11));
        let servers: Vec<NodeId> = (0..3).map(NodeId::new).collect();
        for i in 0..3 {
            world.add_actor(Box::new(
                EagerPrimaryServer::new(
                    i,
                    NodeId::new(i),
                    servers.clone(),
                    16,
                    ExecutionMode::Deterministic,
                    FdConfig::default(),
                )
                .with_batching(BatchConfig::window(2_000)),
            ));
        }
        let mut clients = Vec::new();
        for c in 0..3u32 {
            let client = ClientActor::<EagerPrimaryMsg>::new(
                c,
                servers.clone(),
                0,
                vec![write(u64::from(c), i64::from(c) + 1)],
                SimDuration::from_ticks(100),
                SimDuration::from_ticks(20_000),
            );
            clients.push(world.add_actor(Box::new(client)));
        }
        world.start();
        world.run_until(SimTime::from_ticks(300_000));
        for &c in &clients {
            assert!(world.actor_ref::<ClientActor<EagerPrimaryMsg>>(c).is_done());
        }
        let primary = world.actor_ref::<EagerPrimaryServer>(servers[0]);
        assert_eq!(primary.wal.len(), 3, "every commit must be logged");
        assert!(primary.wal.fsyncs() < 3, "group commit must share forces");
        let fp0 = primary.base.store.fingerprint();
        for &s in &servers[1..] {
            assert_eq!(
                world
                    .actor_ref::<EagerPrimaryServer>(s)
                    .base
                    .store
                    .fingerprint(),
                fp0
            );
        }
    }

    #[test]
    fn phase_skeleton_single_op_matches_figure_7() {
        let (mut world, _s, _c) = build(3, vec![vec![write(0, 1)]], 6);
        world.start();
        world.run_until(SimTime::from_ticks(200_000));
        let pt = crate::phase::PhaseTrace::from_trace(world.trace());
        assert_eq!(pt.canonical().expect("op done").to_string(), "RE EX AC END");
    }

    #[test]
    fn phase_skeleton_multi_op_loops_ex_ac_as_figure_12() {
        let (mut world, _s, _c) = build(
            3,
            vec![vec![multi(vec![
                OpTemplate::Write(Key(0), Value(1)),
                OpTemplate::Write(Key(1), Value(2)),
            ])]],
            7,
        );
        world.start();
        world.run_until(SimTime::from_ticks(300_000));
        let pt = crate::phase::PhaseTrace::from_trace(world.trace());
        let sk = pt.canonical().expect("op done");
        assert!(sk.has_loop(), "multi-op transaction should loop: {sk}");
        assert_eq!(sk.to_string(), "RE EX AC EX AC END");
    }
}
