//! Certification-based database replication (paper §5.4.2, Fig. 14).
//!
//! The delegate executes the whole transaction optimistically on shadow
//! copies (no locks, no coordination), then ABCASTs the transaction's
//! read set and writeset in a single message. Every site processes the
//! certification stream in the same total order and runs the *same
//! deterministic test* — commit unless a concurrently certified
//! transaction overwrote something this one read — so all sites reach the
//! same verdict with no further agreement round.
//! Skeleton: `RE EX SC AC END` (the paper's Fig. 16 folds the ABCAST and
//! the certification into one synchronisation block; we mark the ABCAST
//! as SC and the test as AC).
//!
//! The technique is optimistic: under contention it aborts instead of
//! blocking. Aborts are reported to the client, which may resubmit as a
//! fresh transaction (our closed-loop client records them; the conflicts
//! experiment sweeps the abort rate).

use std::collections::HashSet;
use std::sync::Arc;

use repl_db::{Certifier, Key, Keyspace, WriteRecord, WriteSet};
use repl_gcs::{BatchConfig, Outbox};
use repl_sim::{impl_as_any, Actor, Context, Message, NodeId, SimDuration, SimTime, TimerId};
use repl_workload::OpTemplate;

use crate::client::ProtocolMsg;
use crate::op::{ClientOp, OpId, Response};
use crate::phase::Phase;
use crate::protocols::common::{
    global_txn, settle_rejoin, AbMsg, AbcastEndpoint, AbcastImpl, ExecutionMode, ServerBase,
    RESTORE_TAG,
};
use repl_gcs::ConsensusConfig;

/// What the delegate broadcasts after optimistic execution.
#[derive(Debug, Clone)]
pub struct CertRequest {
    /// The client operation.
    pub op: ClientOp,
    /// Versions read during shadow execution.
    pub read_set: Vec<(Key, u64)>,
    /// Buffered writes (shared: broadcast clones are pointer copies).
    pub ws: Arc<WriteSet>,
    /// The response computed during shadow execution.
    pub resp: Response,
    /// The delegate (answers the client).
    pub delegate: NodeId,
}

impl Message for CertRequest {
    fn wire_size(&self) -> usize {
        self.op.wire_size() + self.read_set.len() * 16 + self.ws.wire_size() + self.resp.wire_size()
    }
}

/// Wire messages of certification-based replication.
#[derive(Debug, Clone)]
pub enum CertMsg {
    /// Client → delegate.
    Invoke(ClientOp),
    /// ABCAST traffic carrying certification requests.
    Ab(AbMsg<CertRequest>),
    /// Delegate → client.
    Reply(Response),
}

impl Message for CertMsg {
    fn wire_size(&self) -> usize {
        match self {
            CertMsg::Invoke(op) => 8 + op.wire_size(),
            CertMsg::Ab(m) => m.wire_size(),
            CertMsg::Reply(r) => 8 + r.wire_size(),
        }
    }
}

impl ProtocolMsg for CertMsg {
    fn invoke(op: ClientOp) -> Self {
        CertMsg::Invoke(op)
    }
    fn response(&self) -> Option<&Response> {
        match self {
            CertMsg::Reply(r) => Some(r),
            _ => None,
        }
    }
}

/// A certification-based replication server.
pub struct CertServer {
    /// Shared database/server state (public for post-run inspection).
    pub base: ServerBase,
    me: NodeId,
    ab: AbcastEndpoint<CertRequest>,
    /// The deterministic certification state (identical at all sites).
    pub certifier: Certifier,
    relayed: HashSet<OpId>,
    marks: bool,
}

impl CertServer {
    /// Creates server `site` of `group`.
    pub fn new(
        site: u32,
        me: NodeId,
        group: Vec<NodeId>,
        keyspace: impl Into<Keyspace>,
        exec: ExecutionMode,
        abcast: AbcastImpl,
        cons: ConsensusConfig,
    ) -> Self {
        let ks = keyspace.into();
        CertServer {
            base: ServerBase::new(site, ks, exec),
            me,
            ab: AbcastEndpoint::new(abcast, me, group, cons),
            certifier: Certifier::with_keyspace(ks),
            relayed: HashSet::new(),
            marks: site == 0,
        }
    }

    /// Sets the ordering-layer batching window (builder form).
    pub fn with_batching(mut self, batch: BatchConfig) -> Self {
        self.ab.set_batching(batch);
        self
    }

    fn drain(
        &mut self,
        ctx: &mut Context<'_, CertMsg>,
        out: Outbox<AbMsg<CertRequest>, repl_gcs::AbDeliver<CertRequest>>,
    ) {
        let deliveries = repl_gcs::apply_outbox(ctx, out, 0, CertMsg::Ab);
        for d in deliveries {
            let req = d.payload;
            let op_id = req.op.id;
            if self.base.cached(op_id).is_some() {
                continue;
            }
            if self.marks {
                ctx.mark(Phase::ServerCoordination.tag(), op_id.0, d.gseq);
                ctx.mark(Phase::AgreementCoordination.tag(), op_id.0, 0);
            }
            let verdict = self.certifier.certify(&req.read_set, &req.ws);
            let txn = global_txn(op_id);
            let resp = if verdict.is_commit() {
                // Install the writes; local versions track the certifier's
                // counters because every site applies the same stream. The
                // durable tier gets the store-assigned versions (not the
                // shadow's), so a restore reproduces them exactly.
                let mut applied = WriteSet {
                    txn,
                    writes: Vec::with_capacity(req.ws.writes.len()),
                };
                for w in &req.ws.writes {
                    let v = self.base.store.write(w.key, w.value, txn);
                    applied.writes.push(WriteRecord {
                        key: w.key,
                        value: w.value,
                        version: v.version,
                    });
                    self.base.history.record(
                        self.base.site,
                        txn,
                        w.key,
                        repl_db::AccessKind::Write,
                    );
                }
                if let Some(t) = &mut self.base.tier {
                    t.note_commit(&applied);
                }
                for &(k, _) in &req.read_set {
                    self.base
                        .history
                        .record(self.base.site, txn, k, repl_db::AccessKind::Read);
                }
                self.base.history.mark_committed(txn);
                self.base.committed += 1;
                Response {
                    committed: true,
                    ..req.resp.clone()
                }
            } else {
                self.base.aborted += 1;
                Response::aborted(op_id)
            };
            self.base.remember(&resp);
            if req.delegate == self.me {
                ctx.send(req.op.client, CertMsg::Reply(resp));
            }
        }
        settle_rejoin(&mut self.ab, &mut self.base, ctx.now().ticks());
    }

    fn rejoin_now(&mut self, ctx: &mut Context<'_, CertMsg>) {
        let mut out = Outbox::new();
        self.ab.rejoin(&mut out);
        self.drain(ctx, out);
    }
}

impl Actor<CertMsg> for CertServer {
    fn on_message(&mut self, ctx: &mut Context<'_, CertMsg>, from: NodeId, msg: CertMsg) {
        if self.base.restoring() {
            return; // deaf until the volume restore download completes
        }
        match msg {
            CertMsg::Invoke(op) => {
                if let Some(resp) = self.base.cached(op.id) {
                    ctx.send(op.client, CertMsg::Reply(resp));
                    return;
                }
                if !self.relayed.insert(op.id) {
                    return;
                }
                // Read-only transactions answer locally from committed
                // state — no broadcast, no certification (the usual
                // optimisation; their reads are snapshot-consistent at
                // this site).
                if op.is_read_only() {
                    let txn = global_txn(op.id);
                    let mut reads = Vec::new();
                    for tpl in &op.txn.ops {
                        if let OpTemplate::Read(k) = tpl {
                            reads.push((*k, self.base.read_committed(txn, *k)));
                        }
                    }
                    self.base.history.mark_committed(txn);
                    let resp = Response {
                        op: op.id,
                        committed: true,
                        reads,
                    };
                    self.base.remember(&resp);
                    ctx.send(op.client, CertMsg::Reply(resp));
                    return;
                }
                // Phase EX: optimistic shadow execution at the delegate.
                if self.marks {
                    ctx.mark(Phase::Execution.tag(), op.id.0, 0);
                }
                let txn = global_txn(op.id);
                let (read_set, ws, resp) = self.base.execute_shadow(&op, txn);
                let req = CertRequest {
                    op,
                    read_set,
                    ws: Arc::new(ws),
                    resp,
                    delegate: self.me,
                };
                let mut out = Outbox::new();
                self.ab.broadcast(req, &mut out);
                self.drain(ctx, out);
            }
            CertMsg::Ab(m) => {
                let mut out = Outbox::new();
                self.ab.on_message(from, m, &mut out);
                self.drain(ctx, out);
            }
            CertMsg::Reply(_) => {}
        }
    }

    fn on_timer(&mut self, ctx: &mut Context<'_, CertMsg>, _timer: TimerId, tag: u64) {
        if tag == RESTORE_TAG {
            self.base.finish_restore();
            self.rejoin_now(ctx);
            return;
        }
        if self.base.restoring() {
            return;
        }
        let mut out = Outbox::new();
        self.ab.on_timer(tag, &mut out);
        self.drain(ctx, out);
    }

    fn on_recover(&mut self, ctx: &mut Context<'_, CertMsg>) {
        // Certification state only advances with the ordered stream, so
        // recovery is a full replay of the missed suffix — a snapshot
        // would leave the certifier's version counters behind and make
        // later verdicts diverge across sites.
        self.base.recovery.begin(ctx.now().ticks());
        if let Some(plan) = self.base.begin_restore(ctx.now().ticks()) {
            // The certifier died with the volume. Store versions track
            // certifier counters one-for-one, so the restored store is
            // exactly the certification state at the durable token;
            // verdicts for the replayed suffix then match the group's.
            // (The commit/abort tallies restart — only verdicts must
            // survive a disaster, and the report counts client-side.)
            for (k, v) in self.base.store.snapshot() {
                if let Some(by) = v.writer {
                    self.certifier.restore_version(k, v.version, by);
                }
            }
            self.ab.rewind_to(plan.token);
            if plan.delay > 0 {
                ctx.set_timer(SimDuration::from_ticks(plan.delay), RESTORE_TAG);
                return;
            }
            self.base.finish_restore();
        }
        self.rejoin_now(ctx);
    }

    fn on_volume_loss(&mut self, now: SimTime) {
        self.base.wipe_volume(now.ticks());
        self.certifier = Certifier::with_keyspace(self.base.keyspace());
    }

    fn on_settle(&mut self, ctx: &mut Context<'_, CertMsg>) {
        self.base.seal_now(ctx.now().ticks(), self.ab.position());
    }

    impl_as_any!();
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client::ClientActor;
    use repl_db::Value;
    use repl_sim::{SimConfig, SimDuration, SimTime, World};
    use repl_workload::TxnTemplate;

    fn rmw(k: u64, v: i64) -> TxnTemplate {
        TxnTemplate {
            ops: vec![
                OpTemplate::Read(Key(k)),
                OpTemplate::Write(Key(k), Value(v)),
            ],
        }
    }
    fn write(k: u64, v: i64) -> TxnTemplate {
        TxnTemplate {
            ops: vec![OpTemplate::Write(Key(k), Value(v))],
        }
    }

    fn build(
        n: u32,
        txns: Vec<Vec<TxnTemplate>>,
        seed: u64,
    ) -> (World<CertMsg>, Vec<NodeId>, Vec<NodeId>) {
        let mut world = World::new(SimConfig::new(seed));
        let servers: Vec<NodeId> = (0..n).map(NodeId::new).collect();
        for i in 0..n {
            world.add_actor(Box::new(CertServer::new(
                i,
                NodeId::new(i),
                servers.clone(),
                16,
                ExecutionMode::Deterministic,
                AbcastImpl::Sequencer,
                ConsensusConfig::default(),
            )));
        }
        let mut clients = Vec::new();
        for (c, t) in txns.into_iter().enumerate() {
            let client = ClientActor::<CertMsg>::new(
                c as u32,
                servers.clone(),
                c % n as usize,
                t,
                SimDuration::from_ticks(100),
                SimDuration::from_ticks(20_000),
            );
            clients.push(world.add_actor(Box::new(client)));
        }
        (world, servers, clients)
    }

    #[test]
    fn non_conflicting_transactions_all_commit() {
        let (mut world, servers, clients) = build(
            3,
            vec![vec![rmw(0, 1)], vec![rmw(5, 2)], vec![rmw(10, 3)]],
            1,
        );
        world.start();
        world.run_until(SimTime::from_ticks(300_000));
        for &c in &clients {
            let client = world.actor_ref::<ClientActor<CertMsg>>(c);
            assert!(client.is_done());
            assert!(client.records[0].committed());
        }
        let fp0 = world
            .actor_ref::<CertServer>(servers[0])
            .base
            .store
            .fingerprint();
        for &s in &servers[1..] {
            assert_eq!(
                world.actor_ref::<CertServer>(s).base.store.fingerprint(),
                fp0
            );
        }
    }

    #[test]
    fn concurrent_conflicting_rmws_one_aborts_identically_everywhere() {
        // Two read-modify-writes of the same key from different delegates,
        // overlapping in time: whichever certifies second read a stale
        // version and must abort — at every site.
        let (mut world, servers, clients) = build(2, vec![vec![rmw(0, 111)], vec![rmw(0, 222)]], 2);
        world.start();
        world.run_until(SimTime::from_ticks(300_000));
        let mut verdicts = Vec::new();
        for &c in &clients {
            let client = world.actor_ref::<ClientActor<CertMsg>>(c);
            assert!(client.is_done());
            verdicts.push(client.records[0].committed());
        }
        assert_eq!(
            verdicts.iter().filter(|&&v| v).count(),
            1,
            "exactly one of the conflicting transactions commits: {verdicts:?}"
        );
        // Certifier agreement across sites.
        let stats0 = world.actor_ref::<CertServer>(servers[0]).certifier.stats();
        let stats1 = world.actor_ref::<CertServer>(servers[1]).certifier.stats();
        assert_eq!(stats0, stats1);
        assert_eq!(stats0, (1, 1));
        let fp0 = world
            .actor_ref::<CertServer>(servers[0])
            .base
            .store
            .fingerprint();
        assert_eq!(
            world
                .actor_ref::<CertServer>(servers[1])
                .base
                .store
                .fingerprint(),
            fp0
        );
    }

    #[test]
    fn blind_writes_never_abort() {
        let (mut world, servers, clients) = build(
            3,
            vec![vec![write(0, 1)], vec![write(0, 2)], vec![write(0, 3)]],
            3,
        );
        world.start();
        world.run_until(SimTime::from_ticks(300_000));
        for &c in &clients {
            assert!(world.actor_ref::<ClientActor<CertMsg>>(c).records[0].committed());
        }
        let fp0 = world
            .actor_ref::<CertServer>(servers[0])
            .base
            .store
            .fingerprint();
        for &s in &servers[1..] {
            assert_eq!(
                world.actor_ref::<CertServer>(s).base.store.fingerprint(),
                fp0
            );
        }
    }

    #[test]
    fn committed_history_is_one_copy_serializable() {
        let (mut world, servers, _clients) = build(
            3,
            vec![
                vec![rmw(0, 1), rmw(1, 2)],
                vec![rmw(1, 20), rmw(0, 10)],
                vec![rmw(2, 30)],
            ],
            4,
        );
        world.start();
        world.run_until(SimTime::from_ticks(1_000_000));
        let mut merged = repl_db::ReplicatedHistory::new();
        for &s in &servers {
            merged.merge(&world.actor_ref::<CertServer>(s).base.history);
        }
        merged
            .check_one_copy_serializable()
            .expect("certification must keep committed history 1SR");
    }

    #[test]
    fn phase_skeleton_matches_figure_14() {
        let (mut world, _s, _c) = build(3, vec![vec![rmw(0, 1)]], 5);
        world.start();
        world.run_until(SimTime::from_ticks(300_000));
        let pt = crate::phase::PhaseTrace::from_trace(world.trace());
        assert_eq!(
            pt.canonical().expect("op done").to_string(),
            "RE EX SC AC END",
            "optimistic execution precedes the ordering"
        );
    }
}
