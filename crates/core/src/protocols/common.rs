//! Shared plumbing for the protocol implementations: the server base
//! (store + transaction manager + history + response cache), the unified
//! Atomic Broadcast endpoint, and execution-mode handling.

use repl_db::{
    AccessKind, FxHashMap, Key, Keyspace, RecoveryTracker, ReplicatedHistory, ShadowStore, Store,
    Transfer, TransferStrategy, TxnId, TxnManager, Value, Versioned, WriteRecord, WriteSet,
};
use repl_gcs::{
    AbDeliver, BatchConfig, CAbMsg, ConsensusAbcast, ConsensusConfig, MsgId, Outbox, SeqAbMsg,
    SequencerAbcast,
};
use repl_sim::{Message, NodeId};

use crate::durability::{DurabilityConfig, DurabilityTier, RestorePlan};
use crate::op::{accesses, ClientOp, OpId, Response};

/// Timer tag of the restore-download completion, shared by every
/// protocol. Far outside all protocol and component tag spaces.
pub const RESTORE_TAG: u64 = u64::MAX - 0xD15A;

/// Whether servers execute deterministically.
///
/// The paper's central distributed-systems contrast (Sections 3.2–3.4)
/// hinges on this assumption. `NonDeterministic` models scheduling
/// divergence: each site perturbs written values in a site-specific way,
/// so replicas that execute independently visibly diverge — unless a
/// leader imposes its choice (semi-active) or only one site executes
/// (passive and the primary-copy techniques).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ExecutionMode {
    /// Same input, same order ⇒ same output.
    #[default]
    Deterministic,
    /// Site-dependent execution results.
    NonDeterministic,
}

/// Which Atomic Broadcast implementation to use (ablation A2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum AbcastImpl {
    /// Fixed sequencer: cheapest, not crash-tolerant.
    #[default]
    Sequencer,
    /// Consensus-based: tolerates any minority of crashes.
    Consensus,
}

/// Unified wire message for either ABCAST implementation.
#[derive(Debug, Clone)]
pub enum AbMsg<P> {
    /// Sequencer-based traffic.
    Seq(SeqAbMsg<P>),
    /// Consensus-based traffic.
    Cons(CAbMsg<P>),
}

impl<P: Message> Message for AbMsg<P> {
    fn wire_size(&self) -> usize {
        match self {
            AbMsg::Seq(m) => m.wire_size(),
            AbMsg::Cons(m) => m.wire_size(),
        }
    }
}

/// An Atomic Broadcast endpoint backed by either implementation.
#[derive(Debug)]
pub enum AbcastEndpoint<P> {
    /// Fixed-sequencer endpoint.
    Seq(SequencerAbcast<P>),
    /// Consensus-based endpoint.
    Cons(ConsensusAbcast<P>),
}

impl<P: Message> AbcastEndpoint<P> {
    /// Creates an endpoint of the requested flavour. `cons` configures the
    /// consensus variant (its round timeout must exceed the network RTT).
    pub fn new(which: AbcastImpl, me: NodeId, group: Vec<NodeId>, cons: ConsensusConfig) -> Self {
        match which {
            AbcastImpl::Sequencer => AbcastEndpoint::Seq(SequencerAbcast::new(me, group)),
            AbcastImpl::Consensus => AbcastEndpoint::Cons(ConsensusAbcast::new(me, group, cons)),
        }
    }

    /// Sets the batching window on the underlying implementation.
    pub fn set_batching(&mut self, batch: BatchConfig) {
        match self {
            AbcastEndpoint::Seq(a) => a.set_batching(batch),
            AbcastEndpoint::Cons(a) => a.set_batching(batch),
        }
    }

    /// Broadcasts a payload; returns its id.
    pub fn broadcast(&mut self, p: P, out: &mut Outbox<AbMsg<P>, AbDeliver<P>>) -> MsgId {
        match self {
            AbcastEndpoint::Seq(a) => {
                let mut sub = Outbox::new();
                let id = a.broadcast(p, &mut sub);
                for e in out.absorb(sub, 0, AbMsg::Seq) {
                    out.event(e);
                }
                id
            }
            AbcastEndpoint::Cons(a) => {
                let mut sub = Outbox::new();
                let id = a.broadcast(p, &mut sub);
                for e in out.absorb(sub, 0, AbMsg::Cons) {
                    out.event(e);
                }
                id
            }
        }
    }

    /// Routes an incoming message (mismatched flavours are ignored).
    pub fn on_message(
        &mut self,
        from: NodeId,
        msg: AbMsg<P>,
        out: &mut Outbox<AbMsg<P>, AbDeliver<P>>,
    ) {
        match (self, msg) {
            (AbcastEndpoint::Seq(a), AbMsg::Seq(m)) => {
                let mut sub = Outbox::new();
                repl_gcs::Component::on_message(a, from, m, &mut sub);
                for e in out.absorb(sub, 0, AbMsg::Seq) {
                    out.event(e);
                }
            }
            (AbcastEndpoint::Cons(a), AbMsg::Cons(m)) => {
                let mut sub = Outbox::new();
                repl_gcs::Component::on_message(a, from, m, &mut sub);
                for e in out.absorb(sub, 0, AbMsg::Cons) {
                    out.event(e);
                }
            }
            _ => {}
        }
    }

    /// Re-enters the ordered stream after a crash: asks the group to
    /// refill the missed suffix and re-arms the implementation's timers.
    /// Completion is signalled through [`AbcastEndpoint::take_rejoin_done`].
    pub fn rejoin(&mut self, out: &mut Outbox<AbMsg<P>, AbDeliver<P>>) {
        match self {
            AbcastEndpoint::Seq(a) => {
                let mut sub = Outbox::new();
                a.rejoin(&mut sub);
                for e in out.absorb(sub, 0, AbMsg::Seq) {
                    out.event(e);
                }
            }
            AbcastEndpoint::Cons(a) => {
                let mut sub = Outbox::new();
                a.rejoin(&mut sub);
                for e in out.absorb(sub, 0, AbMsg::Cons) {
                    out.event(e);
                }
            }
        }
    }

    /// Takes the completed-rejoin notification, if one fired since the
    /// last call: the number of refill bytes received.
    pub fn take_rejoin_done(&mut self) -> Option<u64> {
        match self {
            AbcastEndpoint::Seq(a) => a.take_rejoin_done(),
            AbcastEndpoint::Cons(a) => a.take_rejoin_done(),
        }
    }

    /// The endpoint's ordered-stream position: the next global sequence
    /// (or consensus instance) it will deliver — the durable tier's
    /// frame token for ABCAST-driven protocols.
    pub fn position(&self) -> u64 {
        match self {
            AbcastEndpoint::Seq(a) => a.position(),
            AbcastEndpoint::Cons(a) => a.position(),
        }
    }

    /// Rewinds the delivery cursor to `pos` after a volume restore, so
    /// the next [`AbcastEndpoint::rejoin`] replays everything the wiped
    /// volume lost. A no-op if the stream is at or before `pos`.
    pub fn rewind_to(&mut self, pos: u64) {
        match self {
            AbcastEndpoint::Seq(a) => a.rewind_to(pos),
            AbcastEndpoint::Cons(a) => a.rewind_to(pos),
        }
    }

    /// Routes a timer with a component-local tag.
    pub fn on_timer(&mut self, tag: u64, out: &mut Outbox<AbMsg<P>, AbDeliver<P>>) {
        match self {
            AbcastEndpoint::Seq(a) => {
                let mut sub = Outbox::new();
                repl_gcs::Component::on_timer(a, tag, &mut sub);
                for e in out.absorb(sub, 0, AbMsg::Seq) {
                    out.event(e);
                }
            }
            AbcastEndpoint::Cons(a) => {
                let mut sub = Outbox::new();
                repl_gcs::Component::on_timer(a, tag, &mut sub);
                for e in out.absorb(sub, 0, AbMsg::Cons) {
                    out.event(e);
                }
            }
        }
    }
}

/// State every replica server shares: the database kernel pieces plus
/// duplicate suppression and execution statistics.
#[derive(Debug)]
pub struct ServerBase {
    /// This site's index (dense, 0-based).
    pub site: u32,
    /// This site's physical copies.
    pub store: Store,
    /// This site's transaction manager.
    pub tm: TxnManager,
    /// This site's recorded execution history.
    pub history: ReplicatedHistory,
    /// Responses already produced, for exactly-once retries.
    pub cache: FxHashMap<OpId, Response>,
    /// Execution mode (determinism injection).
    pub exec: ExecutionMode,
    /// Transactions committed at this site.
    pub committed: u64,
    /// Transactions aborted at this site.
    pub aborted: u64,
    /// Crash-recovery accounting (rejoin time, transfer bytes).
    pub recovery: RecoveryTracker,
    /// Durable log tier (None reproduces pre-tier behaviour exactly).
    pub tier: Option<DurabilityTier>,
    /// Volume-loss disasters survived by this server.
    pub volume_wipes: u64,
    /// Set by an untiered wipe; a restore-from-scratch is pending.
    bare_wipe: bool,
    /// Lean mode: skip the per-operation history records and the
    /// response cache. Both grow linearly with the number of operations,
    /// which is fine for the oracle-checked studies but rules out
    /// million-operation open-loop runs; the aggregated open-loop driver
    /// never retries (no duplicate suppression needed) and does not run
    /// the history oracles, so both can be dropped wholesale.
    lean: bool,
}

impl ServerBase {
    /// Creates a server base over the given keyspace (a bare item count
    /// converts to a dense keyspace), all items initialised to 0.
    pub fn new(site: u32, keyspace: impl Into<Keyspace>, exec: ExecutionMode) -> Self {
        let ks = keyspace.into();
        ServerBase {
            site,
            store: Store::with_keyspace(ks, Value(0)),
            tm: TxnManager::new(),
            history: ReplicatedHistory::new(),
            cache: FxHashMap::default(),
            exec,
            committed: 0,
            aborted: 0,
            recovery: RecoveryTracker::default(),
            tier: None,
            volume_wipes: 0,
            bare_wipe: false,
            lean: false,
        }
    }

    /// Switches lean mode on or off (see the `lean` field). Off by
    /// default; every pre-existing path is byte-identical with it off.
    ///
    /// The switch is forwarded into the history itself: protocols append
    /// through `base.history.record(..)` at many call sites (reconcile
    /// paths, ordered-delivery replays), and gating inside the history
    /// covers them all without touching each protocol.
    pub fn set_lean(&mut self, lean: bool) {
        self.lean = lean;
        self.history.set_recording(!lean);
    }

    /// True when the server skips history recording and response caching.
    pub fn is_lean(&self) -> bool {
        self.lean
    }

    /// Attaches a durable log tier (no-op when `cfg` is disabled).
    /// `fsync_ticks` is the local fsync cost charged when a restored
    /// suffix is replayed into the recovering node's redo log.
    pub fn set_durability(&mut self, cfg: &DurabilityConfig, fsync_ticks: u64) {
        if cfg.enabled {
            self.tier = Some(DurabilityTier::new(cfg, self.keyspace(), fsync_ticks));
        }
    }

    /// Seals the commits of the event just processed into a durable
    /// frame at stream/log position `token`. Protocols call this from
    /// their settle hook; a no-op without a tier or without new commits.
    pub fn seal_now(&mut self, now: u64, token: u64) {
        if let Some(t) = &mut self.tier {
            t.seal(now, token);
        }
    }

    /// A volume-loss disaster: erases the store, transaction manager and
    /// recorded history, evicts the cached responses of every commit the
    /// durable tier lost (those ops must re-execute when the group
    /// replays them), and arms the restore. Without a tier the entire
    /// cache is evicted — everything must replay from the group.
    pub fn wipe_volume(&mut self, now: u64) {
        match &mut self.tier {
            Some(t) => {
                for ws in t.wipe(now) {
                    self.cache.remove(&op_of_txn(ws.txn));
                }
            }
            None => {
                self.cache.clear();
                self.bare_wipe = true;
            }
        }
        self.volume_wipes += 1;
        let ks = self.keyspace();
        self.store = Store::with_keyspace(ks, Value(0));
        self.tm = TxnManager::new();
        self.history = ReplicatedHistory::new();
        self.history.set_recording(!self.lean);
    }

    /// Starts the restore of a wiped volume, if one is pending: installs
    /// the durable snapshot and suffix (through the normal transfer
    /// accounting), rebuilds the folded history, and returns the plan
    /// the protocol must finish — rewind to `plan.token`, stay deaf for
    /// `plan.delay` ticks, then rejoin. `None` on a normal crash
    /// recovery. Untiered wipes restore from scratch (token 0, no
    /// delay): the whole group history replays through the rejoin path.
    pub fn begin_restore(&mut self, now: u64) -> Option<RestorePlan> {
        if self.tier.is_some() {
            let planned = self.tier.as_mut().and_then(|t| t.plan_restore(now));
            let (restore, plan) = planned?;
            if let Some(s) = &restore.snapshot {
                self.install_transfer(s);
            }
            if let Some(s) = &restore.suffix {
                self.install_transfer(s);
            }
            for (txn, keys) in &restore.folded_history {
                for k in keys {
                    self.history.record(self.site, *txn, *k, AccessKind::Write);
                }
                self.history.mark_committed(*txn);
            }
            Some(plan)
        } else if self.bare_wipe {
            self.bare_wipe = false;
            Some(RestorePlan {
                token: 0,
                start: 0,
                high: 0,
                entries: Vec::new(),
                delay: 0,
            })
        } else {
            None
        }
    }

    /// Ends the restore's deaf window; the tier resumes sealing.
    pub fn finish_restore(&mut self) {
        if let Some(t) = &mut self.tier {
            t.finish_restore();
        }
    }

    /// True while a restore download is in flight (the node is deaf).
    pub fn restoring(&self) -> bool {
        self.tier.as_ref().is_some_and(|t| t.restoring())
    }

    /// The keyspace this server's kernel structures are built for.
    pub fn keyspace(&self) -> Keyspace {
        self.store.keyspace()
    }

    /// The value actually written for a requested write, after the
    /// execution-mode perturbation.
    pub fn effective_value(&self, v: Value) -> Value {
        match self.exec {
            ExecutionMode::Deterministic => v,
            ExecutionMode::NonDeterministic => Value(v.0 * 1_000 + self.site as i64),
        }
    }

    /// Executes a whole client transaction locally and commits it,
    /// recording history. Returns the writeset and the client response.
    pub fn execute_commit(&mut self, op: &ClientOp, txn: TxnId) -> (WriteSet, Response) {
        self.tm.begin(txn);
        let mut reads: Vec<(Key, Value)> = Vec::new();
        for (key, write) in accesses(&op.txn) {
            match write {
                None => {
                    let v = self
                        .tm
                        .read(&self.store, txn, key)
                        .expect("txn is active")
                        .map_or(Value(0), |v| v.value);
                    if !self.lean {
                        self.history.record(self.site, txn, key, AccessKind::Read);
                    }
                    reads.push((key, v));
                }
                Some(v) => {
                    let v = self.effective_value(v);
                    self.tm
                        .write(&mut self.store, txn, key, v)
                        .expect("txn is active");
                    if !self.lean {
                        self.history.record(self.site, txn, key, AccessKind::Write);
                    }
                }
            }
        }
        let ws = self.tm.commit(txn).expect("txn is active");
        if !self.lean {
            self.history.mark_committed(txn);
        }
        self.committed += 1;
        if let Some(t) = &mut self.tier {
            t.note_commit(&ws);
        }
        let resp = Response {
            op: op.id,
            committed: true,
            reads,
        };
        (ws, resp)
    }

    /// Executes a transaction on shadow copies (no store mutation),
    /// returning the read set (versions), the writeset and the response.
    pub fn execute_shadow(
        &mut self,
        op: &ClientOp,
        txn: TxnId,
    ) -> (Vec<(Key, u64)>, WriteSet, Response) {
        let mut shadow = ShadowStore::new(&self.store, txn);
        let mut reads: Vec<(Key, Value)> = Vec::new();
        let mut writes: Vec<(Key, Value)> = Vec::new();
        for (key, write) in accesses(&op.txn) {
            match write {
                None => {
                    let v = shadow.read(key).map_or(Value(0), |v| v.value);
                    reads.push((key, v));
                }
                Some(v) => {
                    writes.push((key, v));
                    shadow.write(key, self.effective_value(v));
                }
            }
        }
        let _ = writes;
        let read_set = shadow.read_set().to_vec();
        let ws = shadow.into_writeset();
        let resp = Response {
            op: op.id,
            committed: true,
            reads,
        };
        (read_set, ws, resp)
    }

    /// Installs a replicated writeset (no re-execution), recording history.
    pub fn install_writeset(&mut self, ws: &WriteSet) {
        if !self.lean {
            for w in &ws.writes {
                self.history
                    .record(self.site, ws.txn, w.key, AccessKind::Write);
            }
            self.history.mark_committed(ws.txn);
        }
        self.store.apply_writeset(ws);
        self.committed += 1;
        if let Some(t) = &mut self.tier {
            t.note_commit(ws);
        }
    }

    /// Installs a recovery state transfer and records its accounting.
    /// Log suffixes go through the normal writeset-install path so the
    /// recorded history stays aligned with live installs; snapshots
    /// replace the store wholesale (the missed transactions are not
    /// attributable individually). Returns the donor's watermark.
    pub fn install_transfer(&mut self, t: &Transfer) -> u64 {
        self.recovery
            .record_transfer(t.strategy, t.wire_size() as u64);
        match t.strategy {
            TransferStrategy::LogSuffix => {
                for ws in &t.entries {
                    self.install_writeset(ws);
                }
            }
            TransferStrategy::Snapshot => {
                self.store.install_snapshot(&t.snapshot);
                self.note_snapshot(&t.snapshot);
            }
        }
        t.high
    }

    /// Re-protects snapshot contents in the durable tier: a snapshot
    /// fast-forwards past entries the tier never saw, and a later
    /// disaster must not restore a store with that hole. Each key
    /// becomes a one-record writeset under its real writer, so loss
    /// attribution and history folding hold. (During a tier restore
    /// `note_commit` is a no-op — the installed state is already
    /// durable.)
    pub fn note_snapshot(&mut self, snapshot: &[(Key, Versioned)]) {
        if self.tier.is_none() {
            return;
        }
        for (k, v) in snapshot {
            if let Some(writer) = v.writer {
                let ws = WriteSet {
                    txn: writer,
                    writes: vec![WriteRecord {
                        key: *k,
                        value: v.value,
                        version: v.version,
                    }],
                };
                if let Some(tier) = &mut self.tier {
                    tier.note_commit(&ws);
                }
            }
        }
    }

    /// Reads a single key outside any transaction (lazy/stale reads),
    /// recording history under the given transaction id.
    pub fn read_committed(&mut self, txn: TxnId, key: Key) -> Value {
        if !self.lean {
            self.history.record(self.site, txn, key, AccessKind::Read);
        }
        self.store.read(key).map_or(Value(0), |v| v.value)
    }

    /// Looks up a cached response for duplicate suppression.
    pub fn cached(&self, op: OpId) -> Option<Response> {
        self.cache.get(&op).cloned()
    }

    /// Caches a response (a no-op in lean mode — the open-loop driver
    /// never retries, so duplicate suppression has nothing to suppress).
    pub fn remember(&mut self, resp: &Response) {
        if !self.lean {
            self.cache.insert(resp.op, resp.clone());
        }
    }
}

/// Polls the ABCAST endpoint for a completed rejoin and closes the
/// server's recovery window: the refilled ordered-stream bytes count as
/// a log-suffix transfer (the order log *is* the group's shared log).
/// Call after every endpoint interaction; no-op outside a recovery.
pub fn settle_rejoin<P: Message>(ab: &mut AbcastEndpoint<P>, base: &mut ServerBase, now: u64) {
    if let Some(bytes) = ab.take_rejoin_done() {
        if bytes > 0 {
            base.recovery
                .record_transfer(TransferStrategy::LogSuffix, bytes);
        }
        base.recovery.complete(now);
    }
}

/// A transaction id derived from an operation id, stable across client
/// retries (so a restarted transaction keeps its age, which is what makes
/// wound-wait starvation-free). The per-client sequence number dominates
/// the age order so that, under closed-loop clients, age roughly tracks
/// submission time instead of privileging low-numbered clients.
pub fn txn_for_op(op: OpId, site: u32) -> TxnId {
    TxnId::new(((op.seq() as u64) << 20) | op.client() as u64, site)
}

/// The site-independent transaction id of an operation: every replica
/// executing (or installing) the same client operation uses the same
/// transaction id, so cross-site histories line up for the one-copy-
/// serializability checker.
pub fn global_txn(op: OpId) -> TxnId {
    txn_for_op(op, op.client())
}

/// Inverts [`txn_for_op`]/[`global_txn`]: recovers the operation id from a
/// transaction id (used to attribute late, post-response phase marks of
/// lazy techniques to the right operation).
pub fn op_of_txn(txn: TxnId) -> OpId {
    let seq = (txn.ts >> 20) as u32;
    let client = (txn.ts & 0xF_FFFF) as u32;
    OpId::compose(client, seq)
}

#[cfg(test)]
mod tests {
    use super::*;
    use repl_sim::NodeId;
    use repl_workload::{OpTemplate, TxnTemplate};

    fn op(id: u64, ops: Vec<OpTemplate>) -> ClientOp {
        ClientOp {
            id: OpId(id),
            client: NodeId::new(99),
            txn: TxnTemplate { ops },
        }
    }

    #[test]
    fn execute_commit_reads_and_writes() {
        let mut base = ServerBase::new(0, 4, ExecutionMode::Deterministic);
        let o = op(
            1,
            vec![
                OpTemplate::Write(Key(1), Value(5)),
                OpTemplate::Read(Key(1)),
            ],
        );
        let (ws, resp) = base.execute_commit(&o, TxnId::new(1, 0));
        assert_eq!(ws.writes.len(), 1);
        assert_eq!(resp.reads, vec![(Key(1), Value(5))]);
        assert!(resp.committed);
        assert_eq!(base.committed, 1);
        assert_eq!(base.store.read(Key(1)).expect("exists").value, Value(5));
    }

    #[test]
    fn nondeterministic_mode_perturbs_per_site() {
        let mut s0 = ServerBase::new(0, 2, ExecutionMode::NonDeterministic);
        let mut s1 = ServerBase::new(1, 2, ExecutionMode::NonDeterministic);
        let o = op(1, vec![OpTemplate::Write(Key(0), Value(5))]);
        s0.execute_commit(&o, TxnId::new(1, 0));
        s1.execute_commit(&o, TxnId::new(1, 1));
        assert_ne!(
            s0.store.read(Key(0)).expect("exists").value,
            s1.store.read(Key(0)).expect("exists").value,
            "independent execution must diverge"
        );
        assert_ne!(s0.store.fingerprint(), s1.store.fingerprint());
    }

    #[test]
    fn shadow_execution_leaves_store_untouched() {
        let mut base = ServerBase::new(0, 2, ExecutionMode::Deterministic);
        let fp = base.store.fingerprint();
        let o = op(
            2,
            vec![
                OpTemplate::Read(Key(0)),
                OpTemplate::Write(Key(1), Value(9)),
            ],
        );
        let (read_set, ws, resp) = base.execute_shadow(&o, TxnId::new(2, 0));
        assert_eq!(base.store.fingerprint(), fp);
        assert_eq!(read_set, vec![(Key(0), 0)]);
        assert_eq!(ws.writes.len(), 1);
        assert!(resp.committed);
    }

    #[test]
    fn install_writeset_converges_replicas() {
        let mut a = ServerBase::new(0, 2, ExecutionMode::Deterministic);
        let mut b = ServerBase::new(1, 2, ExecutionMode::Deterministic);
        let o = op(3, vec![OpTemplate::Write(Key(0), Value(7))]);
        let (ws, _) = a.execute_commit(&o, TxnId::new(3, 0));
        b.install_writeset(&ws);
        assert_eq!(a.store.fingerprint(), b.store.fingerprint());
        assert_eq!(b.committed, 1);
    }

    #[test]
    fn cache_roundtrip() {
        let mut base = ServerBase::new(0, 1, ExecutionMode::Deterministic);
        assert!(base.cached(OpId(9)).is_none());
        let resp = Response::committed(OpId(9));
        base.remember(&resp);
        assert_eq!(base.cached(OpId(9)), Some(resp));
    }

    #[test]
    fn lean_mode_skips_history_and_cache_but_not_state() {
        let mut lean = ServerBase::new(0, 4, ExecutionMode::Deterministic);
        lean.set_lean(true);
        assert!(lean.is_lean());
        let o = op(1, vec![OpTemplate::Write(Key(1), Value(5))]);
        let (ws, resp) = lean.execute_commit(&o, TxnId::new(1, 0));
        lean.remember(&resp);
        assert!(lean.cached(o.id).is_none(), "lean cache stays empty");
        assert!(lean.history.committed().is_empty(), "lean history stays empty");
        assert_eq!(lean.committed, 1);
        // The store state itself is identical to a non-lean execution.
        let mut full = ServerBase::new(1, 4, ExecutionMode::Deterministic);
        full.install_writeset(&ws);
        assert_eq!(lean.store.fingerprint(), full.store.fingerprint());
        let _ = lean.read_committed(TxnId::new(2, 0), Key(1));
        assert!(lean.history.committed().is_empty());
    }

    #[test]
    fn txn_ids_align_with_submission_order() {
        let a = txn_for_op(OpId::compose(0, 5), 0);
        let b = txn_for_op(OpId::compose(0, 6), 1);
        assert!(a.is_older_than(b));
        // Same sequence number across clients: earlier rounds dominate.
        let c = txn_for_op(OpId::compose(7, 5), 0);
        let d = txn_for_op(OpId::compose(0, 6), 0);
        assert!(
            c.is_older_than(d),
            "round 5 of any client is older than round 6"
        );
        // Retrying the same op yields the same age.
        assert_eq!(
            txn_for_op(OpId::compose(1, 2), 3),
            txn_for_op(OpId::compose(1, 2), 3)
        );
    }
}
