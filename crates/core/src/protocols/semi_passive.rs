//! Semi-passive replication (paper §3.5).
//!
//! A variant of passive replication that needs no view machinery: server
//! coordination and agreement coordination fold into a single run of
//! *consensus with deferred initial values*. For each slot, the first-
//! ranked server executes the pending request and proposes the resulting
//! update; lower-ranked servers defer — they execute and propose only
//! after a suspicion delay, so in the failure-free case exactly one
//! server pays the execution (like passive replication) while crashes
//! cost only an aggressive timeout, not a view change.
//!
//! Skeleton: `RE EX AC END`.

use std::collections::BTreeMap;

use repl_db::{Keyspace, RedoLog, Transfer, TransferStrategy, WriteSet};
use repl_gcs::{
    ConsEvent, ConsMsg, ConsensusConfig, ConsensusPool, FdConfig, FdEvent, FdMsg, HeartbeatFd,
    Outbox,
};
use repl_sim::{impl_as_any, Actor, Context, Message, NodeId, SimDuration, SimTime, TimerId};

use crate::client::ProtocolMsg;
use crate::op::{ClientOp, OpId, Response};
use crate::phase::Phase;
use crate::protocols::common::{global_txn, ExecutionMode, ServerBase, RESTORE_TAG};

/// What a deferred coordinator proposes for a slot: the operation it
/// picked, the update its execution produced, and the client response.
#[derive(Debug, Clone)]
pub struct Proposal {
    /// The chosen operation.
    pub op: ClientOp,
    /// The update to install everywhere.
    pub ws: WriteSet,
    /// The response to hand to the client.
    pub resp: Response,
}

impl Message for Proposal {
    fn wire_size(&self) -> usize {
        op_size(&self.op) + self.ws.wire_size() + self.resp.wire_size()
    }
}

fn op_size(op: &ClientOp) -> usize {
    op.wire_size()
}

/// Timer-tag base of the embedded consensus pool; slot-deferral timers use
/// tags below it.
const CONS_BASE: u64 = 1 << 40;
/// Timer-tag base of the embedded failure detector (the paper: semi-passive
/// allows "aggressive time-outs … to suspect crashed processes" — the
/// deferral rank adapts to suspicions instead of paying the delay forever).
const FD_BASE: u64 = 2 << 40;

/// Wire messages of semi-passive replication.
#[derive(Debug, Clone)]
pub enum SemiPassiveMsg {
    /// Client → contact server.
    Invoke(ClientOp),
    /// Contact server → all servers (request dissemination).
    Fwd(ClientOp),
    /// Consensus traffic.
    Cons(ConsMsg<Proposal>),
    /// Failure-detector heartbeats.
    Fd(FdMsg),
    /// Server → client.
    Reply(Response),
    /// Recovering server → group: request catch-up from the carried
    /// decision-log position.
    SyncReq(u64),
    /// Live server → recovering server: log suffix or snapshot.
    SyncData(Box<Transfer>),
}

impl Message for SemiPassiveMsg {
    fn wire_size(&self) -> usize {
        match self {
            SemiPassiveMsg::Invoke(op) | SemiPassiveMsg::Fwd(op) => 8 + op.wire_size(),
            SemiPassiveMsg::Cons(c) => 8 + c.wire_size(),
            SemiPassiveMsg::Fd(m) => m.wire_size(),
            SemiPassiveMsg::Reply(r) => 8 + r.wire_size(),
            SemiPassiveMsg::SyncReq(_) => 16,
            SemiPassiveMsg::SyncData(t) => 8 + t.wire_size(),
        }
    }
}

impl ProtocolMsg for SemiPassiveMsg {
    fn invoke(op: ClientOp) -> Self {
        SemiPassiveMsg::Invoke(op)
    }
    fn response(&self) -> Option<&Response> {
        match self {
            SemiPassiveMsg::Reply(r) => Some(r),
            _ => None,
        }
    }
}

/// A semi-passive replication server.
pub struct SemiPassiveServer {
    /// Shared database/server state (public for post-run inspection).
    pub base: ServerBase,
    group: Vec<NodeId>,
    rank: usize,
    defer: SimDuration,
    pool: ConsensusPool<Proposal>,
    fd: HeartbeatFd,
    pending: BTreeMap<OpId, ClientOp>,
    decided: BTreeMap<u64, Proposal>,
    next_slot: u64,
    /// Slot we have armed a deferral timer or proposed for.
    engaged_slot: Option<u64>,
    /// Decided writesets in slot order (slot == log index), so live
    /// servers can donate a catch-up suffix to a recovering peer.
    wal: RedoLog,
    /// Waiting for the first catch-up reply after a crash.
    recovering: bool,
    /// Remembered retention cap, re-applied when a volume loss forces a
    /// fresh decision log.
    wal_retention: Option<usize>,
    marks: bool,
}

impl SemiPassiveServer {
    /// Creates server `site` of `group`; `defer` is the per-rank deferral
    /// step (rank r waits `r × defer` before executing a slot itself).
    pub fn new(
        site: u32,
        me: NodeId,
        group: Vec<NodeId>,
        keyspace: impl Into<Keyspace>,
        exec: ExecutionMode,
        defer: SimDuration,
        cons: ConsensusConfig,
    ) -> Self {
        let rank = group.iter().position(|&n| n == me).expect("member");
        SemiPassiveServer {
            base: ServerBase::new(site, keyspace, exec),
            group: group.clone(),
            rank,
            defer,
            pool: ConsensusPool::new(me, group.clone(), cons),
            fd: HeartbeatFd::new(me, group, FdConfig::default()),
            pending: BTreeMap::new(),
            decided: BTreeMap::new(),
            next_slot: 0,
            engaged_slot: None,
            wal: RedoLog::new(),
            recovering: false,
            wal_retention: None,
            marks: site == 0,
        }
    }

    /// Caps the decision log's retention (`None` = unbounded). A finite
    /// cap forces snapshot transfers for peers that fall behind the
    /// truncation point.
    pub fn set_log_retention(&mut self, max_entries: Option<usize>) {
        self.wal_retention = max_entries;
        self.wal.set_retention(max_entries);
    }

    /// The effective deferral rank: servers suspected by our failure
    /// detector no longer count ahead of us.
    fn effective_rank(&self) -> usize {
        self.group[..self.rank]
            .iter()
            .filter(|&&s| !self.fd.is_suspected(s))
            .count()
    }

    fn engage(&mut self, ctx: &mut Context<'_, SemiPassiveMsg>) {
        if self.recovering || self.pending.is_empty() || self.engaged_slot == Some(self.next_slot) {
            return;
        }
        self.engaged_slot = Some(self.next_slot);
        let rank = self.effective_rank();
        if rank == 0 {
            self.execute_and_propose(ctx);
        } else {
            // Deferred initial value: only execute if the slot is still
            // undecided after our rank's suspicion delay.
            ctx.set_timer(self.defer.times(rank as u64), self.next_slot);
        }
    }

    fn drive_fd(&mut self, ctx: &mut Context<'_, SemiPassiveMsg>, out: Outbox<FdMsg, FdEvent>) {
        let events = repl_gcs::apply_outbox(ctx, out, FD_BASE, SemiPassiveMsg::Fd);
        for ev in events {
            if let FdEvent::Suspect(_) = ev {
                // A predecessor died: if we are now first in line for the
                // current slot, act immediately instead of waiting out the
                // deferral timer.
                if self.effective_rank() == 0
                    && !self.pending.is_empty()
                    && self.engaged_slot == Some(self.next_slot)
                {
                    self.execute_and_propose(ctx);
                }
            }
        }
    }

    fn execute_and_propose(&mut self, ctx: &mut Context<'_, SemiPassiveMsg>) {
        let Some((_, op)) = self.pending.iter().next() else {
            return;
        };
        let op = op.clone();
        if self.marks {
            ctx.mark(Phase::Execution.tag(), op.id.0, 0);
        }
        let txn = global_txn(op.id);
        let (_rs, ws, resp) = self.base.execute_shadow(&op, txn);
        let mut out = Outbox::new();
        self.pool
            .propose(self.next_slot, Proposal { op, ws, resp }, &mut out);
        let events = repl_gcs::apply_outbox(ctx, out, CONS_BASE, SemiPassiveMsg::Cons);
        self.handle_decisions(ctx, events);
    }

    fn handle_decisions(
        &mut self,
        ctx: &mut Context<'_, SemiPassiveMsg>,
        events: Vec<ConsEvent<Proposal>>,
    ) {
        for ev in events {
            let ConsEvent::Decided { inst, value } = ev;
            self.decided.insert(inst, value);
        }
        let mut progressed = false;
        while let Some(p) = self.decided.remove(&self.next_slot) {
            progressed = true;
            self.next_slot += 1;
            self.engaged_slot = None;
            self.pending.remove(&p.op.id);
            // Mirror every decision so wal index == slot, even for
            // duplicate decision content (keeps donor watermarks exact).
            self.wal.append(p.ws.clone());
            if self.base.cached(p.op.id).is_some() {
                continue; // already installed (duplicate decision content)
            }
            if self.marks {
                ctx.mark(Phase::AgreementCoordination.tag(), p.op.id.0, 0);
            }
            self.base.install_writeset(&p.ws);
            self.base.remember(&p.resp);
            ctx.send(p.op.client, SemiPassiveMsg::Reply(p.resp));
        }
        if progressed {
            self.engage(ctx);
        }
    }

    /// Re-enters the group after the database state is back in place
    /// (directly on crash recovery; after the restore download when a
    /// volume loss forced a rebuild from the durable tier).
    fn rejoin_now(&mut self, ctx: &mut Context<'_, SemiPassiveMsg>) {
        // Timers died with the process: restart heartbeats, dropping
        // pre-crash miss counters so the first tick cannot suspect a
        // live peer on stale evidence.
        self.fd.reset();
        let mut out = Outbox::new();
        repl_gcs::Component::on_start(&mut self.fd, &mut out);
        self.drive_fd(ctx, out);
        // Pending requests may have been decided while we were down;
        // clients re-forward anything genuinely unanswered.
        self.pending.clear();
        self.engaged_slot = None;
        if self.group.len() == 1 {
            let mut out = Outbox::new();
            self.pool.resume(&mut out);
            let events = repl_gcs::apply_outbox(ctx, out, CONS_BASE, SemiPassiveMsg::Cons);
            self.handle_decisions(ctx, events);
            self.base.recovery.complete(ctx.now().ticks());
            return;
        }
        self.recovering = true;
        for &m in &self.group.clone() {
            if m != ctx.me() {
                ctx.send(m, SemiPassiveMsg::SyncReq(self.next_slot));
            }
        }
    }
}

impl Actor<SemiPassiveMsg> for SemiPassiveServer {
    fn on_start(&mut self, ctx: &mut Context<'_, SemiPassiveMsg>) {
        let mut out = Outbox::new();
        repl_gcs::Component::on_start(&mut self.fd, &mut out);
        self.drive_fd(ctx, out);
    }

    fn on_message(
        &mut self,
        ctx: &mut Context<'_, SemiPassiveMsg>,
        from: NodeId,
        msg: SemiPassiveMsg,
    ) {
        if self.base.restoring() {
            return; // deaf until the volume restore download completes
        }
        match msg {
            SemiPassiveMsg::Invoke(op) => {
                if let Some(resp) = self.base.cached(op.id) {
                    ctx.send(op.client, SemiPassiveMsg::Reply(resp));
                    return;
                }
                if self.recovering || self.pending.contains_key(&op.id) {
                    return;
                }
                self.pending.insert(op.id, op.clone());
                for &m in &self.group.clone() {
                    if m != ctx.me() {
                        ctx.send(m, SemiPassiveMsg::Fwd(op.clone()));
                    }
                }
                self.engage(ctx);
            }
            SemiPassiveMsg::Fwd(op) => {
                if !self.recovering
                    && self.base.cached(op.id).is_none()
                    && !self.pending.contains_key(&op.id)
                {
                    self.pending.insert(op.id, op);
                    self.engage(ctx);
                }
            }
            SemiPassiveMsg::Cons(c) => {
                let mut out = Outbox::new();
                repl_gcs::Component::on_message(&mut self.pool, from, c, &mut out);
                let events = repl_gcs::apply_outbox(ctx, out, CONS_BASE, SemiPassiveMsg::Cons);
                self.handle_decisions(ctx, events);
            }
            SemiPassiveMsg::Fd(m) => {
                let mut out = Outbox::new();
                repl_gcs::Component::on_message(&mut self.fd, from, m, &mut out);
                self.drive_fd(ctx, out);
            }
            SemiPassiveMsg::Reply(_) => {}
            SemiPassiveMsg::SyncReq(have) => {
                if !self.recovering {
                    let t = Transfer::from_log(&self.wal, &self.base.store, have);
                    ctx.send(from, SemiPassiveMsg::SyncData(Box::new(t)));
                }
            }
            SemiPassiveMsg::SyncData(t) => {
                if !self.recovering {
                    return;
                }
                self.recovering = false;
                let high = self.base.install_transfer(&t);
                match t.strategy {
                    TransferStrategy::LogSuffix => {
                        for ws in &t.entries {
                            self.wal.append(ws.clone());
                        }
                    }
                    TransferStrategy::Snapshot => self.wal.skip_to(high),
                }
                self.next_slot = self.next_slot.max(high);
                self.decided = self.decided.split_off(&self.next_slot);
                self.engaged_slot = None;
                self.base.recovery.complete(ctx.now().ticks());
                // Re-enter any instance still undecided group-wide, then
                // start working the backlog again.
                let mut out = Outbox::new();
                self.pool.resume(&mut out);
                let events = repl_gcs::apply_outbox(ctx, out, CONS_BASE, SemiPassiveMsg::Cons);
                self.handle_decisions(ctx, events);
                self.engage(ctx);
            }
        }
    }

    fn on_timer(&mut self, ctx: &mut Context<'_, SemiPassiveMsg>, _timer: TimerId, tag: u64) {
        // RESTORE_TAG exceeds FD_BASE, so it must be matched before the
        // range dispatch below.
        if tag == RESTORE_TAG {
            self.base.finish_restore();
            self.rejoin_now(ctx);
            return;
        }
        if self.base.restoring() {
            return;
        }
        if tag >= FD_BASE {
            let mut out = Outbox::new();
            repl_gcs::Component::on_timer(&mut self.fd, tag - FD_BASE, &mut out);
            self.drive_fd(ctx, out);
        } else if tag >= CONS_BASE {
            let mut out = Outbox::new();
            repl_gcs::Component::on_timer(&mut self.pool, tag - CONS_BASE, &mut out);
            let events = repl_gcs::apply_outbox(ctx, out, CONS_BASE, SemiPassiveMsg::Cons);
            self.handle_decisions(ctx, events);
        } else {
            // Deferral timer for a slot: execute only if still undecided.
            if tag == self.next_slot && !self.pending.is_empty() {
                self.execute_and_propose(ctx);
            }
        }
    }

    fn on_recover(&mut self, ctx: &mut Context<'_, SemiPassiveMsg>) {
        self.base.recovery.begin(ctx.now().ticks());
        if let Some(plan) = self.base.begin_restore(ctx.now().ticks()) {
            // The durable tier cannot reconstruct the slot-indexed
            // decision log (duplicate decisions are logged but never
            // noted), so treat the restore like a snapshot catch-up: an
            // empty log based at the restored cursor. Earlier suffixes
            // are simply donated by peers instead of us.
            self.wal = RedoLog::new();
            self.wal.set_retention(self.wal_retention);
            self.wal.skip_to(plan.token);
            self.next_slot = plan.token;
            self.decided.clear();
            if plan.delay > 0 {
                ctx.set_timer(SimDuration::from_ticks(plan.delay), RESTORE_TAG);
                return;
            }
            self.base.finish_restore();
        }
        self.rejoin_now(ctx);
    }

    fn on_volume_loss(&mut self, now: SimTime) {
        self.base.wipe_volume(now.ticks());
        self.wal = RedoLog::new();
        self.wal.set_retention(self.wal_retention);
        self.pending.clear();
        self.decided.clear();
        self.engaged_slot = None;
        self.next_slot = 0;
    }

    fn on_settle(&mut self, ctx: &mut Context<'_, SemiPassiveMsg>) {
        // The slot cursor is the frame token: a restore resumes exactly
        // at the next undecided slot the sealed state reflects.
        self.base.seal_now(ctx.now().ticks(), self.next_slot);
    }

    impl_as_any!();
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client::ClientActor;
    use repl_db::{Key, Value};
    use repl_sim::{SimConfig, SimTime, World};
    use repl_workload::{OpTemplate, TxnTemplate};

    fn write(k: u64, v: i64) -> TxnTemplate {
        TxnTemplate {
            ops: vec![OpTemplate::Write(Key(k), Value(v))],
        }
    }
    fn read(k: u64) -> TxnTemplate {
        TxnTemplate {
            ops: vec![OpTemplate::Read(Key(k))],
        }
    }

    fn build(
        n: u32,
        txns: Vec<Vec<TxnTemplate>>,
        exec: ExecutionMode,
        seed: u64,
    ) -> (World<SemiPassiveMsg>, Vec<NodeId>, Vec<NodeId>) {
        let mut world = World::new(SimConfig::new(seed));
        let servers: Vec<NodeId> = (0..n).map(NodeId::new).collect();
        for i in 0..n {
            world.add_actor(Box::new(SemiPassiveServer::new(
                i,
                NodeId::new(i),
                servers.clone(),
                16,
                exec,
                SimDuration::from_ticks(3_000),
                ConsensusConfig::default(),
            )));
        }
        let mut clients = Vec::new();
        for (c, t) in txns.into_iter().enumerate() {
            let client = ClientActor::<SemiPassiveMsg>::new(
                c as u32,
                servers.clone(),
                c % n as usize,
                t,
                SimDuration::from_ticks(100),
                SimDuration::from_ticks(25_000),
            );
            clients.push(world.add_actor(Box::new(client)));
        }
        (world, servers, clients)
    }

    #[test]
    fn failure_free_only_rank_zero_executes() {
        let (mut world, servers, clients) = build(
            3,
            vec![vec![write(0, 1), write(1, 2), read(0)]],
            ExecutionMode::NonDeterministic,
            1,
        );
        world.start();
        world.run_until(SimTime::from_ticks(500_000));
        assert!(world
            .actor_ref::<ClientActor<SemiPassiveMsg>>(clients[0])
            .is_done());
        // Stores converge even with non-deterministic servers: only the
        // coordinator's execution counts.
        let fp0 = world
            .actor_ref::<SemiPassiveServer>(servers[0])
            .base
            .store
            .fingerprint();
        for &s in &servers[1..] {
            assert_eq!(
                world
                    .actor_ref::<SemiPassiveServer>(s)
                    .base
                    .store
                    .fingerprint(),
                fp0
            );
        }
    }

    #[test]
    fn coordinator_crash_deferred_backup_takes_over() {
        let (mut world, servers, clients) = build(
            3,
            vec![vec![write(0, 1), write(1, 2)]],
            ExecutionMode::Deterministic,
            2,
        );
        world.schedule_crash(SimTime::from_ticks(200), servers[0]);
        world.start();
        world.run_until(SimTime::from_ticks(3_000_000));
        let client = world.actor_ref::<ClientActor<SemiPassiveMsg>>(clients[0]);
        assert!(client.is_done(), "client stuck after coordinator crash");
        let fp1 = world
            .actor_ref::<SemiPassiveServer>(servers[1])
            .base
            .store
            .fingerprint();
        let fp2 = world
            .actor_ref::<SemiPassiveServer>(servers[2])
            .base
            .store
            .fingerprint();
        assert_eq!(fp1, fp2);
        assert_eq!(
            world
                .actor_ref::<SemiPassiveServer>(servers[1])
                .base
                .store
                .read(Key(1))
                .expect("exists")
                .value,
            Value(2)
        );
    }

    #[test]
    fn concurrent_clients_agree_on_one_order() {
        let (mut world, servers, clients) = build(
            3,
            vec![
                vec![write(0, 1), write(1, 2)],
                vec![write(0, 10), write(1, 20)],
            ],
            ExecutionMode::Deterministic,
            3,
        );
        world.start();
        world.run_until(SimTime::from_ticks(1_000_000));
        for &c in &clients {
            assert!(world.actor_ref::<ClientActor<SemiPassiveMsg>>(c).is_done());
        }
        let fp0 = world
            .actor_ref::<SemiPassiveServer>(servers[0])
            .base
            .store
            .fingerprint();
        for &s in &servers[1..] {
            assert_eq!(
                world
                    .actor_ref::<SemiPassiveServer>(s)
                    .base
                    .store
                    .fingerprint(),
                fp0
            );
        }
        let mut merged = repl_db::ReplicatedHistory::new();
        for &s in &servers {
            merged.merge(&world.actor_ref::<SemiPassiveServer>(s).base.history);
        }
        assert!(merged.check_one_copy_serializable().is_ok());
    }

    #[test]
    fn phase_skeleton_is_re_ex_ac_end() {
        let (mut world, _s, _c) =
            build(3, vec![vec![write(0, 1)]], ExecutionMode::Deterministic, 4);
        world.start();
        world.run_until(SimTime::from_ticks(500_000));
        let pt = crate::phase::PhaseTrace::from_trace(world.trace());
        assert_eq!(pt.canonical().expect("op done").to_string(), "RE EX AC END");
    }
}
