//! The ten replication techniques of the paper, each as a simulated
//! protocol over the `repl-sim`/`repl-gcs`/`repl-db` substrates.
//!
//! | module | technique | paper |
//! |---|---|---|
//! | [`active`] | active replication | §3.2, Fig. 2 |
//! | [`passive`] | passive replication (primary-backup, VSCAST) | §3.3, Fig. 3 |
//! | [`semi_active`] | semi-active replication | §3.4, Fig. 4 |
//! | [`semi_passive`] | semi-passive replication | §3.5 |
//! | [`eager_primary`] | eager primary copy (+ §5.2 transactions) | §4.3, Figs. 7/12 |
//! | [`eager_ue_lock`] | eager update everywhere, distributed locking (+ §5.4.1) | §4.4.1, Figs. 8/13 |
//! | [`eager_ue_abcast`] | eager update everywhere, ABCAST | §4.4.2, Fig. 9 |
//! | [`lazy_primary`] | lazy primary copy | §4.5, Fig. 10 |
//! | [`lazy_ue`] | lazy update everywhere + reconciliation | §4.6, Fig. 11 |
//! | [`certification`] | certification-based replication | §5.4.2, Fig. 14 |

pub mod active;
pub mod certification;
pub mod common;
pub mod eager_primary;
pub mod eager_ue_abcast;
pub mod eager_ue_lock;
pub mod lazy_primary;
pub mod lazy_ue;
pub mod passive;
pub mod semi_active;
pub mod semi_passive;
