//! Passive replication — primary-backup over VSCAST (paper §3.3, Fig. 3).
//!
//! The primary executes every request (no determinism needed), then
//! broadcasts the resulting update view-synchronously; backups apply the
//! writeset without re-executing. The response is sent once the backups
//! of the current view have acknowledged — the paper's Agreement
//! Coordination phase. Skeleton: `RE EX AC END`.
//!
//! On a primary crash the view change both elects the next primary and
//! flushes in-flight updates: an update either reaches all surviving
//! backups (and the cached response answers the client's retry) or none
//! (and the retry re-executes at the new primary) — never half.

use std::collections::{HashMap, HashSet};

use repl_db::{Keyspace, Transfer, WriteSet};
use repl_gcs::{Outbox, ViewGroup, VsConfig, VsEvent, VsMsg};
use repl_sim::{impl_as_any, Actor, Context, Message, NodeId, SimDuration, SimTime, TimerId};

use crate::client::ProtocolMsg;
use crate::op::{ClientOp, OpId, Response};
use crate::phase::Phase;
use crate::protocols::common::{global_txn, ExecutionMode, ServerBase, RESTORE_TAG};

/// The update a primary ships to its backups.
#[derive(Debug, Clone)]
pub struct Update {
    /// The client operation this update came from.
    pub op: OpId,
    /// The redo records to install.
    pub ws: WriteSet,
    /// The response the primary computed (cached by backups so a new
    /// primary can answer retries after failover).
    pub resp: Response,
}

impl Message for Update {
    fn wire_size(&self) -> usize {
        8 + self.ws.wire_size() + self.resp.wire_size()
    }
}

/// Wire messages of passive replication.
#[derive(Debug, Clone)]
pub enum PassiveMsg {
    /// Client → primary (or any replica, which forwards).
    Invoke(ClientOp),
    /// View-synchronous group traffic.
    Vs(VsMsg<Update>),
    /// Backup → primary: update applied.
    Ack {
        /// The acknowledged operation.
        op: OpId,
    },
    /// Primary → client.
    Reply(Response),
    /// Recovering replica → group: request db-level state transfer.
    RecoverReq,
    /// Live member → recovering replica: the state transfer (boxed —
    /// snapshots dwarf the other variants).
    RecoverData(Box<Transfer>),
}

impl Message for PassiveMsg {
    fn wire_size(&self) -> usize {
        match self {
            PassiveMsg::Invoke(op) => 8 + op.wire_size(),
            PassiveMsg::Vs(m) => 8 + m.wire_size(),
            PassiveMsg::Ack { .. } => 16,
            PassiveMsg::Reply(r) => 8 + r.wire_size(),
            PassiveMsg::RecoverReq => 8,
            PassiveMsg::RecoverData(t) => 8 + t.wire_size(),
        }
    }
}

impl ProtocolMsg for PassiveMsg {
    fn invoke(op: ClientOp) -> Self {
        PassiveMsg::Invoke(op)
    }
    fn response(&self) -> Option<&Response> {
        match self {
            PassiveMsg::Reply(r) => Some(r),
            _ => None,
        }
    }
}

#[derive(Debug)]
struct PendingAck {
    client: NodeId,
    resp: Response,
    awaiting: HashSet<NodeId>,
}

/// A passive-replication server (primary or backup, depending on the
/// current view).
pub struct PassiveServer {
    /// Shared database/server state (public for post-run inspection).
    pub base: ServerBase,
    me: NodeId,
    group: Vec<NodeId>,
    vg: ViewGroup<Update>,
    pending: HashMap<OpId, PendingAck>,
    /// Waiting for the first state-transfer reply after a crash.
    recovering: bool,
}

impl PassiveServer {
    /// Creates server `site` of `group`; the initial primary is the
    /// lowest-id member.
    pub fn new(
        site: u32,
        me: NodeId,
        group: Vec<NodeId>,
        keyspace: impl Into<Keyspace>,
        exec: ExecutionMode,
        vs: VsConfig,
    ) -> Self {
        PassiveServer {
            base: ServerBase::new(site, keyspace, exec),
            me,
            vg: ViewGroup::new(me, group.clone(), vs),
            group,
            pending: HashMap::new(),
            recovering: false,
        }
    }

    /// The primary of the currently installed view.
    pub fn primary(&self) -> NodeId {
        self.vg.view().primary()
    }

    fn is_primary(&self) -> bool {
        self.primary() == self.me && !self.vg.is_excluded()
    }

    fn drive(
        &mut self,
        ctx: &mut Context<'_, PassiveMsg>,
        out: Outbox<VsMsg<Update>, VsEvent<Update>>,
    ) {
        let events = repl_gcs::apply_outbox(ctx, out, 0, PassiveMsg::Vs);
        for ev in events {
            match ev {
                VsEvent::Deliver { from, payload, .. } => {
                    if from == self.me {
                        continue; // the primary already executed it
                    }
                    // Backup path: install without re-execution, cache the
                    // response for failover, acknowledge.
                    if self.base.cached(payload.op).is_none() {
                        self.base.install_writeset(&payload.ws);
                        self.base.remember(&payload.resp);
                    }
                    ctx.send(from, PassiveMsg::Ack { op: payload.op });
                }
                VsEvent::ViewInstalled(view) => {
                    // Back in a view after a crash: recovery is over.
                    if self.base.recovery.is_recovering() && view.contains(self.me) {
                        self.base.recovery.complete(ctx.now().ticks());
                    }
                    // Crashed backups no longer owe acks.
                    let members: HashSet<NodeId> = view.members.iter().copied().collect();
                    let mut done: Vec<OpId> = Vec::new();
                    for (op, p) in self.pending.iter_mut() {
                        p.awaiting.retain(|n| members.contains(n));
                        if p.awaiting.is_empty() {
                            done.push(*op);
                        }
                    }
                    // Map iteration order is unspecified; reply in op order
                    // so runs stay deterministic.
                    done.sort_unstable();
                    for op in done {
                        self.finish(ctx, op);
                    }
                }
                VsEvent::Excluded(_) => {
                    self.pending.clear();
                }
            }
        }
    }

    fn finish(&mut self, ctx: &mut Context<'_, PassiveMsg>, op: OpId) {
        if let Some(p) = self.pending.remove(&op) {
            ctx.send(p.client, PassiveMsg::Reply(p.resp));
        }
    }

    fn execute_as_primary(&mut self, ctx: &mut Context<'_, PassiveMsg>, op: ClientOp) {
        ctx.mark(Phase::Execution.tag(), op.id.0, 0);
        let (ws, resp) = self.base.execute_commit(&op, global_txn(op.id));
        self.base.remember(&resp);
        ctx.mark(Phase::AgreementCoordination.tag(), op.id.0, 0);
        let backups: HashSet<NodeId> = self
            .vg
            .view()
            .members
            .iter()
            .copied()
            .filter(|&n| n != self.me)
            .collect();
        let update = Update {
            op: op.id,
            ws,
            resp: resp.clone(),
        };
        let mut out = Outbox::new();
        self.vg.broadcast(update, &mut out);
        self.drive(ctx, out);
        if backups.is_empty() {
            ctx.send(op.client, PassiveMsg::Reply(resp));
        } else {
            self.pending.insert(
                op.id,
                PendingAck {
                    client: op.client,
                    resp,
                    awaiting: backups,
                },
            );
        }
    }

    fn rejoin_now(&mut self, ctx: &mut Context<'_, PassiveMsg>) {
        if self.group.len() == 1 {
            let mut out = Outbox::new();
            self.vg.rejoin(&mut out);
            self.drive(ctx, out);
            self.base.recovery.complete(ctx.now().ticks());
            return;
        }
        self.recovering = true;
        for &n in &self.group {
            if n != self.me {
                ctx.send(n, PassiveMsg::RecoverReq);
            }
        }
    }
}

impl Actor<PassiveMsg> for PassiveServer {
    fn on_start(&mut self, ctx: &mut Context<'_, PassiveMsg>) {
        let mut out = Outbox::new();
        repl_gcs::Component::on_start(&mut self.vg, &mut out);
        self.drive(ctx, out);
    }

    fn on_message(&mut self, ctx: &mut Context<'_, PassiveMsg>, from: NodeId, msg: PassiveMsg) {
        if self.base.restoring() {
            return; // deaf until the volume restore download completes
        }
        match msg {
            PassiveMsg::Invoke(op) => {
                if let Some(resp) = self.base.cached(op.id) {
                    ctx.send(op.client, PassiveMsg::Reply(resp));
                    return;
                }
                if self.recovering || self.vg.is_joining() {
                    return; // stale view; let the client retry elsewhere
                }
                if self.is_primary() {
                    if !self.pending.contains_key(&op.id) {
                        self.execute_as_primary(ctx, op);
                    }
                } else {
                    // Not the primary: forward (replication stays
                    // transparent to the client's addressing).
                    let primary = self.primary();
                    if primary != self.me {
                        ctx.send(primary, PassiveMsg::Invoke(op));
                    }
                }
            }
            PassiveMsg::Vs(m) => {
                let mut out = Outbox::new();
                repl_gcs::Component::on_message(&mut self.vg, from, m, &mut out);
                self.drive(ctx, out);
            }
            PassiveMsg::Ack { op } => {
                if let Some(p) = self.pending.get_mut(&op) {
                    p.awaiting.remove(&from);
                    if p.awaiting.is_empty() {
                        self.finish(ctx, op);
                    }
                }
            }
            PassiveMsg::Reply(_) => {}
            PassiveMsg::RecoverReq => {
                // Any live in-view member donates; the requester keeps
                // the first reply. Always a snapshot: passive backups
                // hold no redo log to cut a suffix from.
                if !self.vg.is_excluded() && !self.vg.is_joining() && !self.recovering {
                    let t = Transfer::committed_snapshot(&self.base.store, &self.base.tm, 0);
                    ctx.send(from, PassiveMsg::RecoverData(Box::new(t)));
                }
            }
            PassiveMsg::RecoverData(t) => {
                if self.recovering {
                    self.recovering = false;
                    self.base.install_transfer(&t);
                    // State installed; now ask the group for readmission
                    // (the join view's flush covers in-flight updates).
                    let mut out = Outbox::new();
                    self.vg.rejoin(&mut out);
                    self.drive(ctx, out);
                }
            }
        }
    }

    fn on_timer(&mut self, ctx: &mut Context<'_, PassiveMsg>, _timer: TimerId, tag: u64) {
        if tag == RESTORE_TAG {
            self.base.finish_restore();
            self.rejoin_now(ctx);
            return;
        }
        if self.base.restoring() {
            return;
        }
        let mut out = Outbox::new();
        repl_gcs::Component::on_timer(&mut self.vg, tag, &mut out);
        self.drive(ctx, out);
    }

    fn on_recover(&mut self, ctx: &mut Context<'_, PassiveMsg>) {
        // Two-step rejoin: fetch a db-level snapshot from a live member
        // first, then run the group-level join so the new view only
        // ever admits a caught-up replica.
        self.base.recovery.begin(ctx.now().ticks());
        self.pending.clear();
        if let Some(plan) = self.base.begin_restore(ctx.now().ticks()) {
            // There is no ordered stream to rewind: the durable tier
            // restored a floor, and the peer snapshot fetched afterwards
            // covers whatever the disaster erased (if any peer is up).
            if plan.delay > 0 {
                ctx.set_timer(SimDuration::from_ticks(plan.delay), RESTORE_TAG);
                return;
            }
            self.base.finish_restore();
        }
        self.rejoin_now(ctx);
    }

    fn on_volume_loss(&mut self, now: SimTime) {
        self.base.wipe_volume(now.ticks());
        self.pending.clear();
    }

    fn on_settle(&mut self, ctx: &mut Context<'_, PassiveMsg>) {
        // No stream position exists; the committed count is the frame
        // token (passive restores never rewind by token anyway).
        self.base.seal_now(ctx.now().ticks(), self.base.committed);
    }

    impl_as_any!();
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client::ClientActor;
    use repl_db::{Key, Value};
    use repl_sim::{SimConfig, SimDuration, SimTime, World};
    use repl_workload::{OpTemplate, TxnTemplate};

    fn write(k: u64, v: i64) -> TxnTemplate {
        TxnTemplate {
            ops: vec![OpTemplate::Write(Key(k), Value(v))],
        }
    }
    fn read(k: u64) -> TxnTemplate {
        TxnTemplate {
            ops: vec![OpTemplate::Read(Key(k))],
        }
    }

    fn build(
        n: u32,
        txns: Vec<Vec<TxnTemplate>>,
        exec: ExecutionMode,
        seed: u64,
    ) -> (World<PassiveMsg>, Vec<NodeId>, Vec<NodeId>) {
        let mut world = World::new(SimConfig::new(seed));
        let servers: Vec<NodeId> = (0..n).map(NodeId::new).collect();
        for i in 0..n {
            world.add_actor(Box::new(PassiveServer::new(
                i,
                NodeId::new(i),
                servers.clone(),
                16,
                exec,
                VsConfig::default(),
            )));
        }
        let mut clients = Vec::new();
        for (c, t) in txns.into_iter().enumerate() {
            // Clients prefer the initial primary (server 0).
            let client = ClientActor::<PassiveMsg>::new(
                c as u32,
                servers.clone(),
                0,
                t,
                SimDuration::from_ticks(100),
                SimDuration::from_ticks(15_000),
            );
            clients.push(world.add_actor(Box::new(client)));
        }
        (world, servers, clients)
    }

    #[test]
    fn primary_executes_backups_apply() {
        let (mut world, servers, clients) = build(
            3,
            vec![vec![write(1, 5), read(1)]],
            ExecutionMode::Deterministic,
            1,
        );
        world.start();
        world.run_until(SimTime::from_ticks(100_000));
        let client = world.actor_ref::<ClientActor<PassiveMsg>>(clients[0]);
        assert!(client.is_done());
        let fp0 = world
            .actor_ref::<PassiveServer>(servers[0])
            .base
            .store
            .fingerprint();
        for &s in &servers[1..] {
            let srv = world.actor_ref::<PassiveServer>(s);
            assert_eq!(srv.base.store.fingerprint(), fp0, "backup diverged");
            // Backups never executed, they only installed.
            assert_eq!(srv.base.tm.stats(), (0, 0));
        }
    }

    #[test]
    fn nondeterminism_is_harmless_in_passive_replication() {
        // The paper's key contrast with active replication: only one
        // process executes, so site-dependent results cannot diverge.
        let (mut world, servers, _clients) = build(
            3,
            vec![vec![write(0, 1), write(1, 2)]],
            ExecutionMode::NonDeterministic,
            2,
        );
        world.start();
        world.run_until(SimTime::from_ticks(100_000));
        let fp0 = world
            .actor_ref::<PassiveServer>(servers[0])
            .base
            .store
            .fingerprint();
        for &s in &servers[1..] {
            assert_eq!(
                world.actor_ref::<PassiveServer>(s).base.store.fingerprint(),
                fp0,
                "passive replication must tolerate non-determinism"
            );
        }
    }

    #[test]
    fn primary_crash_fails_over_and_client_completes() {
        let (mut world, servers, clients) = build(
            3,
            vec![vec![write(0, 1), write(1, 2), write(2, 3), read(0)]],
            ExecutionMode::Deterministic,
            3,
        );
        world.start();
        // Let some work happen, then kill the primary.
        world.schedule_crash(SimTime::from_ticks(3_000), servers[0]);
        world.run_until(SimTime::from_ticks(1_000_000));
        let client = world.actor_ref::<ClientActor<PassiveMsg>>(clients[0]);
        assert!(client.is_done(), "client stuck after failover");
        // New primary is server 1.
        let s1 = world.actor_ref::<PassiveServer>(servers[1]);
        assert_eq!(s1.primary(), servers[1]);
        // Survivors agree on the final state and it reflects all writes.
        let fp1 = s1.base.store.fingerprint();
        let s2 = world.actor_ref::<PassiveServer>(servers[2]);
        assert_eq!(s2.base.store.fingerprint(), fp1);
        assert_eq!(s1.base.store.read(Key(2)).expect("exists").value, Value(3));
    }

    #[test]
    fn no_lost_or_half_applied_update_across_failover() {
        // Run several seeds; in each, the primary dies while updates are in
        // flight. Survivors must agree pairwise (view synchrony) and the
        // client's committed writes must all be present.
        for seed in 0..8u64 {
            let (mut world, servers, clients) = build(
                4,
                vec![vec![write(0, 1), write(1, 2), write(2, 3), write(3, 4)]],
                ExecutionMode::Deterministic,
                100 + seed,
            );
            world.start();
            world.schedule_crash(SimTime::from_ticks(2_000 + seed * 300), servers[0]);
            world.run_until(SimTime::from_ticks(1_000_000));
            let client = world.actor_ref::<ClientActor<PassiveMsg>>(clients[0]);
            assert!(client.is_done(), "seed {seed}: client stuck");
            let fps: Vec<u64> = servers[1..]
                .iter()
                .map(|&s| world.actor_ref::<PassiveServer>(s).base.store.fingerprint())
                .collect();
            assert!(
                fps.windows(2).all(|w| w[0] == w[1]),
                "seed {seed}: survivors diverged: {fps:?}"
            );
            // Every committed (responded) write is visible at survivors.
            let s1 = world.actor_ref::<PassiveServer>(servers[1]);
            for rec in client.completed() {
                if let OpTemplate::Write(k, v) = rec.txn.ops[0] {
                    let stored = s1.base.store.read(k).expect("exists").value;
                    assert_eq!(stored, v, "seed {seed}: lost committed write to {k}");
                }
            }
        }
    }

    #[test]
    fn phase_skeleton_matches_figure_3() {
        let (mut world, _s, _c) =
            build(3, vec![vec![write(0, 1)]], ExecutionMode::Deterministic, 4);
        world.start();
        world.run_until(SimTime::from_ticks(100_000));
        let pt = crate::phase::PhaseTrace::from_trace(world.trace());
        assert_eq!(
            pt.canonical().expect("op completed").to_string(),
            "RE EX AC END"
        );
    }

    #[test]
    fn backup_receiving_invoke_forwards_to_primary() {
        let (mut world, _servers, clients) =
            build(3, vec![vec![write(0, 9)]], ExecutionMode::Deterministic, 5);
        // Point the client at a backup instead of the primary.
        let client = world.actor_mut::<ClientActor<PassiveMsg>>(clients[0]);
        *client = ClientActor::new(
            0,
            (0..3).map(NodeId::new).collect(),
            2, // backup
            vec![write(0, 9)],
            SimDuration::from_ticks(100),
            SimDuration::from_ticks(15_000),
        );
        world.start();
        world.run_until(SimTime::from_ticks(100_000));
        let client = world.actor_ref::<ClientActor<PassiveMsg>>(clients[0]);
        assert!(client.is_done(), "forwarding failed");
    }
}
