//! Semi-active replication (paper §3.4, Fig. 4).
//!
//! Like active replication, every replica receives the totally ordered
//! request stream and executes it — but replicas need not be
//! deterministic: at each non-deterministic choice point the *leader*
//! makes the choice and imposes it on the followers with a
//! view-synchronous broadcast. Skeleton: `RE SC EX AC END` (the EX/AC
//! pair repeats per choice point; with deterministic execution the AC
//! phase disappears and the technique degenerates to active replication).
//!
//! Here the non-deterministic choice is the effective value of each write
//! (modelling scheduling-dependent results, see
//! [`ExecutionMode::NonDeterministic`]); the leader resolves all of an
//! operation's writes in one choice message.

use std::collections::{BTreeMap, HashMap, HashSet};

use repl_db::{Key, Keyspace, Transfer, Value};
use repl_gcs::{BatchConfig, Outbox, ViewGroup, VsConfig, VsEvent, VsMsg};
use repl_sim::{impl_as_any, Actor, Context, Message, NodeId, SimDuration, SimTime, TimerId};

use crate::client::ProtocolMsg;
use crate::op::{accesses, ClientOp, OpId, Response};
use crate::phase::Phase;
use crate::protocols::common::{
    global_txn, settle_rejoin, AbMsg, AbcastEndpoint, AbcastImpl, ExecutionMode, ServerBase,
    RESTORE_TAG,
};

/// The leader's resolution of an operation's non-deterministic choices.
#[derive(Debug, Clone)]
pub struct Choice {
    /// The operation the choice belongs to.
    pub op: OpId,
    /// The resolved value for each written key.
    pub writes: Vec<(Key, Value)>,
}

impl Message for Choice {
    fn wire_size(&self) -> usize {
        16 + self.writes.len() * 16
    }
}

/// Timer-tag base for the embedded view group (the ABCAST endpoint owns
/// the lower tag space).
const VG_BASE: u64 = repl_gcs::TAG_SPACE;

/// Wire messages of semi-active replication.
#[derive(Debug, Clone)]
pub enum SemiActiveMsg {
    /// Client → contact replica.
    Invoke(ClientOp),
    /// Request ordering (ABCAST).
    Ab(AbMsg<ClientOp>),
    /// Leader choices (VSCAST).
    Vs(VsMsg<Choice>),
    /// Replica → client.
    Reply(Response),
    /// Recovering replica → group: request a state snapshot.
    SyncReq,
    /// Live member → recovering replica: snapshot stamped with the
    /// donor's applied watermark (missed leader choices cannot be
    /// replayed, so the gap is covered by state, not re-execution).
    SyncData(Box<Transfer>),
}

impl Message for SemiActiveMsg {
    fn wire_size(&self) -> usize {
        match self {
            SemiActiveMsg::Invoke(op) => 8 + op.wire_size(),
            SemiActiveMsg::Ab(m) => m.wire_size(),
            SemiActiveMsg::Vs(m) => 8 + m.wire_size(),
            SemiActiveMsg::Reply(r) => 8 + r.wire_size(),
            SemiActiveMsg::SyncReq => 8,
            SemiActiveMsg::SyncData(t) => 8 + t.wire_size(),
        }
    }
}

impl ProtocolMsg for SemiActiveMsg {
    fn invoke(op: ClientOp) -> Self {
        SemiActiveMsg::Invoke(op)
    }
    fn response(&self) -> Option<&Response> {
        match self {
            SemiActiveMsg::Reply(r) => Some(r),
            _ => None,
        }
    }
}

/// A semi-active replication server.
pub struct SemiActiveServer {
    /// Shared database/server state (public for post-run inspection).
    pub base: ServerBase,
    me: NodeId,
    group: Vec<NodeId>,
    ab: AbcastEndpoint<ClientOp>,
    vg: ViewGroup<Choice>,
    relayed: HashSet<OpId>,
    /// Waiting for the first snapshot reply after a crash.
    recovering: bool,
    /// Ordered-but-not-yet-applied operations, by global sequence.
    waiting: BTreeMap<u64, ClientOp>,
    next_apply: u64,
    choices: HashMap<OpId, Vec<(Key, Value)>>,
    issued: HashSet<OpId>,
    marks: bool,
}

impl SemiActiveServer {
    /// Creates server `site` of `group`.
    pub fn new(
        site: u32,
        me: NodeId,
        group: Vec<NodeId>,
        keyspace: impl Into<Keyspace>,
        exec: ExecutionMode,
        abcast: AbcastImpl,
        vs: VsConfig,
    ) -> Self {
        let cons = vs.consensus;
        SemiActiveServer {
            base: ServerBase::new(site, keyspace, exec),
            me,
            ab: AbcastEndpoint::new(abcast, me, group.clone(), cons),
            vg: ViewGroup::new(me, group.clone(), vs),
            group,
            relayed: HashSet::new(),
            recovering: false,
            waiting: BTreeMap::new(),
            next_apply: 0,
            choices: HashMap::new(),
            issued: HashSet::new(),
            marks: site == 0,
        }
    }

    /// Sets the ordering-layer batching window (builder form).
    pub fn with_batching(mut self, batch: BatchConfig) -> Self {
        self.ab.set_batching(batch);
        self
    }

    /// The current leader (lowest member of the installed view).
    pub fn leader(&self) -> NodeId {
        self.vg.view().primary()
    }

    fn is_leader(&self) -> bool {
        self.leader() == self.me && !self.vg.is_excluded()
    }

    /// Whether `op` needs a leader choice at all.
    fn needs_choice(&self, op: &ClientOp) -> bool {
        self.base.exec == ExecutionMode::NonDeterministic && op.txn.ops.iter().any(|o| o.is_write())
    }

    fn resolve_choice(&self, op: &ClientOp) -> Choice {
        let writes = accesses(&op.txn)
            .filter_map(|(k, w)| w.map(|v| (k, self.base.effective_value(v))))
            .collect();
        Choice { op: op.id, writes }
    }

    fn drive_ab(
        &mut self,
        ctx: &mut Context<'_, SemiActiveMsg>,
        out: Outbox<AbMsg<ClientOp>, repl_gcs::AbDeliver<ClientOp>>,
    ) {
        let deliveries = repl_gcs::apply_outbox(ctx, out, 0, SemiActiveMsg::Ab);
        for d in deliveries {
            if self.marks {
                ctx.mark(Phase::ServerCoordination.tag(), d.payload.id.0, d.gseq);
            }
            self.waiting.insert(d.gseq, d.payload);
        }
        self.process(ctx);
        settle_rejoin(&mut self.ab, &mut self.base, ctx.now().ticks());
    }

    fn drive_vs(
        &mut self,
        ctx: &mut Context<'_, SemiActiveMsg>,
        out: Outbox<VsMsg<Choice>, VsEvent<Choice>>,
    ) {
        let events = repl_gcs::apply_outbox(ctx, out, VG_BASE, SemiActiveMsg::Vs);
        for ev in events {
            match ev {
                VsEvent::Deliver { payload, .. } => {
                    self.choices.entry(payload.op).or_insert(payload.writes);
                }
                VsEvent::ViewInstalled(_) => {
                    // A new leader re-issues choices for everything stuck.
                    self.issued.clear();
                }
                VsEvent::Excluded(_) => {}
            }
        }
        self.process(ctx);
    }

    /// Applies ordered operations in sequence, pausing at operations whose
    /// choice has not arrived yet.
    fn process(&mut self, ctx: &mut Context<'_, SemiActiveMsg>) {
        loop {
            let Some(op) = self.waiting.get(&self.next_apply).cloned() else {
                return;
            };
            if self.base.cached(op.id).is_some() {
                self.waiting.remove(&self.next_apply);
                self.next_apply += 1;
                continue;
            }
            let needs = self.needs_choice(&op);
            if needs && !self.choices.contains_key(&op.id) {
                // Leader resolves; followers wait.
                if self.is_leader() && !self.issued.contains(&op.id) {
                    self.issued.insert(op.id);
                    if self.marks {
                        ctx.mark(Phase::Execution.tag(), op.id.0, 0);
                    }
                    let choice = self.resolve_choice(&op);
                    let mut out = Outbox::new();
                    self.vg.broadcast(choice, &mut out);
                    self.drive_vs(ctx, out);
                    // drive_vs re-enters process(); stop this iteration.
                }
                return;
            }
            self.waiting.remove(&self.next_apply);
            self.next_apply += 1;
            if self.marks {
                if !needs {
                    ctx.mark(Phase::Execution.tag(), op.id.0, 0);
                } else {
                    ctx.mark(Phase::AgreementCoordination.tag(), op.id.0, 0);
                }
            }
            let resp = self.execute(&op);
            self.base.remember(&resp);
            ctx.send(op.client, SemiActiveMsg::Reply(resp));
        }
    }

    /// Executes with the agreed choice (or deterministically).
    fn execute(&mut self, op: &ClientOp) -> Response {
        let txn = global_txn(op.id);
        let choice: HashMap<Key, Value> = self
            .choices
            .remove(&op.id)
            .map(|w| w.into_iter().collect())
            .unwrap_or_default();
        self.base.tm.begin(txn);
        let mut reads = Vec::new();
        for (key, write) in accesses(&op.txn) {
            match write {
                None => {
                    let v = self
                        .base
                        .tm
                        .read(&self.base.store, txn, key)
                        .expect("txn active")
                        .map_or(Value(0), |v| v.value);
                    self.base
                        .history
                        .record(self.base.site, txn, key, repl_db::AccessKind::Read);
                    reads.push((key, v));
                }
                Some(v) => {
                    // The leader's choice overrides local non-determinism.
                    let v = choice.get(&key).copied().unwrap_or(v);
                    self.base
                        .tm
                        .write(&mut self.base.store, txn, key, v)
                        .expect("txn active");
                    self.base
                        .history
                        .record(self.base.site, txn, key, repl_db::AccessKind::Write);
                }
            }
        }
        let ws = self.base.tm.commit(txn).expect("txn active");
        self.base.history.mark_committed(txn);
        self.base.committed += 1;
        if let Some(t) = &mut self.base.tier {
            t.note_commit(&ws);
        }
        Response {
            op: op.id,
            committed: true,
            reads,
        }
    }

    fn rejoin_now(&mut self, ctx: &mut Context<'_, SemiActiveMsg>) {
        if self.group.len() == 1 {
            let mut out = Outbox::new();
            self.ab.rejoin(&mut out);
            self.drive_ab(ctx, out);
            let mut out = Outbox::new();
            self.vg.rejoin(&mut out);
            self.drive_vs(ctx, out);
            return;
        }
        self.recovering = true;
        for &n in &self.group {
            if n != self.me {
                ctx.send(n, SemiActiveMsg::SyncReq);
            }
        }
    }
}

impl Actor<SemiActiveMsg> for SemiActiveServer {
    fn on_start(&mut self, ctx: &mut Context<'_, SemiActiveMsg>) {
        let mut out = Outbox::new();
        repl_gcs::Component::on_start(&mut self.vg, &mut out);
        self.drive_vs(ctx, out);
    }

    fn on_message(
        &mut self,
        ctx: &mut Context<'_, SemiActiveMsg>,
        from: NodeId,
        msg: SemiActiveMsg,
    ) {
        if self.base.restoring() {
            return; // deaf until the volume restore download completes
        }
        match msg {
            SemiActiveMsg::Invoke(op) => {
                if let Some(resp) = self.base.cached(op.id) {
                    ctx.send(op.client, SemiActiveMsg::Reply(resp));
                    return;
                }
                if !self.relayed.insert(op.id) {
                    return;
                }
                let mut out = Outbox::new();
                self.ab.broadcast(op, &mut out);
                self.drive_ab(ctx, out);
            }
            SemiActiveMsg::Ab(m) => {
                let mut out = Outbox::new();
                self.ab.on_message(from, m, &mut out);
                self.drive_ab(ctx, out);
            }
            SemiActiveMsg::Vs(m) => {
                let mut out = Outbox::new();
                repl_gcs::Component::on_message(&mut self.vg, from, m, &mut out);
                self.drive_vs(ctx, out);
            }
            SemiActiveMsg::Reply(_) => {}
            SemiActiveMsg::SyncReq => {
                if !self.recovering && !self.vg.is_excluded() && !self.vg.is_joining() {
                    let t = Transfer::committed_snapshot(
                        &self.base.store,
                        &self.base.tm,
                        self.next_apply,
                    );
                    ctx.send(from, SemiActiveMsg::SyncData(Box::new(t)));
                }
            }
            SemiActiveMsg::SyncData(t) => {
                if self.recovering {
                    self.recovering = false;
                    let high = self.base.install_transfer(&t);
                    // Fast-forward past the snapshot: those operations'
                    // leader choices are gone and their effects are
                    // already in the installed state.
                    self.next_apply = self.next_apply.max(high);
                    self.waiting = self.waiting.split_off(&self.next_apply);
                    let mut out = Outbox::new();
                    self.ab.rejoin(&mut out);
                    self.drive_ab(ctx, out);
                    let mut out = Outbox::new();
                    self.vg.rejoin(&mut out);
                    self.drive_vs(ctx, out);
                }
            }
        }
    }

    fn on_timer(&mut self, ctx: &mut Context<'_, SemiActiveMsg>, _timer: TimerId, tag: u64) {
        if tag == RESTORE_TAG {
            self.base.finish_restore();
            self.rejoin_now(ctx);
            return;
        }
        if self.base.restoring() {
            return;
        }
        if tag >= VG_BASE {
            let mut out = Outbox::new();
            repl_gcs::Component::on_timer(&mut self.vg, tag - VG_BASE, &mut out);
            self.drive_vs(ctx, out);
        } else {
            let mut out = Outbox::new();
            self.ab.on_timer(tag, &mut out);
            self.drive_ab(ctx, out);
        }
    }

    fn on_recover(&mut self, ctx: &mut Context<'_, SemiActiveMsg>) {
        self.base.recovery.begin(ctx.now().ticks());
        if let Some(plan) = self.base.begin_restore(ctx.now().ticks()) {
            // The durable tier restored the prefix up to `plan.token`;
            // the leader choices behind the erased suffix are gone, so
            // (as with plain crashes) the remaining gap is covered by a
            // peer snapshot through the normal SyncReq path afterwards.
            self.next_apply = plan.token;
            self.ab.rewind_to(plan.token);
            if plan.delay > 0 {
                ctx.set_timer(SimDuration::from_ticks(plan.delay), RESTORE_TAG);
                return;
            }
            self.base.finish_restore();
        }
        self.rejoin_now(ctx);
    }

    fn on_volume_loss(&mut self, now: SimTime) {
        self.base.wipe_volume(now.ticks());
        // The applied cursor and the buffered stream die with the volume.
        self.waiting.clear();
        self.choices.clear();
        self.issued.clear();
        self.next_apply = 0;
    }

    fn on_settle(&mut self, ctx: &mut Context<'_, SemiActiveMsg>) {
        self.base.seal_now(ctx.now().ticks(), self.next_apply);
    }

    impl_as_any!();
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client::ClientActor;
    use repl_sim::{SimConfig, SimDuration, SimTime, World};
    use repl_workload::{OpTemplate, TxnTemplate};

    fn write(k: u64, v: i64) -> TxnTemplate {
        TxnTemplate {
            ops: vec![OpTemplate::Write(Key(k), Value(v))],
        }
    }
    fn read(k: u64) -> TxnTemplate {
        TxnTemplate {
            ops: vec![OpTemplate::Read(Key(k))],
        }
    }

    fn build(
        n: u32,
        txns: Vec<Vec<TxnTemplate>>,
        exec: ExecutionMode,
        abcast: AbcastImpl,
        seed: u64,
    ) -> (World<SemiActiveMsg>, Vec<NodeId>, Vec<NodeId>) {
        let mut world = World::new(SimConfig::new(seed));
        let servers: Vec<NodeId> = (0..n).map(NodeId::new).collect();
        for i in 0..n {
            world.add_actor(Box::new(SemiActiveServer::new(
                i,
                NodeId::new(i),
                servers.clone(),
                16,
                exec,
                abcast,
                VsConfig::default(),
            )));
        }
        let mut clients = Vec::new();
        for (c, t) in txns.into_iter().enumerate() {
            let client = ClientActor::<SemiActiveMsg>::new(
                c as u32,
                servers.clone(),
                c % n as usize,
                t,
                SimDuration::from_ticks(100),
                SimDuration::from_ticks(20_000),
            );
            clients.push(world.add_actor(Box::new(client)));
        }
        (world, servers, clients)
    }

    #[test]
    fn nondeterministic_execution_converges_under_leader_choices() {
        // The exact scenario that breaks active replication (see
        // active::tests::nondeterminism_breaks_active_replication) is
        // harmless here: the leader's choice is imposed on everyone.
        let (mut world, servers, clients) = build(
            3,
            vec![vec![write(0, 1), write(1, 2)], vec![write(2, 3)]],
            ExecutionMode::NonDeterministic,
            AbcastImpl::Sequencer,
            1,
        );
        world.start();
        world.run_until(SimTime::from_ticks(300_000));
        for &c in &clients {
            assert!(world.actor_ref::<ClientActor<SemiActiveMsg>>(c).is_done());
        }
        let fp0 = world
            .actor_ref::<SemiActiveServer>(servers[0])
            .base
            .store
            .fingerprint();
        for &s in &servers[1..] {
            assert_eq!(
                world
                    .actor_ref::<SemiActiveServer>(s)
                    .base
                    .store
                    .fingerprint(),
                fp0,
                "replica {s} diverged despite leader choices"
            );
        }
    }

    #[test]
    fn reads_observe_leader_chosen_values() {
        let (mut world, _servers, clients) = build(
            3,
            vec![vec![write(5, 7), read(5)]],
            ExecutionMode::NonDeterministic,
            AbcastImpl::Sequencer,
            2,
        );
        world.start();
        world.run_until(SimTime::from_ticks(300_000));
        let client = world.actor_ref::<ClientActor<SemiActiveMsg>>(clients[0]);
        let recs: Vec<_> = client.completed().collect();
        assert_eq!(recs.len(), 2);
        let observed = recs[1].response.as_ref().expect("responded").reads[0].1;
        // The leader is site 0: its perturbation is v*1000 + 0.
        assert_eq!(observed, Value(7_000), "read must see the leader's choice");
    }

    #[test]
    fn deterministic_mode_degenerates_to_active() {
        let (mut world, servers, _clients) = build(
            3,
            vec![vec![write(0, 1)]],
            ExecutionMode::Deterministic,
            AbcastImpl::Sequencer,
            3,
        );
        world.start();
        world.run_until(SimTime::from_ticks(200_000));
        let pt = crate::phase::PhaseTrace::from_trace(world.trace());
        assert_eq!(pt.canonical().expect("op done").to_string(), "RE SC EX END");
        let fp0 = world
            .actor_ref::<SemiActiveServer>(servers[0])
            .base
            .store
            .fingerprint();
        for &s in &servers[1..] {
            assert_eq!(
                world
                    .actor_ref::<SemiActiveServer>(s)
                    .base
                    .store
                    .fingerprint(),
                fp0
            );
        }
    }

    #[test]
    fn phase_skeleton_matches_figure_4() {
        let (mut world, _s, _c) = build(
            3,
            vec![vec![write(0, 1)]],
            ExecutionMode::NonDeterministic,
            AbcastImpl::Sequencer,
            4,
        );
        world.start();
        world.run_until(SimTime::from_ticks(200_000));
        let pt = crate::phase::PhaseTrace::from_trace(world.trace());
        assert_eq!(
            pt.canonical().expect("op done").to_string(),
            "RE SC EX AC END"
        );
    }

    #[test]
    fn leader_crash_new_leader_reissues_choices() {
        let (mut world, servers, clients) = build(
            3,
            vec![vec![write(0, 1), write(1, 2), write(2, 3)]],
            ExecutionMode::NonDeterministic,
            AbcastImpl::Consensus,
            5,
        );
        world.start();
        world.schedule_crash(SimTime::from_ticks(2_500), servers[0]);
        world.run_until(SimTime::from_ticks(2_000_000));
        let client = world.actor_ref::<ClientActor<SemiActiveMsg>>(clients[0]);
        assert!(client.is_done(), "client stuck after leader crash");
        let fp1 = world
            .actor_ref::<SemiActiveServer>(servers[1])
            .base
            .store
            .fingerprint();
        let fp2 = world
            .actor_ref::<SemiActiveServer>(servers[2])
            .base
            .store
            .fingerprint();
        assert_eq!(fp1, fp2, "survivors diverged after leader failover");
    }
}
