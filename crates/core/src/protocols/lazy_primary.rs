//! Lazy primary copy replication (paper §4.5, Fig. 10).
//!
//! All updates go to the primary, which executes, commits and answers the
//! client *before* any coordination; the changes propagate to the
//! secondaries afterwards (the paper's inverted phase order — the END
//! phase precedes Agreement Coordination). Skeleton: `RE EX END AC`.
//!
//! Reads execute at whatever server the client contacts, so secondaries
//! serve **stale** data until propagation catches up — the price of the
//! one-round-trip response time. The staleness oracle in
//! [`crate::consistency`] quantifies it.
//!
//! Because ordering happens entirely at the primary, secondaries apply
//! updates in primary-commit order (FIFO from the primary) and replicas
//! converge; no reconciliation is ever needed (contrast with
//! [`crate::protocols::lazy_ue`]).
//!
//! Secondaries support **crash recovery with catch-up**: the primary
//! numbers every propagated writeset against its redo log
//! ([`repl_db::RedoLog`]); a recovering (or gap-detecting) secondary asks
//! for the suffix it missed and replays it in order — the classic
//! log-shipping standby pattern. When the log has been truncated past
//! the requester's position (finite retention, long outage) the primary
//! falls back to a full [`Transfer`] snapshot instead.

use std::sync::Arc;

use repl_db::{Keyspace, RedoLog, Transfer, TransferStrategy, WriteSet};
use repl_gcs::BatchConfig;
use repl_sim::{impl_as_any, Actor, Context, Message, NodeId, SimDuration, SimTime, TimerId};
use repl_workload::OpTemplate;

use crate::client::ProtocolMsg;
use crate::op::{ClientOp, Response};
use crate::phase::Phase;
use crate::protocols::common::{global_txn, ExecutionMode, ServerBase, RESTORE_TAG};

/// Wire messages of lazy primary copy replication.
#[derive(Debug, Clone)]
pub enum LazyPrimaryMsg {
    /// Client → server (updates forwarded to the primary, reads local).
    Invoke(ClientOp),
    /// Primary → secondaries: committed writesets, in commit order.
    /// The writeset is `Arc`-shared so the per-secondary fan-out clones
    /// a pointer, not the records; `wire_size` still charges the full
    /// logical size.
    Propagate {
        /// Position in the primary's redo log.
        idx: u64,
        /// The committed redo records.
        ws: Arc<WriteSet>,
    },
    /// Primary → secondaries: one batching window's worth of committed
    /// writesets, group-committed to the WAL with one force and shipped
    /// as one message per secondary.
    PropagateBatch {
        /// Log index of the first entry.
        start: u64,
        /// The committed redo records, in commit order.
        entries: Arc<Vec<WriteSet>>,
    },
    /// Recovering/gapped secondary → primary: send me the log from `have`.
    CatchUpReq {
        /// Number of log entries the secondary has applied.
        have: u64,
    },
    /// Primary → secondary: log suffix or snapshot, per the donor's
    /// retention (boxed: the payload dwarfs the other variants).
    CatchUpData(Box<Transfer>),
    /// Server → client.
    Reply(Response),
}

impl Message for LazyPrimaryMsg {
    fn wire_size(&self) -> usize {
        match self {
            LazyPrimaryMsg::Invoke(op) => 8 + op.wire_size(),
            LazyPrimaryMsg::Propagate { ws, .. } => 16 + ws.wire_size(),
            LazyPrimaryMsg::PropagateBatch { entries, .. } => {
                16 + entries.iter().map(|w| 8 + w.wire_size()).sum::<usize>()
            }
            LazyPrimaryMsg::CatchUpReq { .. } => 16,
            LazyPrimaryMsg::CatchUpData(t) => 8 + t.wire_size(),
            LazyPrimaryMsg::Reply(r) => 8 + r.wire_size(),
        }
    }
}

impl ProtocolMsg for LazyPrimaryMsg {
    fn invoke(op: ClientOp) -> Self {
        LazyPrimaryMsg::Invoke(op)
    }
    fn response(&self) -> Option<&Response> {
        match self {
            LazyPrimaryMsg::Reply(r) => Some(r),
            _ => None,
        }
    }
}

const FLUSH_TAG: u64 = 1;

/// A lazy-primary-copy server.
pub struct LazyPrimaryServer {
    /// Shared database/server state (public for post-run inspection).
    pub base: ServerBase,
    me: NodeId,
    servers: Vec<NodeId>,
    /// Extra delay before propagating committed updates (0 = propagate
    /// immediately after the reply; larger values widen the staleness
    /// window for the experiments).
    propagation_delay: SimDuration,
    /// Committed writesets awaiting propagation.
    outbound: Vec<WriteSet>,
    flush_armed: bool,
    /// Batching window for the propagation stream: writesets committed
    /// within one window ship as a single [`LazyPrimaryMsg::PropagateBatch`]
    /// per secondary, and the WAL group-commits them under one force.
    batching: BatchConfig,
    /// The primary's redo log (numbering the propagation stream).
    pub log: RedoLog,
    /// Secondary: how many log entries have been applied.
    pub applied: u64,
    /// Remembered retention cap, re-applied when a volume loss forces a
    /// fresh redo log.
    log_retention: Option<usize>,
    /// Primary only: a volume restore rebuilt the log, so the retained
    /// suffix must be re-shipped (its tail may never have propagated).
    reship: bool,
    marks: bool,
}

impl LazyPrimaryServer {
    /// Creates server `site` of `servers`; the primary is rank 0.
    pub fn new(
        site: u32,
        me: NodeId,
        servers: Vec<NodeId>,
        keyspace: impl Into<Keyspace>,
        exec: ExecutionMode,
        propagation_delay: SimDuration,
    ) -> Self {
        LazyPrimaryServer {
            base: ServerBase::new(site, keyspace, exec),
            me,
            servers,
            propagation_delay,
            outbound: Vec::new(),
            flush_armed: false,
            batching: BatchConfig::disabled(),
            log: RedoLog::new(),
            applied: 0,
            log_retention: None,
            reship: false,
            marks: site == 0,
        }
    }

    /// Sets the propagation batching window (builder form).
    pub fn with_batching(mut self, batch: BatchConfig) -> Self {
        self.batching = batch;
        self
    }

    /// Bounds the primary's redo-log retention: requesters that fall
    /// behind the truncation point get a snapshot instead of a suffix.
    pub fn set_log_retention(&mut self, retention: Option<usize>) {
        self.log_retention = retention;
        self.log.set_retention(retention);
    }

    /// The static primary.
    pub fn primary(&self) -> NodeId {
        self.servers[0]
    }

    fn flush(&mut self, ctx: &mut Context<'_, LazyPrimaryMsg>) {
        let pending = std::mem::take(&mut self.outbound);
        self.flush_armed = false;
        if pending.is_empty() {
            return;
        }
        if self.batching.enabled() {
            // Group commit: every writeset of the window reaches the
            // redo log under a single force, then one PropagateBatch
            // per secondary carries the whole window.
            let start = self.log.len() as u64;
            for ws in &pending {
                if self.marks {
                    // AC happens *after* END: the lazy signature.
                    let op = crate::protocols::common::op_of_txn(ws.txn);
                    ctx.mark(Phase::AgreementCoordination.tag(), op.0, 0);
                }
                self.log.stage(ws.clone());
            }
            self.log.flush_group();
            let entries = Arc::new(pending);
            for &s in &self.servers {
                if s != self.me {
                    ctx.send(
                        s,
                        LazyPrimaryMsg::PropagateBatch {
                            start,
                            entries: Arc::clone(&entries),
                        },
                    );
                }
            }
            return;
        }
        for ws in pending {
            if self.marks {
                // AC happens *after* END: the lazy signature.
                let op = crate::protocols::common::op_of_txn(ws.txn);
                ctx.mark(Phase::AgreementCoordination.tag(), op.0, 0);
            }
            let idx = self.log.append(ws.clone()) as u64;
            let ws = Arc::new(ws);
            for &s in &self.servers {
                if s != self.me {
                    ctx.send(
                        s,
                        LazyPrimaryMsg::Propagate {
                            idx,
                            ws: Arc::clone(&ws),
                        },
                    );
                }
            }
        }
    }

    /// Secondary: applies one numbered log entry if it is next in order.
    fn apply_entry(&mut self, idx: u64, ws: &WriteSet) -> bool {
        if idx != self.applied {
            return false;
        }
        self.base.install_writeset(ws);
        self.applied += 1;
        true
    }

    /// Re-enters service after the database state is back in place
    /// (directly on crash recovery; after the restore download when a
    /// volume loss forced a rebuild from the durable tier).
    fn rejoin_now(&mut self, ctx: &mut Context<'_, LazyPrimaryMsg>) {
        let primary = self.primary();
        if primary == self.me {
            // The primary's own log and store survive a plain crash; any
            // updates invoked during the outage were retried by clients.
            // Timers die with the crash, so re-arm a pending flush.
            self.flush_armed = false;
            if !self.outbound.is_empty() {
                self.flush(ctx);
            }
            if std::mem::take(&mut self.reship) {
                // The restored log tail may never have reached the
                // secondaries; re-ship the retained suffix. Entries a
                // secondary already applied are ignored, and a secondary
                // behind the retention point gap-detects into the usual
                // catch-up request.
                let start = self.log.first_retained();
                let entries: Vec<WriteSet> = self.log.since(start as usize).cloned().collect();
                if !entries.is_empty() {
                    let entries = Arc::new(entries);
                    for &s in &self.servers {
                        if s != self.me {
                            ctx.send(
                                s,
                                LazyPrimaryMsg::PropagateBatch {
                                    start,
                                    entries: Arc::clone(&entries),
                                },
                            );
                        }
                    }
                }
            }
            self.base.recovery.complete(ctx.now().ticks());
        } else {
            // Crash recovery: ask the primary for everything missed.
            ctx.send(primary, LazyPrimaryMsg::CatchUpReq { have: self.applied });
        }
    }
}

impl Actor<LazyPrimaryMsg> for LazyPrimaryServer {
    fn on_recover(&mut self, ctx: &mut Context<'_, LazyPrimaryMsg>) {
        self.base.recovery.begin(ctx.now().ticks());
        if let Some(plan) = self.base.begin_restore(ctx.now().ticks()) {
            if self.me == self.primary() {
                // Tier note order equals log order at the primary, so
                // the restored suffix rebuilds the propagation stream
                // in place.
                self.log = RedoLog::new();
                self.log.set_retention(self.log_retention);
                self.log.skip_to(plan.start);
                for ws in &plan.entries {
                    self.log.append(ws.clone());
                }
                self.reship = true;
            } else {
                self.applied = plan.token;
            }
            if plan.delay > 0 {
                ctx.set_timer(SimDuration::from_ticks(plan.delay), RESTORE_TAG);
                return;
            }
            self.base.finish_restore();
        }
        self.rejoin_now(ctx);
    }

    fn on_message(
        &mut self,
        ctx: &mut Context<'_, LazyPrimaryMsg>,
        from: NodeId,
        msg: LazyPrimaryMsg,
    ) {
        if self.base.restoring() {
            return; // deaf until the volume restore download completes
        }
        match msg {
            LazyPrimaryMsg::Invoke(op) => {
                if let Some(resp) = self.base.cached(op.id) {
                    ctx.send(op.client, LazyPrimaryMsg::Reply(resp));
                    return;
                }
                // Reads answer locally wherever they land (possibly stale).
                if op.is_read_only() {
                    let txn = global_txn(op.id);
                    let mut reads = Vec::new();
                    for tpl in &op.txn.ops {
                        if let OpTemplate::Read(k) = tpl {
                            reads.push((*k, self.base.read_committed(txn, *k)));
                        }
                    }
                    self.base.history.mark_committed(txn);
                    let resp = Response {
                        op: op.id,
                        committed: true,
                        reads,
                    };
                    self.base.remember(&resp);
                    ctx.send(op.client, LazyPrimaryMsg::Reply(resp));
                    return;
                }
                // Updates must reach the primary.
                if self.me != self.primary() {
                    let p = self.primary();
                    ctx.send(p, LazyPrimaryMsg::Invoke(op));
                    return;
                }
                if self.marks {
                    ctx.mark(Phase::Execution.tag(), op.id.0, 0);
                }
                let (ws, resp) = self.base.execute_commit(&op, global_txn(op.id));
                self.base.remember(&resp);
                // Lazy: reply *now*, coordinate later.
                ctx.send(op.client, LazyPrimaryMsg::Reply(resp));
                if !ws.is_empty() {
                    self.outbound.push(ws);
                    // With batching on, the flush waits for the wider of
                    // the staleness delay and the batching window (or
                    // goes out early on a full batch).
                    let delay_ticks = if self.batching.enabled() {
                        self.propagation_delay
                            .ticks()
                            .max(self.batching.max_delay_ticks)
                    } else {
                        self.propagation_delay.ticks()
                    };
                    if self.batching.enabled() && self.outbound.len() >= self.batching.max_batch {
                        self.flush(ctx);
                    } else if delay_ticks == 0 {
                        self.flush(ctx);
                    } else if !self.flush_armed {
                        self.flush_armed = true;
                        ctx.set_timer(SimDuration::from_ticks(delay_ticks), FLUSH_TAG);
                    }
                }
            }
            LazyPrimaryMsg::Propagate { idx, ws } => {
                // Secondary: install in log order; on a gap (messages sent
                // while this secondary was crashed), ask for the suffix.
                if !self.apply_entry(idx, &ws) && idx > self.applied {
                    let primary = self.primary();
                    ctx.send(primary, LazyPrimaryMsg::CatchUpReq { have: self.applied });
                }
            }
            LazyPrimaryMsg::PropagateBatch { start, entries } => {
                let mut gap = false;
                for (i, ws) in entries.iter().enumerate() {
                    let idx = start + i as u64;
                    if !self.apply_entry(idx, ws) && idx > self.applied {
                        gap = true;
                    }
                }
                if gap {
                    let primary = self.primary();
                    ctx.send(primary, LazyPrimaryMsg::CatchUpReq { have: self.applied });
                }
            }
            LazyPrimaryMsg::CatchUpReq { have } => {
                if self.me == self.primary() {
                    // Suffix while retained, snapshot once truncated past
                    // the requester. Reply even when there is nothing to
                    // ship so the requester's recovery clock can stop.
                    let t = Transfer::from_log(&self.log, &self.base.store, have);
                    ctx.send(from, LazyPrimaryMsg::CatchUpData(Box::new(t)));
                }
            }
            LazyPrimaryMsg::CatchUpData(t) => {
                match t.strategy {
                    TransferStrategy::LogSuffix => {
                        for (i, ws) in t.entries.iter().enumerate() {
                            self.apply_entry(t.start + i as u64, ws);
                        }
                        if !t.entries.is_empty() {
                            self.base
                                .recovery
                                .record_transfer(t.strategy, t.wire_size() as u64);
                        }
                    }
                    TransferStrategy::Snapshot => {
                        if t.high > self.applied {
                            self.base.store.install_snapshot(&t.snapshot);
                            self.base.note_snapshot(&t.snapshot);
                            self.applied = t.high;
                            self.base
                                .recovery
                                .record_transfer(t.strategy, t.wire_size() as u64);
                        }
                    }
                }
                self.base.recovery.complete(ctx.now().ticks());
            }
            LazyPrimaryMsg::Reply(_) => {}
        }
    }

    fn on_timer(&mut self, ctx: &mut Context<'_, LazyPrimaryMsg>, _timer: TimerId, tag: u64) {
        if tag == RESTORE_TAG {
            self.base.finish_restore();
            self.rejoin_now(ctx);
            return;
        }
        if self.base.restoring() {
            return;
        }
        if tag == FLUSH_TAG {
            self.flush(ctx);
        }
    }

    fn on_volume_loss(&mut self, now: SimTime) {
        self.base.wipe_volume(now.ticks());
        self.log = RedoLog::new();
        self.log.set_retention(self.log_retention);
        self.outbound.clear();
        self.flush_armed = false;
        self.applied = 0;
    }

    fn on_settle(&mut self, ctx: &mut Context<'_, LazyPrimaryMsg>) {
        // The primary's cursor counts every committed (noted) writeset,
        // logged or still awaiting flush; a secondary's is its applied
        // watermark.
        let token = if self.me == self.primary() {
            self.log.len() as u64 + self.outbound.len() as u64
        } else {
            self.applied
        };
        self.base.seal_now(ctx.now().ticks(), token);
    }

    impl_as_any!();
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client::ClientActor;
    use repl_db::{Key, Value};
    use repl_sim::{SimConfig, SimTime, World};
    use repl_workload::TxnTemplate;

    fn write(k: u64, v: i64) -> TxnTemplate {
        TxnTemplate {
            ops: vec![OpTemplate::Write(Key(k), Value(v))],
        }
    }
    fn read(k: u64) -> TxnTemplate {
        TxnTemplate {
            ops: vec![OpTemplate::Read(Key(k))],
        }
    }

    fn build(
        n: u32,
        txns: Vec<Vec<TxnTemplate>>,
        delay: u64,
        seed: u64,
    ) -> (World<LazyPrimaryMsg>, Vec<NodeId>, Vec<NodeId>) {
        let mut world = World::new(SimConfig::new(seed));
        let servers: Vec<NodeId> = (0..n).map(NodeId::new).collect();
        for i in 0..n {
            world.add_actor(Box::new(LazyPrimaryServer::new(
                i,
                NodeId::new(i),
                servers.clone(),
                16,
                ExecutionMode::Deterministic,
                SimDuration::from_ticks(delay),
            )));
        }
        let mut clients = Vec::new();
        for (c, t) in txns.into_iter().enumerate() {
            let client = ClientActor::<LazyPrimaryMsg>::new(
                c as u32,
                servers.clone(),
                c % n as usize,
                t,
                SimDuration::from_ticks(100),
                SimDuration::from_ticks(20_000),
            );
            clients.push(world.add_actor(Box::new(client)));
        }
        (world, servers, clients)
    }

    #[test]
    fn replicas_converge_after_quiescence() {
        let (mut world, servers, clients) =
            build(3, vec![vec![write(0, 1), write(1, 2), write(0, 3)]], 0, 1);
        world.start();
        world.run_until(SimTime::from_ticks(300_000));
        assert!(world
            .actor_ref::<ClientActor<LazyPrimaryMsg>>(clients[0])
            .is_done());
        let fp0 = world
            .actor_ref::<LazyPrimaryServer>(servers[0])
            .base
            .store
            .fingerprint();
        for &s in &servers[1..] {
            assert_eq!(
                world
                    .actor_ref::<LazyPrimaryServer>(s)
                    .base
                    .store
                    .fingerprint(),
                fp0
            );
        }
    }

    #[test]
    fn lazy_update_is_faster_than_propagation() {
        // The update's response arrives before secondaries have the data:
        // immediately after the client's reply, a secondary still holds
        // the old value when propagation is delayed.
        let (mut world, servers, clients) = build(2, vec![vec![write(0, 9)]], 50_000, 2);
        world.start();
        world.run_until(SimTime::from_ticks(10_000));
        let client = world.actor_ref::<ClientActor<LazyPrimaryMsg>>(clients[0]);
        assert!(client.is_done(), "lazy reply must not wait for propagation");
        let secondary = world.actor_ref::<LazyPrimaryServer>(servers[1]);
        assert_eq!(
            secondary.base.store.read(Key(0)).expect("exists").value,
            Value(0),
            "secondary must still be stale"
        );
        // After the propagation delay, it converges.
        world.run_until(SimTime::from_ticks(200_000));
        let secondary = world.actor_ref::<LazyPrimaryServer>(servers[1]);
        assert_eq!(
            secondary.base.store.read(Key(0)).expect("exists").value,
            Value(9)
        );
    }

    #[test]
    fn secondary_reads_can_be_stale() {
        // Writer commits at the primary; a reader attached to the
        // secondary reads during the staleness window.
        let (mut world, _servers, clients) = build(
            2,
            vec![
                vec![write(0, 7)], // client 0 at primary
                vec![read(0)],     // client 1 at secondary
            ],
            80_000,
            3,
        );
        world.start();
        world.run_until(SimTime::from_ticks(40_000));
        let reader = world.actor_ref::<ClientActor<LazyPrimaryMsg>>(clients[1]);
        assert!(reader.is_done());
        let observed = reader.records[0].response.as_ref().expect("r").reads[0].1;
        assert_eq!(observed, Value(0), "read should be stale in the window");
    }

    #[test]
    fn batched_propagation_group_commits_and_converges() {
        // Three writes land inside one batching window: the primary must
        // ship ONE PropagateBatch per secondary, group-commit the WAL
        // with one force, and still converge every replica.
        let mut world = World::new(SimConfig::new(21));
        let servers: Vec<NodeId> = (0..3).map(NodeId::new).collect();
        for i in 0..3 {
            world.add_actor(Box::new(
                LazyPrimaryServer::new(
                    i,
                    NodeId::new(i),
                    servers.clone(),
                    16,
                    ExecutionMode::Deterministic,
                    SimDuration::ZERO,
                )
                .with_batching(repl_gcs::BatchConfig::window(5_000)),
            ));
        }
        let client = ClientActor::<LazyPrimaryMsg>::new(
            0,
            servers.clone(),
            0,
            vec![write(0, 1), write(1, 2), write(0, 3)],
            SimDuration::from_ticks(100),
            SimDuration::from_ticks(20_000),
        );
        let c = world.add_actor(Box::new(client));
        world.start();
        world.run_until(SimTime::from_ticks(300_000));
        assert!(world.actor_ref::<ClientActor<LazyPrimaryMsg>>(c).is_done());
        let primary = world.actor_ref::<LazyPrimaryServer>(servers[0]);
        assert_eq!(primary.log.len(), 3, "all three writesets logged");
        assert!(
            primary.log.fsyncs() < 3,
            "group commit must share forces: {} forces for 3 records",
            primary.log.fsyncs()
        );
        let fp0 = primary.base.store.fingerprint();
        for &s in &servers[1..] {
            assert_eq!(
                world
                    .actor_ref::<LazyPrimaryServer>(s)
                    .base
                    .store
                    .fingerprint(),
                fp0
            );
        }
    }

    #[test]
    fn phase_skeleton_matches_figure_10_end_before_ac() {
        let (mut world, _s, _c) = build(3, vec![vec![write(0, 1)]], 5_000, 4);
        world.start();
        world.run_until(SimTime::from_ticks(300_000));
        let pt = crate::phase::PhaseTrace::from_trace(world.trace());
        let sk = pt.canonical().expect("op done");
        assert_eq!(sk.to_string(), "RE EX END AC");
        assert!(sk.responds_before_agreement());
        assert!(!sk.synchronises_before_response());
    }
}
