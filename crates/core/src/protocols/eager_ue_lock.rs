//! Eager update everywhere with distributed locking (paper §4.4.1 Fig. 8;
//! §5.4.1 Fig. 13).
//!
//! The client's local server becomes the transaction's *delegate*. For
//! each operation it requests the lock at **all** replicas (Server
//! Coordination), executes the operation at all replicas once every site
//! granted (Execution), and after the last operation runs a 2PC
//! (Agreement Coordination) before answering. Skeleton: `RE SC EX AC END`,
//! with the SC/EX pair looping per operation for multi-operation
//! transactions (Fig. 13).
//!
//! Deadlock handling is configurable (ablation A3):
//!
//! * [`DeadlockPolicy::WoundWait`] — prevention: sites wound younger
//!   conflicting holders; the victim's delegate aborts it globally and
//!   retries with the same (old) timestamp.
//! * [`DeadlockPolicy::Detect`] — server 0 periodically collects every
//!   site's wait-for edges, finds cycles in the union, and aborts the
//!   youngest member.
//!
//! The paper notes that quorums are orthogonal to the phase structure and
//! mentions the read-one/write-all extreme (§5.4.1): with
//! [`EulServer::with_rowa`] read operations lock and execute only at the
//! delegate while writes still lock everywhere — same phases, fewer
//! messages for reads.
//!
//! The protocol is *blocking* while a participant is down (the paper,
//! Section 2.1: databases accept blocking protocols) — all-site locking
//! cannot make progress without every replica. Crashes follow fail-stop
//! semantics: volatile state (lock tables, delegate bookkeeping,
//! tentative writes) is lost, so a recovered site grants locks afresh
//! rather than blocking behind phantom holders, and client re-submission
//! re-drives stalled transactions once the site is back.

use std::collections::{HashMap, HashSet};

use repl_db::{
    Acquire, DeadlockPolicy, Key, Keyspace, LockManager, LockMode, TpcCoordinator, TpcDecision,
    Transfer, TxnId, Value,
};
use repl_sim::{impl_as_any, Actor, Context, Message, NodeId, SimDuration, SimTime, TimerId};
use repl_workload::OpTemplate;

use crate::client::ProtocolMsg;
use crate::op::{ClientOp, Response};
use crate::phase::Phase;
use crate::protocols::common::{global_txn, ExecutionMode, ServerBase, RESTORE_TAG};

/// Wire messages of eager update everywhere with distributed locking.
#[derive(Debug, Clone)]
pub enum EulMsg {
    /// Client → delegate server.
    Invoke(ClientOp),
    /// Delegate → all replicas: request a lock for one operation.
    LockReq {
        /// The transaction.
        txn: TxnId,
        /// The operation step within the transaction.
        step: u32,
        /// The item to lock.
        key: Key,
        /// Shared (read) or exclusive (write).
        exclusive: bool,
        /// The delegate to answer (and to notify on wound).
        delegate: NodeId,
    },
    /// Replica → delegate: lock granted at this site.
    LockGrant {
        /// The transaction.
        txn: TxnId,
        /// The granted step.
        step: u32,
    },
    /// Replica → victim's delegate: transaction wounded at some site.
    Wound {
        /// The wounded transaction.
        victim: TxnId,
    },
    /// Delegate → all replicas: execute one operation.
    Exec {
        /// The transaction.
        txn: TxnId,
        /// The step being executed.
        step: u32,
        /// The item.
        key: Key,
        /// `Some(v)` for writes, `None` for reads.
        write: Option<Value>,
    },
    /// Delegate → participants: 2PC prepare.
    Prepare {
        /// The transaction.
        txn: TxnId,
    },
    /// Participant → delegate: 2PC vote.
    Vote {
        /// The transaction.
        txn: TxnId,
        /// Yes or no.
        yes: bool,
    },
    /// Delegate → participants: 2PC decision.
    Decision {
        /// The transaction.
        txn: TxnId,
        /// Commit or abort.
        commit: bool,
    },
    /// Detector → all: send me your wait-for edges (Detect policy).
    ProbeReq,
    /// Replica → detector: local wait-for edges.
    ProbeEdges {
        /// `waiter → holder` pairs.
        edges: Vec<(TxnId, TxnId)>,
    },
    /// Recovering replica → group: request a committed-state snapshot
    /// (all-site locking keeps no redo log; snapshots are the only
    /// transfer form).
    SyncReq,
    /// Live replica → recovering replica: committed-state snapshot.
    SyncData(Box<Transfer>),
    /// Server → client.
    Reply(Response),
}

impl Message for EulMsg {
    fn wire_size(&self) -> usize {
        match self {
            EulMsg::Invoke(op) => 8 + op.wire_size(),
            EulMsg::LockReq { .. } => 40,
            EulMsg::LockGrant { .. } => 24,
            EulMsg::Wound { .. } => 20,
            EulMsg::Exec { .. } => 40,
            EulMsg::Prepare { .. } => 20,
            EulMsg::Vote { .. } => 24,
            EulMsg::Decision { .. } => 24,
            EulMsg::ProbeReq => 8,
            EulMsg::ProbeEdges { edges } => 8 + edges.len() * 24,
            EulMsg::SyncReq => 8,
            EulMsg::SyncData(t) => 8 + t.wire_size(),
            EulMsg::Reply(r) => 8 + r.wire_size(),
        }
    }
}

impl ProtocolMsg for EulMsg {
    fn invoke(op: ClientOp) -> Self {
        EulMsg::Invoke(op)
    }
    fn response(&self) -> Option<&Response> {
        match self {
            EulMsg::Reply(r) => Some(r),
            _ => None,
        }
    }
}

#[derive(Debug)]
enum DelPhase {
    /// Waiting for lock grants for `step`.
    Locking {
        step: u32,
        awaiting: HashSet<NodeId>,
    },
    /// 2PC voting.
    Committing(TpcCoordinator<NodeId>),
}

#[derive(Debug)]
struct DelegateTxn {
    op: ClientOp,
    step: usize,
    reads: Vec<(Key, Value)>,
    phase: DelPhase,
    retries: u32,
}

const MAX_RETRIES: u32 = 30;
const DETECT_TICK: u64 = 1;
const RETRY_TICK: u64 = 2;

/// A replica server for eager update everywhere with distributed locking.
pub struct EulServer {
    /// Shared database/server state (public for post-run inspection).
    pub base: ServerBase,
    me: NodeId,
    servers: Vec<NodeId>,
    lm: LockManager,
    policy: DeadlockPolicy,
    detect_every: SimDuration,
    /// Transactions this server delegates.
    delegated: HashMap<TxnId, DelegateTxn>,
    /// Wounded operations awaiting retry here.
    requeue: Vec<(ClientOp, u32)>,
    /// For each txn we hold or queue locks for: its delegate and step.
    lock_owner: HashMap<TxnId, (NodeId, u32)>,
    /// Transactions with tentative local writes.
    tentative: HashSet<TxnId>,
    /// Detect-policy probe state (server 0 only).
    probe_edges: Vec<(TxnId, TxnId)>,
    probe_answers: usize,
    /// Wound events observed (statistic for the conflicts study).
    pub wounds: u64,
    /// Read-one/write-all: reads lock and execute locally only.
    rowa: bool,
    /// Waiting for the first snapshot reply after a crash.
    recovering: bool,
    /// Exec/Decision traffic that arrived mid-transfer, replayed once
    /// the snapshot lands (its writes must sit *on top* of the
    /// transferred state, not under it).
    replay: Vec<(NodeId, EulMsg)>,
    marks: bool,
}

impl EulServer {
    /// Creates server `site` of `servers`.
    pub fn new(
        site: u32,
        me: NodeId,
        servers: Vec<NodeId>,
        keyspace: impl Into<Keyspace>,
        exec: ExecutionMode,
        policy: DeadlockPolicy,
    ) -> Self {
        let ks = keyspace.into();
        EulServer {
            base: ServerBase::new(site, ks, exec),
            me,
            servers,
            lm: LockManager::with_keyspace(policy, ks),
            policy,
            detect_every: SimDuration::from_ticks(2_500),
            delegated: HashMap::new(),
            requeue: Vec::new(),
            lock_owner: HashMap::new(),
            tentative: HashSet::new(),
            probe_edges: Vec::new(),
            probe_answers: 0,
            wounds: 0,
            rowa: false,
            recovering: false,
            replay: Vec::new(),
            marks: site == 0,
        }
    }

    /// Enables the read-one/write-all optimisation (paper §5.4.1): read
    /// locks are taken only at the delegate; writes still lock all sites.
    pub fn with_rowa(mut self, rowa: bool) -> Self {
        self.rowa = rowa;
        self
    }

    fn start_txn(&mut self, ctx: &mut Context<'_, EulMsg>, op: ClientOp, retries: u32) {
        let txn = global_txn(op.id);
        if self.delegated.contains_key(&txn) {
            return;
        }
        self.base.tm.begin(txn);
        self.delegated.insert(
            txn,
            DelegateTxn {
                op,
                step: 0,
                reads: Vec::new(),
                phase: DelPhase::Locking {
                    step: 0,
                    awaiting: HashSet::new(),
                },
                retries,
            },
        );
        self.request_lock(ctx, txn);
    }

    /// Sends the lock request for the current step to every replica
    /// (including this one, via loopback, for uniformity).
    fn request_lock(&mut self, ctx: &mut Context<'_, EulMsg>, txn: TxnId) {
        let Some(t) = self.delegated.get_mut(&txn) else {
            return;
        };
        let step = t.step;
        if step >= t.op.txn.ops.len() {
            self.start_commit(ctx, txn);
            return;
        }
        let (key, exclusive) = match t.op.txn.ops[step] {
            OpTemplate::Read(k) => (k, false),
            OpTemplate::Write(k, _) => (k, true),
        };
        if self.marks {
            ctx.mark(Phase::ServerCoordination.tag(), t.op.id.0, step as u64);
        }
        // Read-one/write-all: a read locks only the local copy.
        let targets: Vec<NodeId> = if self.rowa && !exclusive {
            vec![self.me]
        } else {
            self.servers.clone()
        };
        t.phase = DelPhase::Locking {
            step: step as u32,
            awaiting: targets.iter().copied().collect(),
        };
        for &s in &targets {
            ctx.send(
                s,
                EulMsg::LockReq {
                    txn,
                    step: step as u32,
                    key,
                    exclusive,
                    delegate: self.me,
                },
            );
        }
    }

    /// All sites granted: execute the step everywhere and move on.
    fn step_granted(&mut self, ctx: &mut Context<'_, EulMsg>, txn: TxnId) {
        let Some(t) = self.delegated.get_mut(&txn) else {
            return;
        };
        let step = t.step;
        let (key, write) = match t.op.txn.ops[step] {
            OpTemplate::Read(k) => (k, None),
            OpTemplate::Write(k, v) => (k, Some(v)),
        };
        if self.marks {
            ctx.mark(Phase::Execution.tag(), t.op.id.0, step as u64);
        }
        t.step += 1;
        // Reads under read-one/write-all execute only locally.
        let exec_targets: Vec<NodeId> = if self.rowa && write.is_none() {
            vec![self.me]
        } else {
            self.servers.clone()
        };
        for &s in &exec_targets {
            ctx.send(
                s,
                EulMsg::Exec {
                    txn,
                    step: step as u32,
                    key,
                    write,
                },
            );
        }
        // The delegate's local Exec arrives by loopback and records the
        // read value; but the client response needs the value *now* — read
        // it directly (the lock is held, so it cannot change in between).
        if write.is_none() {
            let v = self.base.store.read(key).map_or(Value(0), |v| v.value);
            if let Some(t) = self.delegated.get_mut(&txn) {
                t.reads.push((key, v));
            }
        }
        self.request_lock(ctx, txn);
    }

    fn start_commit(&mut self, ctx: &mut Context<'_, EulMsg>, txn: TxnId) {
        let others: Vec<NodeId> = self
            .servers
            .iter()
            .copied()
            .filter(|&s| s != self.me)
            .collect();
        let Some(t) = self.delegated.get_mut(&txn) else {
            return;
        };
        if self.marks {
            ctx.mark(Phase::AgreementCoordination.tag(), t.op.id.0, u64::MAX);
        }
        let mut coord = TpcCoordinator::new(others.clone());
        coord.start();
        t.phase = DelPhase::Committing(coord);
        if others.is_empty() {
            self.finish(ctx, txn, true);
            return;
        }
        for s in others {
            ctx.send(s, EulMsg::Prepare { txn });
        }
    }

    fn finish(&mut self, ctx: &mut Context<'_, EulMsg>, txn: TxnId, commit: bool) {
        let Some(t) = self.delegated.remove(&txn) else {
            return;
        };
        for &s in &self.servers {
            if s != self.me {
                ctx.send(s, EulMsg::Decision { txn, commit });
            }
        }
        self.apply_decision(ctx, txn, commit);
        let resp = Response {
            op: t.op.id,
            committed: commit,
            reads: t.reads,
        };
        if commit {
            self.base.remember(&resp);
            ctx.send(t.op.client, EulMsg::Reply(resp));
        } else if t.retries < MAX_RETRIES {
            self.requeue.push((t.op, t.retries + 1));
            let backoff = SimDuration::from_ticks(400 + 150 * t.retries as u64);
            ctx.set_timer(backoff, RETRY_TICK);
        } else {
            ctx.send(t.op.client, EulMsg::Reply(resp));
        }
    }

    /// Rejoins the group after a crash (or a completed volume restore):
    /// re-arms the deadlock detector and pulls a committed snapshot.
    fn rejoin_now(&mut self, ctx: &mut Context<'_, EulMsg>) {
        // Timers do not survive a crash: re-arm the deadlock detector.
        if self.policy == DeadlockPolicy::Detect && self.base.site == 0 {
            ctx.set_timer(self.detect_every, DETECT_TICK);
        }
        if self.servers.len() == 1 {
            self.base.recovery.complete(ctx.now().ticks());
            return;
        }
        self.recovering = true;
        self.replay.clear();
        for &s in &self.servers.clone() {
            if s != self.me {
                ctx.send(s, EulMsg::SyncReq);
            }
        }
    }

    /// Commits or aborts the local tentative state and releases locks.
    fn apply_decision(&mut self, ctx: &mut Context<'_, EulMsg>, txn: TxnId, commit: bool) {
        if self.tentative.remove(&txn) || self.base.tm.is_active(txn) {
            if commit {
                if let Ok(ws) = self.base.tm.commit(txn) {
                    if let Some(tier) = &mut self.base.tier {
                        tier.note_commit(&ws);
                    }
                }
                self.base.history.mark_committed(txn);
                self.base.committed += 1;
            } else {
                let _ = self.base.tm.abort(&mut self.base.store, txn);
                self.base.history.purge(txn);
                self.base.aborted += 1;
            }
        }
        self.lock_owner.remove(&txn);
        let granted = self.lm.release_all(txn);
        for (g, _, _) in granted {
            self.granted_locally(ctx, g);
        }
    }

    /// A queued lock request of `txn` became grantable at this site.
    fn granted_locally(&mut self, ctx: &mut Context<'_, EulMsg>, txn: TxnId) {
        if let Some(&(delegate, step)) = self.lock_owner.get(&txn) {
            ctx.send(delegate, EulMsg::LockGrant { txn, step });
        }
    }

    /// A site (or the detector) wounded `victim`, for which we delegate.
    fn wound_delegated(&mut self, ctx: &mut Context<'_, EulMsg>, victim: TxnId) {
        if self.delegated.contains_key(&victim) {
            self.wounds += 1;
            self.finish(ctx, victim, false);
        }
    }

    fn run_detection(&mut self, ctx: &mut Context<'_, EulMsg>) {
        self.probe_edges = self.lm.wait_for_edges();
        self.probe_answers = 1;
        for &s in &self.servers {
            if s != self.me {
                ctx.send(s, EulMsg::ProbeReq);
            }
        }
        self.maybe_resolve_deadlock(ctx);
    }

    fn maybe_resolve_deadlock(&mut self, ctx: &mut Context<'_, EulMsg>) {
        if self.probe_answers < self.servers.len() {
            return;
        }
        // Union collected; reuse the lock manager's cycle finder through a
        // scratch structure.
        if let Some(victim) = find_cycle_victim(&self.probe_edges) {
            for &s in &self.servers {
                ctx.send(s, EulMsg::Wound { victim });
            }
        }
        self.probe_answers = 0;
    }
}

/// Finds the youngest transaction on a wait-for cycle, if any.
fn find_cycle_victim(edges: &[(TxnId, TxnId)]) -> Option<TxnId> {
    use std::collections::HashMap as Map;
    let mut adj: Map<TxnId, Vec<TxnId>> = Map::new();
    let mut nodes: Vec<TxnId> = Vec::new();
    for &(a, b) in edges {
        adj.entry(a).or_default().push(b);
        nodes.push(a);
        nodes.push(b);
    }
    nodes.sort_unstable();
    nodes.dedup();
    #[derive(Clone, Copy, PartialEq)]
    enum C {
        W,
        G,
        B,
    }
    let mut color: Map<TxnId, C> = nodes.iter().map(|&n| (n, C::W)).collect();
    for &start in &nodes {
        if color[&start] != C::W {
            continue;
        }
        let mut stack = vec![(start, 0usize)];
        let mut path = vec![start];
        color.insert(start, C::G);
        while let Some(&mut (node, ref mut idx)) = stack.last_mut() {
            let next = adj.get(&node).and_then(|v| v.get(*idx).copied());
            *idx += 1;
            match next {
                Some(n) => match color[&n] {
                    C::G => {
                        let pos = path.iter().position(|&p| p == n).expect("on path");
                        return path[pos..].iter().copied().max();
                    }
                    C::W => {
                        color.insert(n, C::G);
                        stack.push((n, 0));
                        path.push(n);
                    }
                    C::B => {}
                },
                None => {
                    color.insert(node, C::B);
                    stack.pop();
                    path.pop();
                }
            }
        }
    }
    None
}

impl Actor<EulMsg> for EulServer {
    fn on_start(&mut self, ctx: &mut Context<'_, EulMsg>) {
        if self.policy == DeadlockPolicy::Detect && self.base.site == 0 {
            ctx.set_timer(self.detect_every, DETECT_TICK);
        }
    }

    fn on_message(&mut self, ctx: &mut Context<'_, EulMsg>, from: NodeId, msg: EulMsg) {
        if self.base.restoring() {
            return; // deaf until the volume restore download completes
        }
        if self.recovering {
            // Keep granting locks and voting so the group never wedges
            // on us, but hold writes and verdicts back until the
            // snapshot is in place.
            if matches!(msg, EulMsg::Exec { .. } | EulMsg::Decision { .. }) {
                self.replay.push((from, msg));
                return;
            }
            // A delegate with a stale store would serve stale reads.
            if matches!(msg, EulMsg::Invoke(_)) {
                return;
            }
        }
        match msg {
            EulMsg::Invoke(op) => {
                if let Some(resp) = self.base.cached(op.id) {
                    ctx.send(op.client, EulMsg::Reply(resp));
                    return;
                }
                let txn = global_txn(op.id);
                if !self.delegated.contains_key(&txn)
                    && !self.requeue.iter().any(|(o, _)| o.id == op.id)
                {
                    self.start_txn(ctx, op, 0);
                }
            }
            EulMsg::LockReq {
                txn,
                step,
                key,
                exclusive,
                delegate,
            } => {
                self.lock_owner.insert(txn, (delegate, step));
                let mode = if exclusive {
                    LockMode::Exclusive
                } else {
                    LockMode::Shared
                };
                match self.lm.acquire(txn, key, mode) {
                    Acquire::Granted => {
                        ctx.send(delegate, EulMsg::LockGrant { txn, step });
                    }
                    Acquire::Waiting { wounded } => {
                        for v in wounded {
                            self.wounds += 1;
                            if let Some(&(d, _)) = self.lock_owner.get(&v) {
                                ctx.send(d, EulMsg::Wound { victim: v });
                            }
                        }
                    }
                }
            }
            EulMsg::LockGrant { txn, step } => {
                let ready = {
                    let Some(t) = self.delegated.get_mut(&txn) else {
                        return;
                    };
                    match &mut t.phase {
                        DelPhase::Locking { step: s, awaiting } if *s == step => {
                            awaiting.remove(&from);
                            awaiting.is_empty()
                        }
                        _ => false,
                    }
                };
                if ready {
                    self.step_granted(ctx, txn);
                }
            }
            EulMsg::Wound { victim } => {
                self.wound_delegated(ctx, victim);
            }
            EulMsg::Exec {
                txn, key, write, ..
            } => {
                self.base.tm.begin(txn);
                self.tentative.insert(txn);
                match write {
                    Some(v) => {
                        let v = self.base.effective_value(v);
                        let _ = self.base.tm.write(&mut self.base.store, txn, key, v);
                        self.base.history.record(
                            self.base.site,
                            txn,
                            key,
                            repl_db::AccessKind::Write,
                        );
                    }
                    None => {
                        let _ = self.base.tm.read(&self.base.store, txn, key);
                        self.base.history.record(
                            self.base.site,
                            txn,
                            key,
                            repl_db::AccessKind::Read,
                        );
                    }
                }
            }
            EulMsg::Prepare { txn } => {
                ctx.send(from, EulMsg::Vote { txn, yes: true });
            }
            EulMsg::Vote { txn, yes } => {
                let decision = {
                    let Some(t) = self.delegated.get_mut(&txn) else {
                        return;
                    };
                    match &mut t.phase {
                        DelPhase::Committing(c) => c.on_vote(from, yes),
                        _ => None,
                    }
                };
                match decision {
                    Some(TpcDecision::Commit) => self.finish(ctx, txn, true),
                    Some(TpcDecision::Abort) => self.finish(ctx, txn, false),
                    None => {}
                }
            }
            EulMsg::Decision { txn, commit } => {
                self.apply_decision(ctx, txn, commit);
            }
            EulMsg::ProbeReq => {
                ctx.send(
                    from,
                    EulMsg::ProbeEdges {
                        edges: self.lm.wait_for_edges(),
                    },
                );
            }
            EulMsg::ProbeEdges { edges } => {
                self.probe_edges.extend(edges);
                self.probe_answers += 1;
                self.maybe_resolve_deadlock(ctx);
            }
            EulMsg::SyncReq => {
                if !self.recovering {
                    let t = Transfer::committed_snapshot(&self.base.store, &self.base.tm, 0);
                    ctx.send(from, EulMsg::SyncData(Box::new(t)));
                }
            }
            EulMsg::SyncData(t) => {
                if !self.recovering {
                    return;
                }
                self.recovering = false;
                let _ = self.base.install_transfer(&t);
                for (peer, m) in std::mem::take(&mut self.replay) {
                    self.on_message(ctx, peer, m);
                }
                self.base.recovery.complete(ctx.now().ticks());
            }
            EulMsg::Reply(_) => {}
        }
    }

    fn on_timer(&mut self, ctx: &mut Context<'_, EulMsg>, _timer: TimerId, tag: u64) {
        if tag == RESTORE_TAG {
            self.base.finish_restore();
            self.rejoin_now(ctx);
            return;
        }
        if self.base.restoring() {
            return;
        }
        match tag {
            DETECT_TICK => {
                self.run_detection(ctx);
                ctx.set_timer(self.detect_every, DETECT_TICK);
            }
            RETRY_TICK => {
                let pending = std::mem::take(&mut self.requeue);
                for (op, retries) in pending {
                    self.start_txn(ctx, op, retries);
                }
            }
            _ => {}
        }
    }

    fn on_crash(&mut self, _now: SimTime) {
        // Fail-stop: volatile state dies with the process. Lock tables,
        // delegate bookkeeping and tentative writes are lost; only the
        // committed store survives. Without this amnesia a recovered site
        // would still "hold" locks for transactions that finished while it
        // was down — the 2PC decision that releases them was dropped — and
        // every later conflicting transaction would queue behind them
        // forever (wound-wait never wounds an older phantom holder).
        let mut active: Vec<TxnId> = self
            .tentative
            .iter()
            .copied()
            .chain(self.delegated.keys().copied()) // sorted-below
            .collect();
        active.sort_unstable(); // set iteration order is unspecified
        for txn in active {
            if self.base.tm.is_active(txn) {
                let _ = self.base.tm.abort(&mut self.base.store, txn);
            }
            self.base.history.purge(txn);
        }
        self.tentative.clear();
        self.delegated.clear();
        self.requeue.clear();
        self.lock_owner.clear();
        self.lm = LockManager::with_keyspace(self.policy, self.base.keyspace());
        self.probe_edges.clear();
        self.probe_answers = 0;
    }

    fn on_recover(&mut self, ctx: &mut Context<'_, EulMsg>) {
        // `on_crash` already dropped the volatile state (amnesia); what
        // remains is closing the gap in committed state via a peer
        // snapshot — all-site locking keeps no redo log to replay.
        self.base.recovery.begin(ctx.now().ticks());
        if let Some(plan) = self.base.begin_restore(ctx.now().ticks()) {
            // No stream or cursor exists: the tier restored the committed
            // store, and the rejoin snapshot covers anything lost.
            if plan.delay > 0 {
                ctx.set_timer(SimDuration::from_ticks(plan.delay), RESTORE_TAG);
                return;
            }
            self.base.finish_restore();
        }
        self.rejoin_now(ctx);
    }

    fn on_volume_loss(&mut self, now: SimTime) {
        // Same amnesia as a crash, plus the committed store is gone too.
        self.on_crash(now);
        self.base.wipe_volume(now.ticks());
    }

    fn on_settle(&mut self, ctx: &mut Context<'_, EulMsg>) {
        // No replicated stream exists; the committed count is the frame
        // token (these restores never rewind by token anyway).
        self.base.seal_now(ctx.now().ticks(), self.base.committed);
    }

    impl_as_any!();
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client::ClientActor;
    use repl_sim::{SimConfig, SimTime, World};
    use repl_workload::TxnTemplate;

    fn write(k: u64, v: i64) -> TxnTemplate {
        TxnTemplate {
            ops: vec![OpTemplate::Write(Key(k), Value(v))],
        }
    }
    fn read(k: u64) -> TxnTemplate {
        TxnTemplate {
            ops: vec![OpTemplate::Read(Key(k))],
        }
    }
    fn multi(ops: Vec<OpTemplate>) -> TxnTemplate {
        TxnTemplate { ops }
    }

    fn build(
        n: u32,
        txns: Vec<Vec<TxnTemplate>>,
        policy: DeadlockPolicy,
        seed: u64,
    ) -> (World<EulMsg>, Vec<NodeId>, Vec<NodeId>) {
        let mut world = World::new(SimConfig::new(seed));
        let servers: Vec<NodeId> = (0..n).map(NodeId::new).collect();
        for i in 0..n {
            world.add_actor(Box::new(EulServer::new(
                i,
                NodeId::new(i),
                servers.clone(),
                16,
                ExecutionMode::Deterministic,
                policy,
            )));
        }
        let mut clients = Vec::new();
        for (c, t) in txns.into_iter().enumerate() {
            // Each client talks to its local server (update everywhere!).
            let client = ClientActor::<EulMsg>::new(
                c as u32,
                servers.clone(),
                c % n as usize,
                t,
                SimDuration::from_ticks(100),
                SimDuration::from_ticks(40_000),
            );
            clients.push(world.add_actor(Box::new(client)));
        }
        (world, servers, clients)
    }

    #[test]
    fn single_op_write_replicates_to_all_sites() {
        let (mut world, servers, clients) = build(
            3,
            vec![vec![write(0, 7), read(0)]],
            DeadlockPolicy::WoundWait,
            1,
        );
        world.start();
        world.run_until(SimTime::from_ticks(300_000));
        let client = world.actor_ref::<ClientActor<EulMsg>>(clients[0]);
        assert!(client.is_done());
        assert_eq!(
            client.records[1].response.as_ref().expect("r").reads,
            vec![(Key(0), Value(7))]
        );
        let fp0 = world
            .actor_ref::<EulServer>(servers[0])
            .base
            .store
            .fingerprint();
        for &s in &servers[1..] {
            assert_eq!(
                world.actor_ref::<EulServer>(s).base.store.fingerprint(),
                fp0
            );
        }
    }

    #[test]
    fn updates_from_different_delegates_converge() {
        let (mut world, servers, clients) = build(
            3,
            vec![
                vec![write(0, 1), write(1, 2)],
                vec![write(2, 3), write(3, 4)],
                vec![write(4, 5)],
            ],
            DeadlockPolicy::WoundWait,
            2,
        );
        world.start();
        world.run_until(SimTime::from_ticks(500_000));
        for &c in &clients {
            assert!(world.actor_ref::<ClientActor<EulMsg>>(c).is_done());
        }
        let fp0 = world
            .actor_ref::<EulServer>(servers[0])
            .base
            .store
            .fingerprint();
        for &s in &servers[1..] {
            assert_eq!(
                world.actor_ref::<EulServer>(s).base.store.fingerprint(),
                fp0
            );
        }
    }

    #[test]
    fn opposite_order_writes_resolved_by_wound_wait() {
        let (mut world, servers, clients) = build(
            2,
            vec![
                vec![multi(vec![
                    OpTemplate::Write(Key(0), Value(1)),
                    OpTemplate::Write(Key(1), Value(2)),
                ])],
                vec![multi(vec![
                    OpTemplate::Write(Key(1), Value(20)),
                    OpTemplate::Write(Key(0), Value(10)),
                ])],
            ],
            DeadlockPolicy::WoundWait,
            3,
        );
        world.start();
        world.run_until(SimTime::from_ticks(3_000_000));
        for &c in &clients {
            assert!(
                world.actor_ref::<ClientActor<EulMsg>>(c).is_done(),
                "deadlock not resolved for {c}"
            );
        }
        let mut merged = repl_db::ReplicatedHistory::new();
        for &s in &servers {
            merged.merge(&world.actor_ref::<EulServer>(s).base.history);
        }
        assert!(merged.check_one_copy_serializable().is_ok());
        let fp0 = world
            .actor_ref::<EulServer>(servers[0])
            .base
            .store
            .fingerprint();
        assert_eq!(
            world
                .actor_ref::<EulServer>(servers[1])
                .base
                .store
                .fingerprint(),
            fp0
        );
    }

    #[test]
    fn opposite_order_writes_resolved_by_detection() {
        let (mut world, servers, clients) = build(
            2,
            vec![
                vec![multi(vec![
                    OpTemplate::Write(Key(0), Value(1)),
                    OpTemplate::Write(Key(1), Value(2)),
                ])],
                vec![multi(vec![
                    OpTemplate::Write(Key(1), Value(20)),
                    OpTemplate::Write(Key(0), Value(10)),
                ])],
            ],
            DeadlockPolicy::Detect,
            4,
        );
        world.start();
        world.run_until(SimTime::from_ticks(5_000_000));
        for &c in &clients {
            assert!(
                world.actor_ref::<ClientActor<EulMsg>>(c).is_done(),
                "deadlock not detected/resolved for {c}"
            );
        }
        let fp0 = world
            .actor_ref::<EulServer>(servers[0])
            .base
            .store
            .fingerprint();
        assert_eq!(
            world
                .actor_ref::<EulServer>(servers[1])
                .base
                .store
                .fingerprint(),
            fp0
        );
    }

    #[test]
    fn phase_skeleton_single_op_matches_figure_8() {
        let (mut world, _s, _c) = build(3, vec![vec![write(0, 1)]], DeadlockPolicy::WoundWait, 5);
        world.start();
        world.run_until(SimTime::from_ticks(300_000));
        let pt = crate::phase::PhaseTrace::from_trace(world.trace());
        assert_eq!(
            pt.canonical().expect("op done").to_string(),
            "RE SC EX AC END"
        );
    }

    #[test]
    fn phase_skeleton_multi_op_loops_sc_ex_as_figure_13() {
        let (mut world, _s, _c) = build(
            3,
            vec![vec![multi(vec![
                OpTemplate::Write(Key(0), Value(1)),
                OpTemplate::Write(Key(1), Value(2)),
            ])]],
            DeadlockPolicy::WoundWait,
            6,
        );
        world.start();
        world.run_until(SimTime::from_ticks(500_000));
        let pt = crate::phase::PhaseTrace::from_trace(world.trace());
        let sk = pt.canonical().expect("op done");
        assert_eq!(sk.to_string(), "RE SC EX SC EX AC END");
        assert!(sk.has_loop());
    }

    #[test]
    fn crash_amnesia_releases_stale_locks() {
        let mut s = EulServer::new(
            0,
            NodeId::new(0),
            vec![NodeId::new(0)],
            16,
            ExecutionMode::Deterministic,
            DeadlockPolicy::WoundWait,
        );
        let t1 = global_txn(crate::op::OpId(1));
        assert!(matches!(
            s.lm.acquire(t1, Key(0), LockMode::Exclusive),
            Acquire::Granted
        ));
        s.lock_owner.insert(t1, (NodeId::new(0), 0));
        s.on_crash(SimTime::from_ticks(100));
        // A fresh transaction gets the lock immediately: no phantom holder.
        let t2 = global_txn(crate::op::OpId(2));
        assert!(matches!(
            s.lm.acquire(t2, Key(0), LockMode::Exclusive),
            Acquire::Granted
        ));
        assert!(s.lock_owner.is_empty());
        assert!(s.delegated.is_empty());
        assert!(s.tentative.is_empty());
    }

    #[test]
    fn conflicting_writes_complete_across_a_participant_crash() {
        // Server 2 crashes mid-run (possibly holding grants for an
        // in-flight transaction that commits while it is down) and later
        // recovers; the same hot key keeps being written. Every
        // transaction must still be answered — a stale grant surviving
        // the crash would wedge the key forever.
        let txns: Vec<TxnTemplate> = (0..5).map(|i| write(0, 10 + i)).collect();
        let (mut world, servers, clients) = build(3, vec![txns], DeadlockPolicy::WoundWait, 11);
        world.schedule_crash(SimTime::from_ticks(300), servers[2]);
        world.schedule_recover(SimTime::from_ticks(20_000), servers[2]);
        world.start();
        world.run_until(SimTime::from_ticks(500_000));
        let client = world.actor_ref::<ClientActor<EulMsg>>(clients[0]);
        assert!(
            client.is_done(),
            "writes wedged behind a crashed participant"
        );
        // The survivors agree; the crashed site may have missed decisions.
        assert_eq!(
            world
                .actor_ref::<EulServer>(servers[0])
                .base
                .store
                .fingerprint(),
            world
                .actor_ref::<EulServer>(servers[1])
                .base
                .store
                .fingerprint(),
        );
    }

    #[test]
    fn history_under_contention_is_one_copy_serializable() {
        // Several clients hammering two hot keys with read-modify-write
        // style transactions; whatever commits must be 1SR.
        let mut txns = Vec::new();
        for c in 0..4u64 {
            txns.push(vec![
                multi(vec![
                    OpTemplate::Read(Key(0)),
                    OpTemplate::Write(Key(0), Value(100 + c as i64)),
                ]),
                multi(vec![
                    OpTemplate::Read(Key(1)),
                    OpTemplate::Write(Key(1), Value(200 + c as i64)),
                ]),
            ]);
        }
        let (mut world, servers, clients) = build(3, txns, DeadlockPolicy::WoundWait, 7);
        world.start();
        world.run_until(SimTime::from_ticks(5_000_000));
        for &c in &clients {
            assert!(
                world.actor_ref::<ClientActor<EulMsg>>(c).is_done(),
                "{c} stuck"
            );
        }
        let mut merged = repl_db::ReplicatedHistory::new();
        for &s in &servers {
            merged.merge(&world.actor_ref::<EulServer>(s).base.history);
        }
        merged.check_one_copy_serializable().expect("1SR violated");
        let fp0 = world
            .actor_ref::<EulServer>(servers[0])
            .base
            .store
            .fingerprint();
        for &s in &servers[1..] {
            assert_eq!(
                world.actor_ref::<EulServer>(s).base.store.fingerprint(),
                fp0
            );
        }
    }
}
