//! The experiment runner: build a world for a technique, drive the
//! workload to completion, and collect a [`RunReport`].

use repl_db::DeadlockPolicy;
use repl_gcs::{BatchConfig, ConsensusConfig, FdConfig, VsConfig};
use repl_sim::{
    Actor, LatencyHistogram, LatencyStats, Message, NetworkConfig, NodeId, SimConfig, SimDuration,
    SimTime, World,
};
use repl_workload::{
    ArrivalDist, ArrivalStream, CrashSchedule, FaultEvent, FaultPlan, FaultPlanError, WorkloadGen,
    WorkloadSpec,
};

use crate::client::{AggregateClients, ClientActor, ClientGroup, OpenLoopClient, ProtocolMsg};
use crate::durability::DurabilityConfig;
use crate::phase::PhaseTrace;
use crate::protocols::common::{op_of_txn, AbcastImpl, ExecutionMode};
use crate::protocols::lazy_ue::ReconcileMode;
use crate::protocols::{
    active::{ActiveMsg, ActiveServer},
    certification::{CertMsg, CertServer},
    eager_primary::{EagerPrimaryMsg, EagerPrimaryServer},
    eager_ue_abcast::{EuaMsg, EuaServer},
    eager_ue_lock::{EulMsg, EulServer},
    lazy_primary::{LazyPrimaryMsg, LazyPrimaryServer},
    lazy_ue::{LazyUeMsg, LazyUeServer},
    passive::{PassiveMsg, PassiveServer},
    semi_active::{SemiActiveMsg, SemiActiveServer},
    semi_passive::{SemiPassiveMsg, SemiPassiveServer},
};
use crate::report::RunReport;
use crate::technique::{Technique, UpdateLocation};

/// How clients generate load.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Arrival {
    /// Closed loop: one outstanding operation per client, think time
    /// between transactions, timeout-based re-submission.
    #[default]
    Closed,
    /// Open loop: Poisson arrivals with the given mean inter-arrival time
    /// (ticks); several operations may be outstanding, none are retried.
    Open(u64),
    /// Aggregated open loop: the whole client population is simulated by
    /// one arrival process per server group instead of one actor per
    /// client, so the client count is a parameter rather than an actor
    /// count (a million clients cost a handful of actors). `mean` is the
    /// *per-client* mean inter-arrival time in ticks; the group stream
    /// runs at `mean / group size`. Latencies go into a constant-memory
    /// [`LatencyHistogram`] ([`RunReport::latency_hist`]) and no
    /// per-operation records are kept.
    OpenAggregated {
        /// Per-client mean inter-arrival time, in ticks.
        mean: u64,
        /// Shape of the arrival process.
        dist: ArrivalDist,
    },
}

/// Everything that parameterises one experiment run.
#[derive(Debug, Clone)]
pub struct RunConfig {
    /// The replication technique to run.
    pub technique: Technique,
    /// Number of replica servers.
    pub servers: u32,
    /// Number of closed-loop clients.
    pub clients: u32,
    /// The workload.
    pub workload: WorkloadSpec,
    /// Master seed (world RNG and workload generators derive from it).
    pub seed: u64,
    /// Network model.
    pub network: NetworkConfig,
    /// Fault load: crashes/recoveries, partitions/heals, link faults.
    /// Node ids in the plan refer to *servers* (`0..servers`).
    pub faults: FaultPlan,
    /// Which Atomic Broadcast implementation ABCAST-based techniques use.
    pub abcast: AbcastImpl,
    /// Batching window for the ordering/propagation rounds of the
    /// ABCAST-based and primary-copy techniques (and for WAL group
    /// commit at the primaries). `BatchConfig::disabled()` (the
    /// default) reproduces the unbatched behaviour bit-for-bit.
    pub batching: BatchConfig,
    /// Whether server execution is deterministic.
    pub exec: ExecutionMode,
    /// Deadlock policy for the distributed-locking technique.
    pub deadlock: DeadlockPolicy,
    /// Read-one/write-all reads for the distributed-locking technique.
    pub rowa: bool,
    /// Reconciliation rule for lazy update everywhere.
    pub reconcile: ReconcileMode,
    /// Extra propagation delay for the lazy techniques.
    pub propagation_delay: SimDuration,
    /// Redo-log retention at the techniques that keep a log (eager and
    /// lazy primary copy): how many entries stay available for
    /// log-suffix recovery transfers before truncation forces snapshot
    /// transfers. `None` retains everything.
    pub log_retention: Option<usize>,
    /// The durable log tier every server uploads committed writesets
    /// into. Disabled (the default) reproduces the untiered behaviour
    /// bit-for-bit; enabling it arms volume-loss survival.
    pub durability: DurabilityConfig,
    /// Simulated cost of one stable-storage force, charged when a
    /// restore replays a durable log suffix. Defaults to
    /// [`repl_db::FSYNC_TICKS`].
    pub fsync_ticks: u64,
    /// Client retry timeout.
    pub retry_after: SimDuration,
    /// Hard deadline for the run.
    pub max_time: SimTime,
    /// Record a trace (needed for phase figures; disable in benches).
    pub trace: bool,
    /// Client arrival process.
    pub arrival: Arrival,
}

impl RunConfig {
    /// A reasonable default configuration for `technique`: 3 servers,
    /// 2 clients, the default workload, LAN network, no failures.
    pub fn new(technique: Technique) -> Self {
        RunConfig {
            technique,
            servers: 3,
            clients: 2,
            workload: WorkloadSpec::default(),
            seed: 1,
            network: NetworkConfig::lan(),
            faults: FaultPlan::new(),
            abcast: AbcastImpl::Sequencer,
            batching: BatchConfig::disabled(),
            exec: ExecutionMode::Deterministic,
            deadlock: DeadlockPolicy::WoundWait,
            rowa: false,
            reconcile: ReconcileMode::Lww,
            propagation_delay: SimDuration::ZERO,
            log_retention: None,
            durability: DurabilityConfig::disabled(),
            fsync_ticks: repl_db::FSYNC_TICKS,
            retry_after: SimDuration::from_ticks(25_000),
            max_time: SimTime::from_ticks(30_000_000),
            trace: true,
            arrival: Arrival::Closed,
        }
    }

    /// Sets the number of servers.
    pub fn with_servers(mut self, n: u32) -> Self {
        assert!(n > 0, "at least one server required");
        self.servers = n;
        self
    }

    /// Sets the number of clients.
    pub fn with_clients(mut self, n: u32) -> Self {
        self.clients = n;
        self
    }

    /// Sets the workload.
    pub fn with_workload(mut self, w: WorkloadSpec) -> Self {
        self.workload = w;
        self
    }

    /// Sets the seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the network model.
    pub fn with_network(mut self, n: NetworkConfig) -> Self {
        self.network = n;
        self
    }

    /// Sets the fault load.
    pub fn with_faults(mut self, f: FaultPlan) -> Self {
        self.faults = f;
        self
    }

    /// Sets a crash-only fault load (compatibility shim over
    /// [`RunConfig::with_faults`]).
    pub fn with_crashes(mut self, c: CrashSchedule) -> Self {
        self.faults = FaultPlan::from(c);
        self
    }

    /// Sets the ABCAST implementation.
    pub fn with_abcast(mut self, a: AbcastImpl) -> Self {
        self.abcast = a;
        self
    }

    /// Sets the batching window (ordering rounds + WAL group commit).
    pub fn with_batching(mut self, b: BatchConfig) -> Self {
        self.batching = b;
        self
    }

    /// Sets the execution mode.
    pub fn with_exec(mut self, e: ExecutionMode) -> Self {
        self.exec = e;
        self
    }

    /// Sets the deadlock policy (distributed locking only).
    pub fn with_deadlock(mut self, d: DeadlockPolicy) -> Self {
        self.deadlock = d;
        self
    }

    /// Enables read-one/write-all reads (distributed locking only).
    pub fn with_rowa(mut self, rowa: bool) -> Self {
        self.rowa = rowa;
        self
    }

    /// Sets the lazy reconciliation rule.
    pub fn with_reconcile(mut self, r: ReconcileMode) -> Self {
        self.reconcile = r;
        self
    }

    /// Sets the lazy propagation delay.
    pub fn with_propagation_delay(mut self, d: SimDuration) -> Self {
        self.propagation_delay = d;
        self
    }

    /// Sets the redo-log retention (entries kept for recovery suffixes).
    pub fn with_log_retention(mut self, r: Option<usize>) -> Self {
        self.log_retention = r;
        self
    }

    /// Sets the durable log tier configuration.
    pub fn with_durability(mut self, d: DurabilityConfig) -> Self {
        self.durability = d;
        self
    }

    /// Sets the simulated fsync cost (restore replay of log suffixes).
    pub fn with_fsync_ticks(mut self, t: u64) -> Self {
        self.fsync_ticks = t;
        self
    }

    /// Sets the client retry timeout (base of the retry backoff).
    pub fn with_retry_after(mut self, d: SimDuration) -> Self {
        self.retry_after = d;
        self
    }

    /// Enables or disables tracing.
    pub fn with_trace(mut self, t: bool) -> Self {
        self.trace = t;
        self
    }

    /// Sets the run deadline.
    pub fn with_max_time(mut self, t: SimTime) -> Self {
        self.max_time = t;
        self
    }

    /// Sets the client arrival process.
    pub fn with_arrival(mut self, a: Arrival) -> Self {
        self.arrival = a;
        self
    }

    /// Whether servers should run lean: skip the unbounded per-run
    /// bookkeeping (execution history, client-response cache) that the
    /// exact collection path consumes. True exactly for the aggregated
    /// open-loop engine, whose collection never reads either.
    pub fn lean_servers(&self) -> bool {
        matches!(self.arrival, Arrival::OpenAggregated { .. })
    }
}

/// The maximum client population of a run: virtual client ids are packed
/// into the low 20 bits of server-side transaction ids
/// (`crate::protocols::common::txn_for_op`), so ids must stay below
/// 2^20. One full million clients fits.
pub const MAX_CLIENTS: u32 = 1 << 20;

/// One-way worst-case network delay of a profile.
fn max_delay(net: &NetworkConfig) -> u64 {
    net.base_latency.ticks() + net.jitter.ticks()
}

/// Failure-detector parameters scaled to the network: heartbeats must
/// outpace suspicion even at the profile's worst-case latency, or every
/// member falsely suspects every other on a WAN.
fn tuned_fd(net: &NetworkConfig) -> FdConfig {
    let d = max_delay(net);
    FdConfig {
        interval: SimDuration::from_ticks((2 * d).max(500)),
        miss_threshold: 3,
    }
}

/// Consensus round timeout scaled to the network (a round needs ~3 one-way
/// delays; time out only well after that).
fn tuned_consensus(net: &NetworkConfig) -> ConsensusConfig {
    let d = max_delay(net);
    ConsensusConfig {
        round_timeout: SimDuration::from_ticks((8 * d).max(2_000)),
    }
}

/// View-synchrony parameters scaled to the network.
fn tuned_vs(net: &NetworkConfig) -> VsConfig {
    let d = max_delay(net);
    VsConfig {
        fd: tuned_fd(net),
        consensus: tuned_consensus(net),
        flush_retry: SimDuration::from_ticks((10 * d).max(3_000)),
        join_retry: SimDuration::from_ticks((12 * d).max(5_000)),
    }
}

/// Semi-passive deferral step scaled to the network.
fn tuned_defer(net: &NetworkConfig) -> SimDuration {
    SimDuration::from_ticks((6 * max_delay(net)).max(3_000))
}

/// Per-server statistics the collector extracts after a run.
struct ServerStats {
    history: repl_db::ReplicatedHistory,
    fingerprint: u64,
    aborted: u64,
    reconciliations: u64,
    wounds: u64,
    recovery: repl_db::RecoveryTracker,
    volume_wipes: u64,
    lost: Vec<repl_db::TxnId>,
    restores: u64,
    restore_bytes: u64,
    restore_ticks: u64,
    upload_puts: u64,
    upload_bytes: u64,
    upload_cost: u64,
    frames_sealed: u64,
}

/// Why an experiment run could not be performed.
///
/// Configuration problems are reported as typed variants so sweep
/// drivers can surface them per cell instead of tearing down the whole
/// study; [`RunError::Internal`] wraps a panic from inside the
/// simulation (a bug, not a configuration error).
#[derive(Debug, Clone, PartialEq)]
pub enum RunError {
    /// `cfg.faults` is ill-formed for this configuration (see
    /// [`FaultPlan::validate`]): an event names a node outside the
    /// server set, recovers a node that is not down, crashes a node
    /// twice, or is scheduled past `cfg.max_time`.
    InvalidFaultPlan(FaultPlanError),
    /// The configuration asks for zero servers.
    NoServers,
    /// The configuration asks for more clients than transaction ids can
    /// address (client ids occupy 20 bits; see [`MAX_CLIENTS`]). Packing
    /// larger populations would silently alias distinct clients onto the
    /// same transaction ids.
    TooManyClients {
        /// The requested client count.
        clients: u32,
        /// The maximum supported ([`MAX_CLIENTS`]).
        max: u32,
    },
    /// The simulation itself panicked; the payload is the panic message.
    Internal(String),
}

impl std::fmt::Display for RunError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RunError::InvalidFaultPlan(e) => write!(f, "invalid fault plan: {e}"),
            RunError::NoServers => write!(f, "configuration has zero servers"),
            RunError::TooManyClients { clients, max } => write!(
                f,
                "configuration has {clients} clients but transaction ids only address {max}"
            ),
            RunError::Internal(msg) => write!(f, "run failed internally: {msg}"),
        }
    }
}

impl std::error::Error for RunError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            RunError::InvalidFaultPlan(e) => Some(e),
            _ => None,
        }
    }
}

impl From<FaultPlanError> for RunError {
    fn from(e: FaultPlanError) -> Self {
        RunError::InvalidFaultPlan(e)
    }
}

/// Runs one experiment and collects the report, reporting configuration
/// problems as a typed [`RunError`] instead of panicking.
///
/// This is the entry point sweep drivers use: the closure
/// `move || try_run(&cfg)` is `Send`, so cells can be fanned out across
/// worker threads, and a bad cell yields an `Err` for that cell only. A
/// panic from inside the simulation is caught and reported as
/// [`RunError::Internal`].
///
/// # Errors
///
/// [`RunError::InvalidFaultPlan`] when `cfg.faults` fails validation
/// against `cfg.servers`/`cfg.max_time`; [`RunError::NoServers`] when
/// `cfg.servers == 0`; [`RunError::TooManyClients`] when `cfg.clients`
/// exceeds [`MAX_CLIENTS`]; [`RunError::Internal`] when the run
/// panicked.
pub fn try_run(cfg: &RunConfig) -> Result<RunReport, RunError> {
    if cfg.servers == 0 {
        return Err(RunError::NoServers);
    }
    if cfg.clients > MAX_CLIENTS {
        return Err(RunError::TooManyClients {
            clients: cfg.clients,
            max: MAX_CLIENTS,
        });
    }
    cfg.faults.validate(cfg.servers, cfg.max_time)?;
    std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| dispatch(cfg))).map_err(|payload| {
        let msg = payload
            .downcast_ref::<&str>()
            .map(|s| s.to_string())
            .or_else(|| payload.downcast_ref::<String>().cloned())
            .unwrap_or_else(|| "unknown panic".to_string());
        RunError::Internal(msg)
    })
}

/// Runs one experiment and collects the report.
///
/// # Panics
///
/// Panics if the configuration is rejected by [`try_run`] — most
/// commonly an ill-formed `cfg.faults` (the message starts with
/// `"invalid fault plan"`). Binaries that want a nonzero exit instead
/// of a panic should call [`try_run`] and handle the error.
pub fn run(cfg: &RunConfig) -> RunReport {
    try_run(cfg).unwrap_or_else(|e| panic!("{e}"))
}

/// Technique dispatch: monomorphises [`drive`] for the technique's
/// message and server types. Assumes `cfg` was already validated.
fn dispatch(cfg: &RunConfig) -> RunReport {
    match cfg.technique {
        Technique::Active => drive::<ActiveMsg, ActiveServer>(
            cfg,
            |site, me, group, c| {
                let mut srv = ActiveServer::new(
                    site,
                    me,
                    group,
                    c.workload.keyspace(),
                    c.exec,
                    c.abcast,
                    tuned_consensus(&c.network),
                )
                .with_batching(c.batching);
                srv.base.set_durability(&c.durability, c.fsync_ticks);
                srv.base.set_lean(c.lean_servers());
                Box::new(srv)
            },
            |s| base_stats(&s.base),
        ),
        Technique::Passive => drive::<PassiveMsg, PassiveServer>(
            cfg,
            |site, me, group, c| {
                let mut srv = PassiveServer::new(
                    site,
                    me,
                    group,
                    c.workload.keyspace(),
                    c.exec,
                    tuned_vs(&c.network),
                );
                srv.base.set_durability(&c.durability, c.fsync_ticks);
                srv.base.set_lean(c.lean_servers());
                Box::new(srv)
            },
            |s| base_stats(&s.base),
        ),
        Technique::SemiActive => drive::<SemiActiveMsg, SemiActiveServer>(
            cfg,
            |site, me, group, c| {
                let mut srv = SemiActiveServer::new(
                    site,
                    me,
                    group,
                    c.workload.keyspace(),
                    c.exec,
                    c.abcast,
                    tuned_vs(&c.network),
                )
                .with_batching(c.batching);
                srv.base.set_durability(&c.durability, c.fsync_ticks);
                srv.base.set_lean(c.lean_servers());
                Box::new(srv)
            },
            |s| base_stats(&s.base),
        ),
        Technique::SemiPassive => drive::<SemiPassiveMsg, SemiPassiveServer>(
            cfg,
            |site, me, group, c| {
                let mut srv = SemiPassiveServer::new(
                    site,
                    me,
                    group,
                    c.workload.keyspace(),
                    c.exec,
                    tuned_defer(&c.network),
                    tuned_consensus(&c.network),
                );
                srv.set_log_retention(c.log_retention);
                srv.base.set_durability(&c.durability, c.fsync_ticks);
                srv.base.set_lean(c.lean_servers());
                Box::new(srv)
            },
            |s| base_stats(&s.base),
        ),
        Technique::EagerPrimary => drive::<EagerPrimaryMsg, EagerPrimaryServer>(
            cfg,
            |site, me, group, c| {
                let mut srv = EagerPrimaryServer::new(
                    site,
                    me,
                    group,
                    c.workload.keyspace(),
                    c.exec,
                    tuned_fd(&c.network),
                )
                .with_batching(c.batching);
                srv.set_log_retention(c.log_retention);
                srv.base.set_durability(&c.durability, c.fsync_ticks);
                srv.base.set_lean(c.lean_servers());
                Box::new(srv)
            },
            |s| base_stats(&s.base),
        ),
        Technique::EagerUpdateEverywhereLocking => drive::<EulMsg, EulServer>(
            cfg,
            |site, me, group, c| {
                let mut srv =
                    EulServer::new(site, me, group, c.workload.keyspace(), c.exec, c.deadlock)
                        .with_rowa(c.rowa);
                srv.base.set_durability(&c.durability, c.fsync_ticks);
                srv.base.set_lean(c.lean_servers());
                Box::new(srv)
            },
            |s| {
                let mut stats = base_stats(&s.base);
                stats.wounds = s.wounds;
                stats
            },
        ),
        Technique::EagerUpdateEverywhereAbcast => drive::<EuaMsg, EuaServer>(
            cfg,
            |site, me, group, c| {
                let mut srv = EuaServer::new(
                    site,
                    me,
                    group,
                    c.workload.keyspace(),
                    c.exec,
                    c.abcast,
                    tuned_consensus(&c.network),
                )
                .with_batching(c.batching);
                srv.base.set_durability(&c.durability, c.fsync_ticks);
                srv.base.set_lean(c.lean_servers());
                Box::new(srv)
            },
            |s| base_stats(&s.base),
        ),
        Technique::LazyPrimary => drive::<LazyPrimaryMsg, LazyPrimaryServer>(
            cfg,
            |site, me, group, c| {
                let mut srv = LazyPrimaryServer::new(
                    site,
                    me,
                    group,
                    c.workload.keyspace(),
                    c.exec,
                    c.propagation_delay,
                )
                .with_batching(c.batching);
                srv.set_log_retention(c.log_retention);
                srv.base.set_durability(&c.durability, c.fsync_ticks);
                srv.base.set_lean(c.lean_servers());
                Box::new(srv)
            },
            |s| base_stats(&s.base),
        ),
        Technique::LazyUpdateEverywhere => drive::<LazyUeMsg, LazyUeServer>(
            cfg,
            |site, me, group, c| {
                let mut srv = LazyUeServer::new(
                    site,
                    me,
                    group,
                    c.workload.keyspace(),
                    c.exec,
                    c.propagation_delay,
                )
                .with_reconcile(c.reconcile);
                srv.base.set_durability(&c.durability, c.fsync_ticks);
                srv.base.set_lean(c.lean_servers());
                Box::new(srv)
            },
            |s| {
                let mut stats = base_stats(&s.base);
                stats.reconciliations = s.reconciliations;
                stats
            },
        ),
        Technique::Certification => drive::<CertMsg, CertServer>(
            cfg,
            |site, me, group, c| {
                let mut srv = CertServer::new(
                    site,
                    me,
                    group,
                    c.workload.keyspace(),
                    c.exec,
                    c.abcast,
                    tuned_consensus(&c.network),
                )
                .with_batching(c.batching);
                srv.base.set_durability(&c.durability, c.fsync_ticks);
                srv.base.set_lean(c.lean_servers());
                Box::new(srv)
            },
            |s| base_stats(&s.base),
        ),
    }
}

fn base_stats(base: &crate::protocols::common::ServerBase) -> ServerStats {
    let mut stats = ServerStats {
        history: base.history.clone(),
        fingerprint: base.store.fingerprint(),
        aborted: base.aborted,
        reconciliations: 0,
        wounds: 0,
        recovery: base.recovery.clone(),
        volume_wipes: base.volume_wipes,
        lost: Vec::new(),
        restores: 0,
        restore_bytes: 0,
        restore_ticks: 0,
        upload_puts: 0,
        upload_bytes: 0,
        upload_cost: 0,
        frames_sealed: 0,
    };
    if let Some(tier) = &base.tier {
        stats.lost = tier.lost.clone();
        stats.restores = tier.restores;
        stats.restore_bytes = tier.restore_bytes;
        stats.restore_ticks = tier.restore_ticks;
        stats.upload_puts = tier.object().puts();
        stats.upload_bytes = tier.object().bytes_uploaded();
        stats.upload_cost = tier.object().cost();
        stats.frames_sealed = tier.frames_sealed();
    }
    stats
}

/// The server a given client prefers: the primary for the primary-copy
/// techniques where clients address the master, its "local" server
/// otherwise (the paper's update-everywhere and lazy models).
fn preferred_server(technique: Technique, client: u32, servers: u32) -> usize {
    match technique {
        Technique::Passive | Technique::EagerPrimary => 0,
        _ => {
            let _ = technique.info().location == UpdateLocation::Everywhere;
            (client % servers) as usize
        }
    }
}

/// Partitions the virtual client population into per-server groups for
/// the aggregated open-loop engine, mirroring [`preferred_server`]: the
/// primary-copy techniques put everyone in one group aimed at the
/// primary, the rest split round-robin by `client % servers`. Empty
/// groups are omitted.
fn client_groups(technique: Technique, clients: u32, servers: u32) -> Vec<(ClientGroup, usize)> {
    match technique {
        Technique::Passive | Technique::EagerPrimary => {
            if clients == 0 {
                return Vec::new();
            }
            vec![(
                ClientGroup {
                    first: 0,
                    stride: 1,
                    count: clients,
                },
                0,
            )]
        }
        _ => (0..servers)
            .filter_map(|s| {
                let count = clients / servers + u32::from(s < clients % servers);
                (count > 0).then_some((
                    ClientGroup {
                        first: s,
                        stride: servers,
                        count,
                    },
                    s as usize,
                ))
            })
            .collect(),
    }
}

fn drive<M, S>(
    cfg: &RunConfig,
    build: impl Fn(u32, NodeId, Vec<NodeId>, &RunConfig) -> Box<dyn Actor<M>>,
    collect: impl Fn(&S) -> ServerStats,
) -> RunReport
where
    M: Message + ProtocolMsg,
    S: 'static,
{
    // Pre-size the trace from the workload: each transaction costs a few
    // messages per server (send + deliver records) plus phase marks. The
    // cap bounds the up-front buy for huge sweeps.
    let txns = u64::from(cfg.clients) * u64::from(cfg.workload.txns_per_client);
    let est = txns
        .saturating_mul(8 * u64::from(cfg.servers) + 8)
        .min(1 << 22) as usize;
    let sim = SimConfig::new(cfg.seed)
        .with_network(cfg.network.clone())
        .with_trace(cfg.trace)
        .with_trace_capacity(est)
        .with_coordination_nodes(cfg.servers);
    let mut world: World<M> = World::new(sim);
    let servers: Vec<NodeId> = (0..cfg.servers).map(NodeId::new).collect();
    for site in 0..cfg.servers {
        let actor = build(site, NodeId::new(site), servers.clone(), cfg);
        world.add_actor(actor);
    }
    let mut clients = Vec::new();
    if let Arrival::OpenAggregated { mean, dist } = cfg.arrival {
        // One actor per server group stands for the whole population:
        // the group's stream runs `count` times faster than one client
        // (exact superposition for Poisson). The workload generator is
        // seeded per group; the arrival stream gets an independent seed
        // so gap draws never correlate with key/op draws.
        for (gi, (group, preferred)) in client_groups(cfg.technique, cfg.clients, cfg.servers)
            .into_iter()
            .enumerate()
        {
            let gen = WorkloadGen::new(&cfg.workload, cfg.seed.wrapping_mul(1_000_003) + gi as u64);
            let group_mean = mean.max(1) as f64 / f64::from(group.count);
            let arrivals = ArrivalStream::new(
                dist,
                group_mean,
                cfg.seed
                    .wrapping_mul(6_364_136_223_846_793_005)
                    .wrapping_add(gi as u64 ^ 0x9E37_79B9_7F4A_7C15),
            );
            let actor: Box<dyn Actor<M>> = Box::new(AggregateClients::<M>::new(
                group,
                servers.clone(),
                preferred,
                gen,
                arrivals,
                cfg.workload.txns_per_client,
            ));
            clients.push(world.add_actor(actor));
        }
    } else {
        for c in 0..cfg.clients {
            let mut gen =
                WorkloadGen::new(&cfg.workload, cfg.seed.wrapping_mul(1_000_003) + c as u64);
            let txns = gen.take_txns(cfg.workload.txns_per_client as usize);
            let preferred = preferred_server(cfg.technique, c, cfg.servers);
            let actor: Box<dyn Actor<M>> = match cfg.arrival {
                Arrival::Closed => Box::new(ClientActor::<M>::new(
                    c,
                    servers.clone(),
                    preferred,
                    txns,
                    cfg.workload.think_time,
                    cfg.retry_after,
                )),
                Arrival::Open(mean) => Box::new(OpenLoopClient::<M>::new(
                    c,
                    servers.clone(),
                    preferred,
                    txns,
                    SimDuration::from_ticks(mean),
                )),
                Arrival::OpenAggregated { .. } => unreachable!("handled above"),
            };
            clients.push(world.add_actor(actor));
        }
    }
    for ev in cfg.faults.events() {
        match ev {
            FaultEvent::Crash { at, node } => world.schedule_crash(*at, *node),
            FaultEvent::Recover { at, node } => world.schedule_recover(*at, *node),
            FaultEvent::Net { at, fault } => world.schedule_net_fault(*at, fault.clone()),
            FaultEvent::VolumeLoss { at, node } => world.schedule_volume_loss(*at, *node),
        }
    }
    world.start();
    let chunk = SimDuration::from_ticks(5_000);
    let client_done = |world: &World<M>, c: NodeId| match cfg.arrival {
        Arrival::Closed => world.actor_ref::<ClientActor<M>>(c).is_done(),
        Arrival::Open(_) => world.actor_ref::<OpenLoopClient<M>>(c).is_done(),
        Arrival::OpenAggregated { .. } => world.actor_ref::<AggregateClients<M>>(c).is_done(),
    };
    loop {
        let next = world.now() + chunk;
        world.run_until(next);
        let all_done = clients.iter().all(|&c| client_done(&world, c));
        if all_done || world.now() >= cfg.max_time {
            break;
        }
    }
    // Message accounting stops here: the drain below only exists to let
    // lazy propagation settle, and its background traffic (heartbeats)
    // must not be charged to the workload.
    let metrics_at_completion = world.metrics();
    // Unanswered operations have their unavailability window measured to
    // this instant (the deadline or the last client's completion).
    let completed_at = world.now();
    // Grace period: let lazy propagation, pending decisions and flush
    // traffic drain so convergence is measured after quiescence.
    let grace = cfg.propagation_delay + SimDuration::from_ticks(50_000);
    world.run_until(world.now() + grace);

    // Collect.
    let mut latencies = LatencyStats::new();
    let mut records = Vec::new();
    let mut ops_completed = 0u64;
    let mut ops_committed = 0u64;
    let mut ops_aborted = 0u64;
    let mut ops_unanswered = 0u64;
    let mut client_retries = 0u64;
    let mut latency_hist: Option<LatencyHistogram> = None;
    let mut peak_outstanding = 0u64;
    let mut agg_worst_gaps: Vec<SimDuration> = Vec::new();
    let mut agg_last_response: Option<SimTime> = None;
    if matches!(cfg.arrival, Arrival::OpenAggregated { .. }) {
        // Constant-memory collection: merge each group's streaming
        // histogram and counters; no per-operation records exist.
        let mut hist = LatencyHistogram::new();
        for &c in &clients {
            let a = world.actor_ref::<AggregateClients<M>>(c);
            hist.merge(&a.hist);
            ops_committed += a.committed;
            ops_aborted += a.aborted;
            ops_completed += a.committed + a.aborted;
            ops_unanswered += a.outstanding.len() as u64;
            peak_outstanding = peak_outstanding.max(a.peak_outstanding);
            // The group's worst unavailability window: answered ops use
            // their response gap, in-flight ops count to the end of the
            // run, same convention as the per-client records below.
            let mut worst = a.worst_gap;
            for &invoked in a.outstanding.values() {
                let gap = completed_at - invoked;
                if gap > worst {
                    worst = gap;
                }
            }
            agg_worst_gaps.push(worst);
            if let Some(t) = a.last_response {
                agg_last_response = Some(agg_last_response.map_or(t, |prev| prev.max(t)));
            }
        }
        latency_hist = Some(hist);
    } else {
        for (cno, &c) in clients.iter().enumerate() {
            let recs: &[crate::client::OpRecord] = match cfg.arrival {
                Arrival::Closed => &world.actor_ref::<ClientActor<M>>(c).records,
                Arrival::Open(_) => &world.actor_ref::<OpenLoopClient<M>>(c).records,
                Arrival::OpenAggregated { .. } => unreachable!("handled above"),
            };
            for rec in recs {
                client_retries += rec.retries as u64;
                match (&rec.responded, rec.committed()) {
                    (Some(_), true) => {
                        ops_completed += 1;
                        ops_committed += 1;
                        latencies.record(rec.latency().expect("responded"));
                    }
                    (Some(_), false) => {
                        ops_completed += 1;
                        ops_aborted += 1;
                        latencies.record(rec.latency().expect("responded"));
                    }
                    (None, _) => ops_unanswered += 1,
                }
                records.push((cno as u32, rec.clone()));
            }
        }
    }
    let mut history = repl_db::ReplicatedHistory::new();
    let mut fingerprints = Vec::new();
    let mut server_aborts = 0u64;
    let mut reconciliations = 0u64;
    let mut wounds = 0u64;
    let mut recoveries = Vec::new();
    let mut durability = crate::report::DurabilityReport {
        enabled: cfg.durability.enabled,
        ..Default::default()
    };
    let mut claimed_lost: Vec<crate::op::OpId> = Vec::new();
    for (site, &s) in servers.iter().enumerate() {
        let stats = collect(world.actor_ref::<S>(s));
        history.merge(&stats.history);
        fingerprints.push(stats.fingerprint);
        server_aborts += stats.aborted;
        reconciliations += stats.reconciliations;
        wounds += stats.wounds;
        durability.volume_wipes += stats.volume_wipes;
        durability.lost_commits += stats.lost.len() as u64;
        claimed_lost.extend(stats.lost.iter().map(|&t| op_of_txn(t)));
        durability.restores += stats.restores;
        durability.restore_bytes += stats.restore_bytes;
        durability.restore_ticks += stats.restore_ticks;
        durability.upload_puts += stats.upload_puts;
        durability.upload_bytes += stats.upload_bytes;
        durability.upload_cost += stats.upload_cost;
        durability.frames_sealed += stats.frames_sealed;
        if stats.recovery.recoveries > 0 {
            recoveries.push(crate::report::NodeRecovery {
                site: site as u32,
                recoveries: stats.recovery.recoveries,
                rejoin_at: stats.recovery.rejoin_at,
                catch_up_ticks: stats.recovery.catch_up_ticks(),
                transfer_bytes: stats.recovery.transfer_bytes,
                log_suffix_transfers: stats.recovery.log_suffix_transfers,
                snapshot_transfers: stats.recovery.snapshot_transfers,
            });
        }
    }
    claimed_lost.sort_unstable();
    claimed_lost.dedup();
    durability.claimed_lost = claimed_lost;
    let phase_trace = PhaseTrace::from_trace(world.trace());
    let trace_hash = world.trace().hash();
    // Availability: per-client worst request→response gap (unanswered ops
    // count to the end of the run), and failover latency anchored at the
    // plan's first crash. Fault counts come from the world's final
    // metrics so faults applied during the drain are still visible.
    // On aggregated runs the vector is per *group* (one aggregate actor
    // per server group), not per client.
    let per_client_worst_gap = if matches!(cfg.arrival, Arrival::OpenAggregated { .. }) {
        agg_worst_gaps
    } else {
        let mut worst_gaps = vec![SimDuration::ZERO; cfg.clients as usize];
        for (cno, rec) in &records {
            let gap = match rec.responded {
                Some(at) => at - rec.invoked,
                None => completed_at - rec.invoked,
            };
            let worst = &mut worst_gaps[*cno as usize];
            if gap > *worst {
                *worst = gap;
            }
        }
        worst_gaps
    };
    let failover_latency = cfg.faults.first_crash_time().and_then(|crash| {
        records
            .iter()
            .filter_map(|(_, r)| match (r.responded, r.committed()) {
                (Some(at), true) if at >= crash => Some(at),
                _ => None,
            })
            .min()
            .map(|at| at - crash)
    });
    let final_metrics = world.metrics();
    let availability = crate::report::Availability {
        per_client_worst_gap,
        failover_latency,
        faults_injected: final_metrics.faults_injected(),
        repairs_applied: final_metrics.repairs_applied(),
        recoveries,
    };
    // Duration = completion of the workload (last client response), not
    // the grace period: throughput must not be diluted by idle drain time.
    let last_response = records
        .iter()
        .filter_map(|(_, r)| r.responded)
        .max()
        .or(agg_last_response)
        .unwrap_or_else(|| world.now());
    RunReport {
        technique: cfg.technique,
        servers: cfg.servers,
        clients: cfg.clients,
        duration: last_response,
        latencies,
        latency_hist,
        peak_outstanding,
        ops_completed,
        ops_committed,
        ops_aborted,
        ops_unanswered,
        client_retries,
        messages: metrics_at_completion,
        fingerprints,
        history,
        phase_trace,
        records,
        reconciliations,
        wounds,
        server_aborts,
        availability,
        durability,
        trace_hash,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small(technique: Technique) -> RunConfig {
        RunConfig::new(technique)
            .with_clients(2)
            .with_workload(
                WorkloadSpec::default()
                    .with_items(32)
                    .with_txns_per_client(5)
                    .with_read_ratio(0.5),
            )
            .with_seed(7)
    }

    #[test]
    fn every_technique_completes_a_small_run() {
        for technique in Technique::ALL {
            let report = run(&small(technique));
            assert_eq!(
                report.ops_unanswered, 0,
                "{technique}: unanswered ops ({report:?})"
            );
            assert!(report.ops_completed >= 10, "{technique}: too few ops");
            assert!(
                report.converged(),
                "{technique}: replicas diverged: {:?}",
                report.fingerprints
            );
        }
    }

    #[test]
    fn every_technique_reproduces_its_claimed_skeleton() {
        for technique in Technique::ALL {
            // Use update-only single-op workloads so the canonical
            // skeleton is the figure's update path; semi-active needs
            // non-determinism for its AC phase to exist.
            let mut cfg = small(technique).with_clients(1).with_workload(
                WorkloadSpec::default()
                    .with_items(16)
                    .with_txns_per_client(4)
                    .with_read_ratio(0.0),
            );
            if technique == Technique::SemiActive {
                cfg = cfg.with_exec(ExecutionMode::NonDeterministic);
            }
            if technique.info().propagation == crate::Propagation::Lazy {
                cfg = cfg.with_propagation_delay(SimDuration::from_ticks(2_000));
            }
            let report = run(&cfg);
            let sk = report.canonical_skeleton().expect("ops completed");
            assert_eq!(
                sk.to_string(),
                technique.claimed_skeleton(),
                "{technique}: measured skeleton differs"
            );
        }
    }

    #[test]
    fn strong_techniques_are_one_copy_serializable() {
        for technique in Technique::ALL {
            if technique.info().guarantee == crate::Guarantee::Weak {
                continue;
            }
            let report = run(&small(technique));
            report
                .check_one_copy_serializable()
                .unwrap_or_else(|e| panic!("{technique}: {e}"));
        }
    }

    #[test]
    fn report_accessors_are_consistent() {
        let report = run(&small(Technique::Active));
        assert!(report.throughput() > 0.0);
        assert!(report.messages_per_op() > 0.0);
        assert_eq!(
            report.ops_completed,
            report.ops_committed + report.ops_aborted
        );
        assert!(report.summary().contains("Active"));
        assert!(report.abort_rate() <= 1.0);
    }

    #[test]
    fn fault_free_run_has_trivial_availability() {
        let report = run(&small(Technique::Active));
        assert_eq!(report.faults_injected(), 0);
        assert_eq!(report.availability.failover_latency, None);
        assert_eq!(report.availability.per_client_worst_gap.len(), 2);
        // The worst gap is just the worst response time.
        let mut l = report.latencies.clone();
        assert_eq!(report.availability.worst_gap(), l.percentile(1.0));
    }

    #[test]
    fn with_crashes_shim_matches_explicit_fault_plan() {
        let sched = CrashSchedule::new()
            .crash_at(SimTime::from_ticks(2_000), NodeId::new(2))
            .recover_at(SimTime::from_ticks(8_000), NodeId::new(2));
        let a = small(Technique::Active).with_crashes(sched.clone());
        let b = small(Technique::Active).with_faults(FaultPlan::from(sched));
        assert_eq!(a.faults, b.faults);
        let ra = run(&a);
        let rb = run(&b);
        assert_eq!(ra.fingerprints, rb.fingerprints);
        assert_eq!(ra.messages, rb.messages);
        assert_eq!(ra.faults_injected(), 1);
        assert!(ra.availability.failover_latency.is_some());
    }

    #[test]
    fn ill_formed_fault_plan_is_rejected() {
        // Recover of a node that never crashed.
        let cfg = small(Technique::Active)
            .with_faults(FaultPlan::new().recover_at(SimTime::from_ticks(1_000), NodeId::new(1)));
        let err = try_run(&cfg).expect_err("plan must be rejected");
        assert!(matches!(err, RunError::InvalidFaultPlan(_)), "{err:?}");
        assert!(err.to_string().starts_with("invalid fault plan"));
    }

    #[test]
    fn fault_plan_outside_server_set_is_rejected() {
        // Node 7 does not exist in a 3-server world.
        let cfg = small(Technique::Active)
            .with_faults(FaultPlan::new().crash_at(SimTime::from_ticks(1_000), NodeId::new(7)));
        let err = try_run(&cfg).expect_err("plan must be rejected");
        assert!(matches!(
            err,
            RunError::InvalidFaultPlan(repl_workload::FaultPlanError::NodeOutOfRange { .. })
        ));
    }

    #[test]
    #[should_panic(expected = "invalid fault plan")]
    fn run_still_panics_on_invalid_config_for_compat() {
        let cfg = small(Technique::Active)
            .with_faults(FaultPlan::new().crash_at(SimTime::from_ticks(1_000), NodeId::new(7)));
        let _ = run(&cfg);
    }

    #[test]
    fn zero_servers_is_a_typed_error() {
        let mut cfg = small(Technique::Active);
        cfg.servers = 0; // bypasses with_servers' assert, as struct literals can
        let err = try_run(&cfg).expect_err("zero servers must be rejected");
        assert_eq!(err, RunError::NoServers);
    }

    #[test]
    fn try_run_succeeds_and_matches_run() {
        let cfg = small(Technique::Active);
        let a = try_run(&cfg).expect("valid config");
        let b = run(&cfg);
        assert_eq!(a.digest(), b.digest(), "same seed, same digest");
        assert_ne!(a.trace_hash, 0);
    }

    #[test]
    fn too_many_clients_is_a_typed_error() {
        let cfg = small(Technique::Active).with_clients(MAX_CLIENTS + 1);
        let err = try_run(&cfg).expect_err("population above 2^20 must be rejected");
        assert_eq!(
            err,
            RunError::TooManyClients {
                clients: MAX_CLIENTS + 1,
                max: MAX_CLIENTS,
            }
        );
        assert!(err.to_string().contains("clients"));
        // The boundary itself is fine (ids 0..2^20 all pack).
        assert!(small(Technique::Active).with_clients(MAX_CLIENTS).clients <= MAX_CLIENTS);
    }

    #[test]
    fn client_groups_partition_the_population() {
        for technique in [Technique::Active, Technique::Passive, Technique::EagerPrimary] {
            for (clients, servers) in [(0u32, 3u32), (1, 3), (7, 3), (9, 3), (5, 8)] {
                let groups = client_groups(technique, clients, servers);
                let mut seen = std::collections::HashSet::new();
                for (g, preferred) in &groups {
                    assert!(*preferred < servers as usize);
                    for i in 0..g.count {
                        let id = g.first + i * g.stride;
                        assert!(id < clients, "virtual id {id} out of range");
                        assert!(seen.insert(id), "virtual id {id} appears twice");
                        assert_eq!(
                            *preferred,
                            preferred_server(technique, id, servers),
                            "group preference must match the per-client rule"
                        );
                    }
                }
                assert_eq!(
                    seen.len() as u32,
                    clients,
                    "{technique} {clients}c/{servers}s: population not covered"
                );
            }
        }
    }

    #[test]
    fn aggregated_open_loop_completes_for_every_technique() {
        for technique in Technique::ALL {
            let cfg = small(technique)
                .with_clients(6)
                .with_arrival(Arrival::OpenAggregated {
                    mean: 2_000,
                    dist: ArrivalDist::Poisson,
                })
                .with_trace(false);
            let report = run(&cfg);
            assert_eq!(
                report.ops_completed + report.ops_unanswered,
                6 * 5,
                "{technique}: budget not drained"
            );
            assert_eq!(report.ops_unanswered, 0, "{technique}: unanswered ops");
            let hist = report
                .latency_hist
                .as_ref()
                .expect("aggregated runs stream a histogram");
            assert_eq!(hist.count(), report.ops_completed, "{technique}");
            assert!(report.peak_outstanding >= 1, "{technique}");
            assert!(
                report.records.is_empty(),
                "{technique}: aggregated runs must not keep per-op records"
            );
            assert!(report.latencies.is_empty(), "{technique}");
            assert!(report.converged(), "{technique}: {:?}", report.fingerprints);
            assert!(report.summary().contains("ops=30"), "{technique}");
        }
    }

    #[test]
    fn aggregated_runs_are_deterministic() {
        let cfg = small(Technique::Certification)
            .with_clients(5)
            .with_arrival(Arrival::OpenAggregated {
                mean: 1_000,
                dist: ArrivalDist::Uniform,
            })
            .with_trace(false);
        let a = run(&cfg);
        let b = run(&cfg);
        assert_eq!(a.digest(), b.digest(), "same seed, same aggregated digest");
        let c = run(&cfg.clone().with_seed(99));
        assert_ne!(a.digest(), c.digest(), "different seed, different digest");
    }

    #[test]
    fn run_closure_is_send() {
        // The sweep engine moves `try_run` closures across threads; this
        // is a compile-time check that they stay Send.
        fn assert_send<T: Send>(_: T) {}
        let cfg = small(Technique::Active);
        assert_send(move || try_run(&cfg));
        fn assert_send_ty<T: Send>() {}
        assert_send_ty::<RunConfig>();
        assert_send_ty::<RunReport>();
        assert_send_ty::<RunError>();
    }
}
