//! Client operations and responses: the unit of work the replication
//! techniques replicate.
//!
//! Following the paper, a client submits a *transaction* that is either a
//! single operation (Sections 3–4, the stored-procedure model) or a partial
//! order of reads and writes (Section 5). Both are represented by a
//! [`TxnTemplate`] from `repl-workload`; single-operation transactions are
//! templates of length one.

use std::fmt;

use repl_db::{Key, Value};
use repl_sim::{Message, NodeId};
use repl_workload::{OpTemplate, TxnTemplate};

/// Globally unique operation (client-transaction) identifier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct OpId(pub u64);

impl OpId {
    /// Builds an id from a client number and a per-client sequence number.
    pub fn compose(client: u32, seq: u32) -> Self {
        OpId(((client as u64) << 32) | seq as u64)
    }

    /// The client number encoded in the id.
    pub fn client(self) -> u32 {
        (self.0 >> 32) as u32
    }

    /// The per-client sequence number encoded in the id.
    pub fn seq(self) -> u32 {
        self.0 as u32
    }
}

impl fmt::Display for OpId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "op{}.{}", self.client(), self.seq())
    }
}

/// A client's request: one (possibly multi-operation) transaction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClientOp {
    /// Unique id, also used for duplicate suppression on retry.
    pub id: OpId,
    /// The node id of the issuing client (responses go here).
    pub client: NodeId,
    /// The transaction body.
    pub txn: TxnTemplate,
}

impl ClientOp {
    /// Approximate wire size for message accounting.
    pub fn wire_size(&self) -> usize {
        24 + self.txn.ops.len() * 17
    }

    /// True if the transaction only reads.
    pub fn is_read_only(&self) -> bool {
        self.txn.is_read_only()
    }
}

impl Message for ClientOp {
    fn wire_size(&self) -> usize {
        ClientOp::wire_size(self)
    }
}

/// The outcome of a client operation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Response {
    /// The operation this answers.
    pub op: OpId,
    /// Whether the transaction committed (lazy and certification-based
    /// techniques can abort or reconcile).
    pub committed: bool,
    /// Values observed by the transaction's reads, in program order.
    pub reads: Vec<(Key, Value)>,
}

impl Response {
    /// A committed response with no reads.
    pub fn committed(op: OpId) -> Self {
        Response {
            op,
            committed: true,
            reads: Vec::new(),
        }
    }

    /// An aborted response.
    pub fn aborted(op: OpId) -> Self {
        Response {
            op,
            committed: false,
            reads: Vec::new(),
        }
    }

    /// Approximate wire size for message accounting.
    pub fn wire_size(&self) -> usize {
        16 + self.reads.len() * 16
    }
}

/// Restates a transaction template's accesses as `(key, is_write, value)`
/// triples, convenient for protocol execution loops.
pub fn accesses(txn: &TxnTemplate) -> impl Iterator<Item = (Key, Option<Value>)> + '_ {
    txn.ops.iter().map(|op| match *op {
        OpTemplate::Read(k) => (k, None),
        OpTemplate::Write(k, v) => (k, Some(v)),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn op_id_composition_roundtrips() {
        let id = OpId::compose(7, 42);
        assert_eq!(id.client(), 7);
        assert_eq!(id.seq(), 42);
        assert_eq!(id.to_string(), "op7.42");
        assert!(OpId::compose(1, 0) < OpId::compose(2, 0));
        assert!(OpId::compose(1, 0) < OpId::compose(1, 1));
    }

    #[test]
    fn response_constructors() {
        let ok = Response::committed(OpId(1));
        assert!(ok.committed);
        let no = Response::aborted(OpId(1));
        assert!(!no.committed);
        assert!(no.reads.is_empty());
    }

    #[test]
    fn accesses_maps_templates() {
        let txn = TxnTemplate {
            ops: vec![
                OpTemplate::Read(Key(1)),
                OpTemplate::Write(Key(2), Value(9)),
            ],
        };
        let acc: Vec<_> = accesses(&txn).collect();
        assert_eq!(acc, vec![(Key(1), None), (Key(2), Some(Value(9)))]);
    }

    #[test]
    fn wire_sizes_scale_with_content() {
        let small = ClientOp {
            id: OpId(1),
            client: NodeId::new(0),
            txn: TxnTemplate {
                ops: vec![OpTemplate::Read(Key(0))],
            },
        };
        let big = ClientOp {
            id: OpId(2),
            client: NodeId::new(0),
            txn: TxnTemplate {
                ops: vec![OpTemplate::Read(Key(0)); 10],
            },
        };
        assert!(Message::wire_size(&big) > Message::wire_size(&small));
    }
}
