//! The technique taxonomy: the ten replication techniques the paper
//! describes, with the classification metadata behind Figures 5, 6 and 16.

use std::fmt;

/// A replication technique from the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Technique {
    /// Active replication / state machine approach (§3.2, Fig. 2).
    Active,
    /// Passive replication / primary-backup with VSCAST (§3.3, Fig. 3).
    Passive,
    /// Semi-active replication: leader resolves non-determinism (§3.4, Fig. 4).
    SemiActive,
    /// Semi-passive replication: consensus with deferred initial values (§3.5).
    SemiPassive,
    /// Eager primary copy with 2PC (§4.3, Fig. 7; transactions: Fig. 12).
    EagerPrimary,
    /// Eager update everywhere with distributed locking (§4.4.1, Fig. 8; Fig. 13).
    EagerUpdateEverywhereLocking,
    /// Eager update everywhere over Atomic Broadcast (§4.4.2, Fig. 9).
    EagerUpdateEverywhereAbcast,
    /// Lazy primary copy (§4.5, Fig. 10).
    LazyPrimary,
    /// Lazy update everywhere with reconciliation (§4.6, Fig. 11).
    LazyUpdateEverywhere,
    /// Certification-based replication over ABCAST (§5.4.2, Fig. 14).
    Certification,
}

/// Which community a technique comes from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Community {
    /// Distributed systems (process replication).
    DistributedSystems,
    /// Databases (data replication).
    Databases,
}

/// When updates propagate relative to the client response (Gray et al.).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Propagation {
    /// Within the transaction boundary: response after coordination.
    Eager,
    /// After commit: response first, coordination later.
    Lazy,
}

/// Who may process updates (Gray et al.).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UpdateLocation {
    /// One designated copy executes updates.
    Primary,
    /// Any copy may execute updates.
    Everywhere,
}

/// The consistency guarantee a technique provides.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Guarantee {
    /// Linearisability (distributed-systems techniques).
    Linearizable,
    /// One-copy serializability (eager database techniques).
    OneCopySerializable,
    /// Weak / convergent: stale reads and reconciliation possible.
    Weak,
}

/// Classification metadata for a technique (Figures 5, 6, 16).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TechniqueInfo {
    /// The technique.
    pub technique: Technique,
    /// Paper community.
    pub community: Community,
    /// Eager or lazy.
    pub propagation: Propagation,
    /// Primary or update everywhere.
    pub location: UpdateLocation,
    /// Does correctness require deterministic servers? (Fig. 5 y-axis.)
    pub needs_determinism: bool,
    /// Are server failures transparent to clients? (Fig. 5 x-axis:
    /// no reconnection/resubmission needed.)
    pub failure_transparent: bool,
    /// Declared consistency class (verified by the oracles in Fig. 16 runs).
    pub guarantee: Guarantee,
}

impl Technique {
    /// All techniques, in the paper's presentation order.
    pub const ALL: [Technique; 10] = [
        Technique::Active,
        Technique::Passive,
        Technique::SemiActive,
        Technique::SemiPassive,
        Technique::EagerPrimary,
        Technique::EagerUpdateEverywhereLocking,
        Technique::EagerUpdateEverywhereAbcast,
        Technique::LazyPrimary,
        Technique::LazyUpdateEverywhere,
        Technique::Certification,
    ];

    /// Short display name (matches the paper's Figure 16 rows).
    pub fn name(self) -> &'static str {
        match self {
            Technique::Active => "Active",
            Technique::Passive => "Passive",
            Technique::SemiActive => "Semi-Active",
            Technique::SemiPassive => "Semi-Passive",
            Technique::EagerPrimary => "Eager Primary Copy",
            Technique::EagerUpdateEverywhereLocking => "Eager UE (Distributed Locking)",
            Technique::EagerUpdateEverywhereAbcast => "Eager UE (ABCAST)",
            Technique::LazyPrimary => "Lazy Primary Copy",
            Technique::LazyUpdateEverywhere => "Lazy Update Everywhere",
            Technique::Certification => "Certification Based",
        }
    }

    /// The classification metadata.
    pub fn info(self) -> TechniqueInfo {
        use Community::*;
        use Guarantee::*;
        use Propagation::*;
        use UpdateLocation::*;
        match self {
            Technique::Active => TechniqueInfo {
                technique: self,
                community: DistributedSystems,
                propagation: Eager,
                location: Everywhere,
                needs_determinism: true,
                failure_transparent: true,
                guarantee: Linearizable,
            },
            Technique::Passive => TechniqueInfo {
                technique: self,
                community: DistributedSystems,
                propagation: Eager,
                location: Primary,
                needs_determinism: false,
                failure_transparent: false,
                guarantee: Linearizable,
            },
            Technique::SemiActive => TechniqueInfo {
                technique: self,
                community: DistributedSystems,
                propagation: Eager,
                location: Everywhere,
                needs_determinism: false,
                failure_transparent: true,
                guarantee: Linearizable,
            },
            Technique::SemiPassive => TechniqueInfo {
                technique: self,
                community: DistributedSystems,
                propagation: Eager,
                location: Primary,
                needs_determinism: false,
                failure_transparent: true,
                guarantee: Linearizable,
            },
            Technique::EagerPrimary => TechniqueInfo {
                technique: self,
                community: Databases,
                propagation: Eager,
                location: Primary,
                needs_determinism: false,
                failure_transparent: false,
                guarantee: OneCopySerializable,
            },
            Technique::EagerUpdateEverywhereLocking => TechniqueInfo {
                technique: self,
                community: Databases,
                propagation: Eager,
                location: Everywhere,
                needs_determinism: false,
                failure_transparent: false,
                guarantee: OneCopySerializable,
            },
            Technique::EagerUpdateEverywhereAbcast => TechniqueInfo {
                technique: self,
                community: Databases,
                propagation: Eager,
                location: Everywhere,
                needs_determinism: true,
                failure_transparent: false,
                guarantee: OneCopySerializable,
            },
            Technique::LazyPrimary => TechniqueInfo {
                technique: self,
                community: Databases,
                propagation: Lazy,
                location: Primary,
                needs_determinism: false,
                failure_transparent: false,
                guarantee: Weak,
            },
            Technique::LazyUpdateEverywhere => TechniqueInfo {
                technique: self,
                community: Databases,
                propagation: Lazy,
                location: Everywhere,
                needs_determinism: false,
                failure_transparent: false,
                guarantee: Weak,
            },
            Technique::Certification => TechniqueInfo {
                technique: self,
                community: Databases,
                propagation: Eager,
                location: Everywhere,
                needs_determinism: true,
                failure_transparent: false,
                guarantee: OneCopySerializable,
            },
        }
    }

    /// The paper figure that depicts this technique's phase diagram.
    pub fn paper_figure(self) -> &'static str {
        match self {
            Technique::Active => "Fig. 2",
            Technique::Passive => "Fig. 3",
            Technique::SemiActive => "Fig. 4",
            Technique::SemiPassive => "§3.5",
            Technique::EagerPrimary => "Fig. 7 / Fig. 12",
            Technique::EagerUpdateEverywhereLocking => "Fig. 8 / Fig. 13",
            Technique::EagerUpdateEverywhereAbcast => "Fig. 9",
            Technique::LazyPrimary => "Fig. 10",
            Technique::LazyUpdateEverywhere => "Fig. 11",
            Technique::Certification => "Fig. 14",
        }
    }

    /// The phase skeleton the paper's Figure 16 claims for this technique
    /// (single-operation transactions).
    pub fn claimed_skeleton(self) -> &'static str {
        match self {
            Technique::Active => "RE SC EX END",
            Technique::Passive => "RE EX AC END",
            Technique::SemiActive => "RE SC EX AC END",
            Technique::SemiPassive => "RE EX AC END",
            Technique::EagerPrimary => "RE EX AC END",
            Technique::EagerUpdateEverywhereLocking => "RE SC EX AC END",
            Technique::EagerUpdateEverywhereAbcast => "RE SC EX END",
            Technique::LazyPrimary => "RE EX END AC",
            Technique::LazyUpdateEverywhere => "RE EX END AC",
            Technique::Certification => "RE EX SC AC END",
        }
    }
}

impl fmt::Display for Technique {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_lists_ten_techniques() {
        assert_eq!(Technique::ALL.len(), 10);
        let mut names: Vec<&str> = Technique::ALL.iter().map(|t| t.name()).collect();
        names.dedup();
        assert_eq!(names.len(), 10, "names must be distinct");
    }

    #[test]
    fn figure5_quadrants_match_paper() {
        // Fig. 5: Active = (transparent, determinism needed);
        // Passive = (not transparent, no determinism);
        // Semi-active & semi-passive = (transparent, no determinism).
        let a = Technique::Active.info();
        assert!(a.failure_transparent && a.needs_determinism);
        let p = Technique::Passive.info();
        assert!(!p.failure_transparent && !p.needs_determinism);
        let sa = Technique::SemiActive.info();
        assert!(sa.failure_transparent && !sa.needs_determinism);
        let sp = Technique::SemiPassive.info();
        assert!(sp.failure_transparent && !sp.needs_determinism);
    }

    #[test]
    fn figure6_quadrants_match_gray_taxonomy() {
        use Propagation::*;
        use UpdateLocation::*;
        assert_eq!(Technique::EagerPrimary.info().propagation, Eager);
        assert_eq!(Technique::EagerPrimary.info().location, Primary);
        assert_eq!(
            Technique::EagerUpdateEverywhereLocking.info().location,
            Everywhere
        );
        assert_eq!(Technique::LazyPrimary.info().propagation, Lazy);
        assert_eq!(Technique::LazyUpdateEverywhere.info().location, Everywhere);
    }

    #[test]
    fn lazy_techniques_are_exactly_the_weak_ones() {
        for t in Technique::ALL {
            let info = t.info();
            assert_eq!(
                info.propagation == Propagation::Lazy,
                info.guarantee == Guarantee::Weak,
                "{t}"
            );
        }
    }

    #[test]
    fn claimed_skeletons_parse_as_phases() {
        use crate::phase::Phase;
        for t in Technique::ALL {
            for tag in t.claimed_skeleton().split_whitespace() {
                assert!(Phase::from_tag(tag).is_some(), "{t}: bad tag {tag}");
            }
        }
    }

    #[test]
    fn lazy_skeletons_respond_before_agreement() {
        use crate::phase::{Phase, PhaseSkeleton};
        for t in Technique::ALL {
            let phases: Vec<Phase> = t
                .claimed_skeleton()
                .split_whitespace()
                .map(|s| Phase::from_tag(s).expect("valid"))
                .collect();
            let sk = PhaseSkeleton::new(phases);
            assert_eq!(
                sk.responds_before_agreement(),
                t.info().propagation == Propagation::Lazy,
                "{t}"
            );
            // Fig. 15's claim: strong consistency iff SC or AC before END.
            assert_eq!(
                sk.synchronises_before_response(),
                t.info().guarantee != Guarantee::Weak,
                "{t}"
            );
        }
    }
}
