//! Regenerates every figure of the paper from executed protocols.
//!
//! Each `figN_*` function returns a formatted text artifact. The phase
//! figures (2–4, 7–14) are *measured*: a small run of the technique is
//! executed and the phase diagram is reconstructed from the trace, then
//! compared against the paper's claim. The classification figures (5, 6,
//! 15, 16) combine the taxonomy metadata with measured evidence.

use std::fmt::Write as _;

use repl_sim::SimDuration;
use repl_workload::WorkloadSpec;

use crate::phase::{Phase, PhaseSkeleton};
use crate::protocols::common::ExecutionMode;
use crate::runner::{run, RunConfig};
use crate::technique::{Community, Guarantee, Propagation, Technique, UpdateLocation};

/// The standard small run used for figure generation: one client, four
/// update transactions, enough to produce a canonical skeleton.
fn figure_run(technique: Technique, ops_per_txn: u32) -> RunConfig {
    let mut cfg = RunConfig::new(technique)
        .with_clients(1)
        .with_seed(42)
        .with_workload(
            WorkloadSpec::default()
                .with_items(16)
                .with_read_ratio(0.0)
                .with_ops_per_txn(ops_per_txn)
                .with_txns_per_client(4),
        );
    if technique == Technique::SemiActive {
        cfg = cfg.with_exec(ExecutionMode::NonDeterministic);
    }
    if technique.info().propagation == Propagation::Lazy {
        cfg = cfg.with_propagation_delay(SimDuration::from_ticks(2_000));
    }
    cfg
}

/// The measured canonical phase skeleton of a technique.
pub fn measured_skeleton(technique: Technique, ops_per_txn: u32) -> PhaseSkeleton {
    let report = run(&figure_run(technique, ops_per_txn));
    report
        .canonical_skeleton()
        .expect("figure run completed operations")
}

/// Figure 1: the functional model itself.
pub fn fig1_functional_model() -> String {
    let mut s = String::new();
    let _ = writeln!(s, "Figure 1 — Functional model: the five phases");
    for (i, p) in Phase::ALL.iter().enumerate() {
        let name = match p {
            Phase::Request => "Client contact: the client submits the operation",
            Phase::ServerCoordination => "Server coordination: replicas order the operation",
            Phase::Execution => "Execution: the operation is performed",
            Phase::AgreementCoordination => "Agreement coordination: replicas agree on the result",
            Phase::Response => "Client response: the outcome reaches the client",
        };
        let _ = writeln!(s, "  Phase {}: {:<4} {}", i + 1, p.tag(), name);
    }
    s
}

/// Renders a measured phase diagram (one line per phase with timing) for
/// a technique — Figures 2–4 and 7–14.
pub fn phase_diagram(technique: Technique, ops_per_txn: u32) -> String {
    let report = run(&figure_run(technique, ops_per_txn));
    let pt = &report.phase_trace;
    let ops = pt.ops();
    let mut s = String::new();
    let _ = writeln!(
        s,
        "{} ({}) — measured phase diagram, {} op(s)/txn",
        technique,
        technique.paper_figure(),
        ops_per_txn
    );
    let Some(&op) = ops.first() else {
        let _ = writeln!(s, "  (no operations completed)");
        return s;
    };
    let marks: Vec<_> = pt.marks().iter().filter(|m| m.op == op).collect();
    let t0 = marks.first().map(|m| m.time).unwrap_or_default();
    for m in &marks {
        let offset = (m.time - t0).ticks();
        let _ = writeln!(s, "  t+{offset:>6}  {}", m.phase.tag());
    }
    let skeleton = pt.skeleton_of(op);
    let _ = writeln!(s, "  skeleton : {skeleton}");
    let _ = writeln!(s, "  paper    : {}", technique.claimed_skeleton());
    let matches = ops_per_txn > 1 || skeleton.to_string() == technique.claimed_skeleton();
    let _ = writeln!(
        s,
        "  match    : {}",
        if matches { "yes" } else { "see EXPERIMENTS.md" }
    );
    s
}

/// Figure 5: the distributed-systems classification matrix
/// (failure transparency × server determinism).
pub fn fig5_ds_matrix() -> String {
    let ds: Vec<Technique> = Technique::ALL
        .into_iter()
        .filter(|t| t.info().community == Community::DistributedSystems)
        .collect();
    let cell = |transparent: bool, needs_det: bool| -> String {
        let names: Vec<&str> = ds
            .iter()
            .filter(|t| {
                let i = t.info();
                i.failure_transparent == transparent && i.needs_determinism == needs_det
            })
            .map(|t| t.name())
            .collect();
        if names.is_empty() {
            "—".to_string()
        } else {
            names.join(", ")
        }
    };
    let mut s = String::new();
    let _ = writeln!(s, "Figure 5 — Replication in distributed systems");
    let _ = writeln!(
        s,
        "{:<28}| {:<30}| not transparent",
        "", "failure transparent"
    );
    let _ = writeln!(s, "{:-<28}+{:-<31}+{:-<30}", "", "", "");
    let _ = writeln!(
        s,
        "{:<28}| {:<30}| {}",
        "determinism needed",
        cell(true, true),
        cell(false, true)
    );
    let _ = writeln!(
        s,
        "{:<28}| {:<30}| {}",
        "determinism not needed",
        cell(true, false),
        cell(false, false)
    );
    s
}

/// Figure 6: the database classification matrix (Gray et al.:
/// update propagation × update location).
pub fn fig6_db_matrix() -> String {
    let db: Vec<Technique> = Technique::ALL
        .into_iter()
        .filter(|t| t.info().community == Community::Databases)
        .collect();
    let cell = |prop: Propagation, loc: UpdateLocation| -> String {
        let names: Vec<&str> = db
            .iter()
            .filter(|t| {
                let i = t.info();
                i.propagation == prop && i.location == loc
            })
            .map(|t| t.name())
            .collect();
        if names.is_empty() {
            "—".to_string()
        } else {
            names.join(", ")
        }
    };
    let mut s = String::new();
    let _ = writeln!(
        s,
        "Figure 6 — Replication in database systems (Gray et al.)"
    );
    let _ = writeln!(s, "{:<18}| {:<50}| lazy", "", "eager");
    let _ = writeln!(s, "{:-<18}+{:-<51}+{:-<40}", "", "", "");
    let _ = writeln!(
        s,
        "{:<18}| {:<50}| {}",
        "primary copy",
        cell(Propagation::Eager, UpdateLocation::Primary),
        cell(Propagation::Lazy, UpdateLocation::Primary)
    );
    let _ = writeln!(
        s,
        "{:<18}| {:<50}| {}",
        "update everywhere",
        cell(Propagation::Eager, UpdateLocation::Everywhere),
        cell(Propagation::Lazy, UpdateLocation::Everywhere)
    );
    s
}

/// Figure 15: the possible phase combinations, derived from the measured
/// skeletons of all ten techniques.
pub fn fig15_combinations() -> String {
    use std::collections::BTreeMap;
    let mut combos: BTreeMap<String, Vec<&'static str>> = BTreeMap::new();
    for t in Technique::ALL {
        let sk = measured_skeleton(t, 1);
        combos.entry(sk.to_string()).or_default().push(t.name());
    }
    let mut s = String::new();
    let _ = writeln!(s, "Figure 15 — Possible combinations of phases (measured)");
    for (combo, users) in &combos {
        let _ = writeln!(s, "  {:<18} <- {}", combo, users.join(", "));
    }
    let _ = writeln!(
        s,
        "  claim: every strongly consistent technique has SC and/or AC before END"
    );
    for (combo, users) in &combos {
        let phases: Vec<Phase> = combo
            .split_whitespace()
            .map(|t| Phase::from_tag(t).expect("valid tag"))
            .collect();
        let sk = PhaseSkeleton::new(phases);
        let _ = writeln!(
            s,
            "    {:<18} sync-before-response={} ({})",
            combo,
            sk.synchronises_before_response(),
            users.join(", ")
        );
    }
    s
}

/// Figure 16: the synthetic view of all techniques — measured skeleton,
/// paper skeleton, and the verified consistency class.
pub fn fig16_synthetic_view() -> String {
    let mut s = String::new();
    let _ = writeln!(s, "Figure 16 — Synthetic view of approaches (measured)");
    let _ = writeln!(
        s,
        "  {:<34} {:<18} {:<18} {:<10} consistency",
        "technique", "measured", "paper", "match"
    );
    for t in Technique::ALL {
        let report = run(&figure_run(t, 1));
        let measured = report
            .canonical_skeleton()
            .map(|s| s.to_string())
            .unwrap_or_else(|| "(none)".into());
        let claimed = t.claimed_skeleton();
        let verified = match t.info().guarantee {
            Guarantee::Weak => {
                let conv = report.converged();
                format!("weak (converged={conv})")
            }
            _ => {
                let sr = report.check_one_copy_serializable().is_ok();
                format!("strong (1SR={sr})")
            }
        };
        let _ = writeln!(
            s,
            "  {:<34} {:<18} {:<18} {:<10} {}",
            t.name(),
            measured,
            claimed,
            if measured == claimed { "yes" } else { "NO" },
            verified
        );
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig1_lists_all_five_phases() {
        let s = fig1_functional_model();
        for p in Phase::ALL {
            assert!(s.contains(p.tag()), "missing {p}");
        }
    }

    #[test]
    fn fig5_places_active_and_passive_in_opposite_corners() {
        let s = fig5_ds_matrix();
        assert!(s.contains("Active"));
        assert!(s.contains("Passive"));
        assert!(s.contains("Semi-Active"));
    }

    #[test]
    fn fig6_has_all_four_quadrants_populated() {
        let s = fig6_db_matrix();
        assert!(s.contains("Eager Primary Copy"));
        assert!(s.contains("Lazy Primary Copy"));
        assert!(s.contains("Lazy Update Everywhere"));
        assert!(s.contains("ABCAST"));
    }

    #[test]
    fn phase_diagram_of_active_matches_figure_2() {
        let s = phase_diagram(Technique::Active, 1);
        assert!(s.contains("RE SC EX END"), "{s}");
        assert!(s.contains("match    : yes"), "{s}");
    }

    #[test]
    fn fig16_reports_all_ten_rows() {
        let s = fig16_synthetic_view();
        for t in Technique::ALL {
            assert!(s.contains(t.name()), "missing {t}: {s}");
        }
        assert!(!s.contains(" NO "), "some technique failed its claim:\n{s}");
    }
}

#[cfg(test)]
mod structure_tests {
    use super::*;

    #[test]
    fn fig15_measures_exactly_five_distinct_combinations() {
        // The ten techniques collapse onto five phase skeletons — the
        // structure behind the paper's Figure 15.
        let s = fig15_combinations();
        let combos = s.lines().filter(|l| l.contains(" <- ")).count();
        assert_eq!(combos, 5, "{s}");
    }

    #[test]
    fn multi_op_diagrams_show_the_section5_loops() {
        let fig12 = phase_diagram(Technique::EagerPrimary, 3);
        assert!(fig12.contains("RE EX AC EX AC EX AC END"), "{fig12}");
        let fig13 = phase_diagram(Technique::EagerUpdateEverywhereLocking, 3);
        assert!(fig13.contains("RE SC EX SC EX SC EX AC END"), "{fig13}");
    }

    #[test]
    fn measured_skeleton_helper_matches_claims() {
        assert_eq!(
            measured_skeleton(Technique::LazyPrimary, 1).to_string(),
            Technique::LazyPrimary.claimed_skeleton()
        );
    }
}
