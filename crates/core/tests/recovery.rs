//! Universal crash-recovery: every technique survives losing one tail
//! replica for a large slice of the run, readmits it, and converges.
//!
//! The scenario is deliberately uniform — one paired outage built with
//! [`FaultPlan::outage_at`], one victim (the highest-ranked replica, so
//! primaries/sequencers keep running), update-only load before, during
//! and after the outage — so that the same assertions hold for all ten
//! techniques:
//!
//! * **Liveness** — the surviving majority keeps answering; no client is
//!   left unanswered.
//! * **Recovery** — the victim rejoins: the run report carries its
//!   recovery accounting (a begun and *completed* catch-up, i.e. a
//!   finite MTTR) and the state it caught up with (transfer bytes).
//! * **Convergence** — at quiescence the recovered replica's store
//!   fingerprint equals every survivor's: state transfer plus replayed
//!   traffic closed the gap the outage opened.

use repl_core::{run, Propagation, RunConfig, Technique};
use repl_sim::{NodeId, SimDuration, SimTime};
use repl_workload::{FaultPlan, WorkloadSpec};

const SERVERS: u32 = 3;
const CLIENTS: u32 = 3;
const CRASH_AT: u64 = 5_000;
const DOWNTIME: u64 = 40_000;

fn victim() -> NodeId {
    NodeId::new(SERVERS - 1)
}

/// One tail-replica outage long enough to matter (the victim misses a
/// third or more of the run), with updates flowing the whole time.
fn recovery_cfg(technique: Technique, seed: u64) -> (RunConfig, FaultPlan) {
    let plan = FaultPlan::new().outage_at(
        SimTime::from_ticks(CRASH_AT),
        victim(),
        SimDuration::from_ticks(DOWNTIME),
    );
    let mut cfg = RunConfig::new(technique)
        .with_servers(SERVERS)
        .with_clients(CLIENTS)
        .with_seed(seed)
        .with_trace(false)
        .with_workload(
            WorkloadSpec::default()
                .with_items(64)
                .with_read_ratio(0.0)
                .with_txns_per_client(15)
                .with_think_time(SimDuration::from_ticks(3_000)),
        )
        // A tight retry timeout keeps the blocking techniques' runs
        // dominated by the outage rather than by retry backoff, so the
        // outage really does cover a third of every technique's run.
        .with_retry_after(SimDuration::from_ticks(4_000))
        .with_faults(plan.clone());
    if technique.info().propagation == Propagation::Lazy {
        cfg = cfg.with_propagation_delay(SimDuration::from_ticks(1_000));
    }
    (cfg, plan)
}

/// The acceptance scenario: crash → recover → converge, uniformly for
/// all ten techniques.
#[test]
fn every_technique_recovers_a_crashed_replica_and_converges() {
    for technique in Technique::ALL {
        let (cfg, plan) = recovery_cfg(technique, 11);
        assert!(plan.fully_healed());
        let report = run(&cfg);

        // The outage must cover a substantial slice of the run, or the
        // test degenerates into a blip nobody noticed.
        assert!(
            DOWNTIME * 3 >= report.duration.ticks(),
            "{technique}: outage too short relative to the run \
             ({DOWNTIME} of {})",
            report.duration.ticks()
        );

        // Liveness: a minority crash is tolerated by every technique.
        assert_eq!(
            report.ops_unanswered, 0,
            "{technique}: clients left unanswered across a recovered outage"
        );

        // Recovery accounting: the victim began and completed a catch-up.
        let rec = report
            .availability
            .recoveries
            .iter()
            .find(|r| r.site == SERVERS - 1)
            .unwrap_or_else(|| panic!("{technique}: no recovery record for the victim"));
        assert!(rec.recoveries >= 1, "{technique}: recovery not counted");
        assert!(
            rec.catch_up_ticks.is_some(),
            "{technique}: victim never finished catching up"
        );
        assert!(
            report.availability.mttr_ticks().is_some(),
            "{technique}: no MTTR despite a completed recovery"
        );
        assert!(
            rec.transfer_bytes > 0,
            "{technique}: victim caught up without receiving any state"
        );
        assert!(
            rec.log_suffix_transfers + rec.snapshot_transfers > 0,
            "{technique}: no transfer strategy recorded"
        );

        // Convergence: the recovered replica matches every survivor.
        let fps = &report.fingerprints;
        assert!(
            fps.windows(2).all(|w| w[0] == w[1]),
            "{technique}: replicas diverged after recovery: {fps:?}"
        );
    }
}

/// Strong techniques also keep their merged history one-copy
/// serializable across the outage (the recovered replica must not have
/// leaked stale reads or torn installs into the history).
#[test]
fn strong_techniques_stay_serializable_across_recovery() {
    for technique in Technique::ALL {
        if technique.info().guarantee == repl_core::Guarantee::Weak {
            continue;
        }
        let (cfg, _) = recovery_cfg(technique, 13);
        let report = run(&cfg);
        assert_eq!(report.ops_unanswered, 0, "{technique}");
        report
            .check_one_copy_serializable()
            .unwrap_or_else(|e| panic!("{technique}: 1SR violated across recovery: {e}"));
    }
}

/// Two back-to-back outages of the same replica: recovery must be
/// re-entrant (the second rejoin starts after the first completed, and
/// both are counted).
#[test]
fn repeated_outages_recover_repeatedly() {
    for &technique in &[
        Technique::Active,
        Technique::Passive,
        Technique::LazyPrimary,
    ] {
        let plan = FaultPlan::new()
            .outage_at(
                SimTime::from_ticks(4_000),
                victim(),
                SimDuration::from_ticks(12_000),
            )
            .outage_at(
                SimTime::from_ticks(40_000),
                victim(),
                SimDuration::from_ticks(12_000),
            );
        let (cfg, _) = recovery_cfg(technique, 17);
        let cfg = cfg.with_faults(plan);
        let report = run(&cfg);
        assert_eq!(report.ops_unanswered, 0, "{technique}");
        let rec = report
            .availability
            .recoveries
            .iter()
            .find(|r| r.site == SERVERS - 1)
            .unwrap_or_else(|| panic!("{technique}: no recovery record"));
        assert_eq!(rec.recoveries, 2, "{technique}: both recoveries counted");
        assert!(
            rec.catch_up_ticks.is_some(),
            "{technique}: second recovery did not complete"
        );
        let fps = &report.fingerprints;
        assert!(
            fps.windows(2).all(|w| w[0] == w[1]),
            "{technique}: diverged after repeated outages: {fps:?}"
        );
    }
}

/// Log retention selects the transfer strategy: an unbounded redo log
/// lets the donor ship the missing suffix, while a tightly truncated log
/// forces a full snapshot — same outage, same donor, different wire.
#[test]
fn log_retention_selects_the_transfer_strategy() {
    for &technique in &[
        Technique::SemiPassive,
        Technique::EagerPrimary,
        Technique::LazyPrimary,
    ] {
        let (cfg, _) = recovery_cfg(technique, 23);
        let suffix = run(&cfg.clone().with_log_retention(None));
        let snap = run(&cfg.with_log_retention(Some(2)));
        let rec_of = |r: &repl_core::RunReport| {
            r.availability
                .recoveries
                .iter()
                .find(|n| n.site == SERVERS - 1)
                .cloned()
                .unwrap_or_else(|| panic!("{technique}: no recovery record"))
        };
        let (s, p) = (rec_of(&suffix), rec_of(&snap));
        assert!(
            s.log_suffix_transfers > 0 && s.snapshot_transfers == 0,
            "{technique}: unbounded log should catch up by suffix: {s:?}"
        );
        assert!(
            p.snapshot_transfers > 0,
            "{technique}: a 2-entry log cannot cover a 40k-tick outage: {p:?}"
        );
        for report in [&suffix, &snap] {
            let fps = &report.fingerprints;
            assert!(
                fps.windows(2).all(|w| w[0] == w[1]),
                "{technique}: diverged: {fps:?}"
            );
        }
    }
}

/// Same seed, same outage ⇒ identical reports, recovery accounting
/// included — recovery paths must be as deterministic as the rest of
/// the simulator.
#[test]
fn recovery_runs_are_deterministic() {
    for &technique in &[
        Technique::SemiPassive,
        Technique::EagerPrimary,
        Technique::LazyUpdateEverywhere,
    ] {
        let (cfg, _) = recovery_cfg(technique, 19);
        let a = run(&cfg);
        let b = run(&cfg);
        assert_eq!(a.digest(), b.digest(), "{technique}: runs diverged");
    }
}
