//! Tiered durability under disaster: every technique survives losing a
//! replica's *entire volume* (WAL + store), restores from the durable
//! object tier, rejoins, and converges — and the run report accounts
//! honestly for whatever the disaster erased.
//!
//! The scenario mirrors the P12 study: three replicas, one tail victim,
//! a volume-loss disaster mid-run, an asynchronous uploader shipping
//! sealed log frames to a simulated object store. Contracts:
//!
//! * **Liveness** — the surviving majority keeps answering and the wiped
//!   replica comes back; no client is left unanswered.
//! * **Restore accounting** — the victim's wipe and its tier restore are
//!   both counted, and the rejoin completes (finite MTTR).
//! * **Convergence** — at quiescence the restored replica's store
//!   fingerprint equals every survivor's.
//! * **No silent loss** — every acknowledged update either survives in
//!   the merged history or is claimed by the data-loss accounting
//!   ([`RunReport::check_no_silent_loss`]).
//! * **Data-loss window** — the number of commits the disaster catches
//!   un-uploaded is zero at upload lag 0 and monotone in the lag.
//! * **Transparency** — with no disaster, the tier at lag 0 is digest-
//!   invisible: byte-identical reports with the tier on and off.

use repl_core::{run, DurabilityConfig, Guarantee, Propagation, RunConfig, Technique};
use repl_sim::{NodeId, SimDuration, SimTime};
use repl_workload::{FaultPlan, WorkloadSpec};

const SERVERS: u32 = 3;
const CLIENTS: u32 = 3;
const DISASTER_AT: u64 = 5_000;
const DOWNTIME: u64 = 15_000;

fn victim() -> NodeId {
    NodeId::new(SERVERS - 1)
}

/// The P12 scenario: one tail-replica volume loss mid-run, updates
/// flowing before, during and after, the durable tier uploading with
/// the given lag.
fn disaster_cfg(technique: Technique, seed: u64, upload_lag: u64) -> (RunConfig, FaultPlan) {
    let plan = FaultPlan::new().disaster_at(
        SimTime::from_ticks(DISASTER_AT),
        victim(),
        SimDuration::from_ticks(DOWNTIME),
    );
    let mut cfg = RunConfig::new(technique)
        .with_servers(SERVERS)
        .with_clients(CLIENTS)
        .with_seed(seed)
        .with_trace(false)
        .with_durability(DurabilityConfig::with_upload_lag(upload_lag))
        .with_workload(
            WorkloadSpec::default()
                .with_items(64)
                .with_read_ratio(0.0)
                .with_txns_per_client(15)
                .with_think_time(SimDuration::from_ticks(3_000)),
        )
        .with_retry_after(SimDuration::from_ticks(4_000))
        .with_faults(plan.clone());
    if technique.info().propagation == Propagation::Lazy {
        cfg = cfg.with_propagation_delay(SimDuration::from_ticks(1_000));
    }
    (cfg, plan)
}

/// The acceptance scenario: volume loss → restore from the tier →
/// rejoin → converge, uniformly for all ten techniques.
#[test]
fn every_technique_restores_a_wiped_replica_and_converges() {
    for technique in Technique::ALL {
        let (cfg, plan) = disaster_cfg(technique, 167, 2_000);
        assert!(plan.fully_healed());
        assert!(plan.wipes(victim()));
        let report = run(&cfg);

        // Liveness: a minority volume loss is tolerated by every technique.
        assert_eq!(
            report.ops_unanswered, 0,
            "{technique}: clients left unanswered across a restored disaster"
        );

        // The disaster really happened and the tier really restored.
        assert!(
            report.durability.enabled,
            "{technique}: durable tier not enabled"
        );
        assert!(
            report.durability.volume_wipes >= 1,
            "{technique}: volume wipe not counted"
        );
        assert!(
            report.durability.restores >= 1,
            "{technique}: no restore from the durable tier"
        );
        assert!(
            report.durability.restore_ticks > 0,
            "{technique}: restore took zero ticks"
        );

        // The rejoin completed: a begun and finished catch-up, finite MTTR.
        let rec = report
            .availability
            .recoveries
            .iter()
            .find(|r| r.site == SERVERS - 1)
            .unwrap_or_else(|| panic!("{technique}: no recovery record for the victim"));
        assert!(rec.recoveries >= 1, "{technique}: rejoin not counted");
        assert!(
            rec.catch_up_ticks.is_some(),
            "{technique}: victim never finished rejoining after the restore"
        );
        assert!(
            report.availability.mttr_ticks().is_some(),
            "{technique}: no MTTR despite a completed restore + rejoin"
        );

        // Convergence: the restored replica matches every survivor.
        let fps = &report.fingerprints;
        assert!(
            fps.windows(2).all(|w| w[0] == w[1]),
            "{technique}: replicas diverged after a volume restore: {fps:?}"
        );

        // The safety oracle: every acknowledged update either survives in
        // the merged history or is claimed by the data-loss accounting.
        report.check_no_silent_loss().unwrap_or_else(|v| {
            panic!("{technique}: acknowledged commits silently erased: {v:?}")
        });
    }
}

/// Strong techniques keep their merged history one-copy serializable
/// across the disaster: the surviving majority holds every acknowledged
/// commit, so the restored replica's catch-up closes the gap the wipe
/// opened without leaking torn state into the history.
#[test]
fn strong_techniques_stay_serializable_across_a_disaster() {
    for technique in Technique::ALL {
        if technique.info().guarantee == Guarantee::Weak {
            continue;
        }
        let (cfg, _) = disaster_cfg(technique, 167, 2_000);
        let report = run(&cfg);
        assert_eq!(report.ops_unanswered, 0, "{technique}");
        report
            .check_one_copy_serializable()
            .unwrap_or_else(|e| panic!("{technique}: 1SR violated across a disaster: {e}"));
    }
}

/// Satellite: with no disaster, the tier is observation-free. A clean
/// run with synchronous uploads (lag 0) must be byte-identical — same
/// digest — to the same run with the tier disabled, for every
/// technique. Uploads ride the existing event stream and their
/// counters stay out of the digest unless a disaster actually struck.
#[test]
fn tier_at_zero_lag_is_digest_invisible_on_clean_runs() {
    for technique in Technique::ALL {
        let base = RunConfig::new(technique)
            .with_servers(SERVERS)
            .with_clients(CLIENTS)
            .with_seed(29)
            .with_trace(true)
            .with_workload(
                WorkloadSpec::default()
                    .with_items(64)
                    .with_read_ratio(0.2)
                    .with_txns_per_client(10)
                    .with_think_time(SimDuration::from_ticks(2_000)),
            );
        let untiered = run(&base);
        let tiered = run(&base.clone().with_durability(DurabilityConfig::with_upload_lag(0)));
        assert!(
            tiered.durability.enabled && !tiered.durability.disaster(),
            "{technique}: clean tiered run misreported a disaster"
        );
        assert_eq!(
            untiered.digest(),
            tiered.digest(),
            "{technique}: enabling the tier changed a clean run's digest"
        );
        assert_eq!(
            untiered.trace_hash, tiered.trace_hash,
            "{technique}: enabling the tier changed a clean run's event trace"
        );
    }
}

/// Satellite: the data-loss window is the tail of commits sealed but
/// not yet durable when the volume dies. With synchronous uploads the
/// window is empty; stretching the upload lag can only grow it —
/// pre-wipe execution is lag-independent, so the set of frames whose
/// `seal + lag` postdates the wipe is monotone in the lag.
#[test]
fn data_loss_window_is_zero_at_lag_zero_and_monotone_in_lag() {
    for &technique in &[
        Technique::Active,
        Technique::Passive,
        Technique::EagerPrimary,
        Technique::LazyUpdateEverywhere,
    ] {
        let mut prev = 0u64;
        for (i, &lag) in [0u64, 2_000, 20_000].iter().enumerate() {
            let (cfg, _) = disaster_cfg(technique, 167, lag);
            let report = run(&cfg);
            let lost = report.durability.lost_commits;
            if i == 0 {
                assert_eq!(
                    lost, 0,
                    "{technique}: synchronous uploads still lost commits"
                );
            } else {
                assert!(
                    lost >= prev,
                    "{technique}: data-loss window shrank as upload lag grew \
                     (lag {lag}: {lost} < {prev})"
                );
            }
            // Whatever was lost must be claimed, never silent.
            report.check_no_silent_loss().unwrap_or_else(|v| {
                panic!("{technique} lag {lag}: silent loss: {v:?}")
            });
            prev = lost;
        }
    }
}

/// Satellite nemesis: a volume-loss disaster *composed with* a crash of
/// a second replica and a partition isolating the restored one. Four
/// servers so a majority survives every window and two replicas stay
/// untouched. Liveness, the no-silent-loss oracle and untouched-replica
/// convergence must all hold through the composition.
#[test]
fn volume_loss_composes_with_crashes_and_partitions() {
    const N: u32 = 4;
    let wiped = NodeId::new(N - 1);
    let plan = FaultPlan::new()
        .disaster_at(
            SimTime::from_ticks(5_000),
            wiped,
            SimDuration::from_ticks(12_000),
        )
        .outage_at(
            SimTime::from_ticks(26_000),
            NodeId::new(N - 2),
            SimDuration::from_ticks(10_000),
        )
        .partition_at(
            SimTime::from_ticks(44_000),
            vec![
                vec![NodeId::new(0), NodeId::new(1), NodeId::new(2)],
                vec![wiped],
            ],
        )
        .heal_at(SimTime::from_ticks(52_000));
    assert!(plan.fully_healed());

    for &technique in &[
        Technique::Active,
        Technique::Certification,
        Technique::Passive,
        Technique::LazyPrimary,
    ] {
        let mut cfg = RunConfig::new(technique)
            .with_servers(N)
            .with_clients(CLIENTS)
            .with_seed(167)
            .with_trace(false)
            .with_durability(DurabilityConfig::with_upload_lag(2_000))
            .with_workload(
                WorkloadSpec::default()
                    .with_items(64)
                    .with_read_ratio(0.0)
                    .with_txns_per_client(15)
                    .with_think_time(SimDuration::from_ticks(3_000)),
            )
            .with_retry_after(SimDuration::from_ticks(4_000))
            .with_faults(plan.clone());
        if technique.info().propagation == Propagation::Lazy {
            cfg = cfg.with_propagation_delay(SimDuration::from_ticks(1_000));
        }
        let report = run(&cfg);

        assert_eq!(
            report.ops_unanswered, 0,
            "{technique}: clients left unanswered under the composed nemesis"
        );
        assert_eq!(
            report.faults_injected(),
            plan.fault_count() as u64,
            "{technique}: not every scheduled fault was applied"
        );
        assert!(
            report.durability.volume_wipes >= 1 && report.durability.restores >= 1,
            "{technique}: the disaster leg of the nemesis did not run"
        );
        report.check_no_silent_loss().unwrap_or_else(|v| {
            panic!("{technique}: silent loss under the composed nemesis: {v:?}")
        });

        // Replicas the plan never disturbed must agree.
        let untouched: Vec<(u32, u64)> = (0..N - 2)
            .map(|s| (s, report.fingerprints[s as usize]))
            .collect();
        assert!(
            untouched.windows(2).all(|w| w[0].1 == w[1].1),
            "{technique}: untouched replicas diverged: {untouched:?}"
        );
        if technique.info().guarantee != Guarantee::Weak {
            report.check_one_copy_serializable().unwrap_or_else(|e| {
                panic!("{technique}: 1SR violated under the composed nemesis: {e}")
            });
        }
    }
}

/// Same seed, same disaster ⇒ identical reports, durability accounting
/// included — the uploader, the wipe and the restore must be as
/// deterministic as the rest of the simulator.
#[test]
fn disaster_runs_are_deterministic() {
    for &technique in &[
        Technique::Active,
        Technique::SemiPassive,
        Technique::EagerUpdateEverywhereLocking,
    ] {
        let (cfg, _) = disaster_cfg(technique, 19, 2_000);
        let a = run(&cfg);
        let b = run(&cfg);
        assert_eq!(a.digest(), b.digest(), "{technique}: disaster runs diverged");
        assert_eq!(
            a.durability.lost_commits, b.durability.lost_commits,
            "{technique}: loss accounting diverged"
        );
        assert_eq!(
            a.durability.claimed_lost, b.durability.claimed_lost,
            "{technique}: claimed-loss sets diverged"
        );
    }
}
