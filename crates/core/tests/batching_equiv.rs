//! Batched-vs-unbatched equivalence: the batching window may only delay
//! transactions, never change what they compute.
//!
//! Two families of properties, over arbitrary seeds and window sizes:
//!
//! * **Single client** — with one closed-loop client the total order is
//!   forced, so a batched run must commit *exactly* the same values as
//!   the unbatched run: identical per-server store fingerprints and
//!   identical client-visible responses (reads and commit verdicts).
//!   Only timing (latencies, message counts) may differ.
//! * **Concurrent clients** — with contention the batched order may
//!   legitimately differ from the unbatched one, but the correctness
//!   contract is unchanged: every operation answered, the merged history
//!   one-copy serializable, and all replicas convergent.
//!
//! Both families cover every ABCAST-based technique (active,
//! semi-active, eager UE over ABCAST, certification) under both ABCAST
//! implementations, plus eager primary copy (which batches its
//! backup-update rounds and WAL group commit instead).

use proptest::prelude::*;

use repl_core::protocols::common::AbcastImpl;
use repl_core::{run, BatchConfig, RunConfig, RunReport, Technique};
use repl_sim::SimDuration;
use repl_workload::WorkloadSpec;

/// The techniques whose coordination rounds honour the batching window.
/// `(technique, abcast impls to exercise)` — eager primary copy has no
/// ABCAST layer, so only the default endpoint matters there.
const BATCHED: &[(Technique, &[AbcastImpl])] = &[
    (
        Technique::Active,
        &[AbcastImpl::Sequencer, AbcastImpl::Consensus],
    ),
    (
        Technique::SemiActive,
        &[AbcastImpl::Sequencer, AbcastImpl::Consensus],
    ),
    (
        Technique::EagerUpdateEverywhereAbcast,
        &[AbcastImpl::Sequencer, AbcastImpl::Consensus],
    ),
    (
        Technique::Certification,
        &[AbcastImpl::Sequencer, AbcastImpl::Consensus],
    ),
    (Technique::EagerPrimary, &[AbcastImpl::Sequencer]),
];

fn cfg(
    technique: Technique,
    abcast: AbcastImpl,
    clients: u32,
    seed: u64,
    window: u64,
) -> RunConfig {
    let batching = if window == 0 {
        BatchConfig::disabled()
    } else {
        BatchConfig::window(window)
    };
    RunConfig::new(technique)
        .with_servers(3)
        .with_clients(clients)
        .with_seed(seed)
        .with_trace(false)
        .with_abcast(abcast)
        .with_batching(batching)
        .with_workload(
            WorkloadSpec::default()
                .with_items(16)
                .with_read_ratio(0.25)
                .with_txns_per_client(6)
                .with_think_time(SimDuration::from_ticks(150)),
        )
}

/// Client-visible outcome of a run, stripped of all timing: per-client
/// operation ids, commit verdicts and read values, in client order.
fn outcomes(report: &RunReport) -> Vec<(u32, u64, Option<(bool, Vec<(u64, i64)>)>)> {
    report
        .records
        .iter()
        .map(|(client, rec)| {
            (
                *client,
                rec.op.0,
                rec.response.as_ref().map(|resp| {
                    (
                        resp.committed,
                        resp.reads.iter().map(|(k, v)| (k.0, v.0 as i64)).collect(),
                    )
                }),
            )
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// One client: any batching window yields bit-identical stores and
    /// client-visible responses — batching may only cost time.
    #[test]
    fn single_client_batched_equals_unbatched(
        seed in 0u64..1_000_000,
        window in 1u64..2_000,
    ) {
        for &(technique, impls) in BATCHED {
            for &ab in impls {
                let base = run(&cfg(technique, ab, 1, seed, 0));
                let batched = run(&cfg(technique, ab, 1, seed, window));
                prop_assert_eq!(
                    &base.fingerprints,
                    &batched.fingerprints,
                    "{technique:?}/{ab:?} seed={seed} w={window}: stores diverged"
                );
                prop_assert_eq!(
                    outcomes(&base),
                    outcomes(&batched),
                    "{technique:?}/{ab:?} seed={seed} w={window}: responses diverged"
                );
                prop_assert_eq!(base.ops_unanswered, 0);
                prop_assert_eq!(batched.ops_unanswered, 0);
            }
        }
    }

    /// Concurrent clients: under any window the run still answers every
    /// operation, stays one-copy serializable and converges.
    #[test]
    fn concurrent_batched_run_is_serializable(
        seed in 0u64..1_000_000,
        window in 1u64..2_000,
        clients in 2u32..5,
    ) {
        for &(technique, impls) in BATCHED {
            for &ab in impls {
                let report = run(&cfg(technique, ab, clients, seed, window));
                prop_assert_eq!(
                    report.ops_unanswered, 0,
                    "{technique:?}/{ab:?} seed={seed} w={window} c={clients}: unanswered ops"
                );
                prop_assert!(
                    report.converged(),
                    "{technique:?}/{ab:?} seed={seed} w={window} c={clients}: replicas diverged"
                );
                prop_assert!(
                    report.check_one_copy_serializable().is_ok(),
                    "{technique:?}/{ab:?} seed={seed} w={window} c={clients}: not 1SR"
                );
            }
        }
    }
}
