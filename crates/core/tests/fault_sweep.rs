//! The cross-technique fault sweep: all ten replication techniques driven
//! under seeded nemesis fault plans ([`FaultPlan::random`]).
//!
//! Contracts checked here, per the paper's failure assumptions (§2.1,
//! §6 "different failure assumptions"):
//!
//! * **Liveness** — every plan the nemesis generates is fully healed, so
//!   every client is eventually answered, for every technique.
//! * **Safety** — techniques with a strong guarantee keep their merged
//!   history one-copy serializable under faults, and replicas the plan
//!   never disturbed end the run with identical store fingerprints.
//! * **Reproducibility** — the same seed yields tick-for-tick identical
//!   runs: fingerprints, message counts and availability metrics.
//!
//! The one documented exception is eager primary-copy under partitions:
//! its failure detector implements the paper's fail-stop model, and a
//! partitioned minority backup that suspects every lower rank promotes
//! itself while clients can still reach it — classic split-brain. It is
//! exercised for liveness but excluded from the 1SR claim.

use repl_core::{run, Guarantee, Propagation, RunConfig, RunReport, Technique};
use repl_sim::{NodeId, SimDuration, SimTime};
use repl_workload::{FaultPlan, WorkloadSpec};

const SERVERS: u32 = 5;
const CLIENTS: u32 = 3;
const HORIZON: u64 = 80_000;

/// A run stretched so the nemesis window overlaps execution: update-only
/// transactions with think time, five servers so the victim pool holds
/// two nodes and a majority stays untouched.
fn sweep_cfg(technique: Technique, seed: u64, intensity: f64) -> (RunConfig, FaultPlan) {
    let plan = FaultPlan::random(seed, intensity, SERVERS, SimTime::from_ticks(HORIZON));
    let mut cfg = RunConfig::new(technique)
        .with_servers(SERVERS)
        .with_clients(CLIENTS)
        .with_seed(seed)
        .with_trace(false)
        .with_workload(
            WorkloadSpec::default()
                .with_items(64)
                .with_read_ratio(0.0)
                .with_txns_per_client(10)
                .with_think_time(SimDuration::from_ticks(2_000)),
        )
        .with_faults(plan.clone());
    if technique.info().propagation == Propagation::Lazy {
        cfg = cfg.with_propagation_delay(SimDuration::from_ticks(2_000));
    }
    (cfg, plan)
}

/// Fingerprints of the replicas the plan never disturbed (site, fp).
fn untouched_fingerprints(report: &RunReport, plan: &FaultPlan) -> Vec<(u32, u64)> {
    let disturbed = plan.disturbed_nodes();
    (0..SERVERS)
        .filter(|&s| !disturbed.contains(&NodeId::new(s)))
        .map(|s| (s, report.fingerprints[s as usize]))
        .collect()
}

fn assert_untouched_converged(
    technique: Technique,
    seed: u64,
    report: &RunReport,
    plan: &FaultPlan,
) {
    let untouched = untouched_fingerprints(report, plan);
    assert!(
        untouched.len() >= 2,
        "{technique} seed {seed}: nemesis disturbed too many replicas: {:?}",
        plan.disturbed_nodes()
    );
    assert!(
        untouched.windows(2).all(|w| w[0].1 == w[1].1),
        "{technique} seed {seed}: untouched replicas diverged: {untouched:?}"
    );
}

/// The acceptance scenario: one seeded plan composing a crash, a
/// partition + heal and a link latency spike completes for all ten
/// techniques with non-zero fault counts and finite availability metrics.
#[test]
fn composed_nemesis_run_completes_for_every_technique() {
    let (_, plan) = sweep_cfg(Technique::Active, 42, 0.6);
    assert!(plan.events().iter().any(|e| e.kind() == "crash"));
    assert!(plan.events().iter().any(|e| e.kind() == "partition"));
    assert!(plan.events().iter().any(|e| e.kind() == "degrade"));
    assert!(plan.fully_healed());

    for technique in Technique::ALL {
        let (cfg, plan) = sweep_cfg(technique, 42, 0.6);
        let report = run(&cfg);
        assert_eq!(
            report.ops_unanswered, 0,
            "{technique}: clients left unanswered under a fully healed plan"
        );
        assert!(
            report.faults_injected() > 0,
            "{technique}: nemesis injected nothing"
        );
        assert_eq!(
            report.faults_injected(),
            plan.fault_count() as u64,
            "{technique}: not every scheduled fault was applied"
        );
        assert_eq!(
            report.availability.repairs_applied,
            (plan.len() - plan.fault_count()) as u64,
            "{technique}: not every scheduled repair was applied"
        );
        assert_eq!(
            report.availability.per_client_worst_gap.len(),
            CLIENTS as usize
        );
        assert!(
            report.availability.worst_gap() > SimDuration::ZERO,
            "{technique}: zero unavailability window under faults"
        );
        assert!(
            report.availability.failover_latency.is_some(),
            "{technique}: no committed response observed after the first crash"
        );
    }
}

/// Strong techniques stay one-copy serializable and their undisturbed
/// replicas converge, across a small grid of seeded plans.
#[test]
fn strong_techniques_stay_serializable_and_converge_under_faults() {
    for technique in Technique::ALL {
        if technique.info().guarantee == Guarantee::Weak {
            continue;
        }
        // Eager primary-copy assumes fail-stop faults (paper §4.3.2): its
        // failure detector cannot tell a partitioned minority backup from
        // a dead primary, the backup promotes itself, and both sides of
        // the cut commit — split-brain. Liveness for it is covered by the
        // composition test; the 1SR claim is out of its failure model.
        if technique == Technique::EagerPrimary {
            continue;
        }
        for &(seed, intensity) in &[(7u64, 0.4), (42u64, 0.8)] {
            let (cfg, plan) = sweep_cfg(technique, seed, intensity);
            let report = run(&cfg);
            assert_eq!(
                report.ops_unanswered, 0,
                "{technique} seed {seed}: clients left unanswered"
            );
            report.check_one_copy_serializable().unwrap_or_else(|e| {
                panic!("{technique} seed {seed}: 1SR violated under faults: {e}")
            });
            assert_untouched_converged(technique, seed, &report, &plan);
        }
    }
}

/// Lazy techniques answer everything and their undisturbed replicas
/// converge once propagation drains after the heal.
#[test]
fn lazy_techniques_untouched_replicas_converge_after_heal() {
    for &technique in &[Technique::LazyPrimary, Technique::LazyUpdateEverywhere] {
        for seed in [7u64, 42] {
            let (cfg, plan) = sweep_cfg(technique, seed, 0.5);
            let report = run(&cfg);
            assert_eq!(
                report.ops_unanswered, 0,
                "{technique} seed {seed}: clients left unanswered"
            );
            assert_untouched_converged(technique, seed, &report, &plan);
        }
    }
}

/// The composed-fault scenario again, with a nonzero batching window:
/// crashes, a partition + heal and a latency spike hit runs whose
/// ordering layer is staging transactions into batches. Liveness must
/// hold (no client stranded by a batch whose flush raced a failover),
/// and batch delivery must stay all-or-nothing: a partially applied
/// batch would split the stores of replicas the plan never disturbed
/// (convergence check) or commit a torn prefix (1SR check).
#[test]
fn composed_faults_with_batching_window() {
    use repl_core::protocols::common::AbcastImpl;
    use repl_core::BatchConfig;

    let abcast_based = [
        Technique::Active,
        Technique::SemiActive,
        Technique::EagerUpdateEverywhereAbcast,
        Technique::Certification,
    ];
    for technique in abcast_based {
        for ab in [AbcastImpl::Sequencer, AbcastImpl::Consensus] {
            let (cfg, plan) = sweep_cfg(technique, 42, 0.6);
            let cfg = cfg.with_abcast(ab).with_batching(BatchConfig::window(500));
            let report = run(&cfg);
            assert_eq!(
                report.ops_unanswered, 0,
                "{technique}/{ab:?}: client stranded — a staged batch was lost in failover"
            );
            assert!(
                report.faults_injected() > 0,
                "{technique}/{ab:?}: nemesis injected nothing"
            );
            report.check_one_copy_serializable().unwrap_or_else(|e| {
                panic!("{technique}/{ab:?}: 1SR violated with batching under faults: {e}")
            });
            assert_untouched_converged(technique, 42, &report, &plan);
        }
    }
}

/// Satellite: same seed ⇒ identical runs, under faults, across techniques
/// from three different families (active replication, primary-backup via
/// view synchrony, distributed locking).
#[test]
fn seeded_fault_runs_are_deterministic() {
    let techniques = [
        Technique::Active,
        Technique::Passive,
        Technique::EagerUpdateEverywhereLocking,
    ];
    for &technique in &techniques {
        for seed in [3u64, 5] {
            let (cfg, _) = sweep_cfg(technique, seed, 0.7);
            let a = run(&cfg);
            let b = run(&cfg);
            assert_eq!(
                a.fingerprints, b.fingerprints,
                "{technique} seed {seed}: fingerprints differ across identical runs"
            );
            assert_eq!(
                a.messages, b.messages,
                "{technique} seed {seed}: message metrics differ"
            );
            assert_eq!(a.ops_committed, b.ops_committed, "{technique} seed {seed}");
            assert_eq!(a.ops_aborted, b.ops_aborted, "{technique} seed {seed}");
            assert_eq!(
                a.ops_unanswered, b.ops_unanswered,
                "{technique} seed {seed}"
            );
            assert_eq!(
                a.client_retries, b.client_retries,
                "{technique} seed {seed}"
            );
            assert_eq!(a.duration, b.duration, "{technique} seed {seed}");
            assert_eq!(
                a.availability.per_client_worst_gap, b.availability.per_client_worst_gap,
                "{technique} seed {seed}: unavailability windows differ"
            );
            assert_eq!(
                a.availability.failover_latency, b.availability.failover_latency,
                "{technique} seed {seed}: failover latency differs"
            );
            assert_eq!(a.faults_injected(), b.faults_injected());
        }
    }
}
