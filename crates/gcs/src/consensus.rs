//! Rotating-coordinator consensus in the Chandra–Toueg ◇S style.
//!
//! Consensus is the agreement engine under the distributed-systems side of
//! the paper: consensus-based Atomic Broadcast (Section 3.2/4.4.2), view
//! agreement for VSCAST (Section 3.3), and semi-passive replication's
//! "consensus with deferred initial values" (Section 3.5) all reduce to it.
//!
//! The algorithm proceeds in rounds; the coordinator of round `r` is
//! `group[r % n]`. Each round is a Paxos-like ballot:
//!
//! 1. every participant entering round `r` sends its current *estimate*
//!    (last adopted value and the round it was adopted in) to the
//!    coordinator — implicitly promising to reject proposals from earlier
//!    rounds;
//! 2. the coordinator collects a majority of round-`r` estimates, picks the
//!    value with the highest adoption timestamp (ties broken by proposer
//!    id), and proposes it;
//! 3. participants adopt and acknowledge the proposal unless they have
//!    moved to a later round;
//! 4. on a majority of acks the coordinator decides and disseminates the
//!    decision with eager relay.
//!
//! Suspicion is implemented by per-round timeouts: an undecided participant
//! whose round stalls moves on, which rotates the coordinator. Safety never
//! depends on the timeouts; liveness requires a majority of the group to
//! stay alive (the usual requirement).

use std::collections::{HashMap, HashSet};

use repl_sim::{Message, NodeId, SimDuration};

use crate::component::{Component, Outbox};

/// Maximum round per instance (bounded so timer tags stay compact).
const MAX_ROUND: u64 = 1 << 16;
/// Maximum instance id (so `inst * MAX_ROUND + round` fits in a sub-tag space).
const MAX_INST: u64 = 1 << 24;

/// Wire message of [`ConsensusPool`].
#[derive(Debug, Clone)]
pub enum ConsMsg<V> {
    /// Proposer → all: an instance has begun; join round 0.
    Start {
        /// Consensus instance.
        inst: u64,
    },
    /// Participant → coordinator: current estimate for a round.
    Estimate {
        /// Consensus instance.
        inst: u64,
        /// Round the estimate is for.
        round: u64,
        /// Last adopted `(value, adoption timestamp)`, if any.
        est: Option<(V, u64)>,
    },
    /// Coordinator → all: proposal for a round.
    Propose {
        /// Consensus instance.
        inst: u64,
        /// Round of the proposal.
        round: u64,
        /// Proposed value.
        value: V,
    },
    /// Participant → coordinator: adoption acknowledgement.
    Ack {
        /// Consensus instance.
        inst: u64,
        /// Acknowledged round.
        round: u64,
    },
    /// Decision dissemination (eagerly relayed).
    Decide {
        /// Consensus instance.
        inst: u64,
        /// Decided value.
        value: V,
    },
}

impl<V: Message> Message for ConsMsg<V> {
    fn wire_size(&self) -> usize {
        match self {
            ConsMsg::Start { .. } => 16,
            ConsMsg::Estimate { est, .. } => {
                24 + est.as_ref().map_or(0, |(v, _)| v.wire_size() + 8)
            }
            ConsMsg::Propose { value, .. } => 24 + value.wire_size(),
            ConsMsg::Ack { .. } => 24,
            ConsMsg::Decide { value, .. } => 16 + value.wire_size(),
        }
    }
}

/// Event delivered by [`ConsensusPool`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ConsEvent<V> {
    /// Instance `inst` decided `value`.
    Decided {
        /// Consensus instance.
        inst: u64,
        /// Decided value.
        value: V,
    },
}

/// Configuration of [`ConsensusPool`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ConsensusConfig {
    /// How long a participant waits in a round before rotating coordinators.
    pub round_timeout: SimDuration,
}

impl Default for ConsensusConfig {
    fn default() -> Self {
        ConsensusConfig {
            round_timeout: SimDuration::from_ticks(2_000),
        }
    }
}

#[derive(Debug)]
struct Inst<V> {
    round: u64,
    est: Option<(V, u64)>,
    /// Latest estimate received from each node: (round, estimate, sender id).
    estimates: HashMap<NodeId, (u64, Option<(V, u64)>)>,
    proposal: Option<(u64, V)>, // (round proposed in, value)
    acks: HashSet<NodeId>,
    decided: Option<V>,
    entered: bool,
}

impl<V> Default for Inst<V> {
    fn default() -> Self {
        Inst {
            round: 0,
            est: None,
            estimates: HashMap::new(),
            proposal: None,
            acks: HashSet::new(),
            decided: None,
            entered: false,
        }
    }
}

/// A pool of independent consensus instances over one fixed group.
///
/// # Examples
///
/// ```
/// use repl_gcs::{ConsensusPool, ConsensusConfig, Outbox};
/// use repl_sim::NodeId;
///
/// let group: Vec<NodeId> = (0..3).map(NodeId::new).collect();
/// let mut pool: ConsensusPool<u64> = ConsensusPool::new(group[0], group.clone(),
///     ConsensusConfig::default());
/// let mut out = Outbox::new();
/// pool.propose(0, 42, &mut out);
/// assert!(!out.is_empty());
/// ```
#[derive(Debug)]
pub struct ConsensusPool<V> {
    me: NodeId,
    group: Vec<NodeId>,
    config: ConsensusConfig,
    instances: HashMap<u64, Inst<V>>,
}

impl<V: Clone + std::fmt::Debug + 'static> ConsensusPool<V> {
    /// Creates a pool for group member `me`.
    ///
    /// # Panics
    ///
    /// Panics if `me` is not in `group`.
    pub fn new(me: NodeId, group: Vec<NodeId>, config: ConsensusConfig) -> Self {
        assert!(
            group.contains(&me),
            "consensus participant must be a group member"
        );
        ConsensusPool {
            me,
            group,
            config,
            instances: HashMap::new(),
        }
    }

    fn quorum(&self) -> usize {
        self.group.len() / 2 + 1
    }

    fn coord(&self, round: u64) -> NodeId {
        self.group[(round % self.group.len() as u64) as usize]
    }

    fn tag(inst: u64, round: u64) -> u64 {
        inst * MAX_ROUND + round
    }

    /// The decided value of `inst`, if any.
    pub fn decided(&self, inst: u64) -> Option<&V> {
        self.instances.get(&inst).and_then(|i| i.decided.as_ref())
    }

    /// Proposes `v` for instance `inst`. Idempotent: later proposals for a
    /// running instance only seed the estimate if none exists yet.
    ///
    /// # Panics
    ///
    /// Panics if `inst >= 2^24` (timer-tag space).
    pub fn propose(&mut self, inst: u64, v: V, out: &mut Outbox<ConsMsg<V>, ConsEvent<V>>) {
        assert!(inst < MAX_INST, "consensus instance id too large");
        let i = self.instances.entry(inst).or_default();
        if i.decided.is_some() {
            return;
        }
        if i.est.is_none() {
            i.est = Some((v, 0));
        }
        if !i.entered {
            let round = i.round;
            for &m in &self.group.clone() {
                if m != self.me {
                    out.send(m, ConsMsg::Start { inst });
                }
            }
            self.enter_round(inst, round, out);
        }
    }

    fn enter_round(&mut self, inst: u64, round: u64, out: &mut Outbox<ConsMsg<V>, ConsEvent<V>>) {
        assert!(round < MAX_ROUND, "consensus round overflow");
        let coord = self.coord(round);
        let i = self.instances.entry(inst).or_default();
        i.round = round;
        i.entered = true;
        let est = i.est.clone();
        out.send(coord, ConsMsg::Estimate { inst, round, est });
        out.timer(self.config.round_timeout, Self::tag(inst, round));
    }

    fn try_propose(&mut self, inst: u64, round: u64, out: &mut Outbox<ConsMsg<V>, ConsEvent<V>>) {
        if self.coord(round) != self.me {
            return;
        }
        let quorum = self.quorum();
        let group = self.group.clone();
        let i = self.instances.entry(inst).or_default();
        if i.decided.is_some() {
            return;
        }
        if let Some((r, _)) = i.proposal {
            if r >= round {
                return;
            }
        }
        let round_estimates: Vec<(NodeId, &Option<(V, u64)>)> = i
            .estimates
            .iter()
            .filter(|(_, (r, _))| *r == round)
            .map(|(n, (_, e))| (*n, e))
            .collect();
        if round_estimates.len() < quorum {
            return;
        }
        // Pick the estimate with the highest adoption timestamp; break ties
        // by sender id for determinism. `None` estimates carry no value.
        let mut best: Option<(u64, NodeId, V)> = None;
        for (n, e) in &round_estimates {
            if let Some((v, ts)) = e {
                let better = match &best {
                    None => true,
                    Some((bts, bn, _)) => *ts > *bts || (*ts == *bts && *n < *bn),
                };
                if better {
                    best = Some((*ts, *n, v.clone()));
                }
            }
        }
        let Some((_, _, value)) = best else {
            // A majority answered but none of them knows a value yet; wait
            // for an estimate that carries one.
            return;
        };
        i.proposal = Some((round, value.clone()));
        i.acks.clear();
        for &m in &group {
            out.send(
                m,
                ConsMsg::Propose {
                    inst,
                    round,
                    value: value.clone(),
                },
            );
        }
    }

    /// Re-arms the round timers of every undecided, entered instance
    /// after a crash (state survives a crash, timers do not).
    /// Re-entering the current round re-sends the estimate, which also
    /// prods the coordinator in case its proposal was lost.
    pub fn resume(&mut self, out: &mut Outbox<ConsMsg<V>, ConsEvent<V>>) {
        let mut stalled: Vec<(u64, u64)> = self
            .instances
            .iter()
            .filter(|(_, i)| i.entered && i.decided.is_none())
            .map(|(&inst, i)| (inst, i.round))
            .collect();
        stalled.sort_unstable(); // sorted-below: HashMap iteration order must not leak
        for (inst, round) in stalled {
            self.enter_round(inst, round, out);
        }
    }

    fn decide(&mut self, inst: u64, value: V, out: &mut Outbox<ConsMsg<V>, ConsEvent<V>>) {
        let me = self.me;
        let group = self.group.clone();
        let i = self.instances.entry(inst).or_default();
        if i.decided.is_some() {
            return;
        }
        i.decided = Some(value.clone());
        for &m in &group {
            if m != me {
                out.send(
                    m,
                    ConsMsg::Decide {
                        inst,
                        value: value.clone(),
                    },
                );
            }
        }
        out.event(ConsEvent::Decided { inst, value });
    }
}

impl<V: Clone + std::fmt::Debug + 'static> Component for ConsensusPool<V> {
    type Msg = ConsMsg<V>;
    type Event = ConsEvent<V>;

    fn on_message(
        &mut self,
        from: NodeId,
        msg: ConsMsg<V>,
        out: &mut Outbox<ConsMsg<V>, ConsEvent<V>>,
    ) {
        match msg {
            ConsMsg::Start { inst } => {
                let i = self.instances.entry(inst).or_default();
                if i.decided.is_some() {
                    let value = i.decided.clone().expect("just checked");
                    out.send(from, ConsMsg::Decide { inst, value });
                    return;
                }
                if !i.entered {
                    let round = i.round;
                    self.enter_round(inst, round, out);
                }
            }
            ConsMsg::Estimate { inst, round, est } => {
                let i = self.instances.entry(inst).or_default();
                if i.decided.is_some() {
                    let value = i.decided.clone().expect("just checked");
                    out.send(from, ConsMsg::Decide { inst, value });
                    return;
                }
                let entry = i.estimates.entry(from).or_insert((0, None));
                if round >= entry.0 {
                    *entry = (round, est);
                }
                if !i.entered {
                    let r = i.round.max(round);
                    self.enter_round(inst, r, out);
                }
                self.try_propose(inst, round, out);
            }
            ConsMsg::Propose { inst, round, value } => {
                let me_round_timeout = self.config.round_timeout;
                let i = self.instances.entry(inst).or_default();
                if i.decided.is_some() {
                    return;
                }
                if round < i.round {
                    return; // promised a later round
                }
                let rearm = round > i.round || !i.entered;
                i.round = round;
                i.entered = true;
                i.est = Some((value, round + 1));
                out.send(from, ConsMsg::Ack { inst, round });
                if rearm {
                    out.timer(me_round_timeout, Self::tag(inst, round));
                }
            }
            ConsMsg::Ack { inst, round } => {
                let quorum = self.quorum();
                let i = self.instances.entry(inst).or_default();
                if i.decided.is_some() {
                    return;
                }
                let Some((r, v)) = i.proposal.clone() else {
                    return;
                };
                if r != round {
                    return;
                }
                i.acks.insert(from);
                if i.acks.len() >= quorum {
                    self.decide(inst, v, out);
                }
            }
            ConsMsg::Decide { inst, value } => {
                self.decide(inst, value, out);
            }
        }
    }

    fn on_timer(&mut self, tag: u64, out: &mut Outbox<ConsMsg<V>, ConsEvent<V>>) {
        let inst = tag / MAX_ROUND;
        let round = tag % MAX_ROUND;
        let Some(i) = self.instances.get(&inst) else {
            return;
        };
        if i.decided.is_some() || i.round != round || !i.entered {
            return;
        }
        self.enter_round(inst, round + 1, out);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testkit::ComponentActor;
    use repl_sim::{SimConfig, SimDuration, SimTime, World};

    type Pool = ConsensusPool<u64>;
    type Host = ComponentActor<Pool>;

    fn build(
        n: u32,
        seed: u64,
        proposers: &[(u32, u64, u64)], // (node, at_ticks, value)
    ) -> (World<ConsMsg<u64>>, Vec<NodeId>) {
        let mut world = World::new(SimConfig::new(seed));
        let group: Vec<NodeId> = (0..n).map(NodeId::new).collect();
        for i in 0..n {
            let pool = Pool::new(NodeId::new(i), group.clone(), ConsensusConfig::default());
            let mut actor = ComponentActor::new(pool);
            for &(node, at, value) in proposers {
                if node == i {
                    actor = actor.with_step(SimDuration::from_ticks(at), move |p, out| {
                        p.propose(0, value, out);
                    });
                }
            }
            world.add_actor(Box::new(actor));
        }
        (world, group)
    }

    fn decision(world: &World<ConsMsg<u64>>, n: NodeId) -> Option<u64> {
        world
            .actor_ref::<Host>(n)
            .events
            .iter()
            .find_map(|(_, e)| match e {
                ConsEvent::Decided { inst: 0, value } => Some(*value),
                _ => None,
            })
    }

    #[test]
    fn single_proposer_everyone_decides_the_value() {
        let (mut world, group) = build(3, 1, &[(0, 10, 42)]);
        world.start();
        world.run_until(SimTime::from_ticks(50_000));
        for &n in &group {
            assert_eq!(decision(&world, n), Some(42), "node {n}");
        }
    }

    #[test]
    fn concurrent_proposers_agree() {
        for seed in 0..10 {
            let (mut world, group) = build(5, seed, &[(0, 10, 100), (3, 10, 300), (4, 12, 400)]);
            world.start();
            world.run_until(SimTime::from_ticks(100_000));
            let d0 = decision(&world, group[0]).expect("node 0 decided");
            assert!([100, 300, 400].contains(&d0), "validity violated: {d0}");
            for &n in &group {
                assert_eq!(
                    decision(&world, n),
                    Some(d0),
                    "agreement at {n}, seed {seed}"
                );
            }
        }
    }

    #[test]
    fn coordinator_crash_rotates_and_still_decides() {
        // Node 0 is coordinator of round 0; crash it just after proposals start.
        let (mut world, group) = build(5, 3, &[(1, 10, 7), (2, 10, 9)]);
        world.schedule_crash(SimTime::from_ticks(50), group[0]);
        world.start();
        world.run_until(SimTime::from_ticks(200_000));
        let d1 = decision(&world, group[1]).expect("survivor decided despite coord crash");
        for &n in &group[1..] {
            assert_eq!(decision(&world, n), Some(d1), "agreement at {n}");
        }
    }

    #[test]
    fn minority_crash_does_not_block() {
        let (mut world, group) = build(5, 4, &[(4, 10, 11)]);
        world.schedule_crash(SimTime::from_ticks(20), group[0]);
        world.schedule_crash(SimTime::from_ticks(20), group[1]);
        world.start();
        world.run_until(SimTime::from_ticks(300_000));
        for &n in &group[2..] {
            assert_eq!(decision(&world, n), Some(11), "node {n}");
        }
    }

    #[test]
    fn instances_are_independent() {
        let mut world = World::new(SimConfig::new(9));
        let group: Vec<NodeId> = (0..3).map(NodeId::new).collect();
        for i in 0..3u32 {
            let pool = Pool::new(NodeId::new(i), group.clone(), ConsensusConfig::default());
            let mut actor = ComponentActor::new(pool);
            if i == 0 {
                actor = actor.with_step(SimDuration::from_ticks(10), |p, out| {
                    p.propose(1, 111, out);
                    p.propose(2, 222, out);
                });
            }
            world.add_actor(Box::new(actor));
        }
        world.start();
        world.run_until(SimTime::from_ticks(50_000));
        for i in 0..3u32 {
            let host = world.actor_ref::<Host>(NodeId::new(i));
            let mut decided: Vec<(u64, u64)> = host
                .events
                .iter()
                .map(|(_, e)| match e {
                    ConsEvent::Decided { inst, value } => (*inst, *value),
                })
                .collect();
            decided.sort_unstable();
            assert_eq!(decided, vec![(1, 111), (2, 222)], "node {i}");
        }
    }

    #[test]
    fn random_crash_schedules_preserve_agreement_and_validity() {
        // Pseudo-property test: many seeds, random single-crash schedules.
        for seed in 0..20u64 {
            let n = 5;
            let crash_node = (seed % n as u64) as u32;
            let crash_at = 10 + (seed * 137) % 3_000;
            let (mut world, group) = build(n, seed, &[(1, 10, 1000 + seed), (3, 15, 2000 + seed)]);
            // Never crash both proposers' majority: one crash keeps majority.
            world.schedule_crash(SimTime::from_ticks(crash_at), NodeId::new(crash_node));
            world.start();
            world.run_until(SimTime::from_ticks(500_000));
            let survivors: Vec<NodeId> = group
                .iter()
                .copied()
                .filter(|n| n.raw() != crash_node)
                .collect();
            let decisions: Vec<Option<u64>> =
                survivors.iter().map(|&n| decision(&world, n)).collect();
            let first = decisions[0];
            assert!(first.is_some(), "no decision, seed {seed}");
            for d in &decisions {
                assert_eq!(*d, first, "disagreement, seed {seed}");
            }
            let v = first.expect("checked above");
            assert!(
                v == 1000 + seed || v == 2000 + seed,
                "invalid decision {v}, seed {seed}"
            );
        }
    }
}

#[cfg(test)]
mod edge_tests {
    use super::*;
    use crate::testkit::ComponentActor;
    use repl_sim::{SimConfig, SimDuration, SimTime, World};

    #[test]
    fn decided_accessor_reflects_outcome() {
        let mut world: World<ConsMsg<u64>> = World::new(SimConfig::new(2));
        let group: Vec<NodeId> = (0..3).map(NodeId::new).collect();
        for i in 0..3u32 {
            let mut actor = ComponentActor::new(ConsensusPool::<u64>::new(
                NodeId::new(i),
                group.clone(),
                ConsensusConfig::default(),
            ));
            if i == 0 {
                actor = actor.with_step(SimDuration::from_ticks(5), |p, out| {
                    p.propose(3, 99, out);
                });
            }
            world.add_actor(Box::new(actor));
        }
        world.start();
        world.run_until(SimTime::from_ticks(50_000));
        for i in 0..3u32 {
            let pool = &world
                .actor_ref::<ComponentActor<ConsensusPool<u64>>>(NodeId::new(i))
                .inner;
            assert_eq!(pool.decided(3), Some(&99), "node {i}");
            assert_eq!(pool.decided(4), None);
        }
    }

    #[test]
    fn late_proposal_to_decided_instance_is_ignored() {
        let mut world: World<ConsMsg<u64>> = World::new(SimConfig::new(7));
        let group: Vec<NodeId> = (0..3).map(NodeId::new).collect();
        for i in 0..3u32 {
            let mut actor = ComponentActor::new(ConsensusPool::<u64>::new(
                NodeId::new(i),
                group.clone(),
                ConsensusConfig::default(),
            ));
            if i == 0 {
                actor = actor.with_step(SimDuration::from_ticks(5), |p, out| {
                    p.propose(0, 1, out);
                });
            }
            if i == 2 {
                // Proposes long after the decision.
                actor = actor.with_step(SimDuration::from_ticks(30_000), |p, out| {
                    p.propose(0, 2, out);
                });
            }
            world.add_actor(Box::new(actor));
        }
        world.start();
        world.run_until(SimTime::from_ticks(100_000));
        for i in 0..3u32 {
            let host = world.actor_ref::<ComponentActor<ConsensusPool<u64>>>(NodeId::new(i));
            let decisions: Vec<u64> = host
                .events
                .iter()
                .map(|(_, e)| match e {
                    ConsEvent::Decided { value, .. } => *value,
                })
                .collect();
            assert_eq!(decisions, vec![1], "node {i}: late proposal leaked");
        }
    }

    #[test]
    fn duplicate_start_messages_are_harmless() {
        let group: Vec<NodeId> = (0..3).map(NodeId::new).collect();
        let mut pool =
            ConsensusPool::<u64>::new(group[1], group.clone(), ConsensusConfig::default());
        let mut out = Outbox::new();
        pool.on_message(group[0], ConsMsg::Start { inst: 0 }, &mut out);
        let first = out.drain().len();
        pool.on_message(group[2], ConsMsg::Start { inst: 0 }, &mut out);
        assert!(
            out.drain().len() <= first,
            "second Start must not restart the round"
        );
    }
}
