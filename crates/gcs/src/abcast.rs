//! Atomic Broadcast (ABCAST): totally ordered, reliable dissemination.
//!
//! Two interchangeable implementations, compared by ablation A2:
//!
//! * [`SequencerAbcast`] — a fixed sequencer assigns global sequence
//!   numbers. Cheapest in messages (one hop to the sequencer, one
//!   dissemination round) but the sequencer is a single point of failure;
//!   the replication experiments use it in failure-free runs.
//! * [`ConsensusAbcast`] — batches of pending messages are agreed on with
//!   [`ConsensusPool`] instances, in the style of Chandra–Toueg's atomic
//!   broadcast reduction. Tolerates any minority of crashes.
//!
//! Both deliver [`AbDeliver`] events carrying a dense global sequence
//! number; within a batch, messages are ordered by [`MsgId`].

use std::collections::{BTreeMap, HashMap, HashSet};
use std::sync::Arc;

use repl_sim::{Message, NodeId, SimDuration};

use crate::component::{Component, Outbox};
use crate::consensus::{ConsEvent, ConsMsg, ConsensusConfig, ConsensusPool};
use crate::rbcast::MsgId;

/// A totally ordered delivery.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AbDeliver<P> {
    /// Dense position in the group's total order, starting at 0.
    pub gseq: u64,
    /// Unique id of the broadcast.
    pub id: MsgId,
    /// Application payload.
    pub payload: P,
}

/// Batching window shared by both ABCAST implementations.
///
/// With a nonzero window, concurrent `broadcast()` calls at one endpoint
/// are staged for up to `max_delay_ticks` and submitted as one
/// [`Batch`], so a group of messages pays for a single ordering round.
/// The sequencer additionally coalesces submissions that arrive within
/// one window into a single dissemination round. `max_batch` /
/// `max_bytes` bound a batch and force an early flush.
///
/// `BatchConfig::disabled()` (window 0) is the default and keeps the
/// unbatched code paths byte-for-byte: no staging, no extra timers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BatchConfig {
    /// Maximum staging delay before a batch is flushed (0 = batching off).
    pub max_delay_ticks: u64,
    /// Flush early once this many messages are staged.
    pub max_batch: usize,
    /// Flush early once the staged payloads reach this many wire bytes.
    pub max_bytes: usize,
}

impl BatchConfig {
    /// Batching off: every broadcast pays its own ordering round.
    pub const fn disabled() -> Self {
        BatchConfig {
            max_delay_ticks: 0,
            max_batch: usize::MAX,
            max_bytes: usize::MAX,
        }
    }

    /// A batching window of `ticks` with the default size bounds
    /// (64 messages / 64 KiB per batch).
    pub const fn window(ticks: u64) -> Self {
        BatchConfig {
            max_delay_ticks: ticks,
            max_batch: 64,
            max_bytes: 64 << 10,
        }
    }

    /// Whether batching is on.
    pub fn enabled(&self) -> bool {
        self.max_delay_ticks > 0
    }
}

impl Default for BatchConfig {
    fn default() -> Self {
        BatchConfig::disabled()
    }
}

// ---------------------------------------------------------------------------
// Fixed sequencer
// ---------------------------------------------------------------------------

/// Wire message of [`SequencerAbcast`].
#[derive(Debug, Clone)]
pub enum SeqAbMsg<P> {
    /// Sender → sequencer: please order this message.
    Submit {
        /// Unique id of the broadcast.
        id: MsgId,
        /// Application payload.
        payload: P,
    },
    /// Sequencer → group (and non-member origins): ordered message.
    Ordered {
        /// Global sequence number.
        gseq: u64,
        /// Unique id of the broadcast.
        id: MsgId,
        /// Application payload.
        payload: P,
    },
    /// Sender → sequencer: please order this whole batch (batching on).
    SubmitBatch(Batch<P>),
    /// Sequencer → group (and non-member origins): one dissemination
    /// round carrying every message ordered in the window.
    OrderedBatch {
        /// `(gseq, id, payload)` in assignment order.
        entries: Arc<Vec<(u64, MsgId, P)>>,
    },
    /// Recovered member → sequencer: refill the ordered stream from
    /// global sequence number `have`.
    Rejoin {
        /// The requester's next undelivered gseq.
        have: u64,
    },
    /// Sequencer → recovered member: the missed suffix of the order,
    /// plus the current high watermark (sent even when empty, so the
    /// member learns it is caught up).
    RejoinData {
        /// First gseq carried.
        start: u64,
        /// `(gseq, id, payload)` in order.
        entries: Arc<Vec<(u64, MsgId, P)>>,
        /// The sequencer's next gseq: the stream position the member
        /// has caught up to after applying `entries`.
        high: u64,
    },
}

impl<P: Message> Message for SeqAbMsg<P> {
    fn wire_size(&self) -> usize {
        match self {
            SeqAbMsg::Submit { payload, .. } => 16 + payload.wire_size(),
            SeqAbMsg::Ordered { payload, .. } => 24 + payload.wire_size(),
            SeqAbMsg::SubmitBatch(b) => b.wire_size(),
            // Honest accounting: a batch still serializes every entry's
            // gseq + id + payload; only the per-message framing (8 bytes
            // here) is amortized across the batch.
            SeqAbMsg::OrderedBatch { entries } => {
                8 + entries
                    .iter()
                    .map(|(_, _, p)| 24 + p.wire_size())
                    .sum::<usize>()
            }
            SeqAbMsg::Rejoin { .. } => 16,
            SeqAbMsg::RejoinData { entries, .. } => {
                24 + entries
                    .iter()
                    .map(|(_, _, p)| 24 + p.wire_size())
                    .sum::<usize>()
            }
        }
    }
}

const RETRANSMIT_TAG: u64 = 0;
/// Sender role: flush the staged batch to the sequencer.
const FLUSH_TAG: u64 = 1;
/// Sequencer role: close the accumulation window and disseminate.
const ORDER_FLUSH_TAG: u64 = 2;

/// Fixed-sequencer Atomic Broadcast.
///
/// The sequencer is the first group member. Senders retransmit unordered
/// submissions periodically, which makes the primitive robust to message
/// loss (but not to a sequencer crash — see [`ConsensusAbcast`]).
///
/// Non-members may broadcast *into* the group: the sequencer confirms the
/// ordering back to them, but only members deliver.
///
/// # Examples
///
/// ```
/// use repl_gcs::{SequencerAbcast, Outbox};
/// use repl_sim::NodeId;
///
/// let group: Vec<NodeId> = (0..3).map(NodeId::new).collect();
/// let mut ab: SequencerAbcast<u32> = SequencerAbcast::new(group[1], group.clone());
/// let mut out = Outbox::new();
/// ab.broadcast(9, &mut out);
/// ```
#[derive(Debug)]
pub struct SequencerAbcast<P> {
    me: NodeId,
    group: Vec<NodeId>,
    member: bool,
    retransmit_every: SimDuration,
    batch: BatchConfig,
    next_local: u64,
    // BTreeMap so retransmission iterates in MsgId order (deterministic).
    pending: BTreeMap<MsgId, P>,
    timer_armed: bool,
    // Sender role, batching: own broadcasts staged for the next flush.
    staged: Vec<(MsgId, P)>,
    staged_bytes: usize,
    flush_armed: bool,
    // Sequencer role.
    ordered: HashMap<MsgId, u64>,
    next_gseq: u64,
    // Sequencer role: retained ordered payloads indexed by gseq, for
    // refilling rejoining members after a crash.
    order_log: Vec<(MsgId, P)>,
    // Sequencer role, batching: submissions accumulated in the window.
    order_staged: Vec<(u64, MsgId, P)>,
    order_flush_armed: bool,
    // Receiver role.
    next_deliver: u64,
    holdback: BTreeMap<u64, (MsgId, P)>,
    delivered_ids: HashSet<MsgId>,
    // Recovery: a rejoin handshake in flight, bytes refilled so far,
    // and the completed-rejoin report for the host to take.
    rejoin_wait: bool,
    rejoin_bytes: u64,
    rejoin_done: Option<u64>,
}

impl<P: Message> SequencerAbcast<P> {
    /// Creates an endpoint for `me`; the sequencer is `group[0]`.
    ///
    /// # Panics
    ///
    /// Panics if `group` is empty.
    pub fn new(me: NodeId, group: Vec<NodeId>) -> Self {
        assert!(!group.is_empty(), "group must not be empty");
        let member = group.contains(&me);
        SequencerAbcast {
            me,
            group,
            member,
            retransmit_every: SimDuration::from_ticks(2_000),
            batch: BatchConfig::disabled(),
            next_local: 0,
            pending: BTreeMap::new(),
            timer_armed: false,
            staged: Vec::new(),
            staged_bytes: 0,
            flush_armed: false,
            ordered: HashMap::new(),
            next_gseq: 0,
            order_log: Vec::new(),
            order_staged: Vec::new(),
            order_flush_armed: false,
            next_deliver: 0,
            holdback: BTreeMap::new(),
            delivered_ids: HashSet::new(),
            rejoin_wait: false,
            rejoin_bytes: 0,
            rejoin_done: None,
        }
    }

    /// Sets the batching window (builder form).
    pub fn with_batching(mut self, batch: BatchConfig) -> Self {
        self.batch = batch;
        self
    }

    /// Sets the batching window in place.
    pub fn set_batching(&mut self, batch: BatchConfig) {
        self.batch = batch;
    }

    /// The sequencer node.
    pub fn sequencer(&self) -> NodeId {
        self.group[0]
    }

    /// Number of own broadcasts not yet confirmed ordered.
    pub fn pending(&self) -> usize {
        self.pending.len()
    }

    /// Broadcasts `payload`; returns its id.
    pub fn broadcast(&mut self, payload: P, out: &mut Outbox<SeqAbMsg<P>, AbDeliver<P>>) -> MsgId {
        let id = MsgId::new(self.me, self.next_local);
        self.next_local += 1;
        self.pending.insert(id, payload.clone());
        if self.batch.enabled() {
            self.staged_bytes += payload.wire_size();
            self.staged.push((id, payload));
            if self.staged.len() >= self.batch.max_batch
                || self.staged_bytes >= self.batch.max_bytes
            {
                self.flush_submit(out);
            } else if !self.flush_armed {
                self.flush_armed = true;
                out.timer(
                    SimDuration::from_ticks(self.batch.max_delay_ticks),
                    FLUSH_TAG,
                );
            }
        } else {
            out.send(self.sequencer(), SeqAbMsg::Submit { id, payload });
        }
        if !self.timer_armed {
            self.timer_armed = true;
            out.timer(self.retransmit_every, RETRANSMIT_TAG);
        }
        id
    }

    /// Sender role: ship the staged batch to the sequencer in one message.
    fn flush_submit(&mut self, out: &mut Outbox<SeqAbMsg<P>, AbDeliver<P>>) {
        self.flush_armed = false;
        if self.staged.is_empty() {
            return;
        }
        let entries = std::mem::take(&mut self.staged);
        self.staged_bytes = 0;
        out.send(self.sequencer(), SeqAbMsg::SubmitBatch(Batch::new(entries)));
    }

    /// Assigns `id` its global sequence number (idempotent) and retains
    /// the payload in the order log for later rejoin refills.
    fn assign_gseq(&mut self, id: MsgId, payload: &P) -> u64 {
        match self.ordered.get(&id) {
            Some(&g) => g,
            None => {
                let g = self.next_gseq;
                self.next_gseq += 1;
                self.ordered.insert(id, g);
                self.order_log.push((id, payload.clone()));
                g
            }
        }
    }

    fn order(&mut self, id: MsgId, payload: P, out: &mut Outbox<SeqAbMsg<P>, AbDeliver<P>>) {
        let gseq = self.assign_gseq(id, &payload);
        for &m in &self.group {
            if m != self.me {
                out.send(
                    m,
                    SeqAbMsg::Ordered {
                        gseq,
                        id,
                        payload: payload.clone(),
                    },
                );
            }
        }
        if !self.group.contains(&id.origin) && id.origin != self.me {
            out.send(
                id.origin,
                SeqAbMsg::Ordered {
                    gseq,
                    id,
                    payload: payload.clone(),
                },
            );
        }
        self.accept(gseq, id, payload, out);
    }

    /// Sequencer role, batching: stage ordered submissions and
    /// disseminate everything accumulated in one window together.
    fn order_batched(
        &mut self,
        entries: Vec<(MsgId, P)>,
        out: &mut Outbox<SeqAbMsg<P>, AbDeliver<P>>,
    ) {
        for (id, payload) in entries {
            // A message already staged for the next flush must not be
            // staged twice; a retransmission of an already-disseminated
            // message keeps its first gseq but is re-disseminated (the
            // earlier round may have been lost — receivers dedup).
            if self.order_staged.iter().any(|(_, staged, _)| *staged == id) {
                continue;
            }
            let gseq = self.assign_gseq(id, &payload);
            self.order_staged.push((gseq, id, payload));
        }
        if self.order_staged.len() >= self.batch.max_batch {
            self.flush_order(out);
        } else if !self.order_staged.is_empty() && !self.order_flush_armed {
            self.order_flush_armed = true;
            out.timer(
                SimDuration::from_ticks(self.batch.max_delay_ticks),
                ORDER_FLUSH_TAG,
            );
        }
    }

    /// Sequencer role, batching: one dissemination round for the window.
    fn flush_order(&mut self, out: &mut Outbox<SeqAbMsg<P>, AbDeliver<P>>) {
        self.order_flush_armed = false;
        if self.order_staged.is_empty() {
            return;
        }
        let entries = Arc::new(std::mem::take(&mut self.order_staged));
        for &m in &self.group {
            if m != self.me {
                out.send(
                    m,
                    SeqAbMsg::OrderedBatch {
                        entries: Arc::clone(&entries),
                    },
                );
            }
        }
        // Non-member origins get one confirmation batch each, holding
        // just their own entries.
        let mut outsiders: Vec<(NodeId, Vec<(u64, MsgId, P)>)> = Vec::new();
        for e in entries.iter() {
            let origin = e.1.origin;
            if origin != self.me && !self.group.contains(&origin) {
                match outsiders.iter_mut().find(|(o, _)| *o == origin) {
                    Some((_, v)) => v.push(e.clone()),
                    None => outsiders.push((origin, vec![e.clone()])),
                }
            }
        }
        for (origin, mine) in outsiders {
            out.send(
                origin,
                SeqAbMsg::OrderedBatch {
                    entries: Arc::new(mine),
                },
            );
        }
        for (gseq, id, payload) in entries.iter() {
            self.accept(*gseq, *id, payload.clone(), out);
        }
    }

    /// Call once after a crash + recovery (state is retained, timers are
    /// not): re-arms the endpoint's timers and, for a non-sequencer
    /// member, asks the sequencer to refill the ordered stream from
    /// `next_deliver`. The refill request is retransmitted alongside
    /// pending submissions until answered. Completion (with the refill
    /// byte count) is reported through
    /// [`SequencerAbcast::take_rejoin_done`].
    pub fn rejoin(&mut self, out: &mut Outbox<SeqAbMsg<P>, AbDeliver<P>>) {
        self.rejoin_bytes = 0;
        if self.member && self.me != self.sequencer() {
            self.rejoin_wait = true;
            self.rejoin_done = None;
            out.send(
                self.sequencer(),
                SeqAbMsg::Rejoin {
                    have: self.next_deliver,
                },
            );
        } else {
            // The sequencer retains the full order itself (and senders
            // retransmit unordered submissions), so it refills its own
            // receiver stream locally — after a disaster rewind the
            // stream restarts behind `next_gseq`. Zero wire bytes.
            // Non-members deliver nothing.
            if self.member {
                while self.next_deliver < self.next_gseq {
                    let g = self.next_deliver;
                    let (id, payload) = self.order_log[g as usize].clone();
                    self.accept(g, id, payload, out);
                }
            }
            self.rejoin_wait = false;
            self.rejoin_done = Some(0);
        }
        self.timer_armed = !self.pending.is_empty() || self.rejoin_wait;
        if self.timer_armed {
            out.timer(self.retransmit_every, RETRANSMIT_TAG);
        }
        self.flush_armed = self.batch.enabled() && !self.staged.is_empty();
        if self.flush_armed {
            out.timer(
                SimDuration::from_ticks(self.batch.max_delay_ticks),
                FLUSH_TAG,
            );
        }
        self.order_flush_armed = self.batch.enabled() && !self.order_staged.is_empty();
        if self.order_flush_armed {
            out.timer(
                SimDuration::from_ticks(self.batch.max_delay_ticks),
                ORDER_FLUSH_TAG,
            );
        }
    }

    /// Takes the completed-rejoin report: `Some(refill_bytes)` once the
    /// endpoint has caught up with the stream after [`rejoin`], `None`
    /// before that (and after the report was taken).
    ///
    /// [`rejoin`]: SequencerAbcast::rejoin
    pub fn take_rejoin_done(&mut self) -> Option<u64> {
        self.rejoin_done.take()
    }

    /// The receiver's stream position: the next gseq it will deliver.
    /// Everything below it has already been handed to the host.
    pub fn position(&self) -> u64 {
        self.next_deliver
    }

    /// Rewinds the receiver stream to `gseq` (no-op if not behind the
    /// current position): a host that lost the state derived from
    /// deliveries `[gseq, position())` — e.g. to a volume-loss disaster
    /// — calls this before [`rejoin`](Self::rejoin), and the refill
    /// re-delivers from `gseq` in the original order. Only receiver
    /// state moves; the sequencer role's retained order is untouched.
    pub fn rewind_to(&mut self, gseq: u64) {
        if gseq >= self.next_deliver {
            return;
        }
        self.next_deliver = gseq;
        self.holdback.clear();
        // Every gseq carries a unique id and re-delivery below the old
        // position is exactly what the caller asked for, so the dedup
        // set restarts empty (stale gseqs park in the holdback, which
        // only drains forward from `gseq`).
        self.delivered_ids.clear();
    }

    fn accept(
        &mut self,
        gseq: u64,
        id: MsgId,
        payload: P,
        out: &mut Outbox<SeqAbMsg<P>, AbDeliver<P>>,
    ) {
        self.pending.remove(&id);
        if !self.member || self.delivered_ids.contains(&id) {
            return;
        }
        self.holdback.entry(gseq).or_insert((id, payload));
        while let Some((id, payload)) = self.holdback.remove(&self.next_deliver) {
            let gseq = self.next_deliver;
            self.next_deliver += 1;
            if self.delivered_ids.insert(id) {
                out.event(AbDeliver { gseq, id, payload });
            }
        }
    }
}

impl<P: Message> Component for SequencerAbcast<P> {
    type Msg = SeqAbMsg<P>;
    type Event = AbDeliver<P>;

    fn on_message(
        &mut self,
        from: NodeId,
        msg: SeqAbMsg<P>,
        out: &mut Outbox<SeqAbMsg<P>, AbDeliver<P>>,
    ) {
        match msg {
            SeqAbMsg::Submit { id, payload } => {
                if self.me == self.sequencer() {
                    if self.batch.enabled() {
                        self.order_batched(vec![(id, payload)], out);
                    } else {
                        self.order(id, payload, out);
                    }
                }
            }
            SeqAbMsg::SubmitBatch(batch) => {
                if self.me == self.sequencer() {
                    let entries = batch.into_entries();
                    if self.batch.enabled() {
                        self.order_batched(entries, out);
                    } else {
                        for (id, payload) in entries {
                            self.order(id, payload, out);
                        }
                    }
                }
            }
            SeqAbMsg::Ordered { gseq, id, payload } => {
                self.accept(gseq, id, payload, out);
            }
            SeqAbMsg::OrderedBatch { entries } => {
                for (gseq, id, payload) in entries.iter() {
                    self.accept(*gseq, *id, payload.clone(), out);
                }
            }
            SeqAbMsg::Rejoin { have } => {
                if self.me == self.sequencer() {
                    let start = have.min(self.next_gseq);
                    let entries: Vec<(u64, MsgId, P)> = (start..self.next_gseq)
                        .map(|g| {
                            let (id, p) = self.order_log[g as usize].clone();
                            (g, id, p)
                        })
                        .collect();
                    out.send(
                        from,
                        SeqAbMsg::RejoinData {
                            start,
                            entries: Arc::new(entries),
                            high: self.next_gseq,
                        },
                    );
                }
            }
            SeqAbMsg::RejoinData { entries, high, .. } => {
                let bytes: usize = entries
                    .iter()
                    .map(|(_, _, p)| 24 + p.wire_size())
                    .sum::<usize>()
                    + 24;
                for (gseq, id, payload) in entries.iter() {
                    self.accept(*gseq, *id, payload.clone(), out);
                }
                if self.rejoin_wait {
                    self.rejoin_bytes += bytes as u64;
                    if self.next_deliver >= high {
                        self.rejoin_wait = false;
                        self.rejoin_done = Some(self.rejoin_bytes);
                    }
                }
            }
        }
    }

    fn on_timer(&mut self, tag: u64, out: &mut Outbox<SeqAbMsg<P>, AbDeliver<P>>) {
        match tag {
            FLUSH_TAG => self.flush_submit(out),
            ORDER_FLUSH_TAG => self.flush_order(out),
            RETRANSMIT_TAG => {
                if self.rejoin_wait {
                    // An unanswered refill request (lost, or the
                    // sequencer itself was down): ask again.
                    out.send(
                        self.sequencer(),
                        SeqAbMsg::Rejoin {
                            have: self.next_deliver,
                        },
                    );
                }
                if self.pending.is_empty() {
                    if self.rejoin_wait {
                        out.timer(self.retransmit_every, RETRANSMIT_TAG);
                    } else {
                        self.timer_armed = false;
                    }
                    return;
                }
                let seq = self.sequencer();
                if self.batch.enabled() {
                    // Retransmit everything unconfirmed as one batch.
                    let entries: Vec<(MsgId, P)> = self
                        .pending
                        .iter()
                        .map(|(&id, p)| (id, p.clone()))
                        .collect();
                    out.send(seq, SeqAbMsg::SubmitBatch(Batch::new(entries)));
                } else {
                    for (&id, payload) in &self.pending {
                        out.send(
                            seq,
                            SeqAbMsg::Submit {
                                id,
                                payload: payload.clone(),
                            },
                        );
                    }
                }
                out.timer(self.retransmit_every, RETRANSMIT_TAG);
            }
            _ => {}
        }
    }
}

// ---------------------------------------------------------------------------
// Consensus-based
// ---------------------------------------------------------------------------

/// A batch of messages submitted or agreed on together.
///
/// The entry list is behind an [`Arc`]: multicasting a batch to n−1
/// group members (and the round-based consensus re-broadcasts) clones a
/// pointer, not the payloads. [`Batch::wire_size`] keeps reporting the
/// logical serialized size of every entry, so byte accounting is
/// unaffected by the sharing.
#[derive(Debug, Clone)]
pub struct Batch<P>(pub Arc<Vec<(MsgId, P)>>);

impl<P> Batch<P> {
    /// Wraps `entries` into a shareable batch.
    pub fn new(entries: Vec<(MsgId, P)>) -> Self {
        Batch(Arc::new(entries))
    }

    /// The entries, in submission order.
    pub fn entries(&self) -> &[(MsgId, P)] {
        &self.0
    }
}

impl<P: Clone> Batch<P> {
    /// Extracts the entries, cloning only if the batch is still shared.
    pub fn into_entries(self) -> Vec<(MsgId, P)> {
        match Arc::try_unwrap(self.0) {
            Ok(v) => v,
            Err(shared) => (*shared).clone(),
        }
    }
}

impl<P: Message> Message for Batch<P> {
    fn wire_size(&self) -> usize {
        8 + self
            .0
            .iter()
            .map(|(_, p)| 16 + p.wire_size())
            .sum::<usize>()
    }
}

/// Wire message of [`ConsensusAbcast`].
#[derive(Debug, Clone)]
pub enum CAbMsg<P> {
    /// Gossip of a pending message to all members.
    Submit {
        /// Unique id of the broadcast.
        id: MsgId,
        /// Application payload.
        payload: P,
    },
    /// Gossip of a whole staged batch to all members (batching on).
    SubmitBatch(Batch<P>),
    /// Embedded consensus traffic.
    Cons(ConsMsg<Batch<P>>),
    /// Recovered member → group: refill decided instances from
    /// `next_inst`.
    Rejoin {
        /// The requester's next undelivered consensus instance.
        next_inst: u64,
    },
    /// Peer → recovered member: retained decided batches
    /// `[start, start + batches.len())` plus the responder's own
    /// watermark (sent even when empty, so the member learns it is
    /// caught up).
    RejoinData {
        /// Instance of the first batch carried.
        start: u64,
        /// Decided batches in instance order.
        batches: Vec<Batch<P>>,
        /// The responder's next instance.
        high: u64,
    },
}

impl<P: Message> Message for CAbMsg<P> {
    fn wire_size(&self) -> usize {
        match self {
            CAbMsg::Submit { payload, .. } => 16 + payload.wire_size(),
            CAbMsg::SubmitBatch(b) => b.wire_size(),
            CAbMsg::Cons(c) => 8 + c.wire_size(),
            CAbMsg::Rejoin { .. } => 16,
            CAbMsg::RejoinData { batches, .. } => {
                24 + batches.iter().map(Batch::wire_size).sum::<usize>()
            }
        }
    }
}

/// Timer-tag base of the embedded consensus pool.
const CONS_BASE: u64 = 1 << 40;
/// Flush the staged batch (batching on); must stay below `CONS_BASE`.
const CONS_FLUSH_TAG: u64 = 0;

/// Consensus-based Atomic Broadcast (Chandra–Toueg reduction).
///
/// Pending messages are gossiped to all members; each member proposes its
/// pending set for the next consensus instance; decided batches are
/// delivered in instance order, messages within a batch ordered by id.
/// Tolerates crashes of any minority of the group.
///
/// # Panics
///
/// [`ConsensusAbcast::new`] panics if `me` is not a group member.
#[derive(Debug)]
pub struct ConsensusAbcast<P> {
    me: NodeId,
    group: Vec<NodeId>,
    pool: ConsensusPool<Batch<P>>,
    batch: BatchConfig,
    next_local: u64,
    pending: BTreeMap<MsgId, P>,
    // Batching: own broadcasts staged until the window flushes; they
    // enter `pending` (and the gossip/proposal machinery) at the flush.
    staged: Vec<(MsgId, P)>,
    staged_bytes: usize,
    flush_armed: bool,
    delivered: HashSet<MsgId>,
    decided: BTreeMap<u64, Batch<P>>,
    next_inst: u64,
    proposed_for: Option<u64>,
    next_gseq: u64,
    // Delivered decided batches retained in instance order (index ==
    // instance), for refilling rejoining members after a crash.
    decided_log: Vec<Batch<P>>,
    // Recovery: a rejoin handshake in flight, the highest watermark a
    // responder reported, bytes refilled, and the completion report.
    rejoin_wait: bool,
    rejoin_high: u64,
    rejoin_bytes: u64,
    rejoin_done: Option<u64>,
}

impl<P: Message> ConsensusAbcast<P> {
    /// Creates an endpoint for group member `me`.
    pub fn new(me: NodeId, group: Vec<NodeId>, config: ConsensusConfig) -> Self {
        let pool = ConsensusPool::new(me, group.clone(), config);
        ConsensusAbcast {
            me,
            group,
            pool,
            batch: BatchConfig::disabled(),
            next_local: 0,
            pending: BTreeMap::new(),
            staged: Vec::new(),
            staged_bytes: 0,
            flush_armed: false,
            delivered: HashSet::new(),
            decided: BTreeMap::new(),
            next_inst: 0,
            proposed_for: None,
            next_gseq: 0,
            decided_log: Vec::new(),
            rejoin_wait: false,
            rejoin_high: 0,
            rejoin_bytes: 0,
            rejoin_done: None,
        }
    }

    /// Sets the batching window (builder form).
    pub fn with_batching(mut self, batch: BatchConfig) -> Self {
        self.batch = batch;
        self
    }

    /// Sets the batching window in place.
    pub fn set_batching(&mut self, batch: BatchConfig) {
        self.batch = batch;
    }

    /// Number of own or gossiped messages not yet delivered.
    pub fn pending(&self) -> usize {
        self.pending.len() + self.staged.len()
    }

    /// Broadcasts `payload`; returns its id.
    pub fn broadcast(&mut self, payload: P, out: &mut Outbox<CAbMsg<P>, AbDeliver<P>>) -> MsgId {
        let id = MsgId::new(self.me, self.next_local);
        self.next_local += 1;
        if self.batch.enabled() {
            self.staged_bytes += payload.wire_size();
            self.staged.push((id, payload));
            if self.staged.len() >= self.batch.max_batch
                || self.staged_bytes >= self.batch.max_bytes
            {
                self.flush(out);
            } else if !self.flush_armed {
                self.flush_armed = true;
                out.timer(
                    SimDuration::from_ticks(self.batch.max_delay_ticks),
                    CONS_FLUSH_TAG,
                );
            }
            return id;
        }
        self.pending.insert(id, payload.clone());
        for &m in &self.group {
            if m != self.me {
                out.send(
                    m,
                    CAbMsg::Submit {
                        id,
                        payload: payload.clone(),
                    },
                );
            }
        }
        self.maybe_propose(out);
        id
    }

    /// Batching: gossip the staged window as one batch and propose. Also
    /// the window-paced proposal point — gossiped-but-undecided messages
    /// (empty stage) still trigger a proposal here, so deferral never
    /// strands a batch.
    fn flush(&mut self, out: &mut Outbox<CAbMsg<P>, AbDeliver<P>>) {
        self.flush_armed = false;
        if !self.staged.is_empty() {
            let entries = std::mem::take(&mut self.staged);
            self.staged_bytes = 0;
            for (id, p) in &entries {
                self.pending.insert(*id, p.clone());
            }
            let batch = Batch::new(entries);
            for &m in &self.group {
                if m != self.me {
                    out.send(m, CAbMsg::SubmitBatch(batch.clone()));
                }
            }
        }
        self.maybe_propose(out);
    }

    /// Schedules the next proposal: immediately when batching is off (the
    /// legacy path), at the next window boundary when it is on. Deferring
    /// keeps the instance rate at one per window instead of one per
    /// network round-trip, so a whole window's traffic is agreed on in a
    /// single instance.
    fn schedule_propose(&mut self, out: &mut Outbox<CAbMsg<P>, AbDeliver<P>>) {
        if !self.batch.enabled() {
            self.maybe_propose(out);
            return;
        }
        if self.pending.is_empty() || self.proposed_for == Some(self.next_inst) {
            return;
        }
        if !self.flush_armed {
            self.flush_armed = true;
            out.timer(
                SimDuration::from_ticks(self.batch.max_delay_ticks),
                CONS_FLUSH_TAG,
            );
        }
    }

    fn maybe_propose(&mut self, out: &mut Outbox<CAbMsg<P>, AbDeliver<P>>) {
        if self.pending.is_empty() || self.proposed_for == Some(self.next_inst) {
            return;
        }
        let batch = Batch::new(
            self.pending
                .iter()
                .map(|(id, p)| (*id, p.clone()))
                .collect(),
        );
        self.proposed_for = Some(self.next_inst);
        let mut sub = Outbox::new();
        self.pool.propose(self.next_inst, batch, &mut sub);
        let events = out.absorb(sub, CONS_BASE, CAbMsg::Cons);
        self.handle_pool_events(events, out);
    }

    /// Call once after a crash + recovery (state is retained, timers are
    /// not): asks every peer to refill the decided-instance stream from
    /// `next_inst`, re-arms the batching window, and resumes stalled
    /// consensus rounds. Completion (with the refill byte count) is
    /// reported through [`ConsensusAbcast::take_rejoin_done`].
    pub fn rejoin(&mut self, out: &mut Outbox<CAbMsg<P>, AbDeliver<P>>) {
        self.rejoin_bytes = 0;
        self.rejoin_high = self.next_inst;
        if self.group.len() > 1 {
            self.rejoin_wait = true;
            self.rejoin_done = None;
            for &m in &self.group {
                if m != self.me {
                    out.send(
                        m,
                        CAbMsg::Rejoin {
                            next_inst: self.next_inst,
                        },
                    );
                }
            }
        } else {
            self.rejoin_wait = false;
            self.rejoin_done = Some(0);
        }
        // Re-arm the batching flush window if anything was in flight.
        self.flush_armed = false;
        if self.batch.enabled() && (!self.staged.is_empty() || !self.pending.is_empty()) {
            self.flush_armed = true;
            out.timer(
                SimDuration::from_ticks(self.batch.max_delay_ticks),
                CONS_FLUSH_TAG,
            );
        }
        // Stalled consensus rounds lost their timers in the crash.
        let mut sub = Outbox::new();
        self.pool.resume(&mut sub);
        let events = out.absorb(sub, CONS_BASE, CAbMsg::Cons);
        self.handle_pool_events(events, out);
        if !self.batch.enabled() {
            self.maybe_propose(out);
        }
    }

    /// Takes the completed-rejoin report: `Some(refill_bytes)` once the
    /// endpoint has caught up to a responder's watermark after
    /// [`rejoin`], `None` before that (and after the report was taken).
    ///
    /// [`rejoin`]: ConsensusAbcast::rejoin
    pub fn take_rejoin_done(&mut self) -> Option<u64> {
        self.rejoin_done.take()
    }

    /// The delivery stream position: the next consensus instance whose
    /// batch this endpoint will deliver.
    pub fn position(&self) -> u64 {
        self.next_inst
    }

    /// Rewinds the delivery stream to instance `inst` (no-op if not
    /// behind the current position): a host that lost the state derived
    /// from instances `[inst, position())` calls this before
    /// [`rejoin`](Self::rejoin). The retained decided suffix moves back
    /// into the undelivered set, so the rejoin replays it locally —
    /// peers' refills only fill genuine gaps.
    pub fn rewind_to(&mut self, inst: u64) {
        if inst >= self.next_inst {
            return;
        }
        let tail = self.decided_log.split_off(inst as usize);
        // An id can appear in several decided batches (proposals carry
        // whole pending sets), so the delivered-id set and the gseq
        // counter must be recomputed from the retained prefix — not
        // subtracted from the tail, which would double-count repeats.
        let mut delivered = HashSet::new();
        let mut next_gseq = 0u64;
        for batch in &self.decided_log {
            for (id, _) in batch.entries() {
                if delivered.insert(*id) {
                    next_gseq += 1;
                }
            }
        }
        self.delivered = delivered;
        self.next_gseq = next_gseq;
        for (k, batch) in tail.into_iter().enumerate() {
            self.decided.entry(inst + k as u64).or_insert(batch);
        }
        self.next_inst = inst;
    }

    fn handle_pool_events(
        &mut self,
        events: Vec<ConsEvent<Batch<P>>>,
        out: &mut Outbox<CAbMsg<P>, AbDeliver<P>>,
    ) {
        for ev in events {
            let ConsEvent::Decided { inst, value } = ev;
            self.decided.insert(inst, value);
        }
        let mut progressed = false;
        while let Some(batch) = self.decided.remove(&self.next_inst) {
            self.decided_log.push(batch.clone());
            for (id, payload) in batch.into_entries() {
                self.pending.remove(&id);
                if self.delivered.insert(id) {
                    let gseq = self.next_gseq;
                    self.next_gseq += 1;
                    out.event(AbDeliver { gseq, id, payload });
                }
            }
            self.next_inst += 1;
            progressed = true;
        }
        if progressed {
            self.schedule_propose(out);
        }
    }
}

impl<P: Message> Component for ConsensusAbcast<P> {
    type Msg = CAbMsg<P>;
    type Event = AbDeliver<P>;

    fn on_message(
        &mut self,
        from: NodeId,
        msg: CAbMsg<P>,
        out: &mut Outbox<CAbMsg<P>, AbDeliver<P>>,
    ) {
        match msg {
            CAbMsg::Submit { id, payload } => {
                if !self.delivered.contains(&id) {
                    self.pending.insert(id, payload);
                    self.schedule_propose(out);
                }
            }
            CAbMsg::SubmitBatch(batch) => {
                let mut grew = false;
                for (id, payload) in batch.into_entries() {
                    if !self.delivered.contains(&id) {
                        self.pending.insert(id, payload);
                        grew = true;
                    }
                }
                if grew {
                    self.schedule_propose(out);
                }
            }
            CAbMsg::Cons(c) => {
                let mut sub = Outbox::new();
                self.pool.on_message(from, c, &mut sub);
                let events = out.absorb(sub, CONS_BASE, CAbMsg::Cons);
                self.handle_pool_events(events, out);
            }
            CAbMsg::Rejoin { next_inst } => {
                let start = (next_inst as usize).min(self.decided_log.len());
                out.send(
                    from,
                    CAbMsg::RejoinData {
                        start: start as u64,
                        batches: self.decided_log[start..].to_vec(),
                        high: self.next_inst,
                    },
                );
            }
            CAbMsg::RejoinData {
                start,
                batches,
                high,
            } => {
                let mut grew = false;
                for (k, batch) in batches.into_iter().enumerate() {
                    let inst = start + k as u64;
                    if inst >= self.next_inst && !self.decided.contains_key(&inst) {
                        if self.rejoin_wait {
                            self.rejoin_bytes += batch.wire_size() as u64;
                        }
                        self.decided.insert(inst, batch);
                        grew = true;
                    }
                }
                if grew {
                    self.handle_pool_events(Vec::new(), out);
                }
                if self.rejoin_wait {
                    self.rejoin_high = self.rejoin_high.max(high);
                    if self.next_inst >= self.rejoin_high {
                        self.rejoin_wait = false;
                        self.rejoin_done = Some(self.rejoin_bytes);
                    }
                }
            }
        }
    }

    fn on_timer(&mut self, tag: u64, out: &mut Outbox<CAbMsg<P>, AbDeliver<P>>) {
        if tag >= CONS_BASE {
            let mut sub = Outbox::new();
            self.pool.on_timer(tag - CONS_BASE, &mut sub);
            let events = out.absorb(sub, CONS_BASE, CAbMsg::Cons);
            self.handle_pool_events(events, out);
        } else if tag == CONS_FLUSH_TAG {
            self.flush(out);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testkit::ComponentActor;
    use repl_sim::{NetworkConfig, SimConfig, SimTime, World};

    type SeqHost = ComponentActor<SequencerAbcast<u32>>;
    type ConsHost = ComponentActor<ConsensusAbcast<u32>>;

    fn deliveries_seq(world: &World<SeqAbMsg<u32>>, n: NodeId) -> Vec<(u64, u32)> {
        world
            .actor_ref::<SeqHost>(n)
            .events
            .iter()
            .map(|(_, d)| (d.gseq, d.payload))
            .collect()
    }

    fn deliveries_cons(world: &World<CAbMsg<u32>>, n: NodeId) -> Vec<(u64, u32)> {
        world
            .actor_ref::<ConsHost>(n)
            .events
            .iter()
            .map(|(_, d)| (d.gseq, d.payload))
            .collect()
    }

    #[test]
    fn sequencer_total_order_across_concurrent_broadcasters() {
        let mut world: World<SeqAbMsg<u32>> = World::new(SimConfig::new(5));
        let group: Vec<NodeId> = (0..4).map(NodeId::new).collect();
        for i in 0..4u32 {
            let mut actor =
                ComponentActor::new(SequencerAbcast::<u32>::new(NodeId::new(i), group.clone()));
            // Every node broadcasts three messages at staggered times.
            for k in 0..3u32 {
                let value = i * 10 + k;
                actor = actor.with_step(
                    repl_sim::SimDuration::from_ticks(10 + (k as u64) * 7 + i as u64),
                    move |ab, out| {
                        ab.broadcast(value, out);
                    },
                );
            }
            world.add_actor(Box::new(actor));
        }
        world.start();
        world.run_until(SimTime::from_ticks(100_000));
        let reference = deliveries_seq(&world, group[0]);
        assert_eq!(reference.len(), 12, "all messages delivered");
        let gseqs: Vec<u64> = reference.iter().map(|(g, _)| *g).collect();
        assert_eq!(gseqs, (0..12).collect::<Vec<u64>>(), "dense total order");
        for &n in &group[1..] {
            assert_eq!(deliveries_seq(&world, n), reference, "order differs at {n}");
        }
    }

    #[test]
    fn sequencer_survives_message_loss_via_retransmission() {
        let cfg = SimConfig::new(7).with_network(NetworkConfig::lan().with_drop_prob(0.3));
        let mut world: World<SeqAbMsg<u32>> = World::new(cfg);
        let group: Vec<NodeId> = (0..3).map(NodeId::new).collect();
        for i in 0..3u32 {
            let mut actor =
                ComponentActor::new(SequencerAbcast::<u32>::new(NodeId::new(i), group.clone()));
            if i == 2 {
                actor = actor.with_step(repl_sim::SimDuration::from_ticks(10), |ab, out| {
                    ab.broadcast(99, out);
                });
            }
            world.add_actor(Box::new(actor));
        }
        world.start();
        world.run_until(SimTime::from_ticks(500_000));
        // Retransmission cannot recover lost *Ordered* copies at other
        // receivers, but the sender must eventually get through.
        assert!(
            deliveries_seq(&world, group[2]).contains(&(0, 99)),
            "sender's own message never confirmed"
        );
    }

    #[test]
    fn non_member_broadcast_is_ordered_and_confirmed() {
        let mut world: World<SeqAbMsg<u32>> = World::new(SimConfig::new(2));
        let group: Vec<NodeId> = (0..3).map(NodeId::new).collect();
        for i in 0..3u32 {
            world.add_actor(Box::new(ComponentActor::new(SequencerAbcast::<u32>::new(
                NodeId::new(i),
                group.clone(),
            ))));
        }
        let outsider =
            ComponentActor::new(SequencerAbcast::<u32>::new(NodeId::new(3), group.clone()))
                .with_step(repl_sim::SimDuration::from_ticks(5), |ab, out| {
                    ab.broadcast(77, out);
                });
        let o = world.add_actor(Box::new(outsider));
        world.start();
        world.run_until(SimTime::from_ticks(100_000));
        for &n in &group {
            assert_eq!(deliveries_seq(&world, n), vec![(0, 77)]);
        }
        // The outsider delivers nothing but its pending set drained.
        assert!(deliveries_seq(&world, o).is_empty());
        assert_eq!(world.actor_ref::<SeqHost>(o).inner.pending(), 0);
    }

    #[test]
    fn consensus_abcast_total_order_no_failures() {
        let mut world: World<CAbMsg<u32>> = World::new(SimConfig::new(3));
        let group: Vec<NodeId> = (0..3).map(NodeId::new).collect();
        for i in 0..3u32 {
            let mut actor = ComponentActor::new(ConsensusAbcast::<u32>::new(
                NodeId::new(i),
                group.clone(),
                ConsensusConfig::default(),
            ));
            for k in 0..2u32 {
                let value = i * 10 + k;
                actor = actor.with_step(
                    repl_sim::SimDuration::from_ticks(10 + (k as u64) * 500),
                    move |ab, out| {
                        ab.broadcast(value, out);
                    },
                );
            }
            world.add_actor(Box::new(actor));
        }
        world.start();
        world.run_until(SimTime::from_ticks(300_000));
        let reference = deliveries_cons(&world, group[0]);
        assert_eq!(
            reference.len(),
            6,
            "all six messages delivered: {reference:?}"
        );
        for &n in &group[1..] {
            assert_eq!(
                deliveries_cons(&world, n),
                reference,
                "order differs at {n}"
            );
        }
    }

    #[test]
    fn batched_sequencer_total_order_and_fewer_messages() {
        // Same scenario as the unbatched total-order test, once with
        // window 0 and once with a wide window: identical deliveries,
        // strictly fewer network messages.
        fn run(window: u64) -> (Vec<Vec<(u64, u32)>>, u64) {
            let mut world: World<SeqAbMsg<u32>> = World::new(SimConfig::new(5));
            let group: Vec<NodeId> = (0..4).map(NodeId::new).collect();
            for i in 0..4u32 {
                let ab = SequencerAbcast::<u32>::new(NodeId::new(i), group.clone()).with_batching(
                    if window == 0 {
                        BatchConfig::disabled()
                    } else {
                        BatchConfig::window(window)
                    },
                );
                let mut actor = ComponentActor::new(ab);
                for k in 0..3u32 {
                    let value = i * 10 + k;
                    actor = actor.with_step(
                        repl_sim::SimDuration::from_ticks(10 + (k as u64) * 7 + i as u64),
                        move |ab, out| {
                            ab.broadcast(value, out);
                        },
                    );
                }
                world.add_actor(Box::new(actor));
            }
            world.start();
            world.run_until(SimTime::from_ticks(100_000));
            let delivered = group
                .iter()
                .map(|&n| deliveries_seq(&world, n))
                .collect::<Vec<_>>();
            (delivered, world.metrics().messages_sent)
        }
        let (unbatched, msgs_unbatched) = run(0);
        let (batched, msgs_batched) = run(200);
        for d in &batched {
            assert_eq!(d.len(), 12, "all messages delivered under batching");
            assert_eq!(d, &batched[0], "total order violated under batching");
        }
        let values: HashSet<u32> = batched[0].iter().map(|&(_, v)| v).collect();
        let expected: HashSet<u32> = unbatched[0].iter().map(|&(_, v)| v).collect();
        assert_eq!(values, expected, "batching lost or invented messages");
        assert!(
            msgs_batched * 2 <= msgs_unbatched,
            "batching should at least halve message count: {msgs_batched} vs {msgs_unbatched}"
        );
    }

    #[test]
    fn batched_sequencer_window_zero_is_identical() {
        // BatchConfig::disabled() must take the legacy code path: the
        // same world with and without `.with_batching(disabled)` yields
        // identical message counts and deliveries.
        fn run(with_cfg: bool) -> (Vec<(u64, u32)>, u64) {
            let mut world: World<SeqAbMsg<u32>> = World::new(SimConfig::new(9));
            let group: Vec<NodeId> = (0..3).map(NodeId::new).collect();
            for i in 0..3u32 {
                let mut ab = SequencerAbcast::<u32>::new(NodeId::new(i), group.clone());
                if with_cfg {
                    ab = ab.with_batching(BatchConfig::disabled());
                }
                let mut actor = ComponentActor::new(ab);
                for k in 0..2u32 {
                    let value = i * 10 + k;
                    actor = actor.with_step(
                        repl_sim::SimDuration::from_ticks(10 + (k as u64) * 13 + i as u64),
                        move |ab, out| {
                            ab.broadcast(value, out);
                        },
                    );
                }
                world.add_actor(Box::new(actor));
            }
            world.start();
            world.run_until(SimTime::from_ticks(100_000));
            (
                deliveries_seq(&world, NodeId::new(0)),
                world.metrics().messages_sent,
            )
        }
        assert_eq!(run(false), run(true));
    }

    #[test]
    fn batched_consensus_total_order_and_fewer_messages() {
        fn run(window: u64) -> (Vec<Vec<(u64, u32)>>, u64) {
            let mut world: World<CAbMsg<u32>> = World::new(SimConfig::new(3));
            let group: Vec<NodeId> = (0..3).map(NodeId::new).collect();
            for i in 0..3u32 {
                let ab = ConsensusAbcast::<u32>::new(
                    NodeId::new(i),
                    group.clone(),
                    ConsensusConfig::default(),
                )
                .with_batching(if window == 0 {
                    BatchConfig::disabled()
                } else {
                    BatchConfig::window(window)
                });
                let mut actor = ComponentActor::new(ab);
                for k in 0..2u32 {
                    let value = i * 10 + k;
                    actor = actor.with_step(
                        repl_sim::SimDuration::from_ticks(10 + (k as u64) * 40),
                        move |ab, out| {
                            ab.broadcast(value, out);
                        },
                    );
                }
                world.add_actor(Box::new(actor));
            }
            world.start();
            world.run_until(SimTime::from_ticks(300_000));
            let delivered = group
                .iter()
                .map(|&n| deliveries_cons(&world, n))
                .collect::<Vec<_>>();
            (delivered, world.metrics().messages_sent)
        }
        let (unbatched, msgs_unbatched) = run(0);
        let (batched, msgs_batched) = run(300);
        for d in &batched {
            assert_eq!(d.len(), 6, "all six messages delivered under batching");
            assert_eq!(d, &batched[0], "total order violated under batching");
        }
        let values: HashSet<u32> = batched[0].iter().map(|&(_, v)| v).collect();
        let expected: HashSet<u32> = unbatched[0].iter().map(|&(_, v)| v).collect();
        assert_eq!(values, expected, "batching lost or invented messages");
        assert!(
            msgs_batched < msgs_unbatched,
            "batching the consensus abcast should save messages: \
             {msgs_batched} vs {msgs_unbatched}"
        );
    }

    #[test]
    fn batched_consensus_no_partial_batch_after_crash() {
        // A member crashes right after flushing a multi-message batch;
        // the survivors must deliver either the whole batch or none of
        // it, in the same order everywhere — never a partial prefix
        // interleaved differently at different members.
        let mut world: World<CAbMsg<u32>> = World::new(SimConfig::new(11));
        let group: Vec<NodeId> = (0..5).map(NodeId::new).collect();
        for i in 0..5u32 {
            let ab = ConsensusAbcast::<u32>::new(
                NodeId::new(i),
                group.clone(),
                ConsensusConfig::default(),
            )
            .with_batching(BatchConfig::window(100));
            let mut actor = ComponentActor::new(ab);
            if i == 0 {
                // The round-0 coordinator broadcasts a 3-message batch
                // (staged together inside one window), then crashes.
                for k in 0..3u32 {
                    actor = actor.with_step(
                        repl_sim::SimDuration::from_ticks(10 + k as u64),
                        move |ab, out| {
                            ab.broadcast(100 + k, out);
                        },
                    );
                }
            }
            if i == 1 {
                actor = actor.with_step(repl_sim::SimDuration::from_ticks(400), |ab, out| {
                    ab.broadcast(7, out);
                });
            }
            world.add_actor(Box::new(actor));
        }
        // Crash right after the batch flush (window 100, staged at ~10).
        world.schedule_crash(SimTime::from_ticks(150), group[0]);
        world.start();
        world.run_until(SimTime::from_ticks(500_000));
        let reference = deliveries_cons(&world, group[1]);
        let batch_vals: Vec<u32> = reference
            .iter()
            .map(|&(_, v)| v)
            .filter(|&v| v >= 100)
            .collect();
        assert!(
            batch_vals == vec![100, 101, 102] || batch_vals.is_empty(),
            "partial batch delivered: {batch_vals:?}"
        );
        assert!(
            reference.iter().any(|&(_, v)| v == 7),
            "survivor broadcast lost"
        );
        for &n in &group[2..] {
            assert_eq!(
                deliveries_cons(&world, n),
                reference,
                "order differs at {n}"
            );
        }
    }

    #[test]
    fn sequencer_rejoin_refills_a_recovered_member() {
        use crate::testkit::schedule_outage;
        let mut world: World<SeqAbMsg<u32>> = World::new(SimConfig::new(21));
        let group: Vec<NodeId> = (0..3).map(NodeId::new).collect();
        for i in 0..3u32 {
            let mut actor =
                ComponentActor::new(SequencerAbcast::<u32>::new(NodeId::new(i), group.clone()))
                    .with_recovery(|ab, out| ab.rejoin(out));
            if i < 2 {
                // Nodes 0 and 1 broadcast before, during, and after
                // node 2's outage.
                for k in 0..4u32 {
                    let value = i * 10 + k;
                    actor = actor.with_step(
                        repl_sim::SimDuration::from_ticks(50 + (k as u64) * 5_000 + i as u64),
                        move |ab, out| {
                            ab.broadcast(value, out);
                        },
                    );
                }
            }
            world.add_actor(Box::new(actor));
        }
        schedule_outage(
            &mut world,
            group[2],
            SimTime::from_ticks(1_000),
            SimTime::from_ticks(40_000),
        );
        world.start();
        world.run_until(SimTime::from_ticks(200_000));
        let reference = deliveries_seq(&world, group[0]);
        assert_eq!(reference.len(), 8, "all broadcasts ordered: {reference:?}");
        assert_eq!(
            deliveries_seq(&world, group[2]),
            reference,
            "recovered member's stream has gaps"
        );
        let host = world.actor_ref::<SeqHost>(group[2]);
        assert!(!host.inner.rejoin_wait, "rejoin never completed");
        assert!(
            host.inner.rejoin_done.expect("rejoin report pending") > 0,
            "refill carried no bytes"
        );
    }

    #[test]
    fn consensus_rejoin_refills_a_recovered_member() {
        use crate::testkit::schedule_outage;
        let mut world: World<CAbMsg<u32>> = World::new(SimConfig::new(23));
        let group: Vec<NodeId> = (0..3).map(NodeId::new).collect();
        for i in 0..3u32 {
            let mut actor = ComponentActor::new(ConsensusAbcast::<u32>::new(
                NodeId::new(i),
                group.clone(),
                ConsensusConfig::default(),
            ))
            .with_recovery(|ab, out| ab.rejoin(out));
            if i < 2 {
                for k in 0..3u32 {
                    let value = i * 10 + k;
                    actor = actor.with_step(
                        repl_sim::SimDuration::from_ticks(50 + (k as u64) * 9_000 + i as u64),
                        move |ab, out| {
                            ab.broadcast(value, out);
                        },
                    );
                }
            }
            world.add_actor(Box::new(actor));
        }
        schedule_outage(
            &mut world,
            group[2],
            SimTime::from_ticks(2_000),
            SimTime::from_ticks(60_000),
        );
        world.start();
        world.run_until(SimTime::from_ticks(400_000));
        let reference = deliveries_cons(&world, group[0]);
        assert_eq!(reference.len(), 6, "all broadcasts ordered: {reference:?}");
        assert_eq!(
            deliveries_cons(&world, group[2]),
            reference,
            "recovered member's stream has gaps"
        );
        let host = world.actor_ref::<ConsHost>(group[2]);
        assert!(!host.inner.rejoin_wait, "rejoin never completed");
        assert!(
            host.inner.rejoin_done.expect("rejoin report pending") > 0,
            "refill carried no bytes"
        );
    }

    #[test]
    fn sequencer_rewind_replays_the_stream_after_volume_loss() {
        use crate::testkit::schedule_outage;
        let mut world: World<SeqAbMsg<u32>> = World::new(SimConfig::new(29));
        let group: Vec<NodeId> = (0..3).map(NodeId::new).collect();
        for i in 0..3u32 {
            let mut actor =
                ComponentActor::new(SequencerAbcast::<u32>::new(NodeId::new(i), group.clone()))
                    // A disaster recovery: the host lost everything built
                    // from past deliveries, so rewind to 0 and refill.
                    .with_recovery(|ab, out| {
                        ab.rewind_to(0);
                        ab.rejoin(out);
                    });
            if i < 2 {
                for k in 0..3u32 {
                    let value = i * 10 + k;
                    actor = actor.with_step(
                        repl_sim::SimDuration::from_ticks(50 + (k as u64) * 5_000 + i as u64),
                        move |ab, out| {
                            ab.broadcast(value, out);
                        },
                    );
                }
            }
            world.add_actor(Box::new(actor));
        }
        schedule_outage(
            &mut world,
            group[2],
            SimTime::from_ticks(8_000),
            SimTime::from_ticks(40_000),
        );
        world.start();
        world.run_until(SimTime::from_ticks(200_000));
        let reference = deliveries_seq(&world, group[0]);
        assert_eq!(reference.len(), 6, "all broadcasts ordered: {reference:?}");
        let rewound = deliveries_seq(&world, group[2]);
        // Pre-outage deliveries plus the full replay: the suffix must be
        // the whole reference stream, in order.
        assert!(rewound.len() >= reference.len());
        assert_eq!(
            rewound[rewound.len() - reference.len()..],
            reference[..],
            "replay after rewind differs from the group order"
        );
        let host = world.actor_ref::<SeqHost>(group[2]);
        assert!(!host.inner.rejoin_wait, "rejoin never completed");
    }

    #[test]
    fn sequencer_member_rewind_self_refills_without_wire_bytes() {
        use crate::testkit::schedule_outage;
        let mut world: World<SeqAbMsg<u32>> = World::new(SimConfig::new(31));
        let group: Vec<NodeId> = (0..3).map(NodeId::new).collect();
        for i in 0..3u32 {
            let mut actor =
                ComponentActor::new(SequencerAbcast::<u32>::new(NodeId::new(i), group.clone()))
                    .with_recovery(|ab, out| {
                        ab.rewind_to(0);
                        ab.rejoin(out);
                    });
            if i > 0 {
                for k in 0..2u32 {
                    let value = i * 10 + k;
                    actor = actor.with_step(
                        repl_sim::SimDuration::from_ticks(50 + (k as u64) * 500 + i as u64),
                        move |ab, out| {
                            ab.broadcast(value, out);
                        },
                    );
                }
            }
            world.add_actor(Box::new(actor));
        }
        // The sequencer itself goes down after ordering everything; its
        // retained order log survives (daemon state) and refills its own
        // rewound receiver stream on rejoin.
        schedule_outage(
            &mut world,
            group[0],
            SimTime::from_ticks(20_000),
            SimTime::from_ticks(30_000),
        );
        world.start();
        world.run_until(SimTime::from_ticks(200_000));
        let reference = deliveries_seq(&world, group[1]);
        assert_eq!(reference.len(), 4, "all broadcasts ordered: {reference:?}");
        let rewound = deliveries_seq(&world, group[0]);
        assert_eq!(
            rewound[rewound.len() - reference.len()..],
            reference[..],
            "sequencer's self-refill differs from the group order"
        );
        let host = world.actor_ref::<SeqHost>(group[0]);
        assert_eq!(
            host.inner.rejoin_done,
            Some(0),
            "self-refill must carry no wire bytes"
        );
    }

    #[test]
    fn consensus_rewind_replays_the_stream_after_volume_loss() {
        use crate::testkit::schedule_outage;
        let mut world: World<CAbMsg<u32>> = World::new(SimConfig::new(37));
        let group: Vec<NodeId> = (0..3).map(NodeId::new).collect();
        for i in 0..3u32 {
            let mut actor = ComponentActor::new(ConsensusAbcast::<u32>::new(
                NodeId::new(i),
                group.clone(),
                ConsensusConfig::default(),
            ))
            .with_recovery(|ab, out| {
                ab.rewind_to(0);
                ab.rejoin(out);
            });
            if i < 2 {
                for k in 0..3u32 {
                    let value = i * 10 + k;
                    actor = actor.with_step(
                        repl_sim::SimDuration::from_ticks(50 + (k as u64) * 9_000 + i as u64),
                        move |ab, out| {
                            ab.broadcast(value, out);
                        },
                    );
                }
            }
            world.add_actor(Box::new(actor));
        }
        schedule_outage(
            &mut world,
            group[2],
            SimTime::from_ticks(12_000),
            SimTime::from_ticks(60_000),
        );
        world.start();
        world.run_until(SimTime::from_ticks(400_000));
        let reference = deliveries_cons(&world, group[0]);
        assert_eq!(reference.len(), 6, "all broadcasts ordered: {reference:?}");
        let rewound = deliveries_cons(&world, group[2]);
        assert!(rewound.len() >= reference.len());
        assert_eq!(
            rewound[rewound.len() - reference.len()..],
            reference[..],
            "replay after rewind differs from the group order"
        );
        let host = world.actor_ref::<ConsHost>(group[2]);
        assert!(!host.inner.rejoin_wait, "rejoin never completed");
    }

    #[test]
    fn consensus_abcast_tolerates_member_crash() {
        let mut world: World<CAbMsg<u32>> = World::new(SimConfig::new(11));
        let group: Vec<NodeId> = (0..5).map(NodeId::new).collect();
        for i in 0..5u32 {
            let mut actor = ComponentActor::new(ConsensusAbcast::<u32>::new(
                NodeId::new(i),
                group.clone(),
                ConsensusConfig::default(),
            ));
            if i == 1 {
                actor = actor.with_step(repl_sim::SimDuration::from_ticks(10), |ab, out| {
                    ab.broadcast(5, out);
                });
                actor = actor.with_step(repl_sim::SimDuration::from_ticks(5_000), |ab, out| {
                    ab.broadcast(6, out);
                });
            }
            world.add_actor(Box::new(actor));
        }
        // Crash node 0 (the round-0 coordinator) mid-stream.
        world.schedule_crash(SimTime::from_ticks(300), group[0]);
        world.start();
        world.run_until(SimTime::from_ticks(500_000));
        let reference = deliveries_cons(&world, group[1]);
        assert_eq!(
            reference.iter().map(|(_, v)| *v).collect::<Vec<_>>(),
            vec![5, 6],
            "survivor missed messages"
        );
        for &n in &group[2..] {
            assert_eq!(
                deliveries_cons(&world, n),
                reference,
                "order differs at {n}"
            );
        }
    }
}
