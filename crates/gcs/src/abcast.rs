//! Atomic Broadcast (ABCAST): totally ordered, reliable dissemination.
//!
//! Two interchangeable implementations, compared by ablation A2:
//!
//! * [`SequencerAbcast`] — a fixed sequencer assigns global sequence
//!   numbers. Cheapest in messages (one hop to the sequencer, one
//!   dissemination round) but the sequencer is a single point of failure;
//!   the replication experiments use it in failure-free runs.
//! * [`ConsensusAbcast`] — batches of pending messages are agreed on with
//!   [`ConsensusPool`] instances, in the style of Chandra–Toueg's atomic
//!   broadcast reduction. Tolerates any minority of crashes.
//!
//! Both deliver [`AbDeliver`] events carrying a dense global sequence
//! number; within a batch, messages are ordered by [`MsgId`].

use std::collections::{BTreeMap, HashMap, HashSet};

use repl_sim::{Message, NodeId, SimDuration};

use crate::component::{Component, Outbox};
use crate::consensus::{ConsEvent, ConsMsg, ConsensusConfig, ConsensusPool};
use crate::rbcast::MsgId;

/// A totally ordered delivery.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AbDeliver<P> {
    /// Dense position in the group's total order, starting at 0.
    pub gseq: u64,
    /// Unique id of the broadcast.
    pub id: MsgId,
    /// Application payload.
    pub payload: P,
}

// ---------------------------------------------------------------------------
// Fixed sequencer
// ---------------------------------------------------------------------------

/// Wire message of [`SequencerAbcast`].
#[derive(Debug, Clone)]
pub enum SeqAbMsg<P> {
    /// Sender → sequencer: please order this message.
    Submit {
        /// Unique id of the broadcast.
        id: MsgId,
        /// Application payload.
        payload: P,
    },
    /// Sequencer → group (and non-member origins): ordered message.
    Ordered {
        /// Global sequence number.
        gseq: u64,
        /// Unique id of the broadcast.
        id: MsgId,
        /// Application payload.
        payload: P,
    },
}

impl<P: Message> Message for SeqAbMsg<P> {
    fn wire_size(&self) -> usize {
        match self {
            SeqAbMsg::Submit { payload, .. } => 16 + payload.wire_size(),
            SeqAbMsg::Ordered { payload, .. } => 24 + payload.wire_size(),
        }
    }
}

const RETRANSMIT_TAG: u64 = 0;

/// Fixed-sequencer Atomic Broadcast.
///
/// The sequencer is the first group member. Senders retransmit unordered
/// submissions periodically, which makes the primitive robust to message
/// loss (but not to a sequencer crash — see [`ConsensusAbcast`]).
///
/// Non-members may broadcast *into* the group: the sequencer confirms the
/// ordering back to them, but only members deliver.
///
/// # Examples
///
/// ```
/// use repl_gcs::{SequencerAbcast, Outbox};
/// use repl_sim::NodeId;
///
/// let group: Vec<NodeId> = (0..3).map(NodeId::new).collect();
/// let mut ab: SequencerAbcast<u32> = SequencerAbcast::new(group[1], group.clone());
/// let mut out = Outbox::new();
/// ab.broadcast(9, &mut out);
/// ```
#[derive(Debug)]
pub struct SequencerAbcast<P> {
    me: NodeId,
    group: Vec<NodeId>,
    member: bool,
    retransmit_every: SimDuration,
    next_local: u64,
    // BTreeMap so retransmission iterates in MsgId order (deterministic).
    pending: BTreeMap<MsgId, P>,
    timer_armed: bool,
    // Sequencer role.
    ordered: HashMap<MsgId, u64>,
    next_gseq: u64,
    // Receiver role.
    next_deliver: u64,
    holdback: BTreeMap<u64, (MsgId, P)>,
    delivered_ids: HashSet<MsgId>,
}

impl<P: Clone + std::fmt::Debug + 'static> SequencerAbcast<P> {
    /// Creates an endpoint for `me`; the sequencer is `group[0]`.
    ///
    /// # Panics
    ///
    /// Panics if `group` is empty.
    pub fn new(me: NodeId, group: Vec<NodeId>) -> Self {
        assert!(!group.is_empty(), "group must not be empty");
        let member = group.contains(&me);
        SequencerAbcast {
            me,
            group,
            member,
            retransmit_every: SimDuration::from_ticks(2_000),
            next_local: 0,
            pending: BTreeMap::new(),
            timer_armed: false,
            ordered: HashMap::new(),
            next_gseq: 0,
            next_deliver: 0,
            holdback: BTreeMap::new(),
            delivered_ids: HashSet::new(),
        }
    }

    /// The sequencer node.
    pub fn sequencer(&self) -> NodeId {
        self.group[0]
    }

    /// Number of own broadcasts not yet confirmed ordered.
    pub fn pending(&self) -> usize {
        self.pending.len()
    }

    /// Broadcasts `payload`; returns its id.
    pub fn broadcast(&mut self, payload: P, out: &mut Outbox<SeqAbMsg<P>, AbDeliver<P>>) -> MsgId {
        let id = MsgId::new(self.me, self.next_local);
        self.next_local += 1;
        self.pending.insert(id, payload.clone());
        out.send(self.sequencer(), SeqAbMsg::Submit { id, payload });
        if !self.timer_armed {
            self.timer_armed = true;
            out.timer(self.retransmit_every, RETRANSMIT_TAG);
        }
        id
    }

    fn order(&mut self, id: MsgId, payload: P, out: &mut Outbox<SeqAbMsg<P>, AbDeliver<P>>) {
        let gseq = match self.ordered.get(&id) {
            Some(&g) => g,
            None => {
                let g = self.next_gseq;
                self.next_gseq += 1;
                self.ordered.insert(id, g);
                g
            }
        };
        for &m in &self.group {
            if m != self.me {
                out.send(
                    m,
                    SeqAbMsg::Ordered {
                        gseq,
                        id,
                        payload: payload.clone(),
                    },
                );
            }
        }
        if !self.group.contains(&id.origin) && id.origin != self.me {
            out.send(
                id.origin,
                SeqAbMsg::Ordered {
                    gseq,
                    id,
                    payload: payload.clone(),
                },
            );
        }
        self.accept(gseq, id, payload, out);
    }

    fn accept(
        &mut self,
        gseq: u64,
        id: MsgId,
        payload: P,
        out: &mut Outbox<SeqAbMsg<P>, AbDeliver<P>>,
    ) {
        self.pending.remove(&id);
        if !self.member || self.delivered_ids.contains(&id) {
            return;
        }
        self.holdback.entry(gseq).or_insert((id, payload));
        while let Some((id, payload)) = self.holdback.remove(&self.next_deliver) {
            let gseq = self.next_deliver;
            self.next_deliver += 1;
            if self.delivered_ids.insert(id) {
                out.event(AbDeliver { gseq, id, payload });
            }
        }
    }
}

impl<P: Clone + std::fmt::Debug + 'static> Component for SequencerAbcast<P> {
    type Msg = SeqAbMsg<P>;
    type Event = AbDeliver<P>;

    fn on_message(
        &mut self,
        _from: NodeId,
        msg: SeqAbMsg<P>,
        out: &mut Outbox<SeqAbMsg<P>, AbDeliver<P>>,
    ) {
        match msg {
            SeqAbMsg::Submit { id, payload } => {
                if self.me == self.sequencer() {
                    self.order(id, payload, out);
                }
            }
            SeqAbMsg::Ordered { gseq, id, payload } => {
                self.accept(gseq, id, payload, out);
            }
        }
    }

    fn on_timer(&mut self, tag: u64, out: &mut Outbox<SeqAbMsg<P>, AbDeliver<P>>) {
        if tag != RETRANSMIT_TAG {
            return;
        }
        if self.pending.is_empty() {
            self.timer_armed = false;
            return;
        }
        let seq = self.sequencer();
        for (&id, payload) in &self.pending {
            out.send(
                seq,
                SeqAbMsg::Submit {
                    id,
                    payload: payload.clone(),
                },
            );
        }
        out.timer(self.retransmit_every, RETRANSMIT_TAG);
    }
}

// ---------------------------------------------------------------------------
// Consensus-based
// ---------------------------------------------------------------------------

/// A batch of messages agreed on by one consensus instance.
#[derive(Debug, Clone)]
pub struct Batch<P>(pub Vec<(MsgId, P)>);

impl<P: Message> Message for Batch<P> {
    fn wire_size(&self) -> usize {
        8 + self
            .0
            .iter()
            .map(|(_, p)| 16 + p.wire_size())
            .sum::<usize>()
    }
}

/// Wire message of [`ConsensusAbcast`].
#[derive(Debug, Clone)]
pub enum CAbMsg<P> {
    /// Gossip of a pending message to all members.
    Submit {
        /// Unique id of the broadcast.
        id: MsgId,
        /// Application payload.
        payload: P,
    },
    /// Embedded consensus traffic.
    Cons(ConsMsg<Batch<P>>),
}

impl<P: Message> Message for CAbMsg<P> {
    fn wire_size(&self) -> usize {
        match self {
            CAbMsg::Submit { payload, .. } => 16 + payload.wire_size(),
            CAbMsg::Cons(c) => 8 + c.wire_size(),
        }
    }
}

/// Timer-tag base of the embedded consensus pool.
const CONS_BASE: u64 = 1 << 40;

/// Consensus-based Atomic Broadcast (Chandra–Toueg reduction).
///
/// Pending messages are gossiped to all members; each member proposes its
/// pending set for the next consensus instance; decided batches are
/// delivered in instance order, messages within a batch ordered by id.
/// Tolerates crashes of any minority of the group.
///
/// # Panics
///
/// [`ConsensusAbcast::new`] panics if `me` is not a group member.
#[derive(Debug)]
pub struct ConsensusAbcast<P> {
    me: NodeId,
    group: Vec<NodeId>,
    pool: ConsensusPool<Batch<P>>,
    next_local: u64,
    pending: BTreeMap<MsgId, P>,
    delivered: HashSet<MsgId>,
    decided: BTreeMap<u64, Batch<P>>,
    next_inst: u64,
    proposed_for: Option<u64>,
    next_gseq: u64,
}

impl<P: Clone + std::fmt::Debug + 'static> ConsensusAbcast<P> {
    /// Creates an endpoint for group member `me`.
    pub fn new(me: NodeId, group: Vec<NodeId>, config: ConsensusConfig) -> Self {
        let pool = ConsensusPool::new(me, group.clone(), config);
        ConsensusAbcast {
            me,
            group,
            pool,
            next_local: 0,
            pending: BTreeMap::new(),
            delivered: HashSet::new(),
            decided: BTreeMap::new(),
            next_inst: 0,
            proposed_for: None,
            next_gseq: 0,
        }
    }

    /// Number of own or gossiped messages not yet delivered.
    pub fn pending(&self) -> usize {
        self.pending.len()
    }

    /// Broadcasts `payload`; returns its id.
    pub fn broadcast(&mut self, payload: P, out: &mut Outbox<CAbMsg<P>, AbDeliver<P>>) -> MsgId {
        let id = MsgId::new(self.me, self.next_local);
        self.next_local += 1;
        self.pending.insert(id, payload.clone());
        for &m in &self.group {
            if m != self.me {
                out.send(
                    m,
                    CAbMsg::Submit {
                        id,
                        payload: payload.clone(),
                    },
                );
            }
        }
        self.maybe_propose(out);
        id
    }

    fn maybe_propose(&mut self, out: &mut Outbox<CAbMsg<P>, AbDeliver<P>>) {
        if self.pending.is_empty() || self.proposed_for == Some(self.next_inst) {
            return;
        }
        let batch = Batch(
            self.pending
                .iter()
                .map(|(id, p)| (*id, p.clone()))
                .collect(),
        );
        self.proposed_for = Some(self.next_inst);
        let mut sub = Outbox::new();
        self.pool.propose(self.next_inst, batch, &mut sub);
        let events = out.absorb(sub, CONS_BASE, CAbMsg::Cons);
        self.handle_pool_events(events, out);
    }

    fn handle_pool_events(
        &mut self,
        events: Vec<ConsEvent<Batch<P>>>,
        out: &mut Outbox<CAbMsg<P>, AbDeliver<P>>,
    ) {
        for ev in events {
            let ConsEvent::Decided { inst, value } = ev;
            self.decided.insert(inst, value);
        }
        let mut progressed = false;
        while let Some(batch) = self.decided.remove(&self.next_inst) {
            for (id, payload) in batch.0 {
                self.pending.remove(&id);
                if self.delivered.insert(id) {
                    let gseq = self.next_gseq;
                    self.next_gseq += 1;
                    out.event(AbDeliver { gseq, id, payload });
                }
            }
            self.next_inst += 1;
            progressed = true;
        }
        if progressed {
            self.maybe_propose(out);
        }
    }
}

impl<P: Clone + std::fmt::Debug + 'static> Component for ConsensusAbcast<P> {
    type Msg = CAbMsg<P>;
    type Event = AbDeliver<P>;

    fn on_message(
        &mut self,
        from: NodeId,
        msg: CAbMsg<P>,
        out: &mut Outbox<CAbMsg<P>, AbDeliver<P>>,
    ) {
        match msg {
            CAbMsg::Submit { id, payload } => {
                if !self.delivered.contains(&id) {
                    self.pending.insert(id, payload);
                    self.maybe_propose(out);
                }
            }
            CAbMsg::Cons(c) => {
                let mut sub = Outbox::new();
                self.pool.on_message(from, c, &mut sub);
                let events = out.absorb(sub, CONS_BASE, CAbMsg::Cons);
                self.handle_pool_events(events, out);
            }
        }
    }

    fn on_timer(&mut self, tag: u64, out: &mut Outbox<CAbMsg<P>, AbDeliver<P>>) {
        if tag >= CONS_BASE {
            let mut sub = Outbox::new();
            self.pool.on_timer(tag - CONS_BASE, &mut sub);
            let events = out.absorb(sub, CONS_BASE, CAbMsg::Cons);
            self.handle_pool_events(events, out);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testkit::ComponentActor;
    use repl_sim::{NetworkConfig, SimConfig, SimTime, World};

    type SeqHost = ComponentActor<SequencerAbcast<u32>>;
    type ConsHost = ComponentActor<ConsensusAbcast<u32>>;

    fn deliveries_seq(world: &World<SeqAbMsg<u32>>, n: NodeId) -> Vec<(u64, u32)> {
        world
            .actor_ref::<SeqHost>(n)
            .events
            .iter()
            .map(|(_, d)| (d.gseq, d.payload))
            .collect()
    }

    fn deliveries_cons(world: &World<CAbMsg<u32>>, n: NodeId) -> Vec<(u64, u32)> {
        world
            .actor_ref::<ConsHost>(n)
            .events
            .iter()
            .map(|(_, d)| (d.gseq, d.payload))
            .collect()
    }

    #[test]
    fn sequencer_total_order_across_concurrent_broadcasters() {
        let mut world: World<SeqAbMsg<u32>> = World::new(SimConfig::new(5));
        let group: Vec<NodeId> = (0..4).map(NodeId::new).collect();
        for i in 0..4u32 {
            let mut actor =
                ComponentActor::new(SequencerAbcast::<u32>::new(NodeId::new(i), group.clone()));
            // Every node broadcasts three messages at staggered times.
            for k in 0..3u32 {
                let value = i * 10 + k;
                actor = actor.with_step(
                    repl_sim::SimDuration::from_ticks(10 + (k as u64) * 7 + i as u64),
                    move |ab, out| {
                        ab.broadcast(value, out);
                    },
                );
            }
            world.add_actor(Box::new(actor));
        }
        world.start();
        world.run_until(SimTime::from_ticks(100_000));
        let reference = deliveries_seq(&world, group[0]);
        assert_eq!(reference.len(), 12, "all messages delivered");
        let gseqs: Vec<u64> = reference.iter().map(|(g, _)| *g).collect();
        assert_eq!(gseqs, (0..12).collect::<Vec<u64>>(), "dense total order");
        for &n in &group[1..] {
            assert_eq!(deliveries_seq(&world, n), reference, "order differs at {n}");
        }
    }

    #[test]
    fn sequencer_survives_message_loss_via_retransmission() {
        let cfg = SimConfig::new(7).with_network(NetworkConfig::lan().with_drop_prob(0.3));
        let mut world: World<SeqAbMsg<u32>> = World::new(cfg);
        let group: Vec<NodeId> = (0..3).map(NodeId::new).collect();
        for i in 0..3u32 {
            let mut actor =
                ComponentActor::new(SequencerAbcast::<u32>::new(NodeId::new(i), group.clone()));
            if i == 2 {
                actor = actor.with_step(repl_sim::SimDuration::from_ticks(10), |ab, out| {
                    ab.broadcast(99, out);
                });
            }
            world.add_actor(Box::new(actor));
        }
        world.start();
        world.run_until(SimTime::from_ticks(500_000));
        // Retransmission cannot recover lost *Ordered* copies at other
        // receivers, but the sender must eventually get through.
        assert!(
            deliveries_seq(&world, group[2]).contains(&(0, 99)),
            "sender's own message never confirmed"
        );
    }

    #[test]
    fn non_member_broadcast_is_ordered_and_confirmed() {
        let mut world: World<SeqAbMsg<u32>> = World::new(SimConfig::new(2));
        let group: Vec<NodeId> = (0..3).map(NodeId::new).collect();
        for i in 0..3u32 {
            world.add_actor(Box::new(ComponentActor::new(SequencerAbcast::<u32>::new(
                NodeId::new(i),
                group.clone(),
            ))));
        }
        let outsider =
            ComponentActor::new(SequencerAbcast::<u32>::new(NodeId::new(3), group.clone()))
                .with_step(repl_sim::SimDuration::from_ticks(5), |ab, out| {
                    ab.broadcast(77, out);
                });
        let o = world.add_actor(Box::new(outsider));
        world.start();
        world.run_until(SimTime::from_ticks(100_000));
        for &n in &group {
            assert_eq!(deliveries_seq(&world, n), vec![(0, 77)]);
        }
        // The outsider delivers nothing but its pending set drained.
        assert!(deliveries_seq(&world, o).is_empty());
        assert_eq!(world.actor_ref::<SeqHost>(o).inner.pending(), 0);
    }

    #[test]
    fn consensus_abcast_total_order_no_failures() {
        let mut world: World<CAbMsg<u32>> = World::new(SimConfig::new(3));
        let group: Vec<NodeId> = (0..3).map(NodeId::new).collect();
        for i in 0..3u32 {
            let mut actor = ComponentActor::new(ConsensusAbcast::<u32>::new(
                NodeId::new(i),
                group.clone(),
                ConsensusConfig::default(),
            ));
            for k in 0..2u32 {
                let value = i * 10 + k;
                actor = actor.with_step(
                    repl_sim::SimDuration::from_ticks(10 + (k as u64) * 500),
                    move |ab, out| {
                        ab.broadcast(value, out);
                    },
                );
            }
            world.add_actor(Box::new(actor));
        }
        world.start();
        world.run_until(SimTime::from_ticks(300_000));
        let reference = deliveries_cons(&world, group[0]);
        assert_eq!(
            reference.len(),
            6,
            "all six messages delivered: {reference:?}"
        );
        for &n in &group[1..] {
            assert_eq!(
                deliveries_cons(&world, n),
                reference,
                "order differs at {n}"
            );
        }
    }

    #[test]
    fn consensus_abcast_tolerates_member_crash() {
        let mut world: World<CAbMsg<u32>> = World::new(SimConfig::new(11));
        let group: Vec<NodeId> = (0..5).map(NodeId::new).collect();
        for i in 0..5u32 {
            let mut actor = ComponentActor::new(ConsensusAbcast::<u32>::new(
                NodeId::new(i),
                group.clone(),
                ConsensusConfig::default(),
            ));
            if i == 1 {
                actor = actor.with_step(repl_sim::SimDuration::from_ticks(10), |ab, out| {
                    ab.broadcast(5, out);
                });
                actor = actor.with_step(repl_sim::SimDuration::from_ticks(5_000), |ab, out| {
                    ab.broadcast(6, out);
                });
            }
            world.add_actor(Box::new(actor));
        }
        // Crash node 0 (the round-0 coordinator) mid-stream.
        world.schedule_crash(SimTime::from_ticks(300), group[0]);
        world.start();
        world.run_until(SimTime::from_ticks(500_000));
        let reference = deliveries_cons(&world, group[1]);
        assert_eq!(
            reference.iter().map(|(_, v)| *v).collect::<Vec<_>>(),
            vec![5, 6],
            "survivor missed messages"
        );
        for &n in &group[2..] {
            assert_eq!(
                deliveries_cons(&world, n),
                reference,
                "order differs at {n}"
            );
        }
    }
}
