//! FIFO broadcast: reliable broadcast plus per-sender delivery order.
//!
//! If a process broadcasts `m` before `m'`, no member delivers `m'` before
//! `m`. This is the ordering guarantee the paper's passive replication
//! assumes between primary and backups (Section 3.3).

use std::collections::{BTreeMap, HashMap};

use repl_sim::NodeId;

use crate::component::{Component, Outbox};
use crate::rbcast::{MsgId, RbDeliver, RbMsg, RelayPolicy, ReliableBcast};

/// FIFO broadcast within a fixed group.
///
/// Wraps [`ReliableBcast`] and holds back out-of-order messages per origin.
///
/// # Examples
///
/// ```
/// use repl_gcs::{FifoBcast, RelayPolicy, Outbox};
/// use repl_sim::NodeId;
///
/// let group = vec![NodeId::new(0), NodeId::new(1)];
/// let mut fifo: FifoBcast<u32> = FifoBcast::new(NodeId::new(0), group, RelayPolicy::None);
/// let mut out = Outbox::new();
/// fifo.broadcast(1, &mut out);
/// ```
#[derive(Debug)]
pub struct FifoBcast<P> {
    rb: ReliableBcast<P>,
    next: HashMap<NodeId, u64>,
    holdback: HashMap<NodeId, BTreeMap<u64, P>>,
}

impl<P: Clone + std::fmt::Debug + 'static> FifoBcast<P> {
    /// Creates a FIFO broadcast endpoint for `me` within `group`.
    pub fn new(me: NodeId, group: Vec<NodeId>, policy: RelayPolicy) -> Self {
        FifoBcast {
            rb: ReliableBcast::new(me, group, policy),
            next: HashMap::new(),
            holdback: HashMap::new(),
        }
    }

    /// Broadcasts `payload`; returns the assigned id.
    pub fn broadcast(&mut self, payload: P, out: &mut Outbox<RbMsg<P>, RbDeliver<P>>) -> MsgId {
        let mut sub = Outbox::new();
        let id = self.rb.broadcast(payload, &mut sub);
        self.reorder(sub, out);
        id
    }

    /// Number of messages currently held back waiting for predecessors.
    pub fn held_back(&self) -> usize {
        self.holdback.values().map(|m| m.len()).sum()
    }

    fn reorder(
        &mut self,
        sub: Outbox<RbMsg<P>, RbDeliver<P>>,
        out: &mut Outbox<RbMsg<P>, RbDeliver<P>>,
    ) {
        for d in out.absorb(sub, 0, |m| m) {
            self.holdback
                .entry(d.id.origin)
                .or_default()
                .insert(d.id.seq, d.payload);
            self.release(d.id.origin, out);
        }
    }

    fn release(&mut self, origin: NodeId, out: &mut Outbox<RbMsg<P>, RbDeliver<P>>) {
        let next = self.next.entry(origin).or_insert(0);
        if let Some(buf) = self.holdback.get_mut(&origin) {
            while let Some(payload) = buf.remove(next) {
                out.event(RbDeliver {
                    id: MsgId::new(origin, *next),
                    payload,
                });
                *next += 1;
            }
        }
    }
}

impl<P: Clone + std::fmt::Debug + 'static> Component for FifoBcast<P> {
    type Msg = RbMsg<P>;
    type Event = RbDeliver<P>;

    fn on_message(
        &mut self,
        from: NodeId,
        msg: RbMsg<P>,
        out: &mut Outbox<RbMsg<P>, RbDeliver<P>>,
    ) {
        let mut sub = Outbox::new();
        self.rb.on_message(from, msg, &mut sub);
        self.reorder(sub, out);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn group(n: u32) -> Vec<NodeId> {
        (0..n).map(NodeId::new).collect()
    }

    fn events(out: &mut Outbox<RbMsg<u32>, RbDeliver<u32>>) -> Vec<u32> {
        out.drain()
            .into_iter()
            .filter_map(|a| match a {
                crate::component::Action::Event(e) => Some(e.payload),
                _ => None,
            })
            .collect()
    }

    #[test]
    fn out_of_order_arrivals_are_reordered() {
        let g = group(2);
        let mut fifo: FifoBcast<u32> = FifoBcast::new(g[1], g.clone(), RelayPolicy::None);
        let mut out = Outbox::new();
        // seq 1 arrives before seq 0.
        fifo.on_message(
            g[0],
            RbMsg::Data {
                id: MsgId::new(g[0], 1),
                payload: 11,
            },
            &mut out,
        );
        assert!(events(&mut out).is_empty());
        assert_eq!(fifo.held_back(), 1);
        fifo.on_message(
            g[0],
            RbMsg::Data {
                id: MsgId::new(g[0], 0),
                payload: 10,
            },
            &mut out,
        );
        assert_eq!(events(&mut out), vec![10, 11]);
        assert_eq!(fifo.held_back(), 0);
    }

    #[test]
    fn self_deliveries_are_in_broadcast_order() {
        let g = group(2);
        let mut fifo: FifoBcast<u32> = FifoBcast::new(g[0], g.clone(), RelayPolicy::None);
        let mut out = Outbox::new();
        fifo.broadcast(1, &mut out);
        fifo.broadcast(2, &mut out);
        assert_eq!(events(&mut out), vec![1, 2]);
    }

    #[test]
    fn independent_origins_do_not_block_each_other() {
        let g = group(3);
        let mut fifo: FifoBcast<u32> = FifoBcast::new(g[2], g.clone(), RelayPolicy::None);
        let mut out = Outbox::new();
        // Origin 0's message 1 is missing, but origin 1's message 0 flows.
        fifo.on_message(
            g[0],
            RbMsg::Data {
                id: MsgId::new(g[0], 1),
                payload: 99,
            },
            &mut out,
        );
        fifo.on_message(
            g[1],
            RbMsg::Data {
                id: MsgId::new(g[1], 0),
                payload: 50,
            },
            &mut out,
        );
        assert_eq!(events(&mut out), vec![50]);
    }

    #[test]
    fn duplicates_do_not_double_deliver() {
        let g = group(2);
        let mut fifo: FifoBcast<u32> = FifoBcast::new(g[1], g.clone(), RelayPolicy::Eager);
        let mut out = Outbox::new();
        let msg = RbMsg::Data {
            id: MsgId::new(g[0], 0),
            payload: 3,
        };
        fifo.on_message(g[0], msg.clone(), &mut out);
        fifo.on_message(g[0], msg, &mut out);
        assert_eq!(events(&mut out), vec![3]);
    }
}
