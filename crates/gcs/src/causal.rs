//! Causal broadcast: deliveries respect potential causality (Lamport's
//! happened-before), implemented with vector clocks in the style of the
//! lightweight CBCAST of Birman, Schiper and Stephenson (1991) — one of the
//! ordering strategies the paper contrasts with the databases' data-
//! dependency ordering (Section 2.2).

use std::collections::VecDeque;

use repl_sim::{Message, NodeId};

use crate::component::{Component, Outbox};

/// Wire message of [`CausalBcast`].
#[derive(Debug, Clone)]
pub struct CbMsg<P> {
    /// Index of the origin within the group.
    pub origin_idx: usize,
    /// The origin's vector clock at send time (deliveries it had seen).
    pub vv: Vec<u64>,
    /// Application payload.
    pub payload: P,
}

impl<P: Message> Message for CbMsg<P> {
    fn wire_size(&self) -> usize {
        8 + 8 * self.vv.len() + self.payload.wire_size()
    }
}

/// A causal delivery event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CbDeliver<P> {
    /// The broadcasting node.
    pub from: NodeId,
    /// Application payload.
    pub payload: P,
}

/// Causal broadcast within a fixed group.
///
/// # Examples
///
/// ```
/// use repl_gcs::{CausalBcast, Outbox};
/// use repl_sim::NodeId;
///
/// let group = vec![NodeId::new(0), NodeId::new(1)];
/// let mut cb: CausalBcast<u32> = CausalBcast::new(NodeId::new(0), group);
/// let mut out = Outbox::new();
/// cb.broadcast(5, &mut out);
/// ```
///
/// # Panics
///
/// [`CausalBcast::new`] panics if `me` is not a group member: unlike
/// reliable broadcast, causal ordering requires a clock entry for the
/// sender.
#[derive(Debug)]
pub struct CausalBcast<P> {
    me: NodeId,
    me_idx: usize,
    group: Vec<NodeId>,
    /// Deliveries seen per member.
    vv: Vec<u64>,
    pending: VecDeque<CbMsg<P>>,
}

impl<P: Clone + std::fmt::Debug + 'static> CausalBcast<P> {
    /// Creates a causal broadcast endpoint for group member `me`.
    pub fn new(me: NodeId, group: Vec<NodeId>) -> Self {
        let me_idx = group
            .iter()
            .position(|&n| n == me)
            .expect("causal broadcast sender must be a group member");
        let n = group.len();
        CausalBcast {
            me,
            me_idx,
            group,
            vv: vec![0; n],
            pending: VecDeque::new(),
        }
    }

    /// The local vector clock (deliveries seen per member, group order).
    pub fn clock(&self) -> &[u64] {
        &self.vv
    }

    /// Number of messages waiting for causal predecessors.
    pub fn held_back(&self) -> usize {
        self.pending.len()
    }

    /// Broadcasts `payload`. The local delivery happens immediately.
    pub fn broadcast(&mut self, payload: P, out: &mut Outbox<CbMsg<P>, CbDeliver<P>>) {
        let stamp = self.vv.clone();
        // Local delivery first: our own message is causally ready by definition.
        self.vv[self.me_idx] += 1;
        out.event(CbDeliver {
            from: self.me,
            payload: payload.clone(),
        });
        for &m in &self.group {
            if m != self.me {
                out.send(
                    m,
                    CbMsg {
                        origin_idx: self.me_idx,
                        vv: stamp.clone(),
                        payload: payload.clone(),
                    },
                );
            }
        }
    }

    fn ready(&self, m: &CbMsg<P>) -> bool {
        m.vv.iter().enumerate().all(|(k, &v)| {
            if k == m.origin_idx {
                v == self.vv[k]
            } else {
                v <= self.vv[k]
            }
        })
    }

    fn drain_ready(&mut self, out: &mut Outbox<CbMsg<P>, CbDeliver<P>>) {
        loop {
            let Some(pos) = self.pending.iter().position(|m| self.ready(m)) else {
                return;
            };
            let m = self.pending.remove(pos).expect("position valid");
            self.vv[m.origin_idx] += 1;
            out.event(CbDeliver {
                from: self.group[m.origin_idx],
                payload: m.payload,
            });
        }
    }
}

impl<P: Clone + std::fmt::Debug + 'static> Component for CausalBcast<P> {
    type Msg = CbMsg<P>;
    type Event = CbDeliver<P>;

    fn on_message(
        &mut self,
        _from: NodeId,
        msg: CbMsg<P>,
        out: &mut Outbox<CbMsg<P>, CbDeliver<P>>,
    ) {
        self.pending.push_back(msg);
        self.drain_ready(out);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn group(n: u32) -> Vec<NodeId> {
        (0..n).map(NodeId::new).collect()
    }

    fn events(out: &mut Outbox<CbMsg<u32>, CbDeliver<u32>>) -> Vec<u32> {
        out.drain()
            .into_iter()
            .filter_map(|a| match a {
                crate::component::Action::Event(e) => Some(e.payload),
                _ => None,
            })
            .collect()
    }

    /// Reconstructs the wire message node `idx` would send for its k-th
    /// broadcast given it had seen `seen` deliveries.
    fn wire(idx: usize, vv: Vec<u64>, payload: u32) -> CbMsg<u32> {
        CbMsg {
            origin_idx: idx,
            vv,
            payload,
        }
    }

    #[test]
    fn causally_dependent_messages_are_held_back() {
        let g = group(3);
        let mut cb: CausalBcast<u32> = CausalBcast::new(g[2], g.clone());
        let mut out = Outbox::new();
        // Node 1 saw node 0's message before broadcasting 20: vv = [1, 0, 0].
        cb.on_message(g[1], wire(1, vec![1, 0, 0], 20), &mut out);
        assert!(events(&mut out).is_empty(), "dependency not yet satisfied");
        assert_eq!(cb.held_back(), 1);
        // Node 0's original message arrives: vv = [0, 0, 0].
        cb.on_message(g[0], wire(0, vec![0, 0, 0], 10), &mut out);
        assert_eq!(events(&mut out), vec![10, 20]);
    }

    #[test]
    fn concurrent_messages_deliver_in_arrival_order() {
        let g = group(3);
        let mut cb: CausalBcast<u32> = CausalBcast::new(g[2], g.clone());
        let mut out = Outbox::new();
        cb.on_message(g[1], wire(1, vec![0, 0, 0], 20), &mut out);
        cb.on_message(g[0], wire(0, vec![0, 0, 0], 10), &mut out);
        assert_eq!(events(&mut out), vec![20, 10]);
    }

    #[test]
    fn fifo_per_origin_is_implied() {
        let g = group(2);
        let mut cb: CausalBcast<u32> = CausalBcast::new(g[1], g.clone());
        let mut out = Outbox::new();
        // Second broadcast from node 0 (its own clock advanced) arrives first.
        cb.on_message(g[0], wire(0, vec![1, 0], 2), &mut out);
        assert!(events(&mut out).is_empty());
        cb.on_message(g[0], wire(0, vec![0, 0], 1), &mut out);
        assert_eq!(events(&mut out), vec![1, 2]);
    }

    #[test]
    fn local_broadcast_advances_clock_and_stamps_predecessors() {
        let g = group(2);
        let mut cb: CausalBcast<u32> = CausalBcast::new(g[0], g.clone());
        let mut out = Outbox::new();
        cb.broadcast(1, &mut out);
        assert_eq!(cb.clock(), &[1, 0]);
        let actions = out.drain();
        // One event + one send; the send carries the pre-broadcast stamp.
        let sent = actions
            .iter()
            .find_map(|a| match a {
                crate::component::Action::Send(_, m) => Some(m.vv.clone()),
                _ => None,
            })
            .expect("send present");
        assert_eq!(sent, vec![0, 0]);
    }

    #[test]
    #[should_panic(expected = "group member")]
    fn non_member_rejected() {
        let g = group(2);
        let _cb: CausalBcast<u32> = CausalBcast::new(NodeId::new(9), g);
    }
}
