//! # repl-gcs — group communication for the replication reproduction
//!
//! The distributed-systems substrate of *Understanding Replication in
//! Databases and Distributed Systems* (Wiesmann et al., ICDCS 2000):
//! the paper's Section 3.1 abstractions, built from scratch on top of the
//! [`repl_sim`] kernel.
//!
//! * [`ReliableBcast`], [`FifoBcast`], [`CausalBcast`] — the broadcast
//!   hierarchy,
//! * [`HeartbeatFd`] — eventually-perfect failure detector,
//! * [`ConsensusPool`] — rotating-coordinator consensus (◇S style),
//! * [`SequencerAbcast`], [`ConsensusAbcast`] — Atomic Broadcast (total
//!   order), the primitive behind active replication and ABCAST-based
//!   database replication,
//! * [`ViewGroup`] — group membership with view-synchronous broadcast
//!   (VSCAST), the primitive behind passive replication.
//!
//! All protocols are written as [`Component`]s: passive state machines a
//! host actor drives, so a replication server can stack them freely.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod abcast;
mod causal;
mod component;
mod consensus;
mod fd;
mod fifo;
mod rbcast;
pub mod testkit;
mod vscast;

pub use abcast::{
    AbDeliver, Batch, BatchConfig, CAbMsg, ConsensusAbcast, SeqAbMsg, SequencerAbcast,
};
pub use causal::{CausalBcast, CbDeliver, CbMsg};
pub use component::{apply_outbox, Action, Component, Outbox, TAG_SPACE};
pub use consensus::{ConsEvent, ConsMsg, ConsensusConfig, ConsensusPool};
pub use fd::{FdConfig, FdEvent, FdMsg, HeartbeatFd};
pub use fifo::FifoBcast;
pub use rbcast::{MsgId, RbDeliver, RbMsg, RelayPolicy, ReliableBcast};
pub use vscast::{View, ViewGroup, VsConfig, VsEvent, VsMsg};
