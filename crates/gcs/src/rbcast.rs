//! Reliable broadcast: if any group member delivers a message, every
//! correct member eventually delivers it.
//!
//! The implementation is the classic eager-relay algorithm: on first
//! receipt, a process forwards the message to the whole group before
//! delivering. Over the simulator's reliable links the relay only matters
//! when senders crash mid-broadcast or when message loss is configured;
//! [`RelayPolicy::None`] turns it off for cheap best-effort dissemination
//! in failure-free runs.

use std::collections::HashSet;

use repl_sim::{Message, NodeId};

use crate::component::{Component, Outbox};

/// Globally unique message identifier: origin plus per-origin sequence.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct MsgId {
    /// The broadcasting node.
    pub origin: NodeId,
    /// Sequence number local to the origin, starting at 0.
    pub seq: u64,
}

impl MsgId {
    /// Creates a message id.
    pub fn new(origin: NodeId, seq: u64) -> Self {
        MsgId { origin, seq }
    }
}

/// Whether receivers re-forward messages on first receipt.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum RelayPolicy {
    /// Forward on first receipt (tolerates sender crash mid-broadcast).
    #[default]
    Eager,
    /// Do not forward; reliability rests on the links alone.
    None,
}

/// Wire message of [`ReliableBcast`].
#[derive(Debug, Clone)]
pub enum RbMsg<P> {
    /// Payload dissemination.
    Data {
        /// Unique id of the broadcast.
        id: MsgId,
        /// Application payload.
        payload: P,
    },
}

impl<P: Message> Message for RbMsg<P> {
    fn wire_size(&self) -> usize {
        match self {
            RbMsg::Data { payload, .. } => 16 + payload.wire_size(),
        }
    }
}

/// A delivery event: the payload and its id.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RbDeliver<P> {
    /// Unique id of the broadcast.
    pub id: MsgId,
    /// Application payload.
    pub payload: P,
}

/// Reliable broadcast within a fixed group.
///
/// The local process delivers its own broadcasts immediately (an event is
/// queued before the sends), so self-delivery never depends on the network.
///
/// # Examples
///
/// ```
/// use repl_gcs::{ReliableBcast, RelayPolicy, Outbox};
/// use repl_sim::NodeId;
///
/// let group = vec![NodeId::new(0), NodeId::new(1)];
/// let mut rb = ReliableBcast::new(NodeId::new(0), group, RelayPolicy::Eager);
/// let mut out = Outbox::new();
/// rb.broadcast("hello", &mut out);
/// assert_eq!(out.len(), 2); // one local delivery event + one send
/// ```
#[derive(Debug)]
pub struct ReliableBcast<P> {
    me: NodeId,
    group: Vec<NodeId>,
    policy: RelayPolicy,
    next_seq: u64,
    seen: HashSet<MsgId>,
    _marker: std::marker::PhantomData<P>,
}

impl<P: Clone + std::fmt::Debug + 'static> ReliableBcast<P> {
    /// Creates a broadcast endpoint for `me` within `group`.
    ///
    /// `me` does not have to be a member of `group`: non-members may
    /// broadcast *into* the group but never deliver.
    pub fn new(me: NodeId, group: Vec<NodeId>, policy: RelayPolicy) -> Self {
        ReliableBcast {
            me,
            group,
            policy,
            next_seq: 0,
            seen: HashSet::new(),
            _marker: std::marker::PhantomData,
        }
    }

    /// The group members.
    pub fn group(&self) -> &[NodeId] {
        &self.group
    }

    /// True if the local process belongs to the group.
    pub fn is_member(&self) -> bool {
        self.group.contains(&self.me)
    }

    /// Broadcasts `payload` to the group. Returns the assigned id.
    pub fn broadcast(&mut self, payload: P, out: &mut Outbox<RbMsg<P>, RbDeliver<P>>) -> MsgId {
        let id = MsgId::new(self.me, self.next_seq);
        self.next_seq += 1;
        self.seen.insert(id);
        if self.is_member() {
            out.event(RbDeliver {
                id,
                payload: payload.clone(),
            });
        }
        for &m in &self.group {
            if m != self.me {
                out.send(
                    m,
                    RbMsg::Data {
                        id,
                        payload: payload.clone(),
                    },
                );
            }
        }
        id
    }
}

impl<P: Clone + std::fmt::Debug + 'static> Component for ReliableBcast<P> {
    type Msg = RbMsg<P>;
    type Event = RbDeliver<P>;

    fn on_message(
        &mut self,
        from: NodeId,
        msg: RbMsg<P>,
        out: &mut Outbox<RbMsg<P>, RbDeliver<P>>,
    ) {
        let RbMsg::Data { id, payload } = msg;
        if !self.seen.insert(id) {
            return;
        }
        if self.policy == RelayPolicy::Eager {
            for &m in &self.group {
                if m != self.me && m != from && m != id.origin {
                    out.send(
                        m,
                        RbMsg::Data {
                            id,
                            payload: payload.clone(),
                        },
                    );
                }
            }
        }
        out.event(RbDeliver { id, payload });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testkit::ComponentActor;
    use repl_sim::{SimConfig, SimDuration, SimTime, World};

    type Rb = ReliableBcast<u32>;

    fn group(n: u32) -> Vec<NodeId> {
        (0..n).map(NodeId::new).collect()
    }

    fn build(n: u32, policy: RelayPolicy, seed: u64) -> (World<RbMsg<u32>>, Vec<NodeId>) {
        let mut world = World::new(SimConfig::new(seed));
        let g = group(n);
        for i in 0..n {
            let actor = ComponentActor::new(Rb::new(NodeId::new(i), g.clone(), policy));
            world.add_actor(Box::new(actor));
        }
        (world, g)
    }

    fn delivered(world: &World<RbMsg<u32>>, node: NodeId) -> Vec<u32> {
        world
            .actor_ref::<ComponentActor<Rb>>(node)
            .events
            .iter()
            .map(|(_, d)| d.payload)
            .collect()
    }

    #[test]
    fn everyone_delivers_exactly_once() {
        let (mut world, g) = build(4, RelayPolicy::Eager, 1);
        let broadcaster = world.actor_mut::<ComponentActor<Rb>>(g[0]);
        *broadcaster = ComponentActor::new(Rb::new(g[0], g.clone(), RelayPolicy::Eager)).with_step(
            SimDuration::from_ticks(10),
            |rb, out| {
                rb.broadcast(7, out);
            },
        );
        world.start();
        world.run_to_quiescence(SimTime::from_ticks(100_000));
        for &n in &g {
            assert_eq!(delivered(&world, n), vec![7], "node {n}");
        }
    }

    #[test]
    fn sender_crash_after_partial_send_still_delivers_everywhere_with_eager_relay() {
        // Node 0 broadcasts then crashes immediately; with eager relay the
        // first receiver re-forwards, so every surviving node delivers.
        let (mut world, g) = build(5, RelayPolicy::Eager, 3);
        let broadcaster = world.actor_mut::<ComponentActor<Rb>>(g[0]);
        *broadcaster = ComponentActor::new(Rb::new(g[0], g.clone(), RelayPolicy::Eager)).with_step(
            SimDuration::from_ticks(10),
            |rb, out| {
                rb.broadcast(9, out);
            },
        );
        world.start();
        // All copies of the initial send leave at t=10; they are in flight
        // when the sender dies, so this exercises relay among receivers.
        world.schedule_crash(SimTime::from_ticks(11), g[0]);
        world.run_to_quiescence(SimTime::from_ticks(100_000));
        for &n in &g[1..] {
            assert_eq!(delivered(&world, n), vec![9], "node {n}");
        }
    }

    #[test]
    fn relay_none_sends_exactly_group_minus_one_messages() {
        let (mut world, g) = build(4, RelayPolicy::None, 5);
        let broadcaster = world.actor_mut::<ComponentActor<Rb>>(g[0]);
        *broadcaster = ComponentActor::new(Rb::new(g[0], g.clone(), RelayPolicy::None)).with_step(
            SimDuration::from_ticks(10),
            |rb, out| {
                rb.broadcast(1, out);
            },
        );
        world.start();
        world.run_to_quiescence(SimTime::from_ticks(100_000));
        assert_eq!(world.metrics().messages_sent, 3);
        for &n in &g {
            assert_eq!(delivered(&world, n).len(), 1);
        }
    }

    #[test]
    fn non_member_can_broadcast_into_group_but_does_not_deliver() {
        let mut world: World<RbMsg<u32>> = World::new(SimConfig::new(2));
        let g = group(3);
        for i in 0..3 {
            world.add_actor(Box::new(ComponentActor::new(Rb::new(
                NodeId::new(i),
                g.clone(),
                RelayPolicy::None,
            ))));
        }
        let outsider = NodeId::new(3);
        let actor = ComponentActor::new(Rb::new(outsider, g.clone(), RelayPolicy::None)).with_step(
            SimDuration::from_ticks(5),
            |rb, out| {
                assert!(!rb.is_member());
                rb.broadcast(42, out);
            },
        );
        world.add_actor(Box::new(actor));
        world.start();
        world.run_to_quiescence(SimTime::from_ticks(100_000));
        for &n in &g {
            assert_eq!(delivered(&world, n), vec![42]);
        }
        assert!(delivered(&world, outsider).is_empty());
    }

    #[test]
    fn duplicate_data_is_suppressed() {
        let g = group(2);
        let mut rb = Rb::new(g[1], g.clone(), RelayPolicy::Eager);
        let mut out = Outbox::new();
        let id = MsgId::new(g[0], 0);
        rb.on_message(g[0], RbMsg::Data { id, payload: 5 }, &mut out);
        let first = out.drain();
        assert_eq!(first.len(), 1); // delivery only (no third member to relay to)
        rb.on_message(g[0], RbMsg::Data { id, payload: 5 }, &mut out);
        assert!(out.is_empty(), "duplicate must be silent");
    }

    #[test]
    fn ids_are_monotone_per_origin() {
        let g = group(2);
        let mut rb = Rb::new(g[0], g.clone(), RelayPolicy::None);
        let mut out = Outbox::new();
        let a = rb.broadcast(1, &mut out);
        let b = rb.broadcast(2, &mut out);
        assert_eq!(a, MsgId::new(g[0], 0));
        assert_eq!(b, MsgId::new(g[0], 1));
        assert!(a < b);
    }
}
