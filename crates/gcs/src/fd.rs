//! Heartbeat failure detector.
//!
//! Periodically pings all monitored peers and suspects a peer after a
//! configurable number of consecutive silent intervals. In the simulator's
//! crash-stop runs (no loss, bounded latency) this behaves like an
//! eventually perfect detector ◇P: every crashed process is eventually
//! suspected and, after suspicion, a false suspicion is corrected the
//! moment a heartbeat arrives ([`FdEvent::Trust`]).

use std::collections::{HashMap, HashSet};

use repl_sim::{Message, NodeId, SimDuration};

use crate::component::{Component, Outbox};

/// Wire message of [`HeartbeatFd`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FdMsg {
    /// "I am alive."
    Heartbeat,
}

impl Message for FdMsg {
    fn wire_size(&self) -> usize {
        8
    }
}

/// Suspicion change reported to the host.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FdEvent {
    /// The peer missed enough heartbeats to be considered crashed.
    Suspect(NodeId),
    /// A previously suspected peer produced a heartbeat again.
    Trust(NodeId),
}

/// Configuration of [`HeartbeatFd`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FdConfig {
    /// Interval between heartbeats (and between checks).
    pub interval: SimDuration,
    /// Consecutive silent intervals before suspicion.
    pub miss_threshold: u32,
}

impl Default for FdConfig {
    fn default() -> Self {
        FdConfig {
            interval: SimDuration::from_ticks(500),
            miss_threshold: 3,
        }
    }
}

impl FdConfig {
    /// Worst-case detection latency implied by this configuration.
    pub fn detection_latency(&self) -> SimDuration {
        self.interval.times(self.miss_threshold as u64 + 1)
    }
}

const TICK_TAG: u64 = 0;

/// Heartbeat-based failure detector over a set of peers.
///
/// # Examples
///
/// ```
/// use repl_gcs::{HeartbeatFd, FdConfig, Outbox, Component};
/// use repl_sim::NodeId;
///
/// let peers = vec![NodeId::new(1), NodeId::new(2)];
/// let mut fd = HeartbeatFd::new(NodeId::new(0), peers, FdConfig::default());
/// let mut out = Outbox::new();
/// fd.on_start(&mut out);
/// assert!(!out.is_empty()); // heartbeats + the first tick timer
/// ```
#[derive(Debug)]
pub struct HeartbeatFd {
    me: NodeId,
    peers: Vec<NodeId>,
    config: FdConfig,
    misses: HashMap<NodeId, u32>,
    heard: HashSet<NodeId>,
    suspected: HashSet<NodeId>,
    running: bool,
}

impl HeartbeatFd {
    /// Creates a detector for `me` monitoring `peers` (excluding `me`).
    pub fn new(me: NodeId, peers: Vec<NodeId>, config: FdConfig) -> Self {
        let peers: Vec<NodeId> = peers.into_iter().filter(|&p| p != me).collect();
        HeartbeatFd {
            me,
            peers,
            config,
            misses: HashMap::new(),
            heard: HashSet::new(),
            suspected: HashSet::new(),
            running: false,
        }
    }

    /// True if `node` is currently suspected.
    pub fn is_suspected(&self, node: NodeId) -> bool {
        self.suspected.contains(&node)
    }

    /// The currently suspected peers, sorted.
    pub fn suspected(&self) -> Vec<NodeId> {
        let mut v: Vec<NodeId> = self.suspected.iter().copied().collect();
        v.sort();
        v
    }

    /// Explicitly clears suspicion of `node` — for application-level
    /// proof of life (e.g. a recovery request from a crashed peer) that
    /// should take effect before the next heartbeat round.
    pub fn trust(&mut self, node: NodeId, out: &mut Outbox<FdMsg, FdEvent>) {
        self.heard.insert(node);
        self.misses.insert(node, 0);
        if self.suspected.remove(&node) {
            out.event(FdEvent::Trust(node));
        }
    }

    /// Forgets all per-peer liveness state (miss counters, heard set,
    /// suspicions) without reporting [`FdEvent::Trust`]: for restarting
    /// the detector after an outage, when pre-crash observations are
    /// meaningless and must not leak into the first post-recovery tick.
    pub fn reset(&mut self) {
        self.misses.clear();
        self.heard.clear();
        self.suspected.clear();
    }

    /// Replaces the monitored peer set (used on view changes). State for
    /// removed peers is discarded; new peers start unsuspected.
    pub fn set_peers(&mut self, peers: Vec<NodeId>) {
        let me = self.me;
        self.peers = peers.into_iter().filter(|&p| p != me).collect();
        self.misses.retain(|n, _| self.peers.contains(n));
        self.heard.retain(|n| self.peers.contains(n));
        self.suspected.retain(|n| self.peers.contains(n));
    }

    fn tick(&mut self, out: &mut Outbox<FdMsg, FdEvent>) {
        for &p in &self.peers {
            out.send(p, FdMsg::Heartbeat);
        }
        let heard = std::mem::take(&mut self.heard);
        for &p in &self.peers {
            if heard.contains(&p) {
                self.misses.insert(p, 0);
            } else {
                let m = self.misses.entry(p).or_insert(0);
                *m += 1;
                if *m >= self.config.miss_threshold && self.suspected.insert(p) {
                    out.event(FdEvent::Suspect(p));
                }
            }
        }
        out.timer(self.config.interval, TICK_TAG);
    }
}

impl Component for HeartbeatFd {
    type Msg = FdMsg;
    type Event = FdEvent;

    fn on_start(&mut self, out: &mut Outbox<FdMsg, FdEvent>) {
        self.running = true;
        self.tick(out);
    }

    fn on_message(&mut self, from: NodeId, _msg: FdMsg, out: &mut Outbox<FdMsg, FdEvent>) {
        self.heard.insert(from);
        self.misses.insert(from, 0);
        if self.suspected.remove(&from) {
            out.event(FdEvent::Trust(from));
        }
    }

    fn on_timer(&mut self, tag: u64, out: &mut Outbox<FdMsg, FdEvent>) {
        if tag == TICK_TAG && self.running {
            self.tick(out);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testkit::ComponentActor;
    use repl_sim::{SimConfig, SimTime, World};

    fn build(n: u32, cfg: FdConfig, seed: u64) -> (World<FdMsg>, Vec<NodeId>) {
        let mut world = World::new(SimConfig::new(seed));
        let peers: Vec<NodeId> = (0..n).map(NodeId::new).collect();
        for i in 0..n {
            world.add_actor(Box::new(ComponentActor::new(HeartbeatFd::new(
                NodeId::new(i),
                peers.clone(),
                cfg,
            ))));
        }
        (world, peers)
    }

    fn events_of(world: &World<FdMsg>, n: NodeId) -> Vec<FdEvent> {
        world
            .actor_ref::<ComponentActor<HeartbeatFd>>(n)
            .events
            .iter()
            .map(|(_, e)| *e)
            .collect()
    }

    #[test]
    fn no_suspicions_without_crashes() {
        let (mut world, peers) = build(3, FdConfig::default(), 1);
        world.start();
        world.run_until(SimTime::from_ticks(20_000));
        for &p in &peers {
            assert!(events_of(&world, p).is_empty(), "spurious event at {p}");
        }
    }

    #[test]
    fn crashed_node_is_suspected_within_detection_latency() {
        let cfg = FdConfig::default();
        let (mut world, peers) = build(3, cfg, 2);
        world.start();
        world.schedule_crash(SimTime::from_ticks(1_000), peers[2]);
        world.run_until(SimTime::from_ticks(1_000) + cfg.detection_latency() + cfg.interval);
        for &p in &peers[..2] {
            let evs = events_of(&world, p);
            assert_eq!(evs, vec![FdEvent::Suspect(peers[2])], "at {p}");
            assert!(world
                .actor_ref::<ComponentActor<HeartbeatFd>>(p)
                .inner
                .is_suspected(peers[2]));
        }
    }

    #[test]
    fn recovered_node_is_trusted_again() {
        let cfg = FdConfig::default();
        let (mut world, peers) = build(2, cfg, 3);
        world.start();
        world.schedule_crash(SimTime::from_ticks(1_000), peers[1]);
        world.schedule_recover(SimTime::from_ticks(10_000), peers[1]);
        world.run_until(SimTime::from_ticks(30_000));
        let evs = events_of(&world, peers[0]);
        assert_eq!(evs[0], FdEvent::Suspect(peers[1]));
        assert!(
            evs.contains(&FdEvent::Trust(peers[1])),
            "recovery not detected: {evs:?}"
        );
    }

    #[test]
    fn set_peers_drops_stale_suspicions() {
        let mut fd = HeartbeatFd::new(
            NodeId::new(0),
            vec![NodeId::new(1), NodeId::new(2)],
            FdConfig {
                interval: SimDuration::from_ticks(10),
                miss_threshold: 1,
            },
        );
        let mut out = Outbox::new();
        fd.on_start(&mut out);
        fd.on_timer(TICK_TAG, &mut out); // both peers silent once -> suspected
        assert_eq!(fd.suspected().len(), 2);
        fd.set_peers(vec![NodeId::new(1)]);
        assert_eq!(fd.suspected(), vec![NodeId::new(1)]);
        assert!(!fd.is_suspected(NodeId::new(2)));
    }

    #[test]
    fn detection_latency_formula() {
        let cfg = FdConfig {
            interval: SimDuration::from_ticks(100),
            miss_threshold: 4,
        };
        assert_eq!(cfg.detection_latency(), SimDuration::from_ticks(500));
    }
}
