//! View-synchronous broadcast (VSCAST) with group membership.
//!
//! This is the primitive the paper's passive replication rests on
//! (Section 3.3): a sequence of *views* (agreed membership snapshots) with
//! the guarantee that if some process delivers message `m` before
//! installing view `v(i+1)`, then every process installs `v(i+1)` only
//! after delivering `m` — updates from a crashed primary are applied by
//! all survivors or by none.
//!
//! The implementation composes three pieces:
//!
//! 1. a [`HeartbeatFd`] monitoring the current members,
//! 2. a [`ConsensusPool`] (over the *initial* group, the primary-partition
//!    assumption) that agrees on each next membership, and
//! 3. a flush protocol: once a new membership is decided, the surviving
//!    members exchange everything they received in the dying view and
//!    deliver the union before installing.
//!
//! A recovered (or falsely excluded) member rejoins through
//! [`ViewGroup::rejoin`]: it asks the group for readmission, the members
//! run a membership change that includes it again, and the joiner takes
//! part in that view's flush exchange — so the new view is installed
//! only once the joiner holds everything delivered in the dying view.
//! Hosts complete db-level state transfer *before* calling `rejoin`,
//! which closes the remaining gap (data from views the group already
//! garbage-collected).
//!
//! Scope note, recorded here and in DESIGN.md: liveness requires a
//! majority of the *initial* group to stay alive (the membership
//! consensus runs over the initial group — the primary-partition
//! assumption).

use std::collections::{BTreeMap, HashMap, HashSet};

use repl_sim::{Message, NodeId, SimDuration};

use crate::component::{Component, Outbox};
use crate::consensus::{ConsEvent, ConsMsg, ConsensusConfig, ConsensusPool};
use crate::fd::{FdConfig, FdEvent, FdMsg, HeartbeatFd};

/// An agreed membership snapshot.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct View {
    /// Dense view number, starting at 0.
    pub id: u64,
    /// Members, sorted by node id.
    pub members: Vec<NodeId>,
}

impl View {
    /// The lowest-id member, conventionally the primary/leader.
    pub fn primary(&self) -> NodeId {
        self.members[0]
    }

    /// True if `n` belongs to the view.
    pub fn contains(&self, n: NodeId) -> bool {
        self.members.contains(&n)
    }
}

/// Membership value agreed by the embedded consensus.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Membership(pub Vec<NodeId>);

impl Message for Membership {
    fn wire_size(&self) -> usize {
        8 + 4 * self.0.len()
    }
}

/// A flush entry: data received in a view, keyed `(view, origin, seq)`.
type FlushEntry<P> = (u64, NodeId, u64, P);

/// Wire message of [`ViewGroup`].
#[derive(Debug, Clone)]
pub enum VsMsg<P> {
    /// View-stamped application data.
    Data {
        /// View the message was sent in.
        view: u64,
        /// Broadcasting member.
        origin: NodeId,
        /// Per-origin sequence number within the view.
        seq: u64,
        /// Application payload.
        payload: P,
    },
    /// State exchange before installing `new_view`.
    Flush {
        /// The decided view being installed.
        new_view: u64,
        /// Everything the sender received in the dying view(s).
        received: Vec<FlushEntry<P>>,
    },
    /// Recovered member → group: request readmission into the view.
    JoinReq,
    /// Embedded failure-detector traffic.
    Fd(FdMsg),
    /// Embedded consensus traffic (membership agreement).
    Cons(ConsMsg<Membership>),
}

impl<P: Message> Message for VsMsg<P> {
    fn wire_size(&self) -> usize {
        match self {
            VsMsg::Data { payload, .. } => 28 + payload.wire_size(),
            VsMsg::Flush { received, .. } => {
                16 + received
                    .iter()
                    .map(|(_, _, _, p)| 20 + p.wire_size())
                    .sum::<usize>()
            }
            VsMsg::JoinReq => 8,
            VsMsg::Fd(m) => m.wire_size(),
            VsMsg::Cons(c) => 8 + c.wire_size(),
        }
    }
}

/// Event delivered by [`ViewGroup`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum VsEvent<P> {
    /// View-synchronous delivery.
    Deliver {
        /// View the message was sent in.
        view: u64,
        /// Broadcasting member.
        from: NodeId,
        /// Application payload.
        payload: P,
    },
    /// A new view was installed.
    ViewInstalled(View),
    /// The local process was excluded from the group (false suspicion
    /// or a crash detected by the survivors); it stops participating
    /// until readmitted through [`ViewGroup::rejoin`].
    Excluded(View),
}

/// Configuration of [`ViewGroup`].
#[derive(Debug, Clone, Copy)]
pub struct VsConfig {
    /// Failure-detector parameters.
    pub fd: FdConfig,
    /// Consensus parameters for membership agreement.
    pub consensus: ConsensusConfig,
    /// Retry interval for the flush exchange.
    pub flush_retry: SimDuration,
    /// Retry interval for an unanswered readmission request.
    pub join_retry: SimDuration,
}

impl Default for VsConfig {
    fn default() -> Self {
        VsConfig {
            fd: FdConfig::default(),
            consensus: ConsensusConfig::default(),
            flush_retry: SimDuration::from_ticks(3_000),
            join_retry: SimDuration::from_ticks(5_000),
        }
    }
}

const FD_BASE: u64 = 0;
const CONS_BASE: u64 = 1 << 40;
const OWN_BASE: u64 = 2 << 40;
const JOIN_TAG: u64 = 3 << 40;

/// View-synchronous process group.
///
/// # Examples
///
/// ```
/// use repl_gcs::{ViewGroup, VsConfig, Outbox};
/// use repl_sim::NodeId;
///
/// let group: Vec<NodeId> = (0..3).map(NodeId::new).collect();
/// let mut vg: ViewGroup<u32> = ViewGroup::new(group[0], group.clone(), VsConfig::default());
/// assert_eq!(vg.view().id, 0);
/// assert_eq!(vg.view().primary(), group[0]);
/// let mut out = Outbox::new();
/// vg.broadcast(1, &mut out);
/// ```
#[derive(Debug)]
pub struct ViewGroup<P> {
    me: NodeId,
    view: View,
    /// The initial group: membership consensus runs over it, and join
    /// requests target it (a joiner's notion of the current view may be
    /// arbitrarily stale).
    initial: Vec<NodeId>,
    fd: HeartbeatFd,
    pool: ConsensusPool<Membership>,
    config: VsConfig,
    excluded: bool,
    /// Readmission in progress: cleared when a view containing the
    /// local process is installed.
    joining: bool,
    // Data plane (current view).
    next_seq: u64,
    fifo_next: HashMap<NodeId, u64>,
    holdback: HashMap<NodeId, BTreeMap<u64, P>>,
    received: BTreeMap<(u64, NodeId, u64), P>,
    delivered: HashSet<(u64, NodeId, u64)>,
    // Data that arrived stamped with a future view.
    future: BTreeMap<u64, Vec<(NodeId, u64, P)>>,
    // View-change plane.
    decided_views: BTreeMap<u64, Vec<NodeId>>,
    flushes: BTreeMap<u64, HashMap<NodeId, Vec<FlushEntry<P>>>>,
    proposed: HashSet<u64>,
    out_buffer: Vec<P>,
}

impl<P: Clone + std::fmt::Debug + 'static> ViewGroup<P> {
    /// Creates a group endpoint for member `me`; view 0 holds all of
    /// `group`, sorted.
    ///
    /// # Panics
    ///
    /// Panics if `me` is not in `group`.
    pub fn new(me: NodeId, mut group: Vec<NodeId>, config: VsConfig) -> Self {
        group.sort();
        assert!(
            group.contains(&me),
            "view-group member must belong to the group"
        );
        let fd = HeartbeatFd::new(me, group.clone(), config.fd);
        let pool = ConsensusPool::new(me, group.clone(), config.consensus);
        ViewGroup {
            me,
            view: View {
                id: 0,
                members: group.clone(),
            },
            initial: group,
            fd,
            pool,
            config,
            excluded: false,
            joining: false,
            next_seq: 0,
            fifo_next: HashMap::new(),
            holdback: HashMap::new(),
            received: BTreeMap::new(),
            delivered: HashSet::new(),
            future: BTreeMap::new(),
            decided_views: BTreeMap::new(),
            flushes: BTreeMap::new(),
            proposed: HashSet::new(),
            out_buffer: Vec::new(),
        }
    }

    /// The currently installed view.
    pub fn view(&self) -> &View {
        &self.view
    }

    /// True if the local process has been excluded.
    pub fn is_excluded(&self) -> bool {
        self.excluded
    }

    /// True while a readmission request is outstanding.
    pub fn is_joining(&self) -> bool {
        self.joining
    }

    /// Requests readmission into the group after a crash or a false
    /// exclusion: restarts the failure detector's heartbeats, asks the
    /// (initial) group to run a view change that includes the local
    /// process again, and resumes any stalled membership consensus. The
    /// request is retried until a view containing the local process is
    /// installed. Hosts should finish db-level state transfer *before*
    /// calling this, so the new view only ever contains caught-up
    /// members; the join view's flush exchange covers the remainder.
    pub fn rejoin(&mut self, out: &mut Outbox<VsMsg<P>, VsEvent<P>>) {
        self.excluded = false;
        // A singleton group has nobody to ask: the node *is* the view.
        self.joining = self.initial.len() > 1;
        // The restarted detector may fire Suspect immediately (pre-crash
        // miss counters survive the outage); drop those events — the
        // joiner must not propose view changes, and genuine crashes are
        // re-detected by the regular ticks once readmitted.
        let mut sub = Outbox::new();
        self.fd.on_start(&mut sub);
        let _ = out.absorb(sub, FD_BASE, VsMsg::Fd);
        if self.joining {
            self.send_join(out);
            out.timer(self.config.join_retry, JOIN_TAG);
        }
        // Membership consensus rounds lost their timers in the crash.
        let mut sub = Outbox::new();
        self.pool.resume(&mut sub);
        let events = out.absorb(sub, CONS_BASE, VsMsg::Cons);
        self.handle_cons_events(events, out);
    }

    fn send_join(&mut self, out: &mut Outbox<VsMsg<P>, VsEvent<P>>) {
        // Target the whole initial group: our own view of the current
        // membership may be arbitrarily stale after an outage.
        for &m in &self.initial {
            if m != self.me {
                out.send(m, VsMsg::JoinReq);
            }
        }
    }

    /// Handles a readmission request: proposes the latest membership
    /// plus the joiner for the next view. Even when the joiner is still
    /// a member (it recovered before the group excluded it), the view
    /// change is run anyway — its flush exchange redelivers the data
    /// the joiner missed while it was down.
    fn propose_join(&mut self, joiner: NodeId, out: &mut Outbox<VsMsg<P>, VsEvent<P>>) {
        let (latest_id, latest) = self.latest_membership();
        let mut next = latest;
        if !next.contains(&joiner) {
            next.push(joiner);
            next.sort();
        }
        let inst = latest_id + 1;
        if self.proposed.contains(&inst) {
            return;
        }
        self.proposed.insert(inst);
        let mut sub = Outbox::new();
        self.pool.propose(inst, Membership(next), &mut sub);
        let events = out.absorb(sub, CONS_BASE, VsMsg::Cons);
        self.handle_cons_events(events, out);
    }

    /// True while a view change is in progress.
    pub fn is_changing(&self) -> bool {
        !self.decided_views.is_empty() || !self.proposed.is_empty()
    }

    /// The membership the next change will be based on: the latest decided
    /// membership, or the installed view's.
    fn latest_membership(&self) -> (u64, Vec<NodeId>) {
        match self.decided_views.iter().next_back() {
            Some((&id, m)) => (id, m.clone()),
            None => (self.view.id, self.view.members.clone()),
        }
    }

    /// Broadcasts `payload` view-synchronously. During a view change the
    /// message is buffered and sent in the next installed view.
    pub fn broadcast(&mut self, payload: P, out: &mut Outbox<VsMsg<P>, VsEvent<P>>) {
        if self.excluded {
            return;
        }
        if self.is_changing() || self.joining {
            self.out_buffer.push(payload);
            return;
        }
        let seq = self.next_seq;
        self.next_seq += 1;
        let key = (self.view.id, self.me, seq);
        self.received.insert(key, payload.clone());
        self.delivered.insert(key);
        out.event(VsEvent::Deliver {
            view: self.view.id,
            from: self.me,
            payload: payload.clone(),
        });
        for &m in &self.view.members {
            if m != self.me {
                out.send(
                    m,
                    VsMsg::Data {
                        view: self.view.id,
                        origin: self.me,
                        seq,
                        payload: payload.clone(),
                    },
                );
            }
        }
    }

    fn on_data(
        &mut self,
        view: u64,
        origin: NodeId,
        seq: u64,
        payload: P,
        out: &mut Outbox<VsMsg<P>, VsEvent<P>>,
    ) {
        if view < self.view.id {
            return; // stale view; flush already covered it
        }
        if view > self.view.id {
            self.future
                .entry(view)
                .or_default()
                .push((origin, seq, payload));
            return;
        }
        self.received.insert((view, origin, seq), payload.clone());
        self.holdback
            .entry(origin)
            .or_default()
            .insert(seq, payload);
        if !self.is_changing() {
            self.release_fifo(origin, out);
        }
    }

    fn release_fifo(&mut self, origin: NodeId, out: &mut Outbox<VsMsg<P>, VsEvent<P>>) {
        let next = self.fifo_next.entry(origin).or_insert(0);
        if let Some(buf) = self.holdback.get_mut(&origin) {
            while let Some(payload) = buf.remove(next) {
                let key = (self.view.id, origin, *next);
                *next += 1;
                if self.delivered.insert(key) {
                    out.event(VsEvent::Deliver {
                        view: self.view.id,
                        from: origin,
                        payload,
                    });
                }
            }
        }
    }

    /// Starts a membership change if the latest membership still contains
    /// suspected nodes.
    fn maybe_change(&mut self, out: &mut Outbox<VsMsg<P>, VsEvent<P>>) {
        // A joiner's suspicions are stale from before its outage; it
        // waits for readmission before voting members out.
        if self.excluded || self.joining {
            return;
        }
        let (latest_id, latest) = self.latest_membership();
        let suspected = self.fd.suspected();
        let next: Vec<NodeId> = latest
            .iter()
            .copied()
            .filter(|n| !suspected.contains(n))
            .collect();
        if next.len() == latest.len() || next.is_empty() {
            return;
        }
        let inst = latest_id + 1;
        if self.proposed.contains(&inst) {
            return;
        }
        self.proposed.insert(inst);
        let mut sub = Outbox::new();
        self.pool.propose(inst, Membership(next), &mut sub);
        let events = out.absorb(sub, CONS_BASE, VsMsg::Cons);
        self.handle_cons_events(events, out);
    }

    fn handle_cons_events(
        &mut self,
        events: Vec<ConsEvent<Membership>>,
        out: &mut Outbox<VsMsg<P>, VsEvent<P>>,
    ) {
        for ev in events {
            let ConsEvent::Decided { inst, value } = ev;
            if inst <= self.view.id {
                continue;
            }
            self.decided_views.insert(inst, value.0);
            self.send_flush(inst, out);
            out.timer(self.config.flush_retry, OWN_BASE + inst);
        }
        self.try_install(out);
        self.maybe_change(out);
    }

    fn send_flush(&mut self, new_view: u64, out: &mut Outbox<VsMsg<P>, VsEvent<P>>) {
        let Some(members) = self.decided_views.get(&new_view) else {
            return;
        };
        if !members.contains(&self.me) {
            return; // we are being excluded; try_install will notice
        }
        let list: Vec<FlushEntry<P>> = self
            .received
            .iter()
            .map(|(&(v, o, s), p)| (v, o, s, p.clone()))
            .collect();
        self.flushes
            .entry(new_view)
            .or_default()
            .insert(self.me, list.clone());
        let members = members.clone();
        for &m in &members {
            if m != self.me {
                out.send(
                    m,
                    VsMsg::Flush {
                        new_view,
                        received: list.clone(),
                    },
                );
            }
        }
    }

    fn try_install(&mut self, out: &mut Outbox<VsMsg<P>, VsEvent<P>>) {
        if self.excluded {
            return;
        }
        // Exclusion check against the highest decided membership.
        if let Some((&nv, m)) = self.decided_views.iter().next_back() {
            if !m.contains(&self.me) {
                if self.joining {
                    // Readmission not decided yet; the JOIN_TAG retry
                    // keeps asking — don't self-exclude.
                    return;
                }
                self.excluded = true;
                out.event(VsEvent::Excluded(View {
                    id: nv,
                    members: m.clone(),
                }));
                return;
            }
        }
        // Install the highest decided view whose flush set is complete.
        // A view not containing the local process is never installable
        // locally: its flush exchange deliberately excludes us.
        let candidate = self
            .decided_views
            .iter()
            .rev()
            .find(|(nv, m)| {
                let fl = self.flushes.get(nv);
                m.contains(&self.me) && m.iter().all(|q| fl.is_some_and(|f| f.contains_key(q)))
            })
            .map(|(&nv, m)| (nv, m.clone()));
        let Some((nv, members)) = candidate else {
            return;
        };
        // Deliver the union of everything any survivor received, in
        // deterministic (view, origin, seq) order.
        let mut union: BTreeMap<(u64, NodeId, u64), P> = self.received.clone();
        if let Some(fl) = self.flushes.get(&nv) {
            for list in fl.values() {
                for (v, o, s, p) in list {
                    union.entry((*v, *o, *s)).or_insert_with(|| p.clone());
                }
            }
        }
        for ((v, o, s), p) in union {
            if self.delivered.insert((v, o, s)) {
                out.event(VsEvent::Deliver {
                    view: v,
                    from: o,
                    payload: p,
                });
            }
        }
        // Install.
        self.view = View { id: nv, members };
        self.joining = false;
        self.next_seq = 0;
        self.fifo_next.clear();
        self.holdback.clear();
        self.received.clear();
        self.decided_views.retain(|&v, _| v > nv);
        self.flushes.retain(|&v, _| v > nv);
        self.proposed.retain(|&v| v > nv);
        self.fd.set_peers(self.view.members.clone());
        out.event(VsEvent::ViewInstalled(self.view.clone()));
        // Replay data that was stamped with the new view.
        let replay = self.future.remove(&nv).unwrap_or_default();
        self.future.retain(|&v, _| v > nv);
        for (origin, seq, payload) in replay {
            self.on_data(nv, origin, seq, payload, out);
        }
        // Send buffered broadcasts in the new view.
        if !self.is_changing() {
            let buffered = std::mem::take(&mut self.out_buffer);
            for p in buffered {
                self.broadcast(p, out);
            }
        }
    }
}

impl<P: Clone + std::fmt::Debug + 'static> Component for ViewGroup<P> {
    type Msg = VsMsg<P>;
    type Event = VsEvent<P>;

    fn on_start(&mut self, out: &mut Outbox<VsMsg<P>, VsEvent<P>>) {
        let mut sub = Outbox::new();
        self.fd.on_start(&mut sub);
        let events = out.absorb(sub, FD_BASE, VsMsg::Fd);
        debug_assert!(events.is_empty());
    }

    fn on_message(&mut self, from: NodeId, msg: VsMsg<P>, out: &mut Outbox<VsMsg<P>, VsEvent<P>>) {
        if self.excluded {
            return;
        }
        match msg {
            VsMsg::Data {
                view,
                origin,
                seq,
                payload,
            } => {
                self.on_data(view, origin, seq, payload, out);
            }
            VsMsg::JoinReq => {
                // Joiners wait for live members to readmit them; they
                // don't propose views from their stale state.
                if !self.joining {
                    self.propose_join(from, out);
                }
            }
            VsMsg::Flush { new_view, received } => {
                if new_view <= self.view.id {
                    return;
                }
                self.flushes
                    .entry(new_view)
                    .or_default()
                    .insert(from, received);
                self.try_install(out);
            }
            VsMsg::Fd(m) => {
                let mut sub = Outbox::new();
                self.fd.on_message(from, m, &mut sub);
                let events = out.absorb(sub, FD_BASE, VsMsg::Fd);
                let mut need_change = false;
                for e in events {
                    if let FdEvent::Suspect(_) = e {
                        need_change = true;
                    }
                }
                if need_change {
                    self.maybe_change(out);
                }
            }
            VsMsg::Cons(c) => {
                let mut sub = Outbox::new();
                self.pool.on_message(from, c, &mut sub);
                let events = out.absorb(sub, CONS_BASE, VsMsg::Cons);
                self.handle_cons_events(events, out);
            }
        }
    }

    fn on_timer(&mut self, tag: u64, out: &mut Outbox<VsMsg<P>, VsEvent<P>>) {
        if self.excluded {
            return;
        }
        if tag == JOIN_TAG {
            if self.joining {
                self.send_join(out);
                out.timer(self.config.join_retry, JOIN_TAG);
            }
        } else if tag >= OWN_BASE {
            let nv = tag - OWN_BASE;
            if self.decided_views.contains_key(&nv) {
                self.send_flush(nv, out);
                self.try_install(out);
                self.maybe_change(out);
                out.timer(self.config.flush_retry, OWN_BASE + nv);
            }
        } else if tag >= CONS_BASE {
            let mut sub = Outbox::new();
            self.pool.on_timer(tag - CONS_BASE, &mut sub);
            let events = out.absorb(sub, CONS_BASE, VsMsg::Cons);
            self.handle_cons_events(events, out);
        } else {
            let mut sub = Outbox::new();
            self.fd.on_timer(tag - FD_BASE, &mut sub);
            let events = out.absorb(sub, FD_BASE, VsMsg::Fd);
            let mut need_change = false;
            for e in events {
                if let FdEvent::Suspect(_) = e {
                    need_change = true;
                }
            }
            if need_change {
                self.maybe_change(out);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testkit::ComponentActor;
    use repl_sim::{SimConfig, SimTime, World};

    type Host = ComponentActor<ViewGroup<u32>>;

    fn build(n: u32, seed: u64) -> (World<VsMsg<u32>>, Vec<NodeId>) {
        let mut world = World::new(SimConfig::new(seed));
        let group: Vec<NodeId> = (0..n).map(NodeId::new).collect();
        for i in 0..n {
            world.add_actor(Box::new(ComponentActor::new(ViewGroup::<u32>::new(
                NodeId::new(i),
                group.clone(),
                VsConfig::default(),
            ))));
        }
        (world, group)
    }

    fn deliveries(world: &World<VsMsg<u32>>, n: NodeId) -> Vec<(u64, u32)> {
        world
            .actor_ref::<Host>(n)
            .events
            .iter()
            .filter_map(|(_, e)| match e {
                VsEvent::Deliver { view, payload, .. } => Some((*view, *payload)),
                _ => None,
            })
            .collect()
    }

    fn installed_views(world: &World<VsMsg<u32>>, n: NodeId) -> Vec<View> {
        world
            .actor_ref::<Host>(n)
            .events
            .iter()
            .filter_map(|(_, e)| match e {
                VsEvent::ViewInstalled(v) => Some(v.clone()),
                _ => None,
            })
            .collect()
    }

    #[test]
    fn broadcast_reaches_all_members_in_view_zero() {
        let (mut world, group) = build(3, 1);
        let host = world.actor_mut::<Host>(group[1]);
        *host = ComponentActor::new(ViewGroup::<u32>::new(
            group[1],
            group.clone(),
            VsConfig::default(),
        ))
        .with_step(repl_sim::SimDuration::from_ticks(50), |vg, out| {
            vg.broadcast(42, out);
        });
        world.start();
        world.run_until(SimTime::from_ticks(5_000));
        for &n in &group {
            assert_eq!(deliveries(&world, n), vec![(0, 42)], "node {n}");
        }
    }

    #[test]
    fn member_crash_installs_smaller_view_at_all_survivors() {
        let (mut world, group) = build(4, 2);
        world.start();
        world.schedule_crash(SimTime::from_ticks(2_000), group[3]);
        world.run_until(SimTime::from_ticks(60_000));
        for &n in &group[..3] {
            let views = installed_views(&world, n);
            assert_eq!(views.len(), 1, "exactly one view change at {n}: {views:?}");
            assert_eq!(views[0].id, 1);
            assert_eq!(views[0].members, group[..3].to_vec());
        }
    }

    #[test]
    fn primary_crash_promotes_next_member() {
        let (mut world, group) = build(3, 3);
        world.start();
        world.schedule_crash(SimTime::from_ticks(2_000), group[0]);
        world.run_until(SimTime::from_ticks(60_000));
        for &n in &group[1..] {
            let views = installed_views(&world, n);
            assert_eq!(views.len(), 1, "at {n}");
            assert_eq!(views[0].primary(), group[1]);
        }
    }

    #[test]
    fn view_synchrony_messages_from_dying_view_reach_all_survivors() {
        // Node 0 broadcasts and crashes immediately after: the copies are
        // in flight when it dies. Survivors must agree: either all deliver
        // before installing the new view, or none does. With eager flush
        // they all deliver.
        for seed in 0..10u64 {
            let (mut world, group) = build(4, seed);
            let host = world.actor_mut::<Host>(group[0]);
            *host = ComponentActor::new(ViewGroup::<u32>::new(
                group[0],
                group.clone(),
                VsConfig::default(),
            ))
            .with_step(repl_sim::SimDuration::from_ticks(1_999), |vg, out| {
                vg.broadcast(7, out);
            });
            world.start();
            world.schedule_crash(SimTime::from_ticks(2_000), group[0]);
            world.run_until(SimTime::from_ticks(100_000));
            let got: Vec<bool> = group[1..]
                .iter()
                .map(|&n| deliveries(&world, n).contains(&(0, 7)))
                .collect();
            assert!(
                got.iter().all(|&b| b) || got.iter().all(|&b| !b),
                "view synchrony violated at seed {seed}: {got:?}"
            );
            // With a LAN network and default FD the message always wins the
            // race against detection, so survivors should have it.
            assert!(
                got.iter().all(|&b| b),
                "flush lost the message, seed {seed}"
            );
        }
    }

    #[test]
    fn cascading_crashes_converge_to_survivor_view() {
        let (mut world, group) = build(5, 4);
        world.start();
        world.schedule_crash(SimTime::from_ticks(2_000), group[4]);
        world.schedule_crash(SimTime::from_ticks(2_500), group[3]);
        world.run_until(SimTime::from_ticks(200_000));
        for &n in &group[..3] {
            let views = installed_views(&world, n);
            let last = views.last().expect("at least one view installed");
            assert_eq!(last.members, group[..3].to_vec(), "at {n}: {views:?}");
        }
    }

    #[test]
    fn broadcasts_during_view_change_are_buffered_and_sent_in_new_view() {
        let (mut world, group) = build(3, 5);
        // Node 1 broadcasts well after node 2's crash is detected but
        // (likely) during/after the change; all survivors deliver it.
        let host = world.actor_mut::<Host>(group[1]);
        *host = ComponentActor::new(ViewGroup::<u32>::new(
            group[1],
            group.clone(),
            VsConfig::default(),
        ))
        .with_step(repl_sim::SimDuration::from_ticks(2_600), |vg, out| {
            vg.broadcast(55, out);
        });
        world.start();
        world.schedule_crash(SimTime::from_ticks(2_000), group[2]);
        world.run_until(SimTime::from_ticks(100_000));
        for &n in &group[..2] {
            let d = deliveries(&world, n);
            assert!(d.iter().any(|&(_, p)| p == 55), "missing at {n}: {d:?}");
        }
        // Both survivors deliver it in the same view.
        let v0 = deliveries(&world, group[0]);
        let v1 = deliveries(&world, group[1]);
        let in0 = v0.iter().find(|&&(_, p)| p == 55).expect("present");
        let in1 = v1.iter().find(|&&(_, p)| p == 55).expect("present");
        assert_eq!(in0.0, in1.0, "delivered in different views");
    }

    #[test]
    fn excluded_member_rejoins_and_receives_new_broadcasts() {
        // Node 2 crashes long enough to be excluded, then recovers and
        // rejoins: the group must install a view containing it again,
        // and broadcasts sent after the rejoin must reach it.
        let (mut world, group) = build(3, 11);
        let host = world.actor_mut::<Host>(group[2]);
        *host = ComponentActor::new(ViewGroup::<u32>::new(
            group[2],
            group.clone(),
            VsConfig::default(),
        ))
        .with_recovery(|vg, out| vg.rejoin(out));
        let host = world.actor_mut::<Host>(group[0]);
        *host = ComponentActor::new(ViewGroup::<u32>::new(
            group[0],
            group.clone(),
            VsConfig::default(),
        ))
        .with_step(repl_sim::SimDuration::from_ticks(150_000), |vg, out| {
            vg.broadcast(77, out);
        });
        world.start();
        crate::testkit::schedule_outage(
            &mut world,
            group[2],
            SimTime::from_ticks(2_000),
            SimTime::from_ticks(60_000),
        );
        world.run_until(SimTime::from_ticks(300_000));
        for &n in &group {
            let views = installed_views(&world, n);
            let last = views.last().expect("views installed at {n}");
            assert_eq!(last.members, group, "final view at {n}: {views:?}");
            let d = deliveries(&world, n);
            assert!(d.iter().any(|&(_, p)| p == 77), "missing at {n}: {d:?}");
        }
        let vg = &world.actor_ref::<Host>(group[2]).inner;
        assert!(!vg.is_excluded() && !vg.is_joining());
    }

    #[test]
    fn fast_recovery_before_exclusion_still_converges() {
        // The outage is shorter than the detection window: the group may
        // or may not have excluded node 2 when it asks to rejoin. Either
        // way everyone ends in a full view and delivers post-rejoin data.
        let (mut world, group) = build(3, 12);
        let host = world.actor_mut::<Host>(group[2]);
        *host = ComponentActor::new(ViewGroup::<u32>::new(
            group[2],
            group.clone(),
            VsConfig::default(),
        ))
        .with_recovery(|vg, out| vg.rejoin(out));
        let host = world.actor_mut::<Host>(group[1]);
        *host = ComponentActor::new(ViewGroup::<u32>::new(
            group[1],
            group.clone(),
            VsConfig::default(),
        ))
        .with_step(repl_sim::SimDuration::from_ticks(120_000), |vg, out| {
            vg.broadcast(88, out);
        });
        world.start();
        crate::testkit::schedule_outage(
            &mut world,
            group[2],
            SimTime::from_ticks(2_000),
            SimTime::from_ticks(4_000),
        );
        world.run_until(SimTime::from_ticks(300_000));
        for &n in &group {
            let d = deliveries(&world, n);
            assert!(d.iter().any(|&(_, p)| p == 88), "missing at {n}: {d:?}");
        }
        let vg = &world.actor_ref::<Host>(group[2]).inner;
        assert!(!vg.is_excluded() && !vg.is_joining());
    }

    #[test]
    fn no_spurious_view_changes_without_crashes() {
        let (mut world, group) = build(4, 6);
        world.start();
        world.run_until(SimTime::from_ticks(50_000));
        for &n in &group {
            assert!(
                installed_views(&world, n).is_empty(),
                "spurious change at {n}"
            );
            assert!(!world.actor_ref::<Host>(n).inner.is_excluded());
        }
    }
}
