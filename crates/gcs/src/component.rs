//! The component framework: passive protocol state machines that a host
//! actor drives.
//!
//! Group-communication layers (reliable broadcast, failure detector,
//! consensus, …) are written as [`Component`]s rather than actors so they
//! can be *embedded*: a replication server owns a broadcast component and a
//! database, and routes messages between them. A component never touches
//! the simulator directly — it pushes [`Action`]s into an [`Outbox`] and the
//! host turns them into sends and timers.

use repl_sim::{Context, Message, NodeId, SimDuration};

/// Size of each component's timer-tag namespace. Hosts give the *k*-th
/// embedded component the base `k * TAG_SPACE`; components keep their own
/// tags below `TAG_SPACE`.
pub const TAG_SPACE: u64 = 1 << 48;

/// An effect requested by a component.
#[derive(Debug)]
pub enum Action<M, E> {
    /// Send `M` to the node.
    Send(NodeId, M),
    /// Arm a timer with a component-local tag (must be `< TAG_SPACE`).
    SetTimer(SimDuration, u64),
    /// Deliver an event to the host.
    Event(E),
}

/// A buffer of [`Action`]s produced while a component handles one input.
///
/// # Examples
///
/// ```
/// use repl_gcs::{Outbox, Action};
/// use repl_sim::NodeId;
///
/// let mut out: Outbox<&'static str, u32> = Outbox::new();
/// out.send(NodeId::new(1), "hi");
/// out.event(7);
/// assert_eq!(out.len(), 2);
/// ```
#[derive(Debug)]
pub struct Outbox<M, E> {
    actions: Vec<Action<M, E>>,
}

impl<M, E> Outbox<M, E> {
    /// Creates an empty outbox.
    pub fn new() -> Self {
        Outbox {
            actions: Vec::new(),
        }
    }

    /// Queues a send.
    pub fn send(&mut self, to: NodeId, msg: M) {
        self.actions.push(Action::Send(to, msg));
    }

    /// Queues a send of a clone of `msg` to each target.
    pub fn multicast<I>(&mut self, targets: I, msg: M)
    where
        I: IntoIterator<Item = NodeId>,
        M: Clone,
    {
        for t in targets {
            self.send(t, msg.clone());
        }
    }

    /// Queues a timer request.
    ///
    /// # Panics
    ///
    /// Panics if `tag >= TAG_SPACE`.
    pub fn timer(&mut self, delay: SimDuration, tag: u64) {
        assert!(tag < TAG_SPACE, "component timer tag out of range");
        self.actions.push(Action::SetTimer(delay, tag));
    }

    /// Queues an event for the host.
    pub fn event(&mut self, e: E) {
        self.actions.push(Action::Event(e));
    }

    /// Number of queued actions.
    pub fn len(&self) -> usize {
        self.actions.len()
    }

    /// True if nothing is queued.
    pub fn is_empty(&self) -> bool {
        self.actions.is_empty()
    }

    /// Drains the queued actions.
    pub fn drain(&mut self) -> Vec<Action<M, E>> {
        std::mem::take(&mut self.actions)
    }

    /// Absorbs a sub-component's outbox into this one.
    ///
    /// Sends are wrapped through `wrap`; timer tags are offset by `base`
    /// (which must be a multiple of [`TAG_SPACE`]); the sub-component's
    /// events are returned for the caller to process.
    pub fn absorb<M2, E2>(
        &mut self,
        mut sub: Outbox<M2, E2>,
        base: u64,
        mut wrap: impl FnMut(M2) -> M,
    ) -> Vec<E2> {
        let mut events = Vec::new();
        for action in sub.drain() {
            match action {
                Action::Send(to, m) => self.send(to, wrap(m)),
                Action::SetTimer(d, tag) => self.actions.push(Action::SetTimer(d, base + tag)),
                Action::Event(e) => events.push(e),
            }
        }
        events
    }
}

impl<M, E> Default for Outbox<M, E> {
    fn default() -> Self {
        Outbox::new()
    }
}

/// A passive protocol state machine driven by a host actor.
pub trait Component {
    /// Wire messages this component exchanges with its peers.
    type Msg;
    /// Events this component delivers to its host.
    type Event;

    /// Called once when the hosting actor starts.
    fn on_start(&mut self, _out: &mut Outbox<Self::Msg, Self::Event>) {}

    /// Called for each message addressed to this component.
    fn on_message(
        &mut self,
        from: NodeId,
        msg: Self::Msg,
        out: &mut Outbox<Self::Msg, Self::Event>,
    );

    /// Called when one of this component's timers fires (component-local tag).
    fn on_timer(&mut self, _tag: u64, _out: &mut Outbox<Self::Msg, Self::Event>) {}
}

/// Applies a drained outbox to the simulator on behalf of a host actor.
///
/// `wrap` lifts the component's message type into the host's wire type, and
/// `base` is the component's timer-tag base (a multiple of [`TAG_SPACE`]).
/// Returns the component's events for the host to interpret.
pub fn apply_outbox<M, E, W>(
    ctx: &mut Context<'_, W>,
    mut out: Outbox<M, E>,
    base: u64,
    mut wrap: impl FnMut(M) -> W,
) -> Vec<E>
where
    W: Message,
{
    let mut events = Vec::new();
    for action in out.drain() {
        match action {
            Action::Send(to, m) => ctx.send(to, wrap(m)),
            Action::SetTimer(d, tag) => {
                ctx.set_timer(d, base + tag);
            }
            Action::Event(e) => events.push(e),
        }
    }
    events
}

#[cfg(test)]
mod tests {
    use super::*;
    use repl_sim::SimDuration;

    #[test]
    fn outbox_collects_actions() {
        let mut out: Outbox<u8, ()> = Outbox::new();
        assert!(out.is_empty());
        out.send(NodeId::new(0), 1);
        out.timer(SimDuration::from_ticks(5), 9);
        out.event(());
        assert_eq!(out.len(), 3);
        let drained = out.drain();
        assert_eq!(drained.len(), 3);
        assert!(out.is_empty());
    }

    #[test]
    fn multicast_clones_to_each_target() {
        let mut out: Outbox<u8, ()> = Outbox::new();
        out.multicast([NodeId::new(0), NodeId::new(1), NodeId::new(2)], 7);
        assert_eq!(out.len(), 3);
    }

    #[test]
    fn absorb_wraps_and_offsets() {
        let mut sub: Outbox<u8, &'static str> = Outbox::new();
        sub.send(NodeId::new(1), 3);
        sub.timer(SimDuration::from_ticks(2), 4);
        sub.event("hello");
        let mut parent: Outbox<String, ()> = Outbox::new();
        let events = parent.absorb(sub, TAG_SPACE, |m| format!("wrapped{m}"));
        assert_eq!(events, vec!["hello"]);
        let actions = parent.drain();
        assert_eq!(actions.len(), 2);
        match &actions[0] {
            Action::Send(to, m) => {
                assert_eq!(*to, NodeId::new(1));
                assert_eq!(m, "wrapped3");
            }
            other => panic!("unexpected action {other:?}"),
        }
        match &actions[1] {
            Action::SetTimer(d, tag) => {
                assert_eq!(*d, SimDuration::from_ticks(2));
                assert_eq!(*tag, TAG_SPACE + 4);
            }
            other => panic!("unexpected action {other:?}"),
        }
    }

    #[test]
    #[should_panic(expected = "timer tag out of range")]
    fn oversized_tag_rejected() {
        let mut out: Outbox<u8, ()> = Outbox::new();
        out.timer(SimDuration::from_ticks(1), TAG_SPACE);
    }
}
