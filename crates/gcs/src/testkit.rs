//! Helpers for exercising a single [`Component`] inside a [`repl_sim::World`].
//!
//! Production code embeds components inside protocol actors; tests (and the
//! ablation benchmarks) often want to run a component stand-alone. The
//! [`ComponentActor`] wrapper turns any component into an actor, records
//! every event it delivers (timestamped), and can run a *script* of API
//! calls against the component at chosen times — e.g. "broadcast message 3
//! at t=500".

use repl_sim::{
    impl_as_any, Actor, Context, Message, NodeId, SimDuration, SimTime, TimerId, World,
};

use crate::component::{apply_outbox, Component, Outbox, TAG_SPACE};

/// A scripted call against the wrapped component.
type Step<C> = Box<dyn FnMut(&mut C, &mut Outbox<<C as Component>::Msg, <C as Component>::Event>)>;

/// Schedules a crash at `down` and the matching recovery at `up` for
/// `node` — the standard outage shape the recovery tests exercise.
///
/// # Panics
///
/// Panics if `up <= down` (a recovery must follow its crash).
pub fn schedule_outage<M: Message>(world: &mut World<M>, node: NodeId, down: SimTime, up: SimTime) {
    assert!(down < up, "outage must recover after it crashes");
    world.schedule_crash(down, node);
    world.schedule_recover(up, node);
}

/// An actor that hosts exactly one component, records its events, and
/// replays a script of API calls.
pub struct ComponentActor<C: Component> {
    /// The wrapped component.
    pub inner: C,
    /// Every event the component delivered, with its virtual time.
    pub events: Vec<(SimTime, C::Event)>,
    script: Vec<(SimDuration, Option<Step<C>>)>,
    recover_hook: Option<Step<C>>,
}

impl<C: Component> ComponentActor<C> {
    /// Wraps a component.
    pub fn new(inner: C) -> Self {
        ComponentActor {
            inner,
            events: Vec::new(),
            script: Vec::new(),
            recover_hook: None,
        }
    }

    /// Schedules `step` to run against the component at `at` (ticks after
    /// start). Returns `self` for chaining.
    pub fn with_step(
        mut self,
        at: SimDuration,
        step: impl FnMut(&mut C, &mut Outbox<C::Msg, C::Event>) + 'static,
    ) -> Self {
        self.script.push((at, Some(Box::new(step))));
        self
    }

    /// Runs `hook` against the component whenever the hosting node
    /// recovers from a crash, *instead of* the default `on_start`
    /// restart — the place to call a component's rejoin API (e.g.
    /// [`crate::SequencerAbcast::rejoin`]).
    pub fn with_recovery(
        mut self,
        hook: impl FnMut(&mut C, &mut Outbox<C::Msg, C::Event>) + 'static,
    ) -> Self {
        self.recover_hook = Some(Box::new(hook));
        self
    }

    /// The recorded events, without timestamps.
    pub fn event_values(&self) -> Vec<&C::Event> {
        self.events.iter().map(|(_, e)| e).collect()
    }

    fn flush<W: Message>(
        &mut self,
        ctx: &mut Context<'_, W>,
        out: Outbox<C::Msg, C::Event>,
        wrap: impl FnMut(C::Msg) -> W,
    ) {
        let now = ctx.now();
        for e in apply_outbox(ctx, out, 0, wrap) {
            self.events.push((now, e));
        }
    }
}

impl<C> Actor<C::Msg> for ComponentActor<C>
where
    C: Component + 'static,
    C::Msg: Message,
    C::Event: 'static,
{
    fn on_start(&mut self, ctx: &mut Context<'_, C::Msg>) {
        for (i, (at, _)) in self.script.iter().enumerate() {
            ctx.set_timer(*at, TAG_SPACE + i as u64);
        }
        let mut out = Outbox::new();
        self.inner.on_start(&mut out);
        self.flush(ctx, out, |m| m);
    }

    fn on_message(&mut self, ctx: &mut Context<'_, C::Msg>, from: NodeId, msg: C::Msg) {
        let mut out = Outbox::new();
        self.inner.on_message(from, msg, &mut out);
        self.flush(ctx, out, |m| m);
    }

    fn on_recover(&mut self, ctx: &mut Context<'_, C::Msg>) {
        // Restart the component's timers after a crash (state is
        // retained); a recovery hook replaces the plain restart.
        let mut out = Outbox::new();
        match self.recover_hook.as_mut() {
            Some(hook) => hook(&mut self.inner, &mut out),
            None => self.inner.on_start(&mut out),
        }
        self.flush(ctx, out, |m| m);
    }

    fn on_timer(&mut self, ctx: &mut Context<'_, C::Msg>, _timer: TimerId, tag: u64) {
        let mut out = Outbox::new();
        if tag >= TAG_SPACE {
            let idx = (tag - TAG_SPACE) as usize;
            if let Some(step) = self.script[idx].1.as_mut() {
                step(&mut self.inner, &mut out);
            }
        } else {
            self.inner.on_timer(tag, &mut out);
        }
        self.flush(ctx, out, |m| m);
    }

    impl_as_any!();
}
