//! Partition behaviour of the view-synchronous group: the primary
//! partition keeps going, the minority halts — the assumption the paper's
//! passive replication inherits from its group-communication substrate.

use repl_gcs::testkit::ComponentActor;
use repl_gcs::{ViewGroup, VsConfig, VsEvent};
use repl_sim::{NodeId, SimConfig, SimDuration, SimTime, World};

type Host = ComponentActor<ViewGroup<u32>>;

fn views_installed(world: &World<repl_gcs::VsMsg<u32>>, n: NodeId) -> Vec<Vec<NodeId>> {
    world
        .actor_ref::<Host>(n)
        .events
        .iter()
        .filter_map(|(_, e)| match e {
            VsEvent::ViewInstalled(v) => Some(v.members.clone()),
            _ => None,
        })
        .collect()
}

#[test]
fn majority_side_installs_a_view_excluding_the_minority() {
    let group: Vec<NodeId> = (0..5).map(NodeId::new).collect();
    let mut world: World<repl_gcs::VsMsg<u32>> = World::new(SimConfig::new(5));
    for i in 0..5u32 {
        world.add_actor(Box::new(ComponentActor::new(ViewGroup::<u32>::new(
            NodeId::new(i),
            group.clone(),
            VsConfig::default(),
        ))));
    }
    world.start();
    world.run_until(SimTime::from_ticks(1_000));
    // Partition {0,1,2} | {3,4}.
    world
        .network_mut()
        .set_partition(&[&[group[0], group[1], group[2]], &[group[3], group[4]]]);
    world.run_until(SimTime::from_ticks(120_000));
    // Majority members agree on the 3-member view.
    for &n in &group[..3] {
        let views = views_installed(&world, n);
        let last = views
            .last()
            .unwrap_or_else(|| panic!("{n} installed nothing"));
        assert_eq!(last, &group[..3].to_vec(), "at {n}: {views:?}");
    }
    // Minority members never install a view without the majority: they
    // cannot win consensus (primary-partition assumption). They are
    // either stuck in view 0 or excluded — but never in a minority view.
    for &n in &group[3..] {
        for v in views_installed(&world, n) {
            assert!(
                v.len() * 2 > group.len(),
                "minority member {n} installed a minority view {v:?}"
            );
        }
    }
}

#[test]
fn broadcasts_continue_in_the_primary_partition() {
    let group: Vec<NodeId> = (0..5).map(NodeId::new).collect();
    let mut world: World<repl_gcs::VsMsg<u32>> = World::new(SimConfig::new(9));
    for i in 0..5u32 {
        let mut actor = ComponentActor::new(ViewGroup::<u32>::new(
            NodeId::new(i),
            group.clone(),
            VsConfig::default(),
        ));
        if i == 1 {
            // A broadcast well after the partition has settled.
            actor = actor.with_step(SimDuration::from_ticks(100_000), |vg, out| {
                vg.broadcast(77, out);
            });
        }
        world.add_actor(Box::new(actor));
    }
    world.start();
    world.run_until(SimTime::from_ticks(1_000));
    world
        .network_mut()
        .set_partition(&[&[group[0], group[1], group[2]], &[group[3], group[4]]]);
    world.run_until(SimTime::from_ticks(300_000));
    for &n in &group[..3] {
        let delivered: Vec<u32> = world
            .actor_ref::<Host>(n)
            .events
            .iter()
            .filter_map(|(_, e)| match e {
                VsEvent::Deliver { payload, .. } => Some(*payload),
                _ => None,
            })
            .collect();
        assert!(
            delivered.contains(&77),
            "majority member {n} missed the post-partition broadcast: {delivered:?}"
        );
    }
}
