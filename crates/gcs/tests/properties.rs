//! Property-based tests for the group-communication stack: total order,
//! causal order, consensus agreement — under arbitrary schedules, seeds
//! and minority crashes.

use proptest::prelude::*;

use repl_gcs::testkit::ComponentActor;
use repl_gcs::{
    CausalBcast, CbMsg, ConsMsg, ConsensusAbcast, ConsensusConfig, ConsensusPool, SeqAbMsg,
    SequencerAbcast,
};
use repl_sim::{NodeId, SimConfig, SimDuration, SimTime, World};

type CAbMsg = repl_gcs::CAbMsg<u32>;

/// A broadcast schedule: (sender index, time, payload).
fn schedule_strategy(n: usize) -> impl Strategy<Value = Vec<(usize, u64, u32)>> {
    proptest::collection::vec((0..n, 0u64..6_000, any::<u32>()), 1..24)
}

fn total_order_holds(per_node: &[Vec<u32>], alive: &[bool]) -> Result<(), String> {
    // All alive nodes' delivery sequences must be equal (the sim runs to
    // quiescence, so prefixes don't arise in failure-free cases; with
    // crashes we require prefix-consistency).
    let longest = per_node
        .iter()
        .zip(alive)
        .filter(|(_, &a)| a)
        .map(|(v, _)| v)
        .max_by_key(|v| v.len())
        .cloned()
        .unwrap_or_default();
    for (i, (v, &a)) in per_node.iter().zip(alive).enumerate() {
        if !a {
            continue;
        }
        if v[..] != longest[..v.len()] {
            return Err(format!(
                "node {i} sequence {v:?} not a prefix of {longest:?}"
            ));
        }
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Sequencer ABCAST: identical delivery order everywhere, no loss,
    /// no duplication, for arbitrary schedules.
    #[test]
    fn sequencer_abcast_total_order(
        seed in any::<u64>(),
        sched in schedule_strategy(4),
    ) {
        let n = 4u32;
        let group: Vec<NodeId> = (0..n).map(NodeId::new).collect();
        let mut world: World<SeqAbMsg<u32>> = World::new(SimConfig::new(seed).with_trace(false));
        for i in 0..n {
            let mut actor = ComponentActor::new(SequencerAbcast::<u32>::new(
                NodeId::new(i),
                group.clone(),
            ));
            for &(s, at, v) in &sched {
                if s == i as usize {
                    actor = actor.with_step(SimDuration::from_ticks(at), move |ab, out| {
                        ab.broadcast(v, out);
                    });
                }
            }
            world.add_actor(Box::new(actor));
        }
        world.start();
        world.run_to_quiescence(SimTime::from_ticks(10_000_000));
        let per_node: Vec<Vec<u32>> = group
            .iter()
            .map(|&g| {
                world
                    .actor_ref::<ComponentActor<SequencerAbcast<u32>>>(g)
                    .events
                    .iter()
                    .map(|(_, d)| d.payload)
                    .collect()
            })
            .collect();
        prop_assert_eq!(per_node[0].len(), sched.len(), "lost or duplicated messages");
        total_order_holds(&per_node, &[true; 4]).map_err(TestCaseError::fail)?;
    }

    /// Consensus ABCAST keeps total order among survivors even when one
    /// member (possibly the round coordinator) crashes mid-run.
    #[test]
    fn consensus_abcast_total_order_with_crash(
        seed in any::<u64>(),
        sched in schedule_strategy(5),
        crash_node in 0u32..5,
        crash_at in 100u64..8_000,
    ) {
        let n = 5u32;
        let group: Vec<NodeId> = (0..n).map(NodeId::new).collect();
        let mut world: World<CAbMsg> = World::new(SimConfig::new(seed).with_trace(false));
        for i in 0..n {
            let mut actor = ComponentActor::new(ConsensusAbcast::<u32>::new(
                NodeId::new(i),
                group.clone(),
                ConsensusConfig::default(),
            ));
            for &(s, at, v) in &sched {
                if s == i as usize {
                    actor = actor.with_step(SimDuration::from_ticks(at), move |ab, out| {
                        ab.broadcast(v, out);
                    });
                }
            }
            world.add_actor(Box::new(actor));
        }
        world.schedule_crash(SimTime::from_ticks(crash_at), NodeId::new(crash_node));
        world.start();
        world.run_until(SimTime::from_ticks(3_000_000));
        let per_node: Vec<Vec<u32>> = group
            .iter()
            .map(|&g| {
                world
                    .actor_ref::<ComponentActor<ConsensusAbcast<u32>>>(g)
                    .events
                    .iter()
                    .map(|(_, d)| d.payload)
                    .collect()
            })
            .collect();
        let alive: Vec<bool> = (0..n).map(|i| i != crash_node).collect();
        total_order_holds(&per_node, &alive).map_err(TestCaseError::fail)?;
        // Messages broadcast by survivors before the end must be delivered
        // at every survivor (validity): survivors' sequences are equal and
        // contain every payload a survivor broadcast.
        let longest = per_node
            .iter()
            .zip(&alive)
            .filter(|(_, &a)| a)
            .map(|(v, _)| v.clone())
            .max_by_key(|v| v.len())
            .unwrap_or_default();
        for &(s, _, v) in &sched {
            if s as u32 != crash_node {
                prop_assert!(
                    longest.contains(&v),
                    "survivor broadcast {} lost", v
                );
            }
        }
    }

    /// Causal broadcast: if m was delivered at the sender of m' before m'
    /// was broadcast, every node delivers m before m'.
    #[test]
    fn causal_order(
        seed in any::<u64>(),
        sched in schedule_strategy(3),
    ) {
        let n = 3u32;
        let group: Vec<NodeId> = (0..n).map(NodeId::new).collect();
        let mut world: World<CbMsg<u32>> = World::new(SimConfig::new(seed).with_trace(false));
        for i in 0..n {
            let mut actor = ComponentActor::new(CausalBcast::<u32>::new(
                NodeId::new(i),
                group.clone(),
            ));
            for (k, &(s, at, _)) in sched.iter().enumerate() {
                if s == i as usize {
                    // Payload = schedule index, unique.
                    let v = k as u32;
                    actor = actor.with_step(SimDuration::from_ticks(at), move |cb, out| {
                        cb.broadcast(v, out);
                    });
                }
            }
            world.add_actor(Box::new(actor));
        }
        world.start();
        world.run_to_quiescence(SimTime::from_ticks(10_000_000));
        // Reconstruct causality: at each sender, which messages had it
        // delivered before each of its own broadcasts?
        let deliveries: Vec<Vec<(SimTime, u32)>> = group
            .iter()
            .map(|&g| {
                world
                    .actor_ref::<ComponentActor<CausalBcast<u32>>>(g)
                    .events
                    .iter()
                    .map(|(t, d)| (*t, d.payload))
                    .collect()
            })
            .collect();
        for (k, &(s, _, _)) in sched.iter().enumerate() {
            let own = k as u32;
            // The sender delivers its own message at broadcast time.
            let sender_deliveries = &deliveries[s];
            let Some(&(bcast_time, _)) = sender_deliveries.iter().find(|(_, p)| *p == own) else {
                continue;
            };
            let before: Vec<u32> = sender_deliveries
                .iter()
                .filter(|(t, p)| *t < bcast_time && *p != own)
                .map(|(_, p)| *p)
                .collect();
            // Every node must deliver all of `before` before `own`.
            for (node, del) in deliveries.iter().enumerate() {
                let pos_own = del.iter().position(|(_, p)| *p == own);
                let Some(pos_own) = pos_own else { continue };
                for b in &before {
                    let pos_b = del.iter().position(|(_, p)| p == b);
                    prop_assert!(
                        matches!(pos_b, Some(p) if p < pos_own),
                        "node {} delivered {} before its cause {}", node, own, b
                    );
                }
            }
        }
    }

    /// Consensus: agreement + validity for arbitrary proposer subsets and
    /// an arbitrary minority crash.
    #[test]
    fn consensus_agreement_and_validity(
        seed in any::<u64>(),
        proposers in proptest::collection::btree_set(0u32..5, 1..5),
        values in proptest::collection::vec(any::<u64>(), 5),
        crash_node in 0u32..5,
        crash_at in 0u64..5_000,
    ) {
        let n = 5u32;
        let group: Vec<NodeId> = (0..n).map(NodeId::new).collect();
        let mut world: World<ConsMsg<u64>> = World::new(SimConfig::new(seed).with_trace(false));
        for i in 0..n {
            let mut actor = ComponentActor::new(ConsensusPool::<u64>::new(
                NodeId::new(i),
                group.clone(),
                ConsensusConfig::default(),
            ));
            if proposers.contains(&i) {
                let v = values[i as usize];
                actor = actor.with_step(SimDuration::from_ticks(10 + i as u64), move |p, out| {
                    p.propose(0, v, out);
                });
            }
            world.add_actor(Box::new(actor));
        }
        world.schedule_crash(SimTime::from_ticks(crash_at), NodeId::new(crash_node));
        world.start();
        world.run_until(SimTime::from_ticks(3_000_000));
        let decisions: Vec<Option<u64>> = (0..n)
            .filter(|&i| i != crash_node)
            .map(|i| {
                world
                    .actor_ref::<ComponentActor<ConsensusPool<u64>>>(NodeId::new(i))
                    .events
                    .iter()
                    .map(|(_, e)| match e {
                        repl_gcs::ConsEvent::Decided { value, .. } => *value,
                    })
                    .next()
            })
            .collect();
        // Agreement: all decided survivors agree.
        let decided: Vec<u64> = decisions.iter().flatten().copied().collect();
        prop_assert!(decided.windows(2).all(|w| w[0] == w[1]), "disagreement: {:?}", decisions);
        // Validity: any decision is a proposed value.
        for d in &decided {
            prop_assert!(
                proposers.iter().any(|&p| values[p as usize] == *d),
                "invalid decision {}", d
            );
        }
        // Termination: unless every proposer crashed (then nothing need
        // decide), survivors must decide.
        let surviving_proposer = proposers.iter().any(|&p| p != crash_node);
        if surviving_proposer {
            prop_assert!(
                decisions.iter().all(|d| d.is_some()),
                "undecided survivors: {:?}", decisions
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// View synchrony under randomized single-crash schedules: for every
    /// message, the surviving members either all deliver it or none does
    /// (all-or-none w.r.t. the view change), and all survivors install the
    /// same final view.
    #[test]
    fn vscast_view_synchrony(
        seed in any::<u64>(),
        bcasts in proptest::collection::vec((0usize..4, 0u64..4_000), 1..8),
        crash_node in 0u32..4,
        crash_at in 500u64..4_500,
    ) {
        use repl_gcs::{ViewGroup, VsConfig, VsEvent, VsMsg};
        let n = 4u32;
        let group: Vec<NodeId> = (0..n).map(NodeId::new).collect();
        let mut world: World<VsMsg<u32>> = World::new(SimConfig::new(seed).with_trace(false));
        for i in 0..n {
            let mut actor = ComponentActor::new(ViewGroup::<u32>::new(
                NodeId::new(i),
                group.clone(),
                VsConfig::default(),
            ));
            for (k, &(s, at)) in bcasts.iter().enumerate() {
                if s == i as usize {
                    let v = k as u32;
                    actor = actor.with_step(SimDuration::from_ticks(at), move |vg, out| {
                        vg.broadcast(v, out);
                    });
                }
            }
            world.add_actor(Box::new(actor));
        }
        world.schedule_crash(SimTime::from_ticks(crash_at), NodeId::new(crash_node));
        world.start();
        world.run_until(SimTime::from_ticks(2_000_000));

        let survivors: Vec<NodeId> = group
            .iter()
            .copied()
            .filter(|g| g.raw() != crash_node)
            .collect();
        // Collect per-survivor delivered payload sets and installed views.
        let mut delivered: Vec<std::collections::BTreeSet<u32>> = Vec::new();
        let mut final_views: Vec<Vec<NodeId>> = Vec::new();
        for &s in &survivors {
            let host = world.actor_ref::<ComponentActor<ViewGroup<u32>>>(s);
            prop_assert!(
                !host.inner.is_excluded(),
                "survivor {} falsely excluded", s
            );
            delivered.push(
                host.events
                    .iter()
                    .filter_map(|(_, e)| match e {
                        VsEvent::Deliver { payload, .. } => Some(*payload),
                        _ => None,
                    })
                    .collect(),
            );
            final_views.push(host.inner.view().members.clone());
        }
        // All-or-none delivery among survivors.
        for w in delivered.windows(2) {
            prop_assert_eq!(&w[0], &w[1], "survivors delivered different sets");
        }
        // Same final view, excluding the corpse.
        for v in &final_views {
            prop_assert_eq!(v, &survivors, "wrong final view {:?}", v);
        }
        // Survivors' own broadcasts issued well before the end must be in.
        for (k, &(s, _)) in bcasts.iter().enumerate() {
            if s as u32 != crash_node {
                prop_assert!(
                    delivered[0].contains(&(k as u32)),
                    "survivor broadcast {} lost", k
                );
            }
        }
    }
}
