//! Regenerates every figure of the paper from executed protocols.
//!
//! ```sh
//! cargo run --release --bin figures          # all figures
//! cargo run --release --bin figures -- 16    # one figure
//! ```

use repl_core::{figures, Technique};

fn print_figure(n: u32) {
    match n {
        1 => println!("{}", figures::fig1_functional_model()),
        2 => println!("{}", figures::phase_diagram(Technique::Active, 1)),
        3 => println!("{}", figures::phase_diagram(Technique::Passive, 1)),
        4 => println!("{}", figures::phase_diagram(Technique::SemiActive, 1)),
        5 => println!("{}", figures::fig5_ds_matrix()),
        6 => println!("{}", figures::fig6_db_matrix()),
        7 => println!("{}", figures::phase_diagram(Technique::EagerPrimary, 1)),
        8 => println!(
            "{}",
            figures::phase_diagram(Technique::EagerUpdateEverywhereLocking, 1)
        ),
        9 => println!(
            "{}",
            figures::phase_diagram(Technique::EagerUpdateEverywhereAbcast, 1)
        ),
        10 => println!("{}", figures::phase_diagram(Technique::LazyPrimary, 1)),
        11 => println!(
            "{}",
            figures::phase_diagram(Technique::LazyUpdateEverywhere, 1)
        ),
        12 => println!("{}", figures::phase_diagram(Technique::EagerPrimary, 3)),
        13 => println!(
            "{}",
            figures::phase_diagram(Technique::EagerUpdateEverywhereLocking, 3)
        ),
        14 => println!("{}", figures::phase_diagram(Technique::Certification, 1)),
        15 => println!("{}", figures::fig15_combinations()),
        16 => println!("{}", figures::fig16_synthetic_view()),
        other => eprintln!("no figure {other}: the paper has figures 1–16"),
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() {
        for n in 1..=16 {
            print_figure(n);
        }
        return;
    }
    for a in args {
        match a
            .trim_start_matches("--fig")
            .trim_start_matches('=')
            .parse::<u32>()
        {
            Ok(n) => print_figure(n),
            Err(_) => eprintln!("unrecognised argument {a:?}; pass figure numbers 1–16"),
        }
    }
}
