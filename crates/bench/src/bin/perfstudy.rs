//! The performance study the paper promised, in one command:
//!
//! ```sh
//! cargo run --release --bin perfstudy
//! ```
//!
//! Prints every table (P1–P7 including the P5b availability study,
//! A2–A5); EXPERIMENTS.md records a reference output with the
//! paper-predicted shapes annotated.

use repl_bench::*;

fn main() {
    println!(
        "Performance study of the replication techniques of Wiesmann et al. \
         (ICDCS 2000)\nunits: t = virtual ticks (≈ µs at the LAN profile); \
         deterministic, seed-fixed runs\n"
    );
    let degrees = [2, 4, 8, 16];
    println!(
        "{}",
        render(
            "P1 — mean response time vs replication degree",
            &response_time_table(&degrees)
        )
    );
    println!(
        "{}",
        render(
            "P2 — throughput vs clients (3 replicas)",
            &throughput_table(&[1, 2, 4, 8, 16])
        )
    );
    println!(
        "{}",
        render(
            "P3 — messages per operation vs replication degree",
            &message_cost_table(&degrees)
        )
    );
    println!(
        "{}",
        render(
            "P4 — conflicts vs access skew (4 clients, 32 items, rmw txns)",
            &conflicts_table(&[0.0, 0.5, 1.0, 1.5]),
        )
    );
    println!(
        "{}",
        render(
            "P5 — failover: rank-0 server crashes mid-run (5 replicas)",
            &failover_table()
        )
    );
    println!(
        "{}",
        render(
            "P5b — availability under a primary crash (failover latency, unavailability windows)",
            &availability_table()
        )
    );
    println!(
        "{}",
        render(
            "P6 — eager vs lazy: latency against staleness",
            &eager_vs_lazy_table(&[1_000, 10_000, 50_000]),
        )
    );
    println!(
        "{}",
        render(
            "P7 — open-loop saturation (4 Poisson clients, 3 replicas)",
            &open_loop_table(&[2_000, 500, 120, 40]),
        )
    );
    println!(
        "{}",
        render("A2 — ABCAST implementations", &abcast_impls_table())
    );
    println!(
        "{}",
        render(
            "A3 — deadlock handling under contention",
            &deadlock_table(&[0.5, 1.0, 1.5])
        )
    );
    println!(
        "{}",
        render(
            "A4 — lock scope: all-site reads vs read-one/write-all (§5.4.1)",
            &lock_scope_table(&[0.2, 0.5, 0.9]),
        )
    );
    println!(
        "{}",
        render(
            "A5 — lazy reconciliation: LWW vs ABCAST order (§4.6)",
            &reconcile_table()
        )
    );
}
