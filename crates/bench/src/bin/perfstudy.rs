//! The performance study the paper promised, in one command:
//!
//! ```sh
//! cargo run --release --bin perfstudy -- [--threads N] [--json PATH] [--json-only]
//! ```
//!
//! Prints every table (P1–P7 including the P5b availability study,
//! A2–A5); EXPERIMENTS.md records a reference output with the
//! paper-predicted shapes annotated. Tables are computed through the
//! parallel sweep engine (`repl_bench::sweep`), so `--threads N` (or
//! the `REPL_SWEEP_THREADS` environment variable) fans the run matrix
//! across cores without changing a single printed number — each cell
//! is an isolated, seed-keyed, single-threaded simulation.
//!
//! `--json PATH` additionally writes a machine-readable benchmark
//! summary (the `BENCH_PR7.json` artifact): for every technique, the
//! P1/P2/P3 study cells are re-swept with per-cell wall clocks, and
//! throughput / p50 / p99 / messages-per-txn are reported from the
//! canonical 3-replica, 4-client cell, followed by the P8 batching,
//! P9 recovery, P10 kernel and P12 disaster sections (P10 with
//! wall-clock lock microcycles: dense vs sparse vs the seed baseline)
//! and the P13 open-loop scale section (aggregated arrivals up to a
//! million clients, streaming-histogram latencies, events/sec).
//! `--json-only` skips the tables (CI smoke mode); `--p8-only` /
//! `--p9-only` / `--p10-only` / `--p12-only` / `--p13-only` print just
//! that study's table.

use std::time::Instant;

use repl_bench::sweep::{run_sweep, CellResult, SweepCell};
use repl_bench::*;
use repl_core::protocols::common::AbcastImpl;
use repl_core::{RunConfig, Technique};

struct Args {
    threads: Option<usize>,
    json: Option<String>,
    json_only: bool,
    p8_only: bool,
    p9_only: bool,
    p10_only: bool,
    p12_only: bool,
    p13_only: bool,
}

fn parse_args() -> Args {
    let mut args = Args {
        threads: None,
        json: None,
        json_only: false,
        p8_only: false,
        p9_only: false,
        p10_only: false,
        p12_only: false,
        p13_only: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--threads" => {
                let v = it
                    .next()
                    .unwrap_or_else(|| usage("--threads needs a value"));
                let n: usize = v
                    .parse()
                    .ok()
                    .filter(|&n| n > 0)
                    .unwrap_or_else(|| usage("--threads needs a positive integer"));
                args.threads = Some(n);
            }
            "--json" => {
                args.json = Some(it.next().unwrap_or_else(|| usage("--json needs a path")));
            }
            "--json-only" => args.json_only = true,
            "--p8-only" => args.p8_only = true,
            "--p9-only" => args.p9_only = true,
            "--p10-only" => args.p10_only = true,
            "--p12-only" => args.p12_only = true,
            "--p13-only" => args.p13_only = true,
            "--help" | "-h" => usage(""),
            other => usage(&format!("unknown argument `{other}`")),
        }
    }
    args
}

fn usage(err: &str) -> ! {
    if !err.is_empty() {
        eprintln!("error: {err}");
    }
    eprintln!(
        "usage: perfstudy [--threads N] [--json PATH] [--json-only] \
         [--p8-only] [--p9-only] [--p10-only] [--p12-only] [--p13-only]"
    );
    std::process::exit(if err.is_empty() { 0 } else { 2 });
}

/// The batching windows (in ticks) swept by the P8 study and the JSON
/// artifact. 0 is the unbatched baseline; 250 is sub-round-trip; 1000
/// spans several LAN round trips.
const P8_WINDOWS: [u64; 3] = [0, 250, 1_000];

/// The closed-loop client counts swept by the P8 study: window
/// amortization scales with how many submissions share a window, so the
/// same window is measured from light load to high concurrency.
const P8_CLIENTS: [u32; 3] = [4, 16, 48];

/// The outage lengths (in ticks) swept by the P9 recovery study. Both
/// land while clients are still active, so the rejoined replica always
/// sees post-recovery traffic; the long outage misses roughly a third
/// of the run.
const P9_DOWNTIMES: [u64; 2] = [15_000, 40_000];

/// The update fractions swept by the P9 study: catch-up volume (and so
/// MTTR and the transfer strategy) scales with how much state churned
/// while the victim was down.
const P9_WRITE_RATIOS: [f64; 2] = [0.2, 1.0];

/// The keyspace sizes swept by the P10 kernel scaling study: small
/// enough to fit a cache line's worth of lock slots, the dense sweet
/// spot, and large enough that hashed tables start paying for resizes.
const P10_KEYSPACES: [u64; 3] = [64, 1024, 65536];

/// The client counts swept by the P10 study (light and heavy load).
const P10_CLIENTS: [u32; 2] = [4, 16];

/// The durable-tier upload lags (in ticks) swept by the P12 disaster
/// study. 0 is the synchronous tier (nothing acknowledged can be lost);
/// 2 000 leaves a couple of rounds of commits in flight when the
/// disaster hits; 20 000 leaves essentially everything since the start
/// of the run exposed.
const P12_UPLOAD_LAGS: [u64; 3] = [0, 2_000, 20_000];

/// The techniques printed by the P13 open-loop scale table: an
/// ABCAST-ordered state machine, the eager primary, and the cheapest
/// lazy protocol — three points on the coordination-cost spectrum.
const P13_TECHNIQUES: [Technique; 3] = [
    Technique::Active,
    Technique::EagerPrimary,
    Technique::LazyUpdateEverywhere,
];

/// The virtual client populations printed by the P13 table.
const P13_CLIENTS: [u32; 2] = [1_000, 100_000];

/// The total offered rates (ops/s across the population) printed by the
/// P13 table.
const P13_RATES: [u64; 2] = [100_000, 200_000];

/// The techniques the P13 JSON section sweeps to the million-client
/// ceiling.
const P13_JSON_TECHNIQUES: [Technique; 2] =
    [Technique::Active, Technique::LazyUpdateEverywhere];

/// The populations the P13 JSON section sweeps: 10^3, 10^5, 10^6.
const P13_JSON_CLIENTS: [u32; 3] = [1_000, 100_000, 1_000_000];

/// Total offered load of the P13 JSON cells, ops/s.
const P13_JSON_RATE: u64 = 200_000;

/// Microcycle rounds per backing for the P10 JSON wall-clock section.
const P10_MICROCYCLE_ROUNDS: u64 = 20_000;

/// Fewer rounds for the seed baseline at large keyspaces: its
/// `release_all` scans the whole table, so full-round counts would take
/// minutes at 64k keys. Per-transaction times are reported, so the
/// round counts need not match.
const P10_SEED_ROUNDS_LARGE: u64 = 2_000;

fn timed_table(title: &str, f: impl FnOnce() -> Vec<Row>) {
    let start = Instant::now();
    let rows = f();
    let wall = start.elapsed();
    println!("{}[{:.2}s]\n", render(title, &rows), wall.as_secs_f64());
}

/// The per-technique slice of the P1/P2/P3 study matrices, with the
/// exact seeds and workloads the printed tables use.
fn technique_cells(technique: Technique) -> Vec<SweepCell> {
    let mut cells = Vec::new();
    for n in [2u32, 4, 8, 16] {
        cells.push(SweepCell::new(
            format!("{}/p1/n={n}", technique.name()),
            RunConfig::new(technique)
                .with_servers(n)
                .with_clients(2)
                .with_seed(101)
                .with_trace(false)
                .with_workload(update_workload(12)),
        ));
    }
    for c in [1u32, 2, 4, 8, 16] {
        cells.push(SweepCell::new(
            format!("{}/p2/c={c}", technique.name()),
            RunConfig::new(technique)
                .with_servers(3)
                .with_clients(c)
                .with_seed(103)
                .with_trace(false)
                .with_workload(update_workload(10)),
        ));
    }
    for n in [2u32, 4, 8, 16] {
        cells.push(SweepCell::new(
            format!("{}/p3/n={n}", technique.name()),
            RunConfig::new(technique)
                .with_servers(n)
                .with_clients(2)
                .with_seed(107)
                .with_trace(false)
                .with_workload(update_workload(80)),
        ));
    }
    cells
}

/// Renders the P8 batching section of the JSON artifact: per
/// (technique, abcast, clients) series over the window axis, with the
/// total-message and coordination-message reduction each series achieves
/// against its own window-0 baseline. Total messages carry the fixed
/// client traffic (one invoke + one reply per answering replica), so the
/// headline amortization claim is made on coordination (server↔server)
/// messages — the share an ordering layer can actually batch.
fn batching_json(threads: usize) -> String {
    use std::fmt::Write as _;
    let cells = batching_cells(&P8_CLIENTS, &P8_WINDOWS);
    let sweep: Vec<SweepCell> = cells
        .iter()
        .map(|c| {
            let impl_name = match c.abcast {
                Some(AbcastImpl::Sequencer) => "seq",
                Some(AbcastImpl::Consensus) => "cons",
                None => "none",
            };
            SweepCell::new(
                format!(
                    "{}/p8/{impl_name}/c={}/w={}",
                    c.technique.name(),
                    c.clients,
                    c.window
                ),
                c.cfg.clone(),
            )
        })
        .collect();
    let results = run_sweep(&sweep, threads);
    let high_clients = *P8_CLIENTS.iter().max().expect("client axis nonempty");

    let mut s = String::new();
    let _ = writeln!(s, "  \"batching\": {{");
    let _ = writeln!(s, "    \"servers\": 3,");
    let _ = writeln!(
        s,
        "    \"clients\": [{}],",
        P8_CLIENTS
            .iter()
            .map(|c| c.to_string())
            .collect::<Vec<_>>()
            .join(", ")
    );
    let _ = writeln!(s, "    \"high_concurrency_clients\": {high_clients},");
    let _ = writeln!(
        s,
        "    \"windows_ticks\": [{}],",
        P8_WINDOWS
            .iter()
            .map(|w| w.to_string())
            .collect::<Vec<_>>()
            .join(", ")
    );
    let _ = writeln!(s, "    \"series\": [");
    // Cells arrive grouped: windows.len() consecutive cells per
    // (technique, abcast, clients) series, the window axis innermost.
    let per_series = P8_WINDOWS.len();
    let n_series = cells.len() / per_series;
    let mut msg_2x_series = 0u32;
    // Techniques with a >=2x coordination-message reduction at the
    // high-concurrency client count (any abcast implementation).
    let mut coord_2x_techniques: Vec<&'static str> = Vec::new();
    for i in 0..n_series {
        let group = &cells[i * per_series..(i + 1) * per_series];
        let reports: Vec<_> = results[i * per_series..(i + 1) * per_series]
            .iter()
            .map(|c| {
                c.result
                    .as_ref()
                    .unwrap_or_else(|e| panic!("cell `{}` failed: {e}", c.label))
            })
            .collect();
        let head = &group[0];
        let impl_json = match head.abcast {
            Some(AbcastImpl::Sequencer) => "\"sequencer\"",
            Some(AbcastImpl::Consensus) => "\"consensus\"",
            None => "null",
        };
        let base_msgs = reports[0].messages_per_op();
        let base_coord = reports[0].coordination_messages_per_op();
        let best = |f: &dyn Fn(&repl_core::RunReport) -> f64, base: f64| {
            reports
                .iter()
                .skip(1)
                .map(|r| base / f(r).max(f64::MIN_POSITIVE))
                .fold(0.0f64, f64::max)
        };
        let msg_reduction = best(&|r| r.messages_per_op(), base_msgs);
        let coord_reduction = best(&|r| r.coordination_messages_per_op(), base_coord);
        if head.abcast.is_some() && msg_reduction >= 2.0 {
            msg_2x_series += 1;
        }
        if head.abcast.is_some()
            && head.clients == high_clients
            && coord_reduction >= 2.0
            && !coord_2x_techniques.contains(&head.technique.name())
        {
            coord_2x_techniques.push(head.technique.name());
        }
        let _ = writeln!(s, "      {{");
        let _ = writeln!(s, "        \"technique\": \"{}\",", head.technique.name());
        let _ = writeln!(s, "        \"abcast\": {impl_json},");
        let _ = writeln!(s, "        \"clients\": {},", head.clients);
        let _ = writeln!(s, "        \"points\": [");
        for (j, (cell, report)) in group.iter().zip(&reports).enumerate() {
            let mut lat = report.latencies.clone();
            let p50 = lat.percentile(0.5).ticks();
            let p99 = lat.percentile(0.99).ticks();
            let _ = writeln!(
                s,
                "          {{\"window\": {}, \"throughput_ops_per_s\": {:.1}, \
                 \"p50_response_ticks\": {p50}, \"p99_response_ticks\": {p99}, \
                 \"messages_per_txn\": {:.2}, \"coord_messages_per_txn\": {:.2}}}{}",
                cell.window,
                report.throughput(),
                report.messages_per_op(),
                report.coordination_messages_per_op(),
                if j + 1 < group.len() { "," } else { "" }
            );
        }
        let _ = writeln!(s, "        ],");
        let _ = writeln!(s, "        \"msg_reduction_best\": {msg_reduction:.2},");
        let _ = writeln!(s, "        \"coord_reduction_best\": {coord_reduction:.2}");
        let _ = writeln!(s, "      }}{}", if i + 1 < n_series { "," } else { "" });
    }
    let _ = writeln!(s, "    ],");
    let _ = writeln!(
        s,
        "    \"abcast_series_with_2x_msg_reduction\": {msg_2x_series},"
    );
    let _ = writeln!(
        s,
        "    \"abcast_techniques_with_2x_coord_reduction\": [{}]",
        coord_2x_techniques
            .iter()
            .map(|t| format!("\"{t}\""))
            .collect::<Vec<_>>()
            .join(", ")
    );
    let _ = writeln!(s, "  }}");
    s
}

/// Renders the P9 recovery section of the JSON artifact: per
/// (technique, outage, write ratio) cell, the faulted run's MTTR,
/// catch-up bytes, transfer-strategy counts and the throughput dip
/// against the fault-free baseline, plus two summary keys the artifact
/// check gates on: every technique recovered (finite MTTR everywhere)
/// and both transfer strategies were actually selected somewhere.
fn recovery_json(threads: usize) -> String {
    use std::fmt::Write as _;
    let cells = recovery_cells(&P9_DOWNTIMES, &P9_WRITE_RATIOS);
    let mut sweep = Vec::with_capacity(cells.len() * 2);
    for c in &cells {
        let stem = format!(
            "{}/p9/d={}/wr={:.1}",
            c.technique.name(),
            c.downtime,
            c.write_ratio
        );
        sweep.push(SweepCell::new(stem.clone(), c.faulted.clone()));
        sweep.push(SweepCell::new(format!("{stem}/base"), c.baseline.clone()));
    }
    let results = run_sweep(&sweep, threads);
    let report_of = |i: usize| {
        results[i]
            .result
            .as_ref()
            .unwrap_or_else(|e| panic!("cell `{}` failed: {e}", results[i].label))
    };

    let mut techniques_without_mttr: Vec<&'static str> = Vec::new();
    let mut suffix_cells = 0u32;
    let mut snapshot_cells = 0u32;
    let mut s = String::new();
    let _ = writeln!(s, "  \"recovery\": {{");
    let _ = writeln!(s, "    \"servers\": 3,");
    let _ = writeln!(s, "    \"victim\": {RECOVERY_VICTIM},");
    let _ = writeln!(s, "    \"crash_at_ticks\": {RECOVERY_CRASH_AT},");
    let _ = writeln!(
        s,
        "    \"downtimes_ticks\": [{}],",
        P9_DOWNTIMES
            .iter()
            .map(|d| d.to_string())
            .collect::<Vec<_>>()
            .join(", ")
    );
    let _ = writeln!(
        s,
        "    \"write_ratios\": [{}],",
        P9_WRITE_RATIOS
            .iter()
            .map(|w| format!("{w:.1}"))
            .collect::<Vec<_>>()
            .join(", ")
    );
    let _ = writeln!(s, "    \"cells\": [");
    for (i, cell) in cells.iter().enumerate() {
        let faulted = report_of(2 * i);
        let baseline = report_of(2 * i + 1);
        let a = &faulted.availability;
        let mttr = match a.mttr_ticks() {
            Some(t) => t.to_string(),
            None => "null".into(),
        };
        if a.mttr_ticks().is_none() && !techniques_without_mttr.contains(&cell.technique.name()) {
            techniques_without_mttr.push(cell.technique.name());
        }
        let suffix: u64 = a.recoveries.iter().map(|r| r.log_suffix_transfers).sum();
        let snap: u64 = a.recoveries.iter().map(|r| r.snapshot_transfers).sum();
        suffix_cells += (suffix > 0) as u32;
        snapshot_cells += (snap > 0) as u32;
        let dip = baseline.throughput() / faulted.throughput().max(f64::MIN_POSITIVE);
        let _ = writeln!(
            s,
            "      {{\"technique\": \"{}\", \"downtime_ticks\": {}, \"write_ratio\": {:.1}, \
             \"mttr_ticks\": {mttr}, \"transfer_bytes\": {}, \"log_suffix_transfers\": {suffix}, \
             \"snapshot_transfers\": {snap}, \"throughput_ops_per_s\": {:.1}, \
             \"baseline_throughput_ops_per_s\": {:.1}, \"throughput_dip\": {dip:.2}, \
             \"client_retries\": {}, \"unanswered\": {}}}{}",
            cell.technique.name(),
            cell.downtime,
            cell.write_ratio,
            a.transfer_bytes(),
            faulted.throughput(),
            baseline.throughput(),
            faulted.client_retries,
            faulted.ops_unanswered,
            if i + 1 < cells.len() { "," } else { "" }
        );
    }
    let _ = writeln!(s, "    ],");
    let _ = writeln!(
        s,
        "    \"all_techniques_recovered\": {},",
        techniques_without_mttr.is_empty()
    );
    let _ = writeln!(s, "    \"cells_using_log_suffix\": {suffix_cells},");
    let _ = writeln!(s, "    \"cells_using_snapshot\": {snapshot_cells},");
    let _ = writeln!(
        s,
        "    \"both_strategies_selected\": {}",
        suffix_cells > 0 && snapshot_cells > 0
    );
    let _ = writeln!(s, "  }}");
    s
}

/// Renders the P10 kernel section of the JSON artifact: per
/// (technique, keyspace, clients) cell the simulator-deterministic
/// throughput / latency / message-cost numbers, then the wall-clock
/// lock microcycle (dense vs sparse vs the seed baseline) at each
/// keyspace with the dense-over-seed speedup, plus the gate key the
/// artifact check reads: dense at least 1.3x the seed baseline at a
/// keyspace of 1k or more.
fn kernel_json(threads: usize) -> String {
    use std::fmt::Write as _;
    let cells = kernel_cells(&P10_KEYSPACES, &P10_CLIENTS);
    let sweep: Vec<SweepCell> = cells
        .iter()
        .map(|c| {
            SweepCell::new(
                format!(
                    "{}/p10/k={}/c={}",
                    c.technique.name(),
                    c.keyspace,
                    c.clients
                ),
                c.cfg.clone(),
            )
        })
        .collect();
    let results = run_sweep(&sweep, threads);

    let mut s = String::new();
    let _ = writeln!(s, "  \"kernel\": {{");
    let _ = writeln!(s, "    \"servers\": 3,");
    let _ = writeln!(
        s,
        "    \"keyspaces\": [{}],",
        P10_KEYSPACES
            .iter()
            .map(|k| k.to_string())
            .collect::<Vec<_>>()
            .join(", ")
    );
    let _ = writeln!(
        s,
        "    \"clients\": [{}],",
        P10_CLIENTS
            .iter()
            .map(|c| c.to_string())
            .collect::<Vec<_>>()
            .join(", ")
    );
    let _ = writeln!(s, "    \"cells\": [");
    for (i, (cell, result)) in cells.iter().zip(&results).enumerate() {
        let report = result
            .result
            .as_ref()
            .unwrap_or_else(|e| panic!("cell `{}` failed: {e}", result.label));
        let mut lat = report.latencies.clone();
        let p50 = lat.percentile(0.5).ticks();
        let p99 = lat.percentile(0.99).ticks();
        let _ = writeln!(
            s,
            "      {{\"technique\": \"{}\", \"keyspace\": {}, \"clients\": {}, \
             \"throughput_ops_per_s\": {:.1}, \"p50_response_ticks\": {p50}, \
             \"p99_response_ticks\": {p99}, \"messages_per_txn\": {:.2}, \
             \"server_aborts\": {}}}{}",
            cell.technique.name(),
            cell.keyspace,
            cell.clients,
            report.throughput(),
            report.messages_per_op(),
            report.server_aborts,
            if i + 1 < cells.len() { "," } else { "" }
        );
    }
    let _ = writeln!(s, "    ],");
    let _ = writeln!(s, "    \"lock_microcycle\": [");
    let mut gate = true;
    for (i, &items) in P10_KEYSPACES.iter().enumerate() {
        let rounds = P10_MICROCYCLE_ROUNDS;
        let seed_rounds = if items >= 10_000 {
            P10_SEED_ROUNDS_LARGE
        } else {
            rounds
        };
        let per_txn = |secs: f64, rounds: u64| secs / rounds as f64 * 1e9;
        let dense_ns = per_txn(lock_microcycle_secs(items, true, rounds), rounds);
        let sparse_ns = per_txn(lock_microcycle_secs(items, false, rounds), rounds);
        let seed_ns = per_txn(seed_lock_microcycle_secs(items, seed_rounds), seed_rounds);
        let speedup = seed_ns / dense_ns.max(f64::MIN_POSITIVE);
        if items >= 1_000 && speedup < 1.3 {
            gate = false;
        }
        let _ = writeln!(
            s,
            "      {{\"keyspace\": {items}, \"rounds\": {rounds}, \
             \"seed_rounds\": {seed_rounds}, \"dense_ns_per_txn\": {dense_ns:.1}, \
             \"sparse_ns_per_txn\": {sparse_ns:.1}, \"seed_ns_per_txn\": {seed_ns:.1}, \
             \"dense_speedup_vs_seed\": {speedup:.2}}}{}",
            if i + 1 < P10_KEYSPACES.len() { "," } else { "" }
        );
    }
    let _ = writeln!(s, "    ],");
    let _ = writeln!(s, "    \"dense_30pct_faster_than_seed_at_1k\": {gate}");
    let _ = writeln!(s, "  }}");
    s
}

/// Renders the P12 disaster section of the JSON artifact: per
/// (technique, upload lag) cell the realised data-loss window, restore
/// volume/deafness, rejoin MTTR and the no-silent-loss verdict, plus
/// the summary keys the artifact check gates on: every wiped replica
/// restored (finite MTTR everywhere), zero loss at lag 0, the loss
/// monotone in the lag per technique, and no silent loss anywhere.
fn disaster_json(threads: usize) -> String {
    use std::fmt::Write as _;
    let cells = disaster_cells(&P12_UPLOAD_LAGS);
    let mut sweep = Vec::with_capacity(cells.len() * 2);
    for c in &cells {
        let stem = format!("{}/p12/lag={}", c.technique.name(), c.upload_lag);
        sweep.push(SweepCell::new(stem.clone(), c.faulted.clone()));
        sweep.push(SweepCell::new(format!("{stem}/base"), c.baseline.clone()));
    }
    let results = run_sweep(&sweep, threads);
    let report_of = |i: usize| {
        results[i]
            .result
            .as_ref()
            .unwrap_or_else(|e| panic!("cell `{}` failed: {e}", results[i].label))
    };

    let mut all_restored = true;
    let mut loss_zero_at_lag0 = true;
    let mut loss_monotone = true;
    let mut silent_losses = 0u64;
    // Per-technique loss over the lag axis (cells arrive grouped with
    // the lag axis innermost).
    let per_series = P12_UPLOAD_LAGS.len();
    let mut s = String::new();
    let _ = writeln!(s, "  \"disaster\": {{");
    let _ = writeln!(s, "    \"servers\": 3,");
    let _ = writeln!(s, "    \"victim\": {DISASTER_VICTIM},");
    let _ = writeln!(s, "    \"volume_loss_at_ticks\": {DISASTER_AT},");
    let _ = writeln!(s, "    \"downtime_ticks\": {DISASTER_DOWNTIME},");
    let _ = writeln!(
        s,
        "    \"upload_lags_ticks\": [{}],",
        P12_UPLOAD_LAGS
            .iter()
            .map(|l| l.to_string())
            .collect::<Vec<_>>()
            .join(", ")
    );
    let _ = writeln!(s, "    \"cells\": [");
    for (i, cell) in cells.iter().enumerate() {
        let faulted = report_of(2 * i);
        let baseline = report_of(2 * i + 1);
        let d = &faulted.durability;
        let a = &faulted.availability;
        let mttr = match a.mttr_ticks() {
            Some(t) => t.to_string(),
            None => "null".into(),
        };
        if d.restores == 0 || a.mttr_ticks().is_none() {
            all_restored = false;
        }
        if cell.upload_lag == 0 && d.lost_commits > 0 {
            loss_zero_at_lag0 = false;
        }
        if i % per_series > 0 {
            let prev = report_of(2 * (i - 1)).durability.lost_commits;
            if d.lost_commits < prev {
                loss_monotone = false;
            }
        }
        let silent = faulted.check_no_silent_loss().map_or_else(|v| v.len(), |()| 0);
        silent_losses += silent as u64;
        let dip = baseline.throughput() / faulted.throughput().max(f64::MIN_POSITIVE);
        let _ = writeln!(
            s,
            "      {{\"technique\": \"{}\", \"upload_lag_ticks\": {}, \
             \"volume_wipes\": {}, \"lost_commits\": {}, \"restores\": {}, \
             \"restore_bytes\": {}, \"restore_deaf_ticks\": {}, \"mttr_ticks\": {mttr}, \
             \"upload_puts\": {}, \"upload_bytes\": {}, \"upload_cost\": {}, \
             \"frames_sealed\": {}, \"silent_losses\": {silent}, \
             \"throughput_dip\": {dip:.2}, \"unanswered\": {}}}{}",
            cell.technique.name(),
            cell.upload_lag,
            d.volume_wipes,
            d.lost_commits,
            d.restores,
            d.restore_bytes,
            d.restore_ticks,
            d.upload_puts,
            d.upload_bytes,
            d.upload_cost,
            d.frames_sealed,
            faulted.ops_unanswered,
            if i + 1 < cells.len() { "," } else { "" }
        );
    }
    let _ = writeln!(s, "    ],");
    let _ = writeln!(s, "    \"all_replicas_restored\": {all_restored},");
    let _ = writeln!(s, "    \"loss_zero_at_lag0\": {loss_zero_at_lag0},");
    let _ = writeln!(s, "    \"loss_monotone_in_lag\": {loss_monotone},");
    let _ = writeln!(s, "    \"silent_losses\": {silent_losses}");
    let _ = writeln!(s, "  }}");
    s
}

/// Peak resident set of this process in KiB, read from
/// `/proc/self/status` (0 where the file is unavailable). Process-wide,
/// so it bounds the *whole* study up to the point it is read — the
/// honest ceiling for "a million clients fit in memory".
fn vm_hwm_kib() -> u64 {
    std::fs::read_to_string("/proc/self/status")
        .ok()
        .and_then(|s| {
            s.lines()
                .find(|l| l.starts_with("VmHWM:"))
                .and_then(|l| l.split_whitespace().nth(1))
                .and_then(|v| v.parse().ok())
        })
        .unwrap_or(0)
}

/// Renders the P13 open-loop section of the JSON artifact: per
/// (technique, population) cell at a fixed total offered load, the
/// events processed (and events/sec of wall clock), streaming-histogram
/// latency percentiles with their bounded relative error, and the
/// constant-memory evidence: histogram bytes, peak in-flight operations,
/// and the process's peak RSS. The gate key `max_clients_sustained`
/// reports the largest population that drained its whole budget with
/// nothing unanswered.
fn open_loop_json(threads: usize) -> String {
    use std::fmt::Write as _;
    let cells = open_loop_scale_cells(&P13_JSON_TECHNIQUES, &P13_JSON_CLIENTS, &[P13_JSON_RATE]);
    let sweep: Vec<SweepCell> = cells
        .iter()
        .map(|c| {
            SweepCell::new(
                format!("{}/p13/c={}", c.technique.name(), c.clients),
                c.cfg.clone(),
            )
        })
        .collect();
    let results = run_sweep(&sweep, threads);

    let mut max_clients_sustained = 0u32;
    let mut s = String::new();
    let _ = writeln!(s, "  \"open_loop\": {{");
    let _ = writeln!(s, "    \"servers\": 3,");
    let _ = writeln!(s, "    \"total_rate_ops_per_s\": {P13_JSON_RATE},");
    let _ = writeln!(
        s,
        "    \"clients\": [{}],",
        P13_JSON_CLIENTS
            .iter()
            .map(|c| c.to_string())
            .collect::<Vec<_>>()
            .join(", ")
    );
    let _ = writeln!(s, "    \"cells\": [");
    for (i, (cell, result)) in cells.iter().zip(&results).enumerate() {
        let report = result
            .result
            .as_ref()
            .unwrap_or_else(|e| panic!("cell `{}` failed: {e}", result.label));
        let hist = report
            .latency_hist
            .as_ref()
            .expect("aggregated runs stream a histogram");
        let wall = result.wall.as_secs_f64();
        let events_per_s = report.messages.events_processed as f64 / wall.max(1e-9);
        if report.ops_unanswered == 0 && report.ops_completed > 0 {
            max_clients_sustained = max_clients_sustained.max(cell.clients);
        }
        let _ = writeln!(
            s,
            "      {{\"technique\": \"{}\", \"clients\": {}, \"ops_completed\": {}, \
             \"unanswered\": {}, \"events_processed\": {}, \"events_per_sec_wall\": {:.0}, \
             \"p50_response_ticks\": {}, \"p99_response_ticks\": {}, \
             \"peak_outstanding\": {}, \"hist_bytes\": {}, \"cell_wall_ms\": {:.1}}}{}",
            cell.technique.name(),
            cell.clients,
            report.ops_completed,
            report.ops_unanswered,
            report.messages.events_processed,
            events_per_s,
            hist.percentile(0.50).ticks(),
            hist.percentile(0.99).ticks(),
            report.peak_outstanding,
            hist.memory_bytes(),
            wall * 1e3,
            if i + 1 < cells.len() { "," } else { "" }
        );
    }
    let _ = writeln!(s, "    ],");
    let _ = writeln!(
        s,
        "    \"histogram_max_relative_error\": {:.6},",
        repl_sim::LatencyHistogram::MAX_RELATIVE_ERROR
    );
    let _ = writeln!(s, "    \"process_peak_rss_kib\": {},", vm_hwm_kib());
    let _ = writeln!(s, "    \"max_clients_sustained\": {max_clients_sustained}");
    let _ = writeln!(s, "  }}");
    s
}

/// Runs the benchmark matrix and renders `BENCH_PR7.json`.
fn bench_json(threads: usize) -> String {
    use std::fmt::Write as _;
    let techniques = study_techniques();
    let mut cells = Vec::new();
    let mut spans = Vec::new(); // (technique, start, len) into `cells`
    for &technique in &techniques {
        let mine = technique_cells(technique);
        spans.push((technique, cells.len(), mine.len()));
        cells.extend(mine);
    }
    let start = Instant::now();
    let results = run_sweep(&cells, threads);
    let total_wall = start.elapsed();

    let mut s = String::new();
    let _ = writeln!(s, "{{");
    let _ = writeln!(s, "  \"schema\": \"bench_pr7/v1\",");
    let _ = writeln!(s, "  \"threads\": {threads},");
    let _ = writeln!(
        s,
        "  \"total_wall_ms\": {:.1},",
        total_wall.as_secs_f64() * 1e3
    );
    let _ = writeln!(s, "  \"cells_per_technique\": {},", spans[0].2);
    let _ = writeln!(s, "  \"techniques\": [");
    for (i, &(technique, start, len)) in spans.iter().enumerate() {
        let slice: &[CellResult] = &results[start..start + len];
        let study_wall_ms: f64 = slice.iter().map(|c| c.wall.as_secs_f64() * 1e3).sum();
        // Canonical metrics cell: P2 at 3 replicas / 4 clients.
        let canonical = slice
            .iter()
            .find(|c| c.label.ends_with("/p2/c=4"))
            .expect("canonical cell present");
        let report = canonical
            .result
            .as_ref()
            .unwrap_or_else(|e| panic!("cell `{}` failed: {e}", canonical.label));
        let mut lat = report.latencies.clone();
        let p50 = lat.percentile(0.5).ticks();
        let p99 = lat.percentile(0.99).ticks();
        let _ = writeln!(s, "    {{");
        let _ = writeln!(s, "      \"technique\": \"{}\",", technique.name());
        let _ = writeln!(
            s,
            "      \"throughput_ops_per_s\": {:.1},",
            report.throughput()
        );
        let _ = writeln!(s, "      \"p50_response_ticks\": {p50},");
        let _ = writeln!(s, "      \"p99_response_ticks\": {p99},");
        let _ = writeln!(
            s,
            "      \"messages_per_txn\": {:.2},",
            report.messages_per_op()
        );
        let _ = writeln!(s, "      \"study_wall_ms\": {study_wall_ms:.1}");
        let _ = writeln!(s, "    }}{}", if i + 1 < spans.len() { "," } else { "" });
    }
    let _ = writeln!(s, "  ],");
    s.push_str(&batching_json(threads));
    // batching_json ends its object without a trailing comma; splice one
    // in before appending the recovery section.
    let end = s.trim_end().len();
    s.truncate(end);
    s.push_str(",\n");
    s.push_str(&recovery_json(threads));
    let end = s.trim_end().len();
    s.truncate(end);
    s.push_str(",\n");
    s.push_str(&kernel_json(threads));
    let end = s.trim_end().len();
    s.truncate(end);
    s.push_str(",\n");
    s.push_str(&disaster_json(threads));
    let end = s.trim_end().len();
    s.truncate(end);
    s.push_str(",\n");
    s.push_str(&open_loop_json(threads));
    let _ = writeln!(s, "}}");
    s
}

fn main() {
    let args = parse_args();
    let threads = match args.threads {
        Some(n) => {
            // Route the table sweeps (which consult the environment)
            // through the same knob.
            std::env::set_var("REPL_SWEEP_THREADS", n.to_string());
            n
        }
        None => repl_bench::sweep::default_threads(),
    };

    if args.p8_only || args.p9_only || args.p10_only || args.p12_only || args.p13_only {
        if args.p8_only {
            timed_table(
                "P8 — end-to-end batching (3 replicas, clients × window in ticks)",
                || batching_table(&P8_CLIENTS, &P8_WINDOWS),
            );
        }
        if args.p9_only {
            timed_table(
                "P9 — crash recovery (3 replicas, outage × write ratio, MTTR and catch-up)",
                || recovery_table(&P9_DOWNTIMES, &P9_WRITE_RATIOS),
            );
        }
        if args.p10_only {
            timed_table(
                "P10 — kernel scaling (3 replicas, technique × keyspace × clients)",
                || kernel_table(&P10_KEYSPACES, &P10_CLIENTS),
            );
        }
        if args.p12_only {
            timed_table(
                "P12 — disaster recovery over the durable tier (3 replicas, technique × upload lag)",
                || disaster_table(&P12_UPLOAD_LAGS),
            );
        }
        if args.p13_only {
            timed_table(
                "P13 — open-loop scale (3 replicas, technique × clients × total offered rate)",
                || open_loop_scale_table(&P13_TECHNIQUES, &P13_CLIENTS, &P13_RATES),
            );
        }
        if let Some(path) = &args.json {
            let json = bench_json(threads);
            std::fs::write(path, &json).unwrap_or_else(|e| panic!("failed to write {path}: {e}"));
            println!("wrote benchmark summary to {path}");
        }
        return;
    }

    if !args.json_only {
        println!(
            "Performance study of the replication techniques of Wiesmann et al. \
             (ICDCS 2000)\nunits: t = virtual ticks (≈ µs at the LAN profile); \
             deterministic, seed-fixed runs\nsweep threads: {threads}\n"
        );
        let total = Instant::now();
        let degrees = [2, 4, 8, 16];
        timed_table("P1 — mean response time vs replication degree", || {
            response_time_table(&degrees)
        });
        timed_table("P2 — throughput vs clients (3 replicas)", || {
            throughput_table(&[1, 2, 4, 8, 16])
        });
        timed_table(
            "P3 — messages per operation vs replication degree",
            || message_cost_table(&degrees),
        );
        timed_table(
            "P4 — conflicts vs access skew (4 clients, 32 items, rmw txns)",
            || conflicts_table(&[0.0, 0.5, 1.0, 1.5]),
        );
        timed_table(
            "P5 — failover: rank-0 server crashes mid-run (5 replicas)",
            failover_table,
        );
        timed_table(
            "P5b — availability under a primary crash (failover latency, unavailability windows)",
            availability_table,
        );
        timed_table("P6 — eager vs lazy: latency against staleness", || {
            eager_vs_lazy_table(&[1_000, 10_000, 50_000])
        });
        timed_table(
            "P7 — open-loop saturation (4 Poisson clients, 3 replicas)",
            || open_loop_table(&[2_000, 500, 120, 40]),
        );
        timed_table("A2 — ABCAST implementations", abcast_impls_table);
        timed_table("A3 — deadlock handling under contention", || {
            deadlock_table(&[0.5, 1.0, 1.5])
        });
        timed_table(
            "A4 — lock scope: all-site reads vs read-one/write-all (§5.4.1)",
            || lock_scope_table(&[0.2, 0.5, 0.9]),
        );
        timed_table(
            "A5 — lazy reconciliation: LWW vs ABCAST order (§4.6)",
            reconcile_table,
        );
        timed_table(
            "P8 — end-to-end batching (3 replicas, clients × window in ticks)",
            || batching_table(&P8_CLIENTS, &P8_WINDOWS),
        );
        timed_table(
            "P9 — crash recovery (3 replicas, outage × write ratio, MTTR and catch-up)",
            || recovery_table(&P9_DOWNTIMES, &P9_WRITE_RATIOS),
        );
        timed_table(
            "P10 — kernel scaling (3 replicas, technique × keyspace × clients)",
            || kernel_table(&P10_KEYSPACES, &P10_CLIENTS),
        );
        timed_table(
            "P12 — disaster recovery over the durable tier (3 replicas, technique × upload lag)",
            || disaster_table(&P12_UPLOAD_LAGS),
        );
        timed_table(
            "P13 — open-loop scale (3 replicas, technique × clients × total offered rate)",
            || open_loop_scale_table(&P13_TECHNIQUES, &P13_CLIENTS, &P13_RATES),
        );
        println!(
            "full study wall clock: {:.2}s ({threads} sweep threads)",
            total.elapsed().as_secs_f64()
        );
    }

    if let Some(path) = &args.json {
        let json = bench_json(threads);
        std::fs::write(path, &json).unwrap_or_else(|e| panic!("failed to write {path}: {e}"));
        println!("wrote benchmark summary to {path}");
    } else if args.json_only {
        usage("--json-only requires --json PATH");
    }
}
