//! The performance study the paper promised, in one command:
//!
//! ```sh
//! cargo run --release --bin perfstudy -- [--threads N] [--json PATH] [--json-only]
//! ```
//!
//! Prints every table (P1–P7 including the P5b availability study,
//! A2–A5); EXPERIMENTS.md records a reference output with the
//! paper-predicted shapes annotated. Tables are computed through the
//! parallel sweep engine (`repl_bench::sweep`), so `--threads N` (or
//! the `REPL_SWEEP_THREADS` environment variable) fans the run matrix
//! across cores without changing a single printed number — each cell
//! is an isolated, seed-keyed, single-threaded simulation.
//!
//! `--json PATH` additionally writes a machine-readable benchmark
//! summary (the `BENCH_PR2.json` artifact): for every technique, the
//! P1/P2/P3 study cells are re-swept with per-cell wall clocks, and
//! throughput / p50 / p99 / messages-per-txn are reported from the
//! canonical 3-replica, 4-client cell. `--json-only` skips the tables
//! (CI smoke mode).

use std::time::Instant;

use repl_bench::sweep::{run_sweep, CellResult, SweepCell};
use repl_bench::*;
use repl_core::protocols::common::AbcastImpl;
use repl_core::{RunConfig, Technique};

struct Args {
    threads: Option<usize>,
    json: Option<String>,
    json_only: bool,
    p8_only: bool,
}

fn parse_args() -> Args {
    let mut args = Args {
        threads: None,
        json: None,
        json_only: false,
        p8_only: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--threads" => {
                let v = it.next().unwrap_or_else(|| usage("--threads needs a value"));
                let n: usize = v
                    .parse()
                    .ok()
                    .filter(|&n| n > 0)
                    .unwrap_or_else(|| usage("--threads needs a positive integer"));
                args.threads = Some(n);
            }
            "--json" => {
                args.json = Some(it.next().unwrap_or_else(|| usage("--json needs a path")));
            }
            "--json-only" => args.json_only = true,
            "--p8-only" => args.p8_only = true,
            "--help" | "-h" => usage(""),
            other => usage(&format!("unknown argument `{other}`")),
        }
    }
    args
}

fn usage(err: &str) -> ! {
    if !err.is_empty() {
        eprintln!("error: {err}");
    }
    eprintln!("usage: perfstudy [--threads N] [--json PATH] [--json-only] [--p8-only]");
    std::process::exit(if err.is_empty() { 0 } else { 2 });
}

/// The batching windows (in ticks) swept by the P8 study and the JSON
/// artifact. 0 is the unbatched baseline; 250 is sub-round-trip; 1000
/// spans several LAN round trips.
const P8_WINDOWS: [u64; 3] = [0, 250, 1_000];

/// The closed-loop client counts swept by the P8 study: window
/// amortization scales with how many submissions share a window, so the
/// same window is measured from light load to high concurrency.
const P8_CLIENTS: [u32; 3] = [4, 16, 48];

fn timed_table(title: &str, f: impl FnOnce() -> Vec<Row>) {
    let start = Instant::now();
    let rows = f();
    let wall = start.elapsed();
    println!("{}[{:.2}s]\n", render(title, &rows), wall.as_secs_f64());
}

/// The per-technique slice of the P1/P2/P3 study matrices, with the
/// exact seeds and workloads the printed tables use.
fn technique_cells(technique: Technique) -> Vec<SweepCell> {
    let mut cells = Vec::new();
    for n in [2u32, 4, 8, 16] {
        cells.push(SweepCell::new(
            format!("{}/p1/n={n}", technique.name()),
            RunConfig::new(technique)
                .with_servers(n)
                .with_clients(2)
                .with_seed(101)
                .with_trace(false)
                .with_workload(update_workload(12)),
        ));
    }
    for c in [1u32, 2, 4, 8, 16] {
        cells.push(SweepCell::new(
            format!("{}/p2/c={c}", technique.name()),
            RunConfig::new(technique)
                .with_servers(3)
                .with_clients(c)
                .with_seed(103)
                .with_trace(false)
                .with_workload(update_workload(10)),
        ));
    }
    for n in [2u32, 4, 8, 16] {
        cells.push(SweepCell::new(
            format!("{}/p3/n={n}", technique.name()),
            RunConfig::new(technique)
                .with_servers(n)
                .with_clients(2)
                .with_seed(107)
                .with_trace(false)
                .with_workload(update_workload(80)),
        ));
    }
    cells
}

/// Renders the P8 batching section of the JSON artifact: per
/// (technique, abcast, clients) series over the window axis, with the
/// total-message and coordination-message reduction each series achieves
/// against its own window-0 baseline. Total messages carry the fixed
/// client traffic (one invoke + one reply per answering replica), so the
/// headline amortization claim is made on coordination (server↔server)
/// messages — the share an ordering layer can actually batch.
fn batching_json(threads: usize) -> String {
    use std::fmt::Write as _;
    let cells = batching_cells(&P8_CLIENTS, &P8_WINDOWS);
    let sweep: Vec<SweepCell> = cells
        .iter()
        .map(|c| {
            let impl_name = match c.abcast {
                Some(AbcastImpl::Sequencer) => "seq",
                Some(AbcastImpl::Consensus) => "cons",
                None => "none",
            };
            SweepCell::new(
                format!(
                    "{}/p8/{impl_name}/c={}/w={}",
                    c.technique.name(),
                    c.clients,
                    c.window
                ),
                c.cfg.clone(),
            )
        })
        .collect();
    let results = run_sweep(&sweep, threads);
    let high_clients = *P8_CLIENTS.iter().max().expect("client axis nonempty");

    let mut s = String::new();
    let _ = writeln!(s, "  \"batching\": {{");
    let _ = writeln!(s, "    \"servers\": 3,");
    let _ = writeln!(
        s,
        "    \"clients\": [{}],",
        P8_CLIENTS
            .iter()
            .map(|c| c.to_string())
            .collect::<Vec<_>>()
            .join(", ")
    );
    let _ = writeln!(s, "    \"high_concurrency_clients\": {high_clients},");
    let _ = writeln!(
        s,
        "    \"windows_ticks\": [{}],",
        P8_WINDOWS
            .iter()
            .map(|w| w.to_string())
            .collect::<Vec<_>>()
            .join(", ")
    );
    let _ = writeln!(s, "    \"series\": [");
    // Cells arrive grouped: windows.len() consecutive cells per
    // (technique, abcast, clients) series, the window axis innermost.
    let per_series = P8_WINDOWS.len();
    let n_series = cells.len() / per_series;
    let mut msg_2x_series = 0u32;
    // Techniques with a >=2x coordination-message reduction at the
    // high-concurrency client count (any abcast implementation).
    let mut coord_2x_techniques: Vec<&'static str> = Vec::new();
    for i in 0..n_series {
        let group = &cells[i * per_series..(i + 1) * per_series];
        let reports: Vec<_> = results[i * per_series..(i + 1) * per_series]
            .iter()
            .map(|c| {
                c.result
                    .as_ref()
                    .unwrap_or_else(|e| panic!("cell `{}` failed: {e}", c.label))
            })
            .collect();
        let head = &group[0];
        let impl_json = match head.abcast {
            Some(AbcastImpl::Sequencer) => "\"sequencer\"",
            Some(AbcastImpl::Consensus) => "\"consensus\"",
            None => "null",
        };
        let base_msgs = reports[0].messages_per_op();
        let base_coord = reports[0].coordination_messages_per_op();
        let best = |f: &dyn Fn(&repl_core::RunReport) -> f64, base: f64| {
            reports
                .iter()
                .skip(1)
                .map(|r| base / f(r).max(f64::MIN_POSITIVE))
                .fold(0.0f64, f64::max)
        };
        let msg_reduction = best(&|r| r.messages_per_op(), base_msgs);
        let coord_reduction = best(&|r| r.coordination_messages_per_op(), base_coord);
        if head.abcast.is_some() && msg_reduction >= 2.0 {
            msg_2x_series += 1;
        }
        if head.abcast.is_some()
            && head.clients == high_clients
            && coord_reduction >= 2.0
            && !coord_2x_techniques.contains(&head.technique.name())
        {
            coord_2x_techniques.push(head.technique.name());
        }
        let _ = writeln!(s, "      {{");
        let _ = writeln!(s, "        \"technique\": \"{}\",", head.technique.name());
        let _ = writeln!(s, "        \"abcast\": {impl_json},");
        let _ = writeln!(s, "        \"clients\": {},", head.clients);
        let _ = writeln!(s, "        \"points\": [");
        for (j, (cell, report)) in group.iter().zip(&reports).enumerate() {
            let mut lat = report.latencies.clone();
            let p50 = lat.percentile(0.5).ticks();
            let p99 = lat.percentile(0.99).ticks();
            let _ = writeln!(
                s,
                "          {{\"window\": {}, \"throughput_ops_per_s\": {:.1}, \
                 \"p50_response_ticks\": {p50}, \"p99_response_ticks\": {p99}, \
                 \"messages_per_txn\": {:.2}, \"coord_messages_per_txn\": {:.2}}}{}",
                cell.window,
                report.throughput(),
                report.messages_per_op(),
                report.coordination_messages_per_op(),
                if j + 1 < group.len() { "," } else { "" }
            );
        }
        let _ = writeln!(s, "        ],");
        let _ = writeln!(s, "        \"msg_reduction_best\": {msg_reduction:.2},");
        let _ = writeln!(s, "        \"coord_reduction_best\": {coord_reduction:.2}");
        let _ = writeln!(
            s,
            "      }}{}",
            if i + 1 < n_series { "," } else { "" }
        );
    }
    let _ = writeln!(s, "    ],");
    let _ = writeln!(
        s,
        "    \"abcast_series_with_2x_msg_reduction\": {msg_2x_series},"
    );
    let _ = writeln!(
        s,
        "    \"abcast_techniques_with_2x_coord_reduction\": [{}]",
        coord_2x_techniques
            .iter()
            .map(|t| format!("\"{t}\""))
            .collect::<Vec<_>>()
            .join(", ")
    );
    let _ = writeln!(s, "  }}");
    s
}

/// Runs the benchmark matrix and renders `BENCH_PR3.json`.
fn bench_json(threads: usize) -> String {
    use std::fmt::Write as _;
    let techniques = study_techniques();
    let mut cells = Vec::new();
    let mut spans = Vec::new(); // (technique, start, len) into `cells`
    for &technique in &techniques {
        let mine = technique_cells(technique);
        spans.push((technique, cells.len(), mine.len()));
        cells.extend(mine);
    }
    let start = Instant::now();
    let results = run_sweep(&cells, threads);
    let total_wall = start.elapsed();

    let mut s = String::new();
    let _ = writeln!(s, "{{");
    let _ = writeln!(s, "  \"schema\": \"bench_pr3/v1\",");
    let _ = writeln!(s, "  \"threads\": {threads},");
    let _ = writeln!(
        s,
        "  \"total_wall_ms\": {:.1},",
        total_wall.as_secs_f64() * 1e3
    );
    let _ = writeln!(s, "  \"cells_per_technique\": {},", spans[0].2);
    let _ = writeln!(s, "  \"techniques\": [");
    for (i, &(technique, start, len)) in spans.iter().enumerate() {
        let slice: &[CellResult] = &results[start..start + len];
        let study_wall_ms: f64 = slice.iter().map(|c| c.wall.as_secs_f64() * 1e3).sum();
        // Canonical metrics cell: P2 at 3 replicas / 4 clients.
        let canonical = slice
            .iter()
            .find(|c| c.label.ends_with("/p2/c=4"))
            .expect("canonical cell present");
        let report = canonical
            .result
            .as_ref()
            .unwrap_or_else(|e| panic!("cell `{}` failed: {e}", canonical.label));
        let mut lat = report.latencies.clone();
        let p50 = lat.percentile(0.5).ticks();
        let p99 = lat.percentile(0.99).ticks();
        let _ = writeln!(s, "    {{");
        let _ = writeln!(s, "      \"technique\": \"{}\",", technique.name());
        let _ = writeln!(
            s,
            "      \"throughput_ops_per_s\": {:.1},",
            report.throughput()
        );
        let _ = writeln!(s, "      \"p50_response_ticks\": {p50},");
        let _ = writeln!(s, "      \"p99_response_ticks\": {p99},");
        let _ = writeln!(
            s,
            "      \"messages_per_txn\": {:.2},",
            report.messages_per_op()
        );
        let _ = writeln!(s, "      \"study_wall_ms\": {study_wall_ms:.1}");
        let _ = writeln!(
            s,
            "    }}{}",
            if i + 1 < spans.len() { "," } else { "" }
        );
    }
    let _ = writeln!(s, "  ],");
    s.push_str(&batching_json(threads));
    let _ = writeln!(s, "}}");
    s
}

fn main() {
    let args = parse_args();
    let threads = match args.threads {
        Some(n) => {
            // Route the table sweeps (which consult the environment)
            // through the same knob.
            std::env::set_var("REPL_SWEEP_THREADS", n.to_string());
            n
        }
        None => repl_bench::sweep::default_threads(),
    };

    if args.p8_only {
        timed_table(
            "P8 — end-to-end batching (3 replicas, clients × window in ticks)",
            || batching_table(&P8_CLIENTS, &P8_WINDOWS),
        );
        if let Some(path) = &args.json {
            let json = bench_json(threads);
            std::fs::write(path, &json)
                .unwrap_or_else(|e| panic!("failed to write {path}: {e}"));
            println!("wrote benchmark summary to {path}");
        }
        return;
    }

    if !args.json_only {
        println!(
            "Performance study of the replication techniques of Wiesmann et al. \
             (ICDCS 2000)\nunits: t = virtual ticks (≈ µs at the LAN profile); \
             deterministic, seed-fixed runs\nsweep threads: {threads}\n"
        );
        let total = Instant::now();
        let degrees = [2, 4, 8, 16];
        timed_table("P1 — mean response time vs replication degree", || {
            response_time_table(&degrees)
        });
        timed_table("P2 — throughput vs clients (3 replicas)", || {
            throughput_table(&[1, 2, 4, 8, 16])
        });
        timed_table("P3 — messages per operation vs replication degree", || {
            message_cost_table(&degrees)
        });
        timed_table(
            "P4 — conflicts vs access skew (4 clients, 32 items, rmw txns)",
            || conflicts_table(&[0.0, 0.5, 1.0, 1.5]),
        );
        timed_table(
            "P5 — failover: rank-0 server crashes mid-run (5 replicas)",
            failover_table,
        );
        timed_table(
            "P5b — availability under a primary crash (failover latency, unavailability windows)",
            availability_table,
        );
        timed_table("P6 — eager vs lazy: latency against staleness", || {
            eager_vs_lazy_table(&[1_000, 10_000, 50_000])
        });
        timed_table(
            "P7 — open-loop saturation (4 Poisson clients, 3 replicas)",
            || open_loop_table(&[2_000, 500, 120, 40]),
        );
        timed_table("A2 — ABCAST implementations", abcast_impls_table);
        timed_table("A3 — deadlock handling under contention", || {
            deadlock_table(&[0.5, 1.0, 1.5])
        });
        timed_table(
            "A4 — lock scope: all-site reads vs read-one/write-all (§5.4.1)",
            || lock_scope_table(&[0.2, 0.5, 0.9]),
        );
        timed_table(
            "A5 — lazy reconciliation: LWW vs ABCAST order (§4.6)",
            reconcile_table,
        );
        timed_table(
            "P8 — end-to-end batching (3 replicas, clients × window in ticks)",
            || batching_table(&P8_CLIENTS, &P8_WINDOWS),
        );
        println!(
            "full study wall clock: {:.2}s ({threads} sweep threads)",
            total.elapsed().as_secs_f64()
        );
    }

    if let Some(path) = &args.json {
        let json = bench_json(threads);
        std::fs::write(path, &json)
            .unwrap_or_else(|e| panic!("failed to write {path}: {e}"));
        println!("wrote benchmark summary to {path}");
    } else if args.json_only {
        usage("--json-only requires --json PATH");
    }
}
