//! Parallel sweep engine: fan seeded single-threaded [`World`] runs
//! across OS threads.
//!
//! The simulator is deliberately single-threaded — determinism comes
//! from a totally ordered event heap and one RNG stream — so the unit
//! of parallelism is the *run*, never the event. A sweep is a list of
//! independent `(label, RunConfig)` cells; workers pull cells off a
//! shared atomic index and execute each one with
//! [`repl_core::try_run`], which is `Send` end to end (verified by a
//! compile-time assertion in `repl-core`). Results land back in cell
//! order regardless of completion order, so every table renders
//! identically at any thread count — a property locked in by
//! `tests/determinism.rs`.
//!
//! Errors don't tear down the sweep: each cell carries its own
//! `Result<RunReport, RunError>`, so one mis-configured cell (or an
//! internal panic, converted by `try_run`) surfaces as data while the
//! rest of the matrix completes.
//!
//! [`World`]: repl_sim::World

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

use repl_core::{try_run, RunConfig, RunError, RunReport};

/// One unit of sweep work: a display label and the run it describes.
#[derive(Debug, Clone)]
pub struct SweepCell {
    /// Human-readable cell name, e.g. `"active/n=8"`.
    pub label: String,
    /// The full run configuration (technique, seed, workload, faults).
    pub cfg: RunConfig,
}

impl SweepCell {
    /// Creates a cell.
    pub fn new(label: impl Into<String>, cfg: RunConfig) -> Self {
        SweepCell {
            label: label.into(),
            cfg,
        }
    }
}

/// Outcome of one cell: the run's report (or typed error) plus the
/// wall-clock time that cell took on its worker thread.
#[derive(Debug)]
pub struct CellResult {
    /// Label copied from the input cell.
    pub label: String,
    /// The run outcome; `Err` carries [`RunError`] without aborting the
    /// rest of the sweep.
    pub result: Result<RunReport, RunError>,
    /// Wall-clock duration of this cell alone.
    pub wall: Duration,
}

impl CellResult {
    /// Unwraps the report, panicking with the cell label on error.
    ///
    /// Use for sweeps whose configs are statically known-good (the
    /// study tables); anything driven by external input should match
    /// on [`CellResult::result`] instead.
    pub fn expect_report(self) -> RunReport {
        match self.result {
            Ok(r) => r,
            Err(e) => panic!("sweep cell `{}` failed: {e}", self.label),
        }
    }
}

/// Number of worker threads to use: the `REPL_SWEEP_THREADS`
/// environment variable if set and positive, else the machine's
/// available parallelism, else 1.
pub fn default_threads() -> usize {
    if let Ok(v) = std::env::var("REPL_SWEEP_THREADS") {
        if let Ok(n) = v.trim().parse::<usize>() {
            if n > 0 {
                return n;
            }
        }
    }
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Runs every cell, fanning across `threads` workers, and returns
/// results **in cell order**.
///
/// `threads == 1` executes inline on the caller's thread (the serial
/// reference path — no spawn, identical to a plain `try_run` loop).
/// Each worker claims cells through a shared atomic counter, so the
/// assignment of cells to threads is load-balanced and *not*
/// deterministic — but cell results are, because every run is an
/// isolated single-threaded simulation keyed only by its config.
pub fn run_sweep(cells: &[SweepCell], threads: usize) -> Vec<CellResult> {
    let threads = threads.max(1).min(cells.len().max(1));
    if threads == 1 {
        return cells.iter().map(run_cell).collect();
    }

    let next = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<CellResult>>> = cells.iter().map(|_| Mutex::new(None)).collect();
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= cells.len() {
                    break;
                }
                let done = run_cell(&cells[i]);
                *slots[i].lock().expect("sweep slot poisoned") = Some(done);
            });
        }
    });
    slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("sweep slot poisoned")
                .expect("every sweep cell completed")
        })
        .collect()
}

fn run_cell(cell: &SweepCell) -> CellResult {
    let start = Instant::now();
    let result = try_run(&cell.cfg);
    CellResult {
        label: cell.label.clone(),
        result,
        wall: start.elapsed(),
    }
}

/// Convenience for the study tables: sweep bare configs (labelled by
/// index) at [`default_threads`] and unwrap every report.
///
/// Panics if any cell fails — table configs are static and a failure
/// is a bug, not an operational condition.
pub fn sweep_reports(cfgs: Vec<RunConfig>) -> Vec<RunReport> {
    let cells: Vec<SweepCell> = cfgs
        .into_iter()
        .enumerate()
        .map(|(i, cfg)| SweepCell::new(format!("cell[{i}]"), cfg))
        .collect();
    run_sweep(&cells, default_threads())
        .into_iter()
        .map(CellResult::expect_report)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::update_workload;
    use repl_core::Technique;

    fn small_cfg(seed: u64) -> RunConfig {
        RunConfig::new(Technique::Active)
            .with_servers(3)
            .with_clients(2)
            .with_seed(seed)
            .with_trace(false)
            .with_workload(update_workload(3))
    }

    #[test]
    fn results_come_back_in_cell_order() {
        let cells: Vec<SweepCell> = (0..6)
            .map(|i| SweepCell::new(format!("seed-{i}"), small_cfg(100 + i)))
            .collect();
        let results = run_sweep(&cells, 3);
        assert_eq!(results.len(), 6);
        for (i, r) in results.iter().enumerate() {
            assert_eq!(r.label, format!("seed-{i}"));
            assert!(r.result.is_ok());
        }
    }

    #[test]
    fn a_failing_cell_does_not_abort_the_sweep() {
        let mut bad = small_cfg(7);
        bad.servers = 0;
        let cells = vec![
            SweepCell::new("good-a", small_cfg(7)),
            SweepCell::new("bad", bad),
            SweepCell::new("good-b", small_cfg(8)),
        ];
        let results = run_sweep(&cells, 2);
        assert!(results[0].result.is_ok());
        assert_eq!(
            results[1].result.as_ref().unwrap_err(),
            &RunError::NoServers
        );
        assert!(results[2].result.is_ok());
    }

    #[test]
    fn thread_count_does_not_change_reports() {
        let cells: Vec<SweepCell> = (0..4)
            .map(|i| SweepCell::new(format!("c{i}"), small_cfg(40 + i)))
            .collect();
        let serial = run_sweep(&cells, 1);
        let parallel = run_sweep(&cells, 4);
        for (s, p) in serial.iter().zip(&parallel) {
            let (s, p) = (s.result.as_ref().unwrap(), p.result.as_ref().unwrap());
            assert_eq!(s.digest(), p.digest());
            assert_eq!(s.trace_hash, p.trace_hash);
        }
    }

    #[test]
    fn oversized_thread_count_is_clamped() {
        let cells = vec![SweepCell::new("only", small_cfg(1))];
        let results = run_sweep(&cells, 64);
        assert_eq!(results.len(), 1);
        assert!(results[0].result.is_ok());
    }

    #[test]
    fn wall_clock_is_recorded() {
        let cells = vec![SweepCell::new("timed", small_cfg(2))];
        let results = run_sweep(&cells, 1);
        assert!(results[0].wall > Duration::ZERO);
    }
}
