//! # repl-bench — the performance study the paper promised
//!
//! "Presently, we are planning a performance study of the different
//! approaches, taking into account different workloads and failures
//! assumptions." — Wiesmann et al., ICDCS 2000, Section 6.
//!
//! This crate *is* that study, over the reproduction's simulator. Each
//! experiment is a pure function returning printable rows, shared by:
//!
//! * `cargo run --bin perfstudy` — prints every table (the artifact
//!   recorded in EXPERIMENTS.md),
//! * `cargo run --bin figures` — regenerates the paper's figures,
//! * `cargo bench` — Criterion benchmarks, one target per experiment.
//!
//! Absolute numbers are simulator ticks (≈ µs at LAN latencies); the
//! *shapes* — who wins, by what factor, where the curves bend — are the
//! reproduction targets.

use repl_core::protocols::common::{AbcastImpl, ExecutionMode};
use repl_core::{BatchConfig, DurabilityConfig, RunConfig, RunReport, Technique};
use repl_db::DeadlockPolicy;
use repl_sim::{NodeId, SimDuration, SimTime};
use repl_workload::{CrashSchedule, FaultPlan, WorkloadSpec};

pub mod kernel;
pub mod sweep;

pub use kernel::{
    kernel_cell_label, kernel_cells, kernel_table, kernel_techniques, lock_microcycle_secs,
    microcycle_keys, seed_lock_microcycle_secs, KernelCell, SeedLockManager, MICROCYCLE_OPS,
};
use sweep::sweep_reports;

/// One row of an experiment table: a label and named columns.
#[derive(Debug, Clone)]
pub struct Row {
    /// Row label (technique, parameter value, …).
    pub label: String,
    /// `(column name, value)` pairs.
    pub cells: Vec<(&'static str, String)>,
}

impl Row {
    /// Creates a row.
    pub fn new(label: impl Into<String>) -> Self {
        Row {
            label: label.into(),
            cells: Vec::new(),
        }
    }

    /// Adds a cell.
    pub fn cell(mut self, name: &'static str, value: impl std::fmt::Display) -> Self {
        self.cells.push((name, value.to_string()));
        self
    }
}

/// Renders rows as an aligned text table.
pub fn render(title: &str, rows: &[Row]) -> String {
    use std::fmt::Write as _;
    let mut s = String::new();
    let _ = writeln!(s, "### {title}");
    if rows.is_empty() {
        let _ = writeln!(s, "(no rows)");
        return s;
    }
    let label_w = rows.iter().map(|r| r.label.len()).max().unwrap_or(5).max(5);
    let _ = write!(s, "{:<label_w$}", "");
    let mut col_w = Vec::new();
    for (name, _) in &rows[0].cells {
        let w = rows
            .iter()
            .flat_map(|r| r.cells.iter())
            .filter(|(n, _)| n == name)
            .map(|(_, v)| v.len())
            .max()
            .unwrap_or(0)
            .max(name.len());
        col_w.push(w);
        let _ = write!(s, "  {name:>w$}");
    }
    let _ = writeln!(s);
    for r in rows {
        let _ = write!(s, "{:<label_w$}", r.label);
        for ((_, v), w) in r.cells.iter().zip(&col_w) {
            let _ = write!(s, "  {v:>w$}");
        }
        let _ = writeln!(s);
    }
    s
}

/// The baseline update workload used across the study.
pub fn update_workload(txns: u32) -> WorkloadSpec {
    WorkloadSpec::default()
        .with_items(128)
        .with_read_ratio(0.0)
        .with_txns_per_client(txns)
}

fn p99(report: &RunReport) -> u64 {
    let mut l = report.latencies.clone();
    l.percentile(0.99).ticks()
}

fn worst(report: &RunReport) -> u64 {
    let mut l = report.latencies.clone();
    l.percentile(1.0).ticks()
}

/// The techniques included in the latency/throughput/message sweeps.
pub fn study_techniques() -> Vec<Technique> {
    Technique::ALL.to_vec()
}

/// P1 — response time per technique vs replication degree.
pub fn response_time_table(degrees: &[u32]) -> Vec<Row> {
    let techniques = study_techniques();
    let mut cfgs = Vec::new();
    for &technique in &techniques {
        for &n in degrees {
            cfgs.push(
                RunConfig::new(technique)
                    .with_servers(n)
                    .with_clients(2)
                    .with_seed(101)
                    .with_trace(false)
                    .with_workload(update_workload(12)),
            );
        }
    }
    let mut reports = sweep_reports(cfgs).into_iter();
    let mut rows = Vec::new();
    for technique in techniques {
        let mut row = Row::new(technique.name());
        for &n in degrees {
            let report = reports.next().expect("one report per sweep cell");
            let name: &'static str = degree_label(n);
            row = row.cell(name, format!("{}t", report.latencies.mean().ticks()));
        }
        rows.push(row);
    }
    rows
}

fn degree_label(n: u32) -> &'static str {
    match n {
        2 => "n=2",
        3 => "n=3",
        4 => "n=4",
        8 => "n=8",
        16 => "n=16",
        _ => "n=?",
    }
}

fn clients_label(n: u32) -> &'static str {
    match n {
        1 => "c=1",
        2 => "c=2",
        4 => "c=4",
        8 => "c=8",
        16 => "c=16",
        _ => "c=?",
    }
}

/// P2 — closed-loop throughput per technique vs client count.
pub fn throughput_table(client_counts: &[u32]) -> Vec<Row> {
    let techniques = study_techniques();
    let mut cfgs = Vec::new();
    for &technique in &techniques {
        for &c in client_counts {
            cfgs.push(
                RunConfig::new(technique)
                    .with_servers(3)
                    .with_clients(c)
                    .with_seed(103)
                    .with_trace(false)
                    .with_workload(update_workload(10)),
            );
        }
    }
    let mut reports = sweep_reports(cfgs).into_iter();
    let mut rows = Vec::new();
    for technique in techniques {
        let mut row = Row::new(technique.name());
        for &c in client_counts {
            let report = reports.next().expect("one report per sweep cell");
            row = row.cell(clients_label(c), format!("{:.0}/s", report.throughput()));
        }
        rows.push(row);
    }
    rows
}

/// P3 — messages and bytes per operation vs replication degree.
///
/// Uses long runs (80 transactions per client) so the failure detectors'
/// O(n²) background heartbeats amortize over real work; the residual
/// per-op cost of FD-based techniques still grows faster with n than the
/// pure protocol cost — an honest finding, recorded in EXPERIMENTS.md.
pub fn message_cost_table(degrees: &[u32]) -> Vec<Row> {
    let techniques = study_techniques();
    let mut cfgs = Vec::new();
    for &technique in &techniques {
        for &n in degrees {
            cfgs.push(
                RunConfig::new(technique)
                    .with_servers(n)
                    .with_clients(2)
                    .with_seed(107)
                    .with_trace(false)
                    .with_workload(update_workload(80)),
            );
        }
    }
    let mut reports = sweep_reports(cfgs).into_iter();
    let mut rows = Vec::new();
    for technique in techniques {
        let mut row = Row::new(technique.name());
        for &n in degrees {
            let report = reports.next().expect("one report per sweep cell");
            row = row.cell(degree_label(n), format!("{:.1}", report.messages_per_op()));
        }
        rows.push(row);
    }
    rows
}

/// P4 — conflict behaviour vs access skew: aborts (certification),
/// wounds (distributed locking) and reconciliations (lazy UE).
pub fn conflicts_table(skews: &[f64]) -> Vec<Row> {
    let contended = |skew: f64| {
        WorkloadSpec::default()
            .with_items(32)
            .with_read_ratio(0.5)
            .with_ops_per_txn(2)
            .with_skew(skew)
            .with_txns_per_client(10)
            .with_think_time(SimDuration::from_ticks(50))
    };
    let mut cfgs = Vec::new();
    for &skew in skews {
        cfgs.push(
            RunConfig::new(Technique::Certification)
                .with_servers(3)
                .with_clients(4)
                .with_seed(109)
                .with_trace(false)
                .with_workload(contended(skew)),
        );
        cfgs.push(
            RunConfig::new(Technique::EagerUpdateEverywhereLocking)
                .with_servers(3)
                .with_clients(4)
                .with_seed(109)
                .with_trace(false)
                .with_workload(contended(skew)),
        );
        cfgs.push(
            RunConfig::new(Technique::LazyUpdateEverywhere)
                .with_servers(3)
                .with_clients(4)
                .with_seed(109)
                .with_trace(false)
                .with_propagation_delay(SimDuration::from_ticks(2_000))
                .with_workload(contended(skew)),
        );
    }
    let mut reports = sweep_reports(cfgs).into_iter();
    let mut rows = Vec::new();
    for &skew in skews {
        let cert = reports.next().expect("one report per sweep cell");
        let lock = reports.next().expect("one report per sweep cell");
        let lazy = reports.next().expect("one report per sweep cell");
        rows.push(
            Row::new(format!("zipf {skew:.1}"))
                .cell("cert abort%", format!("{:.1}", cert.abort_rate() * 100.0))
                .cell("lock wounds", lock.wounds)
                .cell("lock mean", format!("{}t", lock.latencies.mean().ticks()))
                .cell("lazy reconciled", lazy.reconciliations),
        );
    }
    rows
}

/// P5 — failover: crash the rank-0 server mid-run.
///
/// The "unaffected client" column is the paper's failure-transparency
/// axis made visible: under active-style techniques a client attached to
/// a *surviving* replica never notices the crash, while primary-copy
/// techniques stall every client (they all depend on the dead primary).
pub fn failover_table() -> Vec<Row> {
    let crash = CrashSchedule::new().crash_at(SimTime::from_ticks(3_000), NodeId::new(0));
    let techniques = [
        Technique::Active,
        Technique::SemiActive,
        Technique::SemiPassive,
        Technique::Passive,
        Technique::EagerPrimary,
    ];
    let mut cfgs = Vec::new();
    for technique in techniques {
        let mut cfg = RunConfig::new(technique)
            .with_servers(5)
            .with_clients(4)
            .with_seed(113)
            .with_trace(false)
            .with_abcast(AbcastImpl::Consensus)
            .with_crashes(crash.clone())
            .with_workload(update_workload(10));
        if technique == Technique::SemiActive {
            cfg = cfg.with_exec(ExecutionMode::NonDeterministic);
        }
        let mut baseline = cfg.clone();
        baseline.faults = FaultPlan::new();
        cfgs.push(cfg);
        cfgs.push(baseline);
    }
    let mut reports = sweep_reports(cfgs).into_iter();
    let mut rows = Vec::new();
    for technique in techniques {
        let report = reports.next().expect("one report per sweep cell");
        let baseline = reports.next().expect("one report per sweep cell");
        // Worst latency per client; the best-off client shows whether the
        // technique kept *anyone* fully unaffected.
        let mut per_client_worst: std::collections::HashMap<u32, u64> =
            std::collections::HashMap::new();
        for (c, rec) in &report.records {
            if let Some(l) = rec.latency() {
                let e = per_client_worst.entry(*c).or_insert(0);
                *e = (*e).max(l.ticks());
            }
        }
        let unaffected = per_client_worst.values().copied().min().unwrap_or(0);
        rows.push(
            Row::new(technique.name())
                .cell("mean", format!("{}t", report.latencies.mean().ticks()))
                .cell("worst", format!("{}t", worst(&report)))
                .cell("unaffected client", format!("{unaffected}t"))
                .cell("worst (no crash)", format!("{}t", worst(&baseline)))
                .cell("retries", report.client_retries)
                .cell("unanswered", report.ops_unanswered),
        );
    }
    rows
}

/// P5b — availability under a primary crash, via the [`FaultPlan`]
/// nemesis and the runner's availability metrics: failover latency
/// (first crash → next committed response anywhere), the worst
/// request→response gap any client saw, and the best-off client's gap
/// (the failure-transparency axis again, now including stalled
/// operations rather than only answered ones).
pub fn availability_table() -> Vec<Row> {
    let plan = FaultPlan::new().crash_at(SimTime::from_ticks(3_000), NodeId::new(0));
    let techniques = [
        Technique::Passive,
        Technique::SemiPassive,
        Technique::EagerPrimary,
    ];
    let cfgs = techniques
        .iter()
        .map(|&technique| {
            RunConfig::new(technique)
                .with_servers(5)
                .with_clients(4)
                .with_seed(113)
                .with_trace(false)
                .with_abcast(AbcastImpl::Consensus)
                .with_faults(plan.clone())
                .with_workload(update_workload(10))
        })
        .collect();
    let mut rows = Vec::new();
    for (technique, report) in techniques.iter().zip(sweep_reports(cfgs)) {
        let a = &report.availability;
        let failover = match a.failover_latency {
            Some(d) => format!("{}t", d.ticks()),
            None => "-".into(),
        };
        rows.push(
            Row::new(technique.name())
                .cell("failover", failover)
                .cell("worst gap", format!("{}t", a.worst_gap().ticks()))
                .cell(
                    "best client gap",
                    format!("{}t", a.best_client_gap().ticks()),
                )
                .cell("faults", a.faults_injected)
                .cell("retries", report.client_retries)
                .cell("unanswered", report.ops_unanswered),
        );
    }
    rows
}

/// P6 — eager vs lazy: response time against staleness as the
/// propagation window widens.
pub fn eager_vs_lazy_table(delays: &[u64]) -> Vec<Row> {
    let workload = WorkloadSpec::default()
        .with_items(16)
        .with_read_ratio(0.6)
        .with_skew(0.5)
        .with_txns_per_client(12)
        .with_think_time(SimDuration::from_ticks(500));
    let eager = [
        Technique::EagerPrimary,
        Technique::EagerUpdateEverywhereAbcast,
    ];
    let lazy = [Technique::LazyPrimary, Technique::LazyUpdateEverywhere];
    let mut cfgs = Vec::new();
    let mut labels = Vec::new();
    for technique in eager {
        cfgs.push(
            RunConfig::new(technique)
                .with_servers(3)
                .with_clients(3)
                .with_seed(127)
                .with_trace(false)
                .with_workload(workload.clone()),
        );
        labels.push(technique.name().to_string());
    }
    for &delay in delays {
        for technique in lazy {
            cfgs.push(
                RunConfig::new(technique)
                    .with_servers(3)
                    .with_clients(3)
                    .with_seed(127)
                    .with_trace(false)
                    .with_propagation_delay(SimDuration::from_ticks(delay))
                    .with_workload(workload.clone()),
            );
            labels.push(format!("{} (delay {delay}t)", technique.name()));
        }
    }
    labels
        .into_iter()
        .zip(sweep_reports(cfgs))
        .map(|(label, report)| {
            Row::new(label)
                .cell("mean", format!("{}t", report.latencies.mean().ticks()))
                .cell("p99", format!("{}t", p99(&report)))
                .cell("stale reads", report.stale_reads().len())
                .cell("reconciled", report.reconciliations)
        })
        .collect()
}

/// A2 — sequencer- vs consensus-based ABCAST underneath the same
/// technique.
pub fn abcast_impls_table() -> Vec<Row> {
    let mut cfgs = Vec::new();
    let mut labels = Vec::new();
    for technique in [
        Technique::Active,
        Technique::EagerUpdateEverywhereAbcast,
        Technique::Certification,
    ] {
        for (label, which) in [
            ("sequencer", AbcastImpl::Sequencer),
            ("consensus", AbcastImpl::Consensus),
        ] {
            cfgs.push(
                RunConfig::new(technique)
                    .with_servers(4)
                    .with_clients(2)
                    .with_seed(131)
                    .with_trace(false)
                    .with_abcast(which)
                    .with_workload(update_workload(10)),
            );
            labels.push(format!("{} / {label}", technique.name()));
        }
    }
    let mut rows = Vec::new();
    for (label, report) in labels.into_iter().zip(sweep_reports(cfgs)) {
        rows.push(
            Row::new(label)
                .cell("mean", format!("{}t", report.latencies.mean().ticks()))
                .cell("msgs/op", format!("{:.1}", report.messages_per_op()))
                .cell(
                    "bytes/op",
                    format!(
                        "{:.0}",
                        report.messages.bytes_sent as f64 / report.ops_completed.max(1) as f64
                    ),
                ),
        );
    }
    rows
}

/// A3 — wound-wait vs distributed deadlock detection under rising
/// contention.
pub fn deadlock_table(skews: &[f64]) -> Vec<Row> {
    let contended = |skew: f64| {
        WorkloadSpec::default()
            .with_items(8)
            .with_read_ratio(0.0)
            .with_ops_per_txn(2)
            .with_skew(skew)
            .with_txns_per_client(6)
            .with_think_time(SimDuration::from_ticks(100))
    };
    let mut cfgs = Vec::new();
    let mut labels = Vec::new();
    for &skew in skews {
        for (label, policy) in [
            ("wound-wait", DeadlockPolicy::WoundWait),
            ("detection", DeadlockPolicy::Detect),
        ] {
            cfgs.push(
                RunConfig::new(Technique::EagerUpdateEverywhereLocking)
                    .with_servers(3)
                    .with_clients(3)
                    .with_seed(137)
                    .with_trace(false)
                    .with_deadlock(policy)
                    .with_workload(contended(skew)),
            );
            labels.push(format!("zipf {skew:.1} / {label}"));
        }
    }
    labels
        .into_iter()
        .zip(sweep_reports(cfgs))
        .map(|(label, report)| {
            Row::new(label)
                .cell("duration", format!("{}t", report.duration.ticks()))
                .cell("mean", format!("{}t", report.latencies.mean().ticks()))
                .cell("wounds", report.wounds)
                .cell("server aborts", report.server_aborts)
                .cell("unanswered", report.ops_unanswered)
        })
        .collect()
}

/// P7 — open-loop saturation: Poisson arrivals at increasing offered
/// load. Closed-loop clients self-throttle; open-loop clients expose the
/// point where a technique's pipeline can no longer keep up (operations
/// left unanswered at the deadline, latency blow-up).
pub fn open_loop_table(mean_interarrivals: &[u64]) -> Vec<Row> {
    use repl_core::Arrival;
    let mut cfgs = Vec::new();
    let mut labels = Vec::new();
    for technique in [
        Technique::Active,
        Technique::SemiPassive,
        Technique::EagerUpdateEverywhereLocking,
        Technique::LazyUpdateEverywhere,
    ] {
        for &mean in mean_interarrivals {
            cfgs.push(
                RunConfig::new(technique)
                    .with_servers(3)
                    .with_clients(4)
                    .with_seed(151)
                    .with_arrival(Arrival::Open(mean))
                    .with_trace(false)
                    .with_max_time(SimTime::from_ticks(400_000))
                    .with_workload(update_workload(40)),
            );
            let offered = 1_000_000.0 * 4.0 / mean as f64; // ops/s across clients
            labels.push(format!("{} @ {:.0}/s", technique.name(), offered));
        }
    }
    labels
        .into_iter()
        .zip(sweep_reports(cfgs))
        .map(|(label, report)| {
            Row::new(label)
                .cell("completed", report.ops_completed)
                .cell("unanswered", report.ops_unanswered)
                .cell("mean", format!("{}t", report.latencies.mean().ticks()))
                .cell("p99", format!("{}t", p99(&report)))
        })
        .collect()
}

/// A4 — read-one/write-all vs all-site read locks (paper §5.4.1's quorum
/// note), across read ratios.
pub fn lock_scope_table(read_ratios: &[f64]) -> Vec<Row> {
    let mut cfgs = Vec::new();
    let mut labels = Vec::new();
    for &ratio in read_ratios {
        for (label, rowa) in [("all-site", false), ("read-one/write-all", true)] {
            cfgs.push(
                RunConfig::new(Technique::EagerUpdateEverywhereLocking)
                    .with_servers(4)
                    .with_clients(3)
                    .with_seed(139)
                    .with_rowa(rowa)
                    .with_trace(false)
                    .with_workload(
                        WorkloadSpec::default()
                            .with_items(64)
                            .with_read_ratio(ratio)
                            .with_txns_per_client(12),
                    ),
            );
            labels.push(format!("{:.0}% reads / {label}", ratio * 100.0));
        }
    }
    labels
        .into_iter()
        .zip(sweep_reports(cfgs))
        .map(|(label, report)| {
            Row::new(label)
                .cell("mean", format!("{}t", report.latencies.mean().ticks()))
                .cell("msgs/op", format!("{:.1}", report.messages_per_op()))
                .cell("1SR", report.check_one_copy_serializable().is_ok())
        })
        .collect()
}

/// A5 — lazy reconciliation rules: per-object LWW vs ABCAST-determined
/// after-commit order (paper §4.6), under hot-key conflicts.
pub fn reconcile_table() -> Vec<Row> {
    use repl_core::protocols::lazy_ue::ReconcileMode;
    let hot = WorkloadSpec::default()
        .with_items(4)
        .with_read_ratio(0.0)
        .with_skew(1.2)
        .with_txns_per_client(8);
    let modes = [
        ("last-writer-wins", ReconcileMode::Lww),
        ("abcast order", ReconcileMode::AbcastOrder),
    ];
    let cfgs = modes
        .iter()
        .map(|&(_, mode)| {
            RunConfig::new(Technique::LazyUpdateEverywhere)
                .with_servers(4)
                .with_clients(4)
                .with_seed(149)
                .with_reconcile(mode)
                .with_propagation_delay(SimDuration::from_ticks(2_000))
                .with_trace(false)
                .with_workload(hot.clone())
        })
        .collect();
    modes
        .iter()
        .zip(sweep_reports(cfgs))
        .map(|(&(label, _), report)| {
            Row::new(label)
                .cell("mean", format!("{}t", report.latencies.mean().ticks()))
                .cell("msgs/op", format!("{:.1}", report.messages_per_op()))
                .cell("reconciled", report.reconciliations)
                .cell("converged", report.converged())
        })
        .collect()
}

/// One cell of the P8 batching study: a technique at a batching window
/// and a closed-loop client count, under one ABCAST implementation
/// (`None` for the eager primary, whose batched round is its own
/// decision multicast, not an ordering layer).
pub struct BatchingCell {
    /// The technique under test.
    pub technique: Technique,
    /// Which ABCAST carries the technique (None = no ordering layer).
    pub abcast: Option<AbcastImpl>,
    /// Closed-loop client count.
    pub clients: u32,
    /// The batching window in ticks (0 = batching off).
    pub window: u64,
    /// The fully built run configuration.
    pub cfg: RunConfig,
}

/// The abcast-based techniques swept by the batching study.
pub fn batching_study_techniques() -> Vec<Technique> {
    vec![
        Technique::Active,
        Technique::SemiActive,
        Technique::EagerUpdateEverywhereAbcast,
        Technique::Certification,
    ]
}

/// Builds the P8 cell matrix: every abcast-based technique × both ABCAST
/// implementations × each closed-loop client count × each window, plus
/// the eager primary's batched decision round, all on 3 replicas. Window
/// amortization scales with the number of submissions that share a
/// window, which is why the client count is the second sweep axis.
pub fn batching_cells(clients: &[u32], windows: &[u64]) -> Vec<BatchingCell> {
    let base = |technique: Technique, clients: u32, window: u64| {
        let batch = if window == 0 {
            BatchConfig::disabled()
        } else {
            BatchConfig::window(window)
        };
        RunConfig::new(technique)
            .with_servers(3)
            .with_clients(clients)
            .with_seed(157)
            .with_trace(false)
            .with_batching(batch)
            .with_workload(update_workload(8))
    };
    let mut cells = Vec::new();
    for technique in batching_study_techniques() {
        for which in [AbcastImpl::Sequencer, AbcastImpl::Consensus] {
            for &c in clients {
                for &w in windows {
                    cells.push(BatchingCell {
                        technique,
                        abcast: Some(which),
                        clients: c,
                        window: w,
                        cfg: base(technique, c, w).with_abcast(which),
                    });
                }
            }
        }
    }
    for &c in clients {
        for &w in windows {
            cells.push(BatchingCell {
                technique: Technique::EagerPrimary,
                abcast: None,
                clients: c,
                window: w,
                cfg: base(Technique::EagerPrimary, c, w),
            });
        }
    }
    cells
}

/// The display label of a P8 cell (shared by the table and the JSON).
pub fn batching_cell_label(cell: &BatchingCell) -> String {
    let ab = match cell.abcast {
        Some(AbcastImpl::Sequencer) => " / seq",
        Some(AbcastImpl::Consensus) => " / cons",
        None => "",
    };
    format!(
        "{}{} / c={} / w={}",
        cell.technique.name(),
        ab,
        cell.clients,
        cell.window
    )
}

/// P8 — end-to-end batching: throughput, latency and message cost as the
/// batching window widens (0 = the unbatched baseline; same seeds, same
/// workload, so window 0 reproduces the P2-style numbers exactly).
/// `coord/txn` counts server↔server ordering/agreement messages — the
/// share batching can actually amortize; `msgs/txn` additionally carries
/// the fixed client traffic (one invoke plus one reply per answering
/// replica), which no ordering-layer change can remove.
pub fn batching_table(clients: &[u32], windows: &[u64]) -> Vec<Row> {
    let cells = batching_cells(clients, windows);
    let cfgs = cells.iter().map(|c| c.cfg.clone()).collect();
    cells
        .iter()
        .zip(sweep_reports(cfgs))
        .map(|(cell, report)| {
            let mut lat = report.latencies.clone();
            let p50 = lat.percentile(0.5).ticks();
            Row::new(batching_cell_label(cell))
                .cell("thru", format!("{:.0}/s", report.throughput()))
                .cell("p50", format!("{p50}t"))
                .cell("p99", format!("{}t", p99(&report)))
                .cell("msgs/txn", format!("{:.1}", report.messages_per_op()))
                .cell(
                    "coord/txn",
                    format!("{:.2}", report.coordination_messages_per_op()),
                )
        })
        .collect()
}

/// One cell of the P9 recovery study: one technique under one paired
/// crash→recover outage, plus the identical fault-free run used as the
/// throughput baseline.
#[derive(Debug, Clone)]
pub struct RecoveryCell {
    /// Technique under study.
    pub technique: Technique,
    /// Outage length in ticks (the crash fires at [`RECOVERY_CRASH_AT`]).
    pub downtime: u64,
    /// Update fraction of the workload (1.0 = update-only).
    pub write_ratio: f64,
    /// The run with the outage injected.
    pub faulted: RunConfig,
    /// The same run without any faults.
    pub baseline: RunConfig,
}

/// Crash tick of every P9 outage.
pub const RECOVERY_CRASH_AT: u64 = 5_000;

/// The replica the P9 nemesis takes down: the tail of the 3-replica
/// group, so primaries and sequencers keep running and the outage
/// measures *recovery*, not failover.
pub const RECOVERY_VICTIM: u32 = 2;

/// Builds the P9 cell matrix: every technique × outage length ×
/// write ratio, one tail-replica outage per run. The retry timeout is
/// tightened so runs are dominated by the outage rather than by client
/// backoff, and lazy techniques get a short propagation window so their
/// post-recovery traffic settles inside the drain.
pub fn recovery_cells(downtimes: &[u64], write_ratios: &[f64]) -> Vec<RecoveryCell> {
    let base = |technique: Technique, write_ratio: f64| {
        let mut cfg = RunConfig::new(technique)
            .with_servers(3)
            .with_clients(3)
            .with_seed(163)
            .with_trace(false)
            .with_retry_after(SimDuration::from_ticks(4_000))
            .with_workload(
                WorkloadSpec::default()
                    .with_items(64)
                    .with_read_ratio(1.0 - write_ratio)
                    .with_txns_per_client(15)
                    .with_think_time(SimDuration::from_ticks(3_000)),
            );
        if technique.info().propagation == repl_core::Propagation::Lazy {
            cfg = cfg.with_propagation_delay(SimDuration::from_ticks(1_000));
        }
        cfg
    };
    let mut cells = Vec::new();
    for technique in Technique::ALL {
        for &write_ratio in write_ratios {
            for &downtime in downtimes {
                let baseline = base(technique, write_ratio);
                let faulted = baseline.clone().with_faults(FaultPlan::new().outage_at(
                    SimTime::from_ticks(RECOVERY_CRASH_AT),
                    NodeId::new(RECOVERY_VICTIM),
                    SimDuration::from_ticks(downtime),
                ));
                cells.push(RecoveryCell {
                    technique,
                    downtime,
                    write_ratio,
                    faulted,
                    baseline,
                });
            }
        }
    }
    cells
}

/// The display label of a P9 cell (shared by the table and the JSON).
pub fn recovery_cell_label(cell: &RecoveryCell) -> String {
    format!(
        "{} / down={} / wr={:.1}",
        cell.technique.name(),
        cell.downtime,
        cell.write_ratio
    )
}

/// The transfer strategies a faulted run actually used, as a short tag.
pub fn transfer_strategy_tag(report: &RunReport) -> &'static str {
    let suffix: u64 = report
        .availability
        .recoveries
        .iter()
        .map(|r| r.log_suffix_transfers)
        .sum();
    let snap: u64 = report
        .availability
        .recoveries
        .iter()
        .map(|r| r.snapshot_transfers)
        .sum();
    match (suffix > 0, snap > 0) {
        (true, true) => "both",
        (true, false) => "suffix",
        (false, true) => "snapshot",
        (false, false) => "-",
    }
}

/// P9 — crash recovery: MTTR (rejoin → fully caught up), catch-up bytes
/// on the wire, the transfer strategy the donor selected, and the
/// throughput dip against the fault-free baseline, per technique ×
/// outage length × write ratio. The paper stops at "different failure
/// assumptions"; this table is the recovery half of that study.
pub fn recovery_table(downtimes: &[u64], write_ratios: &[f64]) -> Vec<Row> {
    let cells = recovery_cells(downtimes, write_ratios);
    let mut cfgs = Vec::with_capacity(cells.len() * 2);
    for cell in &cells {
        cfgs.push(cell.faulted.clone());
        cfgs.push(cell.baseline.clone());
    }
    let mut reports = sweep_reports(cfgs).into_iter();
    cells
        .iter()
        .map(|cell| {
            let faulted = reports.next().expect("faulted report per cell");
            let baseline = reports.next().expect("baseline report per cell");
            let a = &faulted.availability;
            let mttr = match a.mttr_ticks() {
                Some(t) => format!("{t}t"),
                None => "-".into(),
            };
            let dip = baseline.throughput() / faulted.throughput().max(f64::MIN_POSITIVE);
            Row::new(recovery_cell_label(cell))
                .cell("mttr", mttr)
                .cell("xfer", format!("{}B", a.transfer_bytes()))
                .cell("strategy", transfer_strategy_tag(&faulted))
                .cell("thru dip", format!("{dip:.2}x"))
                .cell("retries", faulted.client_retries)
                .cell("unanswered", faulted.ops_unanswered)
        })
        .collect()
}

/// One cell of the P12 disaster study: one technique running over the
/// durable log tier at one upload lag, hit by one volume-loss disaster
/// (the victim's WAL and store are destroyed, not merely halted), plus
/// the identical fault-free run used as the throughput baseline.
#[derive(Debug, Clone)]
pub struct DisasterCell {
    /// Technique under study.
    pub technique: Technique,
    /// The durable tier's upload lag in ticks (0 = synchronous: every
    /// acknowledged commit is durable the instant its frame seals).
    pub upload_lag: u64,
    /// The run with the disaster injected.
    pub faulted: RunConfig,
    /// The same run without any faults.
    pub baseline: RunConfig,
}

/// Tick of every P12 volume loss.
pub const DISASTER_AT: u64 = 5_000;

/// The replica the P12 disaster destroys: the tail of the 3-replica
/// group, as in P9, so the study measures restore cost rather than
/// failover.
pub const DISASTER_VICTIM: u32 = 2;

/// Downtime before the wiped replica is brought back to restore.
pub const DISASTER_DOWNTIME: u64 = 15_000;

/// Builds the P12 cell matrix: every technique × upload lag, one
/// tail-replica volume loss per run, all over an enabled durable tier.
/// The upload lag is the exposure knob: at lag 0 nothing acknowledged
/// can be lost; the wider the lag, the more of the acknowledged suffix
/// an ill-timed disaster erases.
pub fn disaster_cells(upload_lags: &[u64]) -> Vec<DisasterCell> {
    let base = |technique: Technique, lag: u64| {
        let mut cfg = RunConfig::new(technique)
            .with_servers(3)
            .with_clients(3)
            .with_seed(167)
            .with_trace(false)
            .with_retry_after(SimDuration::from_ticks(4_000))
            .with_durability(DurabilityConfig::with_upload_lag(lag))
            .with_workload(
                WorkloadSpec::default()
                    .with_items(64)
                    .with_read_ratio(0.0)
                    .with_txns_per_client(15)
                    .with_think_time(SimDuration::from_ticks(3_000)),
            );
        if technique.info().propagation == repl_core::Propagation::Lazy {
            cfg = cfg.with_propagation_delay(SimDuration::from_ticks(1_000));
        }
        cfg
    };
    let mut cells = Vec::new();
    for technique in Technique::ALL {
        for &lag in upload_lags {
            let baseline = base(technique, lag);
            let faulted = baseline.clone().with_faults(FaultPlan::new().disaster_at(
                SimTime::from_ticks(DISASTER_AT),
                NodeId::new(DISASTER_VICTIM),
                SimDuration::from_ticks(DISASTER_DOWNTIME),
            ));
            cells.push(DisasterCell {
                technique,
                upload_lag: lag,
                faulted,
                baseline,
            });
        }
    }
    cells
}

/// The display label of a P12 cell (shared by the table and the JSON).
pub fn disaster_cell_label(cell: &DisasterCell) -> String {
    format!("{} / lag={}", cell.technique.name(), cell.upload_lag)
}

/// P12 — disaster recovery over the durable log tier: the realised
/// data-loss window (acknowledged commits the wipe erased before they
/// were durable), restore volume and restore deafness, rejoin MTTR, and
/// the no-silent-loss oracle, per technique × upload lag. At lag 0 the
/// tier is synchronous and the loss column must read 0 everywhere; the
/// loss grows with the lag while the oracle stays green — every erased
/// acknowledgement is claimed by the accounting, never silent.
pub fn disaster_table(upload_lags: &[u64]) -> Vec<Row> {
    let cells = disaster_cells(upload_lags);
    let mut cfgs = Vec::with_capacity(cells.len() * 2);
    for cell in &cells {
        cfgs.push(cell.faulted.clone());
        cfgs.push(cell.baseline.clone());
    }
    let mut reports = sweep_reports(cfgs).into_iter();
    cells
        .iter()
        .map(|cell| {
            let faulted = reports.next().expect("faulted report per cell");
            let baseline = reports.next().expect("baseline report per cell");
            let d = &faulted.durability;
            let mttr = match faulted.availability.mttr_ticks() {
                Some(t) => format!("{t}t"),
                None => "-".into(),
            };
            let dip = baseline.throughput() / faulted.throughput().max(f64::MIN_POSITIVE);
            Row::new(disaster_cell_label(cell))
                .cell("wipes", d.volume_wipes)
                .cell("lost", d.lost_commits)
                .cell("restores", d.restores)
                .cell("restore B", format!("{}B", d.restore_bytes))
                .cell("deaf", format!("{}t", d.restore_ticks))
                .cell("mttr", mttr)
                .cell("no silent loss", faulted.check_no_silent_loss().is_ok())
                .cell("thru dip", format!("{dip:.2}x"))
                .cell("unanswered", faulted.ops_unanswered)
        })
        .collect()
}

/// One cell of the P13 open-loop scale study: one technique serving a
/// virtual client population at a fixed *total* offered load through the
/// aggregated open-loop engine ([`repl_core::Arrival::OpenAggregated`]).
/// The client count is a parameter, not an actor count — the same cell
/// shape runs at 10³ and 10⁶ clients.
pub struct OpenLoopCell {
    /// The technique under test.
    pub technique: Technique,
    /// Virtual client population.
    pub clients: u32,
    /// Total offered load across the population, operations per second.
    pub rate_per_s: u64,
    /// The full run configuration.
    pub cfg: RunConfig,
}

/// Total operations each P13 cell aims for. Populations below this
/// issue several transactions per client; a million clients issue one
/// each (the population itself is the load).
pub const P13_TARGET_OPS: u64 = 100_000;

/// Builds the P13 cell matrix: every technique × population × total
/// offered rate. The per-client mean inter-arrival gap is derived so the
/// *population's* aggregate rate equals `rate_per_s` regardless of size.
pub fn open_loop_scale_cells(
    techniques: &[Technique],
    client_counts: &[u32],
    rates_per_s: &[u64],
) -> Vec<OpenLoopCell> {
    use repl_core::Arrival;
    use repl_workload::ArrivalDist;
    let mut cells = Vec::new();
    for &technique in techniques {
        for &clients in client_counts {
            for &rate in rates_per_s {
                let txns = (P13_TARGET_OPS / u64::from(clients.max(1))).max(1);
                let txns = u32::try_from(txns).expect("P13 budget fits u32");
                // Per-client gap in ticks (1 tick ≈ 1 µs): population
                // rate R ops/s means each of `clients` clients fires
                // every clients·10⁶/R ticks.
                let mean = (u64::from(clients).saturating_mul(1_000_000) / rate.max(1)).max(1);
                let cfg = RunConfig::new(technique)
                    .with_servers(3)
                    .with_clients(clients)
                    .with_seed(163)
                    .with_arrival(Arrival::OpenAggregated {
                        mean,
                        dist: ArrivalDist::Poisson,
                    })
                    .with_trace(false)
                    .with_max_time(SimTime::from_ticks(60_000_000))
                    .with_workload(
                        WorkloadSpec::default()
                            .with_items(4_096)
                            .with_read_ratio(0.5)
                            .with_txns_per_client(txns),
                    );
                cells.push(OpenLoopCell {
                    technique,
                    clients,
                    rate_per_s: rate,
                    cfg,
                });
            }
        }
    }
    cells
}

/// The display label of a P13 cell (shared by the table and the JSON).
pub fn open_loop_cell_label(cell: &OpenLoopCell) -> String {
    format!(
        "{} {}c @{}k/s",
        cell.technique.name(),
        cell.clients,
        cell.rate_per_s / 1_000
    )
}

/// P13 — the open-loop scale study: events processed, streaming-histogram
/// latency percentiles and the constant-memory footprint per technique ×
/// client population × offered rate. Latencies come from the
/// [`repl_sim::LatencyHistogram`] (bounded relative error, ~30 KiB
/// regardless of operation count); `peak-out` is the high-water mark of
/// in-flight operations across client groups.
pub fn open_loop_scale_table(
    techniques: &[Technique],
    client_counts: &[u32],
    rates_per_s: &[u64],
) -> Vec<Row> {
    let cells = open_loop_scale_cells(techniques, client_counts, rates_per_s);
    let cfgs = cells.iter().map(|c| c.cfg.clone()).collect();
    cells
        .iter()
        .zip(sweep_reports(cfgs))
        .map(|(cell, report)| {
            let hist = report
                .latency_hist
                .as_ref()
                .expect("aggregated runs stream a histogram");
            Row::new(open_loop_cell_label(cell))
                .cell("ops", report.ops_completed)
                .cell("unanswered", report.ops_unanswered)
                .cell("events", report.messages.events_processed)
                .cell("p50", format!("{}t", hist.percentile(0.50).ticks()))
                .cell("p99", format!("{}t", hist.percentile(0.99).ticks()))
                .cell("peak-out", report.peak_outstanding)
                .cell("hist KiB", hist.memory_bytes() / 1024)
        })
        .collect()
}

/// The run used by the phase-trace benchmark and Figures 2–4/7–14.
pub fn figure_config(technique: Technique, ops_per_txn: u32) -> RunConfig {
    let mut cfg = RunConfig::new(technique)
        .with_clients(1)
        .with_seed(42)
        .with_workload(
            WorkloadSpec::default()
                .with_items(16)
                .with_read_ratio(0.0)
                .with_ops_per_txn(ops_per_txn)
                .with_txns_per_client(4),
        );
    if technique == Technique::SemiActive {
        cfg = cfg.with_exec(ExecutionMode::NonDeterministic);
    }
    if technique.info().propagation == repl_core::Propagation::Lazy {
        cfg = cfg.with_propagation_delay(SimDuration::from_ticks(2_000));
    }
    cfg
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_aligns_columns() {
        let rows = vec![
            Row::new("a").cell("x", 1).cell("yy", "long-value"),
            Row::new("much-longer").cell("x", 22).cell("yy", 3),
        ];
        let s = render("T", &rows);
        assert!(s.contains("### T"));
        assert!(s.contains("much-longer"));
        assert!(s.contains("long-value"));
    }

    #[test]
    fn response_time_table_has_all_techniques() {
        let rows = response_time_table(&[2]);
        assert_eq!(rows.len(), Technique::ALL.len());
    }

    #[test]
    fn recovery_table_reports_finite_mttr_and_both_strategies() {
        let rows = recovery_table(&[15_000], &[1.0]);
        assert_eq!(rows.len(), Technique::ALL.len());
        let col = |r: &Row, name: &str| {
            r.cells
                .iter()
                .find(|(n, _)| *n == name)
                .map(|(_, v)| v.clone())
                .expect("column present")
        };
        for r in &rows {
            assert_ne!(col(r, "mttr"), "-", "{}: no MTTR", r.label);
            assert_eq!(col(r, "unanswered"), "0", "{}", r.label);
            assert_ne!(col(r, "strategy"), "-", "{}: no transfer", r.label);
        }
        let tags: Vec<String> = rows.iter().map(|r| col(r, "strategy")).collect();
        let used = |t: &str| tags.iter().any(|s| s == t || s == "both");
        assert!(used("suffix"), "no cell used a log suffix: {tags:?}");
        assert!(used("snapshot"), "no cell used a snapshot: {tags:?}");
    }

    #[test]
    fn conflicts_table_rows_per_skew() {
        let rows = conflicts_table(&[0.0]);
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].cells.len(), 4);
    }
}
