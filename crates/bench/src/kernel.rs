//! P10 — kernel scaling: how the database kernel behaves as the keyspace
//! grows, and how much the dense allocation-free hot path buys.
//!
//! Two instruments share this module:
//!
//! * [`kernel_table`] / [`kernel_cells`] — end-to-end simulator runs of
//!   the lock- and certification-based techniques across keyspace sizes
//!   and client counts. The printed numbers are deterministic (simulator
//!   ticks); the dense and sparse backings must produce *identical*
//!   reports, which `dense_and_sparse_kernel_runs_are_identical` checks
//!   by digest.
//! * [`lock_microcycle_secs`] / [`seed_lock_microcycle_secs`] — wall-clock
//!   microbenchmarks of the uncontended lock acquire→commit→release
//!   cycle, shared by the `db_kernel` criterion bench and the
//!   `BENCH_PR5.json` kernel section. The seed baseline is a faithful
//!   copy of the pre-dense lock manager (SipHash `HashMap` table, whole-
//!   table scan in `release_all`), kept so the speedup claim is measured
//!   against what the code actually did, not a strawman.

use std::time::Instant;

use repl_core::{RunConfig, Technique};
use repl_db::{DeadlockPolicy, Key, Keyspace, LockManager, LockMode, TxnId};
use repl_workload::WorkloadSpec;

use crate::sweep::sweep_reports;
use crate::Row;

/// One cell of the P10 kernel scaling study.
#[derive(Debug, Clone)]
pub struct KernelCell {
    /// Technique under study.
    pub technique: Technique,
    /// Declared keyspace size (workload items).
    pub keyspace: u64,
    /// Closed-loop client count.
    pub clients: u32,
    /// The run configuration (dense keyspace, the workload default).
    pub cfg: RunConfig,
}

/// The techniques whose servers exercise the db kernel's lock table or
/// certifier on every transaction — the ones keyspace scaling can move.
pub fn kernel_techniques() -> [Technique; 4] {
    [
        Technique::EagerPrimary,
        Technique::EagerUpdateEverywhereLocking,
        Technique::EagerUpdateEverywhereAbcast,
        Technique::Certification,
    ]
}

/// Builds the P10 cell matrix: kernel-bound technique × keyspace size ×
/// client count. The workload is update-heavy (80% writes) so lock and
/// certification traffic dominates, and uniform so the keyspace axis
/// scales the *table*, not the conflict rate.
pub fn kernel_cells(keyspaces: &[u64], clients: &[u32]) -> Vec<KernelCell> {
    let mut cells = Vec::new();
    for technique in kernel_techniques() {
        for &keyspace in keyspaces {
            for &c in clients {
                let cfg = RunConfig::new(technique)
                    .with_servers(3)
                    .with_clients(c)
                    .with_seed(211)
                    .with_trace(false)
                    .with_workload(
                        WorkloadSpec::default()
                            .with_items(keyspace)
                            .with_read_ratio(0.2)
                            .with_txns_per_client(20),
                    );
                cells.push(KernelCell {
                    technique,
                    keyspace,
                    clients: c,
                    cfg,
                });
            }
        }
    }
    cells
}

/// The display label of a P10 cell (shared by the table and the JSON).
pub fn kernel_cell_label(cell: &KernelCell) -> String {
    format!(
        "{} / k={} / c={}",
        cell.technique.name(),
        cell.keyspace,
        cell.clients
    )
}

/// P10 — kernel scaling: throughput, latency, message cost and server
/// aborts per technique × keyspace × clients. All printed values are
/// simulator-deterministic; the wall-clock payoff of the dense backing
/// is measured separately by the `db_kernel` bench and the JSON
/// artifact's microcycle section.
pub fn kernel_table(keyspaces: &[u64], clients: &[u32]) -> Vec<Row> {
    let cells = kernel_cells(keyspaces, clients);
    let cfgs = cells.iter().map(|c| c.cfg.clone()).collect();
    cells
        .iter()
        .zip(sweep_reports(cfgs))
        .map(|(cell, report)| {
            let mut lat = report.latencies.clone();
            let p50 = lat.percentile(0.5).ticks();
            let p99 = lat.percentile(0.99).ticks();
            Row::new(kernel_cell_label(cell))
                .cell("thru", format!("{:.0}/s", report.throughput()))
                .cell("p50", format!("{p50}t"))
                .cell("p99", format!("{p99}t"))
                .cell("msgs/txn", format!("{:.1}", report.messages_per_op()))
                .cell("aborts", report.server_aborts)
        })
        .collect()
}

/// Locks each microcycle transaction takes before "committing".
pub const MICROCYCLE_OPS: u64 = 4;

/// The keys transaction number `round` locks: strided across the table so
/// repeated rounds sweep the whole keyspace instead of hammering one
/// cache line.
pub fn microcycle_keys(items: u64, round: u64) -> [Key; MICROCYCLE_OPS as usize] {
    let stride = (items / MICROCYCLE_OPS).max(1);
    let base = round.wrapping_mul(2654435761) % items;
    [
        Key(base),
        Key((base + stride) % items),
        Key((base + 2 * stride) % items),
        Key((base + 3 * stride) % items),
    ]
}

/// Wall-clock seconds for `rounds` uncontended lock acquire→commit
/// microcycles (each: `MICROCYCLE_OPS` exclusive acquires, then
/// `release_all`) on a `items`-key table with the chosen backing.
pub fn lock_microcycle_secs(items: u64, dense: bool, rounds: u64) -> f64 {
    let ks = if dense {
        Keyspace::dense(items)
    } else {
        Keyspace::sparse(items)
    };
    let mut lm = LockManager::with_keyspace(DeadlockPolicy::WoundWait, ks);
    let start = Instant::now();
    for r in 0..rounds {
        let txn = TxnId::new(r + 1, 0);
        for key in microcycle_keys(items, r) {
            std::hint::black_box(lm.acquire(txn, key, LockMode::Exclusive));
        }
        std::hint::black_box(lm.release_all(txn).len());
    }
    start.elapsed().as_secs_f64()
}

/// The same microcycle on [`SeedLockManager`], the measured baseline.
pub fn seed_lock_microcycle_secs(items: u64, rounds: u64) -> f64 {
    let mut lm = SeedLockManager::default();
    let start = Instant::now();
    for r in 0..rounds {
        let txn = TxnId::new(r + 1, 0);
        for key in microcycle_keys(items, r) {
            std::hint::black_box(lm.acquire(txn, key, LockMode::Exclusive));
        }
        lm.release_all(txn);
    }
    start.elapsed().as_secs_f64()
}

#[derive(Default)]
struct SeedLockState {
    holders: Vec<(TxnId, LockMode)>,
    waiters: std::collections::VecDeque<(TxnId, LockMode)>,
}

/// The grant/release/promote hot path of the lock manager as it stood
/// before the dense-keyspace rework: a SipHash `HashMap` table that
/// grows one entry per touched key, a `HashSet` per transaction, and a
/// `release_all` that scans the *entire table* for pending waits.
/// Deadlock handling is omitted — the microcycle it baselines is
/// uncontended.
#[derive(Default)]
pub struct SeedLockManager {
    table: std::collections::HashMap<Key, SeedLockState>,
    held: std::collections::HashMap<TxnId, std::collections::HashSet<Key>>,
}

impl SeedLockManager {
    /// Grants `mode` on `key` if compatible; queues the request otherwise.
    pub fn acquire(&mut self, txn: TxnId, key: Key, mode: LockMode) -> bool {
        let state = self.table.entry(key).or_default();
        if state.holders.iter().any(|&(t, _)| t == txn) {
            return true;
        }
        if state.holders.iter().all(|&(_, m)| m.compatible(mode)) && state.waiters.is_empty() {
            state.holders.push((txn, mode));
            self.held.entry(txn).or_default().insert(key);
            return true;
        }
        state.waiters.push_back((txn, mode));
        false
    }

    /// Releases everything `txn` holds or waits for — including the
    /// seed's whole-table scan for pending waits.
    pub fn release_all(&mut self, txn: TxnId) {
        let mut touched: Vec<Key> = self
            .held
            .remove(&txn)
            .map(|s| s.into_iter().collect())
            .unwrap_or_default();
        let waiting: Vec<Key> = self
            .table
            .iter()
            .filter(|(_, s)| s.waiters.iter().any(|(t, _)| *t == txn))
            .map(|(k, _)| *k)
            .collect();
        touched.extend(waiting);
        touched.sort_unstable();
        touched.dedup();
        for key in touched {
            if let Some(state) = self.table.get_mut(&key) {
                state.holders.retain(|(t, _)| *t != txn);
                state.waiters.retain(|(t, _)| *t != txn);
                while let Some(&(w, mode)) = state.waiters.front() {
                    let compatible = state
                        .holders
                        .iter()
                        .all(|&(t, m)| t == w || m.compatible(mode));
                    if !compatible {
                        break;
                    }
                    state.waiters.pop_front();
                    if let Some(h) = state.holders.iter_mut().find(|(t, _)| *t == w) {
                        h.1 = mode;
                    } else {
                        state.holders.push((w, mode));
                    }
                    self.held.entry(w).or_default().insert(key);
                    if mode == LockMode::Exclusive {
                        break;
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kernel_table_covers_the_matrix() {
        let rows = kernel_table(&[64], &[2]);
        assert_eq!(rows.len(), kernel_techniques().len());
        for r in &rows {
            assert!(r.label.contains("k=64"), "{}", r.label);
        }
    }

    #[test]
    fn dense_and_sparse_kernel_runs_are_identical() {
        // The dense backing is a representation change only: the same
        // cell run with the sparse fallback must produce a bit-identical
        // report digest.
        for technique in kernel_techniques() {
            let cell = &kernel_cells(&[64], &[2])
                .into_iter()
                .find(|c| c.technique == technique)
                .expect("cell per technique");
            let dense = repl_core::run(&cell.cfg);
            let mut sparse_cfg = cell.cfg.clone();
            sparse_cfg.workload = sparse_cfg.workload.clone().with_dense_keyspace(false);
            let sparse = repl_core::run(&sparse_cfg);
            assert_eq!(
                dense.digest(),
                sparse.digest(),
                "{technique:?}: dense and sparse runs diverged"
            );
        }
    }

    #[test]
    fn microcycle_keys_are_distinct_and_in_range() {
        for items in [64u64, 1024] {
            for round in 0..32 {
                let keys = microcycle_keys(items, round);
                for k in keys {
                    assert!(k.0 < items);
                }
                let mut sorted = keys.to_vec();
                sorted.sort_unstable();
                sorted.dedup();
                assert_eq!(sorted.len(), keys.len(), "duplicate keys at {round}");
            }
        }
    }

    #[test]
    fn seed_manager_grants_and_releases_like_the_kernel() {
        let mut seed = SeedLockManager::default();
        let mut lm = LockManager::with_keyspace(DeadlockPolicy::WoundWait, Keyspace::dense(8));
        let (t1, t2) = (TxnId::new(1, 0), TxnId::new(2, 0));
        assert!(seed.acquire(t1, Key(0), LockMode::Exclusive));
        assert_eq!(
            lm.acquire(t1, Key(0), LockMode::Exclusive),
            repl_db::Acquire::Granted
        );
        assert!(!seed.acquire(t2, Key(0), LockMode::Exclusive));
        seed.release_all(t1);
        assert!(seed.acquire(t2, Key(0), LockMode::Exclusive));
    }
}
