//! A3 — wound-wait prevention vs distributed deadlock detection.

use criterion::{criterion_group, criterion_main, Criterion};
use repl_bench::{deadlock_table, render};
use repl_core::{run, RunConfig, Technique};
use repl_db::DeadlockPolicy;
use repl_sim::SimDuration;
use repl_workload::WorkloadSpec;

fn bench(c: &mut Criterion) {
    println!(
        "{}",
        render(
            "A3 — deadlock handling under contention",
            &deadlock_table(&[0.5, 1.0, 1.5])
        )
    );
    let contended = WorkloadSpec::default()
        .with_items(8)
        .with_read_ratio(0.0)
        .with_ops_per_txn(2)
        .with_skew(1.0)
        .with_txns_per_client(6)
        .with_think_time(SimDuration::from_ticks(100));
    let mut g = c.benchmark_group("deadlock");
    g.sample_size(10);
    for (label, policy) in [
        ("wound_wait", DeadlockPolicy::WoundWait),
        ("detection", DeadlockPolicy::Detect),
    ] {
        let cfg = RunConfig::new(Technique::EagerUpdateEverywhereLocking)
            .with_servers(3)
            .with_clients(3)
            .with_seed(137)
            .with_trace(false)
            .with_deadlock(policy)
            .with_workload(contended.clone());
        g.bench_function(label, |b| {
            b.iter(|| std::hint::black_box(run(&cfg)).ops_completed)
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
