//! P1 — response time per technique vs replication degree.
//!
//! Prints the experiment table once, then benchmarks representative runs.

use criterion::{criterion_group, criterion_main, Criterion};
use repl_bench::{render, response_time_table, update_workload};
use repl_core::{run, RunConfig, Technique};

fn bench(c: &mut Criterion) {
    println!(
        "{}",
        render(
            "P1 — mean response time vs replication degree",
            &response_time_table(&[2, 4, 8, 16]),
        )
    );
    let mut g = c.benchmark_group("response_time");
    g.sample_size(10);
    for technique in [
        Technique::Active,
        Technique::Passive,
        Technique::LazyPrimary,
    ] {
        for n in [2u32, 8] {
            let cfg = RunConfig::new(technique)
                .with_servers(n)
                .with_clients(2)
                .with_seed(101)
                .with_trace(false)
                .with_workload(update_workload(12));
            g.bench_function(format!("{technique}/n{n}"), |b| {
                b.iter(|| std::hint::black_box(run(&cfg)).ops_completed)
            });
        }
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
