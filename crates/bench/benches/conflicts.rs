//! P4 — conflict behaviour (aborts, wounds, reconciliations) vs skew.

use criterion::{criterion_group, criterion_main, Criterion};
use repl_bench::{conflicts_table, render};
use repl_core::{run, RunConfig, Technique};
use repl_sim::SimDuration;
use repl_workload::WorkloadSpec;

fn bench(c: &mut Criterion) {
    println!(
        "{}",
        render(
            "P4 — conflicts vs access skew (4 clients, 32 items, rmw txns)",
            &conflicts_table(&[0.0, 0.5, 1.0, 1.5]),
        )
    );
    let hot = WorkloadSpec::default()
        .with_items(32)
        .with_read_ratio(0.5)
        .with_ops_per_txn(2)
        .with_skew(1.0)
        .with_txns_per_client(10)
        .with_think_time(SimDuration::from_ticks(50));
    let mut g = c.benchmark_group("conflicts");
    g.sample_size(10);
    for technique in [
        Technique::Certification,
        Technique::EagerUpdateEverywhereLocking,
    ] {
        let cfg = RunConfig::new(technique)
            .with_servers(3)
            .with_clients(4)
            .with_seed(109)
            .with_trace(false)
            .with_workload(hot.clone());
        g.bench_function(format!("{technique}/zipf1.0"), |b| {
            b.iter(|| std::hint::black_box(run(&cfg)).ops_completed)
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
