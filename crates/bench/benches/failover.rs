//! P5 — failover cost per fault-tolerance strategy.

use criterion::{criterion_group, criterion_main, Criterion};
use repl_bench::sweep::{default_threads, run_sweep, SweepCell};
use repl_bench::{availability_table, failover_table, render, update_workload};
use repl_core::protocols::common::AbcastImpl;
use repl_core::{RunConfig, Technique};
use repl_sim::{NodeId, SimTime};
use repl_workload::CrashSchedule;

fn bench(c: &mut Criterion) {
    println!(
        "{}",
        render(
            "P5 — failover: rank-0 server crashes mid-run (5 replicas)",
            &failover_table()
        )
    );
    println!(
        "{}",
        render(
            "P5b — availability under a primary crash (failover latency, unavailability windows)",
            &availability_table()
        )
    );
    let crash = CrashSchedule::new().crash_at(SimTime::from_ticks(12_000), NodeId::new(0));
    let cells: Vec<SweepCell> = [
        Technique::Active,
        Technique::Passive,
        Technique::EagerPrimary,
    ]
    .into_iter()
    .map(|technique| {
        SweepCell::new(
            format!("{technique}/crash"),
            RunConfig::new(technique)
                .with_servers(5)
                .with_clients(2)
                .with_seed(113)
                .with_trace(false)
                .with_abcast(AbcastImpl::Consensus)
                .with_crashes(crash.clone())
                .with_workload(update_workload(10)),
        )
    })
    .collect();

    let mut g = c.benchmark_group("failover");
    g.sample_size(10);
    // Per-technique cost, each through the sweep engine's serial path.
    for cell in &cells {
        let one = std::slice::from_ref(cell);
        g.bench_function(cell.label.clone(), |b| {
            b.iter(|| {
                std::hint::black_box(run_sweep(one, 1))
                    .pop()
                    .expect("one result")
                    .expect_report()
                    .ops_completed
            })
        });
    }
    // The whole crash matrix fanned across available cores.
    let threads = default_threads();
    g.bench_function(format!("sweep3/threads={threads}"), |b| {
        b.iter(|| {
            std::hint::black_box(run_sweep(&cells, threads))
                .into_iter()
                .map(|r| r.expect_report().ops_completed)
                .sum::<u64>()
        })
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
