//! P5 — failover cost per fault-tolerance strategy.

use criterion::{criterion_group, criterion_main, Criterion};
use repl_bench::{availability_table, failover_table, render, update_workload};
use repl_core::protocols::common::AbcastImpl;
use repl_core::{run, RunConfig, Technique};
use repl_sim::{NodeId, SimTime};
use repl_workload::CrashSchedule;

fn bench(c: &mut Criterion) {
    println!(
        "{}",
        render(
            "P5 — failover: rank-0 server crashes mid-run (5 replicas)",
            &failover_table()
        )
    );
    println!(
        "{}",
        render(
            "P5b — availability under a primary crash (failover latency, unavailability windows)",
            &availability_table()
        )
    );
    let crash = CrashSchedule::new().crash_at(SimTime::from_ticks(12_000), NodeId::new(0));
    let mut g = c.benchmark_group("failover");
    g.sample_size(10);
    for technique in [
        Technique::Active,
        Technique::Passive,
        Technique::EagerPrimary,
    ] {
        let cfg = RunConfig::new(technique)
            .with_servers(5)
            .with_clients(2)
            .with_seed(113)
            .with_trace(false)
            .with_abcast(AbcastImpl::Consensus)
            .with_crashes(crash.clone())
            .with_workload(update_workload(10));
        g.bench_function(format!("{technique}/crash"), |b| {
            b.iter(|| std::hint::black_box(run(&cfg)).ops_completed)
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
