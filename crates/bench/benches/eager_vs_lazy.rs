//! P6 — the eager/lazy trade-off: latency against staleness.

use criterion::{criterion_group, criterion_main, Criterion};
use repl_bench::{eager_vs_lazy_table, render};
use repl_core::{run, RunConfig, Technique};
use repl_sim::SimDuration;
use repl_workload::WorkloadSpec;

fn bench(c: &mut Criterion) {
    println!(
        "{}",
        render(
            "P6 — eager vs lazy: latency against staleness",
            &eager_vs_lazy_table(&[1_000, 10_000, 50_000]),
        )
    );
    let workload = WorkloadSpec::default()
        .with_items(16)
        .with_read_ratio(0.6)
        .with_txns_per_client(12);
    let mut g = c.benchmark_group("eager_vs_lazy");
    g.sample_size(10);
    for (label, technique, delay) in [
        ("eager_primary", Technique::EagerPrimary, 0u64),
        ("lazy_primary", Technique::LazyPrimary, 10_000),
        ("lazy_ue", Technique::LazyUpdateEverywhere, 10_000),
    ] {
        let cfg = RunConfig::new(technique)
            .with_servers(3)
            .with_clients(3)
            .with_seed(127)
            .with_trace(false)
            .with_propagation_delay(SimDuration::from_ticks(delay))
            .with_workload(workload.clone());
        g.bench_function(label, |b| {
            b.iter(|| std::hint::black_box(run(&cfg)).ops_completed)
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
