//! A2 — sequencer- vs consensus-based Atomic Broadcast.

use criterion::{criterion_group, criterion_main, Criterion};
use repl_bench::{abcast_impls_table, render, update_workload};
use repl_core::protocols::common::AbcastImpl;
use repl_core::{run, RunConfig, Technique};

fn bench(c: &mut Criterion) {
    println!(
        "{}",
        render("A2 — ABCAST implementations", &abcast_impls_table())
    );
    let mut g = c.benchmark_group("abcast_impls");
    g.sample_size(10);
    for (label, which) in [
        ("sequencer", AbcastImpl::Sequencer),
        ("consensus", AbcastImpl::Consensus),
    ] {
        let cfg = RunConfig::new(Technique::Active)
            .with_servers(4)
            .with_clients(2)
            .with_seed(131)
            .with_trace(false)
            .with_abcast(which)
            .with_workload(update_workload(10));
        g.bench_function(label, |b| {
            b.iter(|| std::hint::black_box(run(&cfg)).ops_completed)
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
