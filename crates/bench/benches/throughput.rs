//! P2 — closed-loop throughput per technique vs client count.

use criterion::{criterion_group, criterion_main, Criterion};
use repl_bench::{render, throughput_table, update_workload};
use repl_core::{run, RunConfig, Technique};

fn bench(c: &mut Criterion) {
    println!(
        "{}",
        render(
            "P2 — throughput vs clients (3 replicas)",
            &throughput_table(&[1, 2, 4, 8])
        )
    );
    let mut g = c.benchmark_group("throughput");
    g.sample_size(10);
    for technique in [Technique::Active, Technique::EagerUpdateEverywhereAbcast] {
        for clients in [2u32, 8] {
            let cfg = RunConfig::new(technique)
                .with_servers(3)
                .with_clients(clients)
                .with_seed(103)
                .with_trace(false)
                .with_workload(update_workload(10));
            g.bench_function(format!("{technique}/c{clients}"), |b| {
                b.iter(|| std::hint::black_box(run(&cfg)).throughput())
            });
        }
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
