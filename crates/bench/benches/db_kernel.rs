//! Database-kernel hot paths: the lock acquire→commit microcycle on the
//! dense, sparse and seed-baseline backings across keyspace sizes, plus
//! certification, deadlock detection and the incremental 1SR history
//! check. The P10 table (`perfstudy --p10-only`) reports the end-to-end
//! view; this bench isolates the kernel cycles themselves.

use std::hint::black_box;

use criterion::{criterion_group, criterion_main, Criterion};
use repl_bench::{kernel_table, microcycle_keys, render, SeedLockManager};
use repl_db::{
    AccessKind, Certifier, DeadlockPolicy, Key, Keyspace, LockManager, LockMode, ReplicatedHistory,
    TxnId, Value, WriteRecord, WriteSet,
};

const KEYSPACES: [u64; 3] = [64, 1024, 65536];

fn t(ts: u64) -> TxnId {
    TxnId::new(ts, 0)
}

fn bench_lock_microcycle(c: &mut Criterion) {
    let mut g = c.benchmark_group("db_kernel");
    g.sample_size(20);
    for &items in &KEYSPACES {
        for (label, dense) in [("dense", true), ("sparse", false)] {
            let ks = if dense {
                Keyspace::dense(items)
            } else {
                Keyspace::sparse(items)
            };
            g.bench_function(format!("lock_microcycle/{label}/k={items}"), |b| {
                let mut lm = LockManager::with_keyspace(DeadlockPolicy::WoundWait, ks);
                let mut round = 0u64;
                b.iter(|| {
                    round += 1;
                    let txn = t(round);
                    for key in microcycle_keys(items, round) {
                        black_box(lm.acquire(txn, key, LockMode::Exclusive));
                    }
                    lm.release_all(txn).len()
                });
            });
        }
        g.bench_function(format!("lock_microcycle/seed_baseline/k={items}"), |b| {
            let mut lm = SeedLockManager::default();
            let mut round = 0u64;
            b.iter(|| {
                round += 1;
                let txn = t(round);
                for key in microcycle_keys(items, round) {
                    black_box(lm.acquire(txn, key, LockMode::Exclusive));
                }
                lm.release_all(txn);
            });
        });
    }
    g.finish();
}

fn bench_certification(c: &mut Criterion) {
    let mut g = c.benchmark_group("db_kernel");
    g.sample_size(20);
    for &items in &KEYSPACES {
        for (label, dense) in [("dense", true), ("sparse", false)] {
            let ks = if dense {
                Keyspace::dense(items)
            } else {
                Keyspace::sparse(items)
            };
            g.bench_function(format!("certify/{label}/k={items}"), |b| {
                let mut cert = Certifier::with_keyspace(ks);
                let mut round = 0u64;
                b.iter(|| {
                    round += 1;
                    let keys = microcycle_keys(items, round);
                    let reads: Vec<(Key, u64)> =
                        keys.iter().map(|&k| (k, cert.version_of(k))).collect();
                    let ws = WriteSet {
                        txn: t(round),
                        writes: keys
                            .iter()
                            .map(|&k| WriteRecord {
                                key: k,
                                value: Value(round as i64),
                                version: 0,
                            })
                            .collect(),
                    };
                    black_box(cert.certify(&reads, &ws).is_commit())
                });
            });
        }
    }
    g.finish();
}

fn bench_deadlock_check(c: &mut Criterion) {
    let mut g = c.benchmark_group("db_kernel");
    g.sample_size(20);
    // A contended Detect-policy table: 16 holders, each with a queued
    // conflicting waiter (no cycle), plus graph queries every iteration.
    g.bench_function("find_deadlock/contended_no_cycle", |b| {
        let mut lm = LockManager::with_keyspace(DeadlockPolicy::Detect, Keyspace::dense(64));
        for i in 0..16u64 {
            lm.acquire(t(i + 1), Key(i), LockMode::Exclusive);
            lm.acquire(t(i + 17), Key(i), LockMode::Exclusive);
        }
        b.iter(|| black_box(lm.find_deadlock().is_none()));
    });
    // The idle fast path: no waiters anywhere, the check must be free.
    g.bench_function("find_deadlock/idle", |b| {
        let mut lm = LockManager::with_keyspace(DeadlockPolicy::Detect, Keyspace::dense(64));
        for i in 0..16u64 {
            lm.acquire(t(i + 1), Key(i), LockMode::Exclusive);
        }
        b.iter(|| black_box(lm.find_deadlock().is_none()));
    });
    g.finish();
}

fn bench_history_check(c: &mut Criterion) {
    let mut g = c.benchmark_group("db_kernel");
    g.sample_size(20);
    // 1000 committed single-site transactions over 64 keys; the check
    // reads the incrementally maintained graph instead of re-scanning
    // the 2000-op history each call.
    g.bench_function("history_1sr_check/1k_txns", |b| {
        let mut h = ReplicatedHistory::new();
        for i in 0..1000u64 {
            let txn = t(i + 1);
            h.record(0, txn, Key(i % 64), AccessKind::Write);
            h.record(0, txn, Key((i + 17) % 64), AccessKind::Read);
            h.mark_committed(txn);
        }
        let mut flushed = ReplicatedHistory::new();
        flushed.merge(&h); // merge integrates the queued ops once
        b.iter(|| black_box(flushed.check_one_copy_serializable().is_ok()));
    });
    g.finish();
}

fn report_p10(c: &mut Criterion) {
    let _ = c;
    println!(
        "{}",
        render(
            "P10 — kernel scaling (3 replicas, technique × keyspace × clients)",
            &kernel_table(&[64, 1024], &[4])
        )
    );
}

criterion_group!(
    benches,
    report_p10,
    bench_lock_microcycle,
    bench_certification,
    bench_deadlock_check,
    bench_history_check
);
criterion_main!(benches);
