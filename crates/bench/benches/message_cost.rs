//! P3 — messages per operation vs replication degree.

use criterion::{criterion_group, criterion_main, Criterion};
use repl_bench::{message_cost_table, render, update_workload};
use repl_core::{run, RunConfig, Technique};

fn bench(c: &mut Criterion) {
    println!(
        "{}",
        render(
            "P3 — messages per operation vs replication degree",
            &message_cost_table(&[2, 4, 8, 16]),
        )
    );
    let mut g = c.benchmark_group("message_cost");
    g.sample_size(10);
    for technique in [
        Technique::Passive,
        Technique::EagerUpdateEverywhereLocking,
        Technique::EagerUpdateEverywhereAbcast,
    ] {
        let cfg = RunConfig::new(technique)
            .with_servers(4)
            .with_clients(2)
            .with_seed(107)
            .with_trace(false)
            .with_workload(update_workload(10));
        g.bench_function(format!("{technique}/n4"), |b| {
            b.iter(|| std::hint::black_box(run(&cfg)).messages_per_op())
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
