//! Figures 2–4 and 7–14 — phase-trace generation for every technique,
//! single- and multi-operation.

use criterion::{criterion_group, criterion_main, Criterion};
use repl_bench::figure_config;
use repl_core::{figures, run, Technique};

fn bench(c: &mut Criterion) {
    // Print every measured phase diagram once (the figures themselves).
    for (technique, ops) in [
        (Technique::Active, 1),
        (Technique::Passive, 1),
        (Technique::SemiActive, 1),
        (Technique::SemiPassive, 1),
        (Technique::EagerPrimary, 1),
        (Technique::EagerUpdateEverywhereLocking, 1),
        (Technique::EagerUpdateEverywhereAbcast, 1),
        (Technique::LazyPrimary, 1),
        (Technique::LazyUpdateEverywhere, 1),
        (Technique::Certification, 1),
        (Technique::EagerPrimary, 3),
        (Technique::EagerUpdateEverywhereLocking, 3),
    ] {
        println!("{}", figures::phase_diagram(technique, ops));
    }
    let mut g = c.benchmark_group("phase_traces");
    g.sample_size(10);
    for technique in [Technique::Active, Technique::Certification] {
        let cfg = figure_config(technique, 1);
        g.bench_function(format!("{technique}/figure_run"), |b| {
            b.iter(|| {
                let report = run(&cfg);
                std::hint::black_box(report.canonical_skeleton())
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
