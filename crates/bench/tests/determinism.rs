//! Serial-vs-parallel determinism: the sweep engine must be a pure
//! scheduler.
//!
//! Every replication technique is run at two seeds, once on the serial
//! reference path (`threads = 1`) and once fanned across worker
//! threads. For every cell the two sweeps must produce *identical*
//! reports — compared by the full [`RunReport::digest`] (latency
//! samples, message counters, per-op records, availability) and by the
//! event-level trace hash. Any cross-run state leak (a shared RNG, a
//! global, unordered iteration feeding event order) shows up here as a
//! digest mismatch naming the exact technique/seed cell.

use repl_bench::sweep::{run_sweep, SweepCell};
use repl_bench::update_workload;
use repl_core::{RunConfig, Technique};

fn study_cells() -> Vec<SweepCell> {
    let mut cells = Vec::new();
    for technique in Technique::ALL {
        for seed in [11u64, 8_675_309] {
            cells.push(SweepCell::new(
                format!("{}/seed={seed}", technique.name()),
                RunConfig::new(technique)
                    .with_servers(3)
                    .with_clients(2)
                    .with_seed(seed)
                    .with_trace(true)
                    .with_workload(update_workload(6)),
            ));
        }
    }
    cells
}

#[test]
fn serial_and_parallel_sweeps_agree_exactly() {
    let cells = study_cells();
    let serial = run_sweep(&cells, 1);
    let parallel = run_sweep(&cells, 4);
    assert_eq!(serial.len(), cells.len());
    for (s, p) in serial.iter().zip(&parallel) {
        assert_eq!(s.label, p.label, "sweep results out of order");
        let sr = s
            .result
            .as_ref()
            .unwrap_or_else(|e| panic!("serial cell `{}` failed: {e}", s.label));
        let pr = p
            .result
            .as_ref()
            .unwrap_or_else(|e| panic!("parallel cell `{}` failed: {e}", p.label));
        assert_ne!(sr.trace_hash, 0, "cell `{}` produced no trace", s.label);
        assert_eq!(
            sr.trace_hash, pr.trace_hash,
            "event trace diverged between serial and parallel for `{}`",
            s.label
        );
        assert_eq!(
            sr.digest(),
            pr.digest(),
            "report digest diverged between serial and parallel for `{}`",
            s.label
        );
    }
}

#[test]
fn sweep_smoke_two_techniques_two_seeds() {
    // The cheap CI gate: a 2×2 matrix through the parallel path must
    // succeed and agree with the serial reference.
    let mut cells = Vec::new();
    for technique in [Technique::Active, Technique::EagerPrimary] {
        for seed in [1u64, 2] {
            cells.push(SweepCell::new(
                format!("{}/seed={seed}", technique.name()),
                RunConfig::new(technique)
                    .with_servers(3)
                    .with_clients(2)
                    .with_seed(seed)
                    .with_trace(true)
                    .with_workload(update_workload(4)),
            ));
        }
    }
    let serial = run_sweep(&cells, 1);
    let parallel = run_sweep(&cells, 2);
    for (s, p) in serial.iter().zip(&parallel) {
        let (sr, pr) = (s.result.as_ref().unwrap(), p.result.as_ref().unwrap());
        assert!(sr.ops_completed > 0, "cell `{}` did no work", s.label);
        assert_eq!(sr.digest(), pr.digest(), "cell `{}` diverged", s.label);
    }
}

#[test]
fn batching_cells_are_deterministic() {
    // Batching adds flush timers and staged state to the hot path; none
    // of it may leak across cells or threads. Every ABCAST technique ×
    // implementation × window must agree digest-for-digest and
    // trace-for-trace between the serial reference and a parallel sweep.
    use repl_bench::{batching_cell_label, batching_cells};
    let cells: Vec<SweepCell> = batching_cells(&[2], &[250, 1_000])
        .into_iter()
        .map(|cell| {
            let label = batching_cell_label(&cell);
            SweepCell::new(label, cell.cfg.with_trace(true))
        })
        .collect();
    assert!(!cells.is_empty());
    let serial = run_sweep(&cells, 1);
    let parallel = run_sweep(&cells, 3);
    for (s, p) in serial.iter().zip(&parallel) {
        let (sr, pr) = (s.result.as_ref().unwrap(), p.result.as_ref().unwrap());
        assert!(sr.ops_completed > 0, "cell `{}` did no work", s.label);
        assert_ne!(sr.trace_hash, 0, "cell `{}` produced no trace", s.label);
        assert_eq!(sr.digest(), pr.digest(), "cell `{}` diverged", s.label);
        assert_eq!(sr.trace_hash, pr.trace_hash, "cell `{}` diverged", s.label);
    }
}

#[test]
fn recovery_cells_are_deterministic() {
    // Crash→recover plans exercise rejoin, state transfer and the MTTR
    // accounting; none of it may depend on sweep scheduling. Every
    // technique under a paired outage must agree digest-for-digest and
    // trace-for-trace between the serial reference and a parallel
    // sweep — and must actually have recovered, or the cell is vacuous.
    use repl_bench::{recovery_cell_label, recovery_cells};
    let cells: Vec<SweepCell> = recovery_cells(&[15_000], &[1.0])
        .into_iter()
        .map(|cell| SweepCell::new(recovery_cell_label(&cell), cell.faulted.with_trace(true)))
        .collect();
    assert_eq!(cells.len(), Technique::ALL.len());
    let serial = run_sweep(&cells, 1);
    let parallel = run_sweep(&cells, 3);
    for (s, p) in serial.iter().zip(&parallel) {
        let (sr, pr) = (s.result.as_ref().unwrap(), p.result.as_ref().unwrap());
        assert!(
            sr.availability.mttr_ticks().is_some(),
            "cell `{}` never completed its recovery",
            s.label
        );
        assert_ne!(sr.trace_hash, 0, "cell `{}` produced no trace", s.label);
        assert_eq!(sr.digest(), pr.digest(), "cell `{}` diverged", s.label);
        assert_eq!(sr.trace_hash, pr.trace_hash, "cell `{}` diverged", s.label);
    }
}

#[test]
fn disaster_cells_are_deterministic() {
    // Volume-loss plans exercise the durable tier end to end: sealing,
    // asynchronous uploads, the wipe, the tier restore and the loss
    // accounting. None of it may depend on sweep scheduling. Every
    // technique under the P12 disaster must agree digest-for-digest and
    // trace-for-trace between the serial reference and a parallel
    // sweep — and must actually have restored, or the cell is vacuous.
    use repl_bench::{disaster_cell_label, disaster_cells};
    let cells: Vec<SweepCell> = disaster_cells(&[2_000])
        .into_iter()
        .map(|cell| SweepCell::new(disaster_cell_label(&cell), cell.faulted.with_trace(true)))
        .collect();
    assert_eq!(cells.len(), Technique::ALL.len());
    let serial = run_sweep(&cells, 1);
    let parallel = run_sweep(&cells, 3);
    for (s, p) in serial.iter().zip(&parallel) {
        let (sr, pr) = (s.result.as_ref().unwrap(), p.result.as_ref().unwrap());
        assert!(
            sr.durability.restores > 0,
            "cell `{}` never restored from the durable tier",
            s.label
        );
        assert!(
            sr.check_no_silent_loss().is_ok(),
            "cell `{}` silently lost acknowledged commits",
            s.label
        );
        assert_ne!(sr.trace_hash, 0, "cell `{}` produced no trace", s.label);
        assert_eq!(sr.digest(), pr.digest(), "cell `{}` diverged", s.label);
        assert_eq!(sr.trace_hash, pr.trace_hash, "cell `{}` diverged", s.label);
    }
}

#[test]
fn open_loop_cells_are_deterministic() {
    // The aggregated open-loop engine replaces per-client actors with
    // per-group arrival streams, streams latencies into a histogram, and
    // runs servers lean; none of it may depend on sweep scheduling.
    // Every technique at a small population must agree
    // digest-for-digest between the serial reference and a parallel
    // sweep, and the digest must cover the histogram (cells with equal
    // counters but different latency distributions must not collide).
    use repl_core::Arrival;
    use repl_workload::ArrivalDist;
    let cells: Vec<SweepCell> = Technique::ALL
        .iter()
        .flat_map(|&technique| {
            [ArrivalDist::Poisson, ArrivalDist::Uniform].map(|dist| {
                SweepCell::new(
                    format!("{}/agg/{dist:?}", technique.name()),
                    RunConfig::new(technique)
                        .with_servers(3)
                        .with_clients(6)
                        .with_seed(23)
                        .with_trace(false)
                        .with_arrival(Arrival::OpenAggregated { mean: 2_000, dist })
                        .with_workload(update_workload(4)),
                )
            })
        })
        .collect();
    assert_eq!(cells.len(), 2 * Technique::ALL.len());
    let serial = run_sweep(&cells, 1);
    let parallel = run_sweep(&cells, 3);
    for (s, p) in serial.iter().zip(&parallel) {
        let (sr, pr) = (s.result.as_ref().unwrap(), p.result.as_ref().unwrap());
        assert!(sr.ops_completed > 0, "cell `{}` did no work", s.label);
        let hist = sr
            .latency_hist
            .as_ref()
            .unwrap_or_else(|| panic!("cell `{}` has no streaming histogram", s.label));
        assert_eq!(
            hist.count(),
            sr.ops_completed,
            "cell `{}` histogram lost samples",
            s.label
        );
        assert!(
            sr.records.is_empty(),
            "cell `{}` kept per-op records on the aggregated path",
            s.label
        );
        assert_eq!(sr.digest(), pr.digest(), "cell `{}` diverged", s.label);
    }
    // The two arrival shapes share every config knob except the gap
    // distribution; their digests must differ through the histogram.
    for pair in serial.chunks(2) {
        let (a, b) = (
            pair[0].result.as_ref().unwrap(),
            pair[1].result.as_ref().unwrap(),
        );
        assert_ne!(
            a.digest(),
            b.digest(),
            "Poisson and Uniform arrivals produced identical digests for `{}`",
            pair[0].label
        );
    }
}

#[test]
fn thread_count_is_not_observable() {
    // Different worker counts (and therefore different cell-to-thread
    // assignments) must still agree cell-for-cell.
    let cells: Vec<SweepCell> = study_cells().into_iter().take(8).collect();
    let a = run_sweep(&cells, 2);
    let b = run_sweep(&cells, 5);
    for (x, y) in a.iter().zip(&b) {
        let (xr, yr) = (x.result.as_ref().unwrap(), y.result.as_ref().unwrap());
        assert_eq!(xr.digest(), yr.digest(), "cell `{}` diverged", x.label);
        assert_eq!(xr.trace_hash, yr.trace_hash, "cell `{}` diverged", x.label);
    }
}
