//! Two-phase commit: the Agreement Coordination mechanism of the paper's
//! eager database techniques (Sections 4.3–4.4).
//!
//! Pure state machines — the replication protocols embed them in their
//! actors and carry the [`TpcMsg`]s inside their own wire types. Generic
//! over the participant id so they are usable both inside the simulator
//! (`NodeId`) and in plain unit tests (`u32`).

use std::collections::HashSet;
use std::hash::Hash;

/// 2PC wire messages for one transaction (the transaction id is carried by
/// the embedding protocol).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TpcMsg {
    /// Coordinator → participant: request to prepare.
    Prepare,
    /// Participant → coordinator: ready to commit.
    VoteYes,
    /// Participant → coordinator: must abort.
    VoteNo,
    /// Coordinator → participant: global commit.
    GlobalCommit,
    /// Coordinator → participant: global abort.
    GlobalAbort,
}

/// The atomic-commitment outcome.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TpcDecision {
    /// All participants voted yes.
    Commit,
    /// Some participant voted no (or the coordinator aborted unilaterally).
    Abort,
}

/// Coordinator state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TpcCoordState {
    /// Collecting votes.
    Voting,
    /// Decision reached.
    Decided(TpcDecision),
}

/// The coordinator side of 2PC for a single transaction.
///
/// # Examples
///
/// ```
/// use repl_db::{TpcCoordinator, TpcDecision};
///
/// let mut c = TpcCoordinator::new(vec![1u32, 2]);
/// assert_eq!(c.start(), vec![1, 2]); // send Prepare to both
/// assert_eq!(c.on_vote(1, true), None);
/// assert_eq!(c.on_vote(2, true), Some(TpcDecision::Commit));
/// ```
#[derive(Debug, Clone)]
pub struct TpcCoordinator<P> {
    participants: Vec<P>,
    yes: HashSet<P>,
    state: TpcCoordState,
}

impl<P: Copy + Eq + Hash> TpcCoordinator<P> {
    /// Creates a coordinator awaiting votes from `participants`.
    ///
    /// An empty participant set decides `Commit` immediately on `start`
    /// (the coordinator is the only site).
    pub fn new(participants: Vec<P>) -> Self {
        TpcCoordinator {
            participants,
            yes: HashSet::new(),
            state: TpcCoordState::Voting,
        }
    }

    /// Begins the protocol; returns the participants to send `Prepare` to.
    pub fn start(&mut self) -> Vec<P> {
        if self.participants.is_empty() {
            self.state = TpcCoordState::Decided(TpcDecision::Commit);
        }
        self.participants.clone()
    }

    /// Records a vote. Returns the decision the moment it is reached
    /// (`Commit` after the last yes, `Abort` on the first no), `None`
    /// otherwise. Votes after the decision are ignored.
    pub fn on_vote(&mut self, from: P, yes: bool) -> Option<TpcDecision> {
        if self.state != TpcCoordState::Voting || !self.participants.contains(&from) {
            return None;
        }
        if !yes {
            self.state = TpcCoordState::Decided(TpcDecision::Abort);
            return Some(TpcDecision::Abort);
        }
        self.yes.insert(from);
        if self.yes.len() == self.participants.len() {
            self.state = TpcCoordState::Decided(TpcDecision::Commit);
            return Some(TpcDecision::Commit);
        }
        None
    }

    /// Aborts unilaterally (participant crash detected during voting).
    /// Returns `Some(Abort)` if this changed the state.
    pub fn abort(&mut self) -> Option<TpcDecision> {
        if self.state == TpcCoordState::Voting {
            self.state = TpcCoordState::Decided(TpcDecision::Abort);
            Some(TpcDecision::Abort)
        } else {
            None
        }
    }

    /// Current state.
    pub fn state(&self) -> TpcCoordState {
        self.state
    }

    /// The decision, if reached.
    pub fn decision(&self) -> Option<TpcDecision> {
        match self.state {
            TpcCoordState::Decided(d) => Some(d),
            TpcCoordState::Voting => None,
        }
    }

    /// The participant set.
    pub fn participants(&self) -> &[P] {
        &self.participants
    }

    /// Participants that have not voted yes yet.
    pub fn missing(&self) -> Vec<P>
    where
        P: Ord,
    {
        let mut v: Vec<P> = self
            .participants
            .iter()
            .filter(|p| !self.yes.contains(p))
            .copied()
            .collect();
        v.sort();
        v
    }
}

/// Participant state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TpcPartState {
    /// Not yet prepared.
    Working,
    /// Voted yes; blocked awaiting the decision (the classic 2PC window).
    Prepared,
    /// Learned the decision.
    Decided(TpcDecision),
}

/// The participant side of 2PC for a single transaction.
///
/// # Examples
///
/// ```
/// use repl_db::{TpcParticipant, TpcMsg, TpcDecision, TpcPartState};
///
/// let mut p = TpcParticipant::new();
/// assert_eq!(p.on_prepare(true), TpcMsg::VoteYes);
/// assert_eq!(p.state(), TpcPartState::Prepared);
/// p.on_decision(TpcDecision::Commit);
/// assert_eq!(p.state(), TpcPartState::Decided(TpcDecision::Commit));
/// ```
#[derive(Debug, Clone, Copy, Default)]
pub struct TpcParticipant {
    state: TpcPartStateInner,
}

#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
enum TpcPartStateInner {
    #[default]
    Working,
    Prepared,
    Decided(TpcDecision),
}

impl TpcParticipant {
    /// Creates a participant in the working state.
    pub fn new() -> Self {
        TpcParticipant::default()
    }

    /// Handles `Prepare`: votes yes if the local transaction can commit.
    pub fn on_prepare(&mut self, can_commit: bool) -> TpcMsg {
        match self.state {
            TpcPartStateInner::Working => {
                if can_commit {
                    self.state = TpcPartStateInner::Prepared;
                    TpcMsg::VoteYes
                } else {
                    self.state = TpcPartStateInner::Decided(TpcDecision::Abort);
                    TpcMsg::VoteNo
                }
            }
            TpcPartStateInner::Prepared => TpcMsg::VoteYes, // duplicate Prepare
            TpcPartStateInner::Decided(TpcDecision::Abort) => TpcMsg::VoteNo,
            TpcPartStateInner::Decided(TpcDecision::Commit) => TpcMsg::VoteYes,
        }
    }

    /// Records the global decision.
    pub fn on_decision(&mut self, d: TpcDecision) {
        self.state = TpcPartStateInner::Decided(d);
    }

    /// Current state.
    pub fn state(&self) -> TpcPartState {
        match self.state {
            TpcPartStateInner::Working => TpcPartState::Working,
            TpcPartStateInner::Prepared => TpcPartState::Prepared,
            TpcPartStateInner::Decided(d) => TpcPartState::Decided(d),
        }
    }

    /// True while blocked in the prepared window.
    pub fn is_blocked(&self) -> bool {
        self.state == TpcPartStateInner::Prepared
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unanimous_yes_commits() {
        let mut c = TpcCoordinator::new(vec![1u32, 2, 3]);
        assert_eq!(c.start().len(), 3);
        assert_eq!(c.on_vote(1, true), None);
        assert_eq!(c.on_vote(2, true), None);
        assert_eq!(c.on_vote(3, true), Some(TpcDecision::Commit));
        assert_eq!(c.decision(), Some(TpcDecision::Commit));
    }

    #[test]
    fn first_no_aborts_immediately() {
        let mut c = TpcCoordinator::new(vec![1u32, 2, 3]);
        c.start();
        assert_eq!(c.on_vote(1, true), None);
        assert_eq!(c.on_vote(2, false), Some(TpcDecision::Abort));
        // Late yes is ignored.
        assert_eq!(c.on_vote(3, true), None);
        assert_eq!(c.decision(), Some(TpcDecision::Abort));
    }

    #[test]
    fn votes_from_strangers_are_ignored() {
        let mut c = TpcCoordinator::new(vec![1u32]);
        c.start();
        assert_eq!(c.on_vote(99, true), None);
        assert_eq!(c.on_vote(1, true), Some(TpcDecision::Commit));
    }

    #[test]
    fn duplicate_votes_do_not_double_count() {
        let mut c = TpcCoordinator::new(vec![1u32, 2]);
        c.start();
        assert_eq!(c.on_vote(1, true), None);
        assert_eq!(c.on_vote(1, true), None);
        assert_eq!(c.missing(), vec![2]);
        assert_eq!(c.on_vote(2, true), Some(TpcDecision::Commit));
    }

    #[test]
    fn empty_participant_set_commits_on_start() {
        let mut c: TpcCoordinator<u32> = TpcCoordinator::new(vec![]);
        assert!(c.start().is_empty());
        assert_eq!(c.decision(), Some(TpcDecision::Commit));
    }

    #[test]
    fn unilateral_abort_only_while_voting() {
        let mut c = TpcCoordinator::new(vec![1u32]);
        c.start();
        assert_eq!(c.abort(), Some(TpcDecision::Abort));
        assert_eq!(c.abort(), None);
    }

    #[test]
    fn participant_blocks_in_prepared_window() {
        let mut p = TpcParticipant::new();
        assert!(!p.is_blocked());
        assert_eq!(p.on_prepare(true), TpcMsg::VoteYes);
        assert!(p.is_blocked());
        p.on_decision(TpcDecision::Abort);
        assert!(!p.is_blocked());
        assert_eq!(p.state(), TpcPartState::Decided(TpcDecision::Abort));
    }

    #[test]
    fn participant_no_vote_self_aborts() {
        let mut p = TpcParticipant::new();
        assert_eq!(p.on_prepare(false), TpcMsg::VoteNo);
        assert_eq!(p.state(), TpcPartState::Decided(TpcDecision::Abort));
        // Duplicate prepare re-answers consistently.
        assert_eq!(p.on_prepare(true), TpcMsg::VoteNo);
    }
}
