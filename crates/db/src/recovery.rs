//! State transfer for crash recovery: the db-level half of rejoin.
//!
//! When a replica recovers it must close the gap between its stable
//! state and the group's. The donor (primary, leader, or any up-to-date
//! peer) chooses between two classic strategies:
//!
//! * **Log suffix** — ship the redo records the requester missed. Cheap
//!   for short outages; only possible while the donor's [`RedoLog`]
//!   still retains the requester's position.
//! * **Snapshot** — ship the donor's full versioned store. Needed after
//!   long outages once the log has been truncated past the requester's
//!   position, and for techniques that keep no redo log at all.
//!
//! [`Transfer`] packages either form plus the donor's log watermark so
//! the requester knows where to resume. [`RecoveryTracker`] accumulates
//! the MTTR accounting the experiment reports surface (rejoin time,
//! catch-up time, transfer bytes, strategy counts).

use crate::item::Key;
use crate::log::{RedoLog, WriteSet};
use crate::store::{Store, Versioned};

/// Which state-transfer strategy a donor selected.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TransferStrategy {
    /// Redo-log suffix: the writesets the requester missed, in commit
    /// order. Applied like any propagated update.
    LogSuffix,
    /// Full store snapshot: replaces the requester's database state
    /// wholesale.
    Snapshot,
}

/// One state-transfer payload, donor → recovering replica.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Transfer {
    /// The strategy the donor chose.
    pub strategy: TransferStrategy,
    /// For [`TransferStrategy::LogSuffix`]: logical log index of the
    /// first shipped entry (the requester's `have`). Unused (0) for
    /// snapshots.
    pub start: u64,
    /// Log-suffix entries, in commit order (empty for snapshots).
    pub entries: Vec<WriteSet>,
    /// Store snapshot, key-sorted (empty for log suffixes).
    pub snapshot: Vec<(Key, Versioned)>,
    /// The donor's logical log length (applied watermark) at transfer
    /// time: the requester's new position after installing.
    pub high: u64,
}

impl Transfer {
    /// Builds a transfer for a requester that has applied the log prefix
    /// `[0, have)`. Ships the log suffix when the donor still retains
    /// it, otherwise falls back to a snapshot of `store`.
    pub fn from_log(log: &RedoLog, store: &Store, have: u64) -> Transfer {
        let high = log.len() as u64;
        if log.has_suffix(have) {
            Transfer {
                strategy: TransferStrategy::LogSuffix,
                start: have,
                entries: log.since(have as usize).cloned().collect(),
                snapshot: Vec::new(),
                high,
            }
        } else {
            Transfer::snapshot(store, high)
        }
    }

    /// Builds a snapshot transfer from `store`, stamped with the donor's
    /// applied watermark (use 0 for techniques without a log position).
    pub fn snapshot(store: &Store, high: u64) -> Transfer {
        Transfer {
            strategy: TransferStrategy::Snapshot,
            start: 0,
            entries: Vec::new(),
            snapshot: store.snapshot(),
            high,
        }
    }

    /// Builds a snapshot of `store`'s *committed* state: tentative
    /// in-place writes of transactions still active in `tm` are rolled
    /// back to their before-images, so a requester never installs data
    /// that the donor might later undo.
    pub fn committed_snapshot(store: &Store, tm: &crate::TxnManager, high: u64) -> Transfer {
        let mut snap = store.snapshot();
        let before = tm.before_images();
        for (k, v) in snap.iter_mut() {
            if let Some(b) = before.get(k) {
                *v = *b;
            }
        }
        Transfer {
            strategy: TransferStrategy::Snapshot,
            start: 0,
            entries: Vec::new(),
            snapshot: snap,
            high,
        }
    }

    /// Approximate wire size in bytes, for message and MTTR accounting.
    pub fn wire_size(&self) -> usize {
        let entries: usize = self.entries.iter().map(WriteSet::wire_size).sum();
        // Key + value + version + writer per snapshot item.
        32 + entries + self.snapshot.len() * 40
    }

    /// Applies the transfer to a bare store (no history recording) and
    /// returns the requester's new applied watermark. Protocol servers
    /// that track execution histories install log suffixes through
    /// their own writeset-install path instead.
    pub fn apply(&self, store: &mut Store) -> u64 {
        match self.strategy {
            TransferStrategy::LogSuffix => {
                for ws in &self.entries {
                    store.apply_writeset(ws);
                }
            }
            TransferStrategy::Snapshot => store.install_snapshot(&self.snapshot),
        }
        self.high
    }
}

/// Per-replica recovery accounting, surfaced through run reports.
///
/// Protocols call [`RecoveryTracker::begin`] from `on_recover` and
/// [`RecoveryTracker::complete`] once caught up (state transfer
/// installed, or the ordered stream refilled). Times are virtual ticks.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RecoveryTracker {
    /// Tick of the most recent rejoin attempt (`on_recover`).
    pub rejoin_at: Option<u64>,
    /// Tick when the most recent recovery finished catching up.
    pub caught_up_at: Option<u64>,
    /// Total state-transfer bytes received across all recoveries.
    pub transfer_bytes: u64,
    /// Transfers served from a redo-log suffix.
    pub log_suffix_transfers: u64,
    /// Transfers served as full snapshots.
    pub snapshot_transfers: u64,
    /// Number of recoveries started.
    pub recoveries: u64,
}

impl RecoveryTracker {
    /// Marks the start of a recovery (call from `on_recover`).
    pub fn begin(&mut self, now: u64) {
        self.rejoin_at = Some(now);
        self.caught_up_at = None;
        self.recoveries += 1;
    }

    /// True while a recovery has started but not yet caught up.
    pub fn is_recovering(&self) -> bool {
        self.rejoin_at.is_some() && self.caught_up_at.is_none()
    }

    /// Marks the recovery as caught up (idempotent per recovery).
    pub fn complete(&mut self, now: u64) {
        if self.is_recovering() {
            self.caught_up_at = Some(now);
        }
    }

    /// Records a received transfer's strategy and size.
    pub fn record_transfer(&mut self, strategy: TransferStrategy, bytes: u64) {
        self.transfer_bytes += bytes;
        match strategy {
            TransferStrategy::LogSuffix => self.log_suffix_transfers += 1,
            TransferStrategy::Snapshot => self.snapshot_transfers += 1,
        }
    }

    /// Catch-up duration of the last completed recovery, in ticks.
    pub fn catch_up_ticks(&self) -> Option<u64> {
        match (self.rejoin_at, self.caught_up_at) {
            (Some(r), Some(c)) => Some(c.saturating_sub(r)),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::item::{TxnId, Value};

    fn committed(store: &mut Store, log: &mut RedoLog, key: u64, value: i64, ts: u64) {
        let t = TxnId::new(ts, 0);
        let v = store.write(Key(key), Value(value), t);
        log.append(WriteSet {
            txn: t,
            writes: vec![crate::log::WriteRecord {
                key: Key(key),
                value: Value(value),
                version: v.version,
            }],
        });
    }

    #[test]
    fn short_outage_ships_a_log_suffix() {
        let mut store = Store::with_items(4, Value(0));
        let mut log = RedoLog::new();
        for i in 0..6 {
            committed(&mut store, &mut log, i % 4, i as i64, i + 1);
        }
        // The requester saw the first four commits.
        let t = Transfer::from_log(&log, &store, 4);
        assert_eq!(t.strategy, TransferStrategy::LogSuffix);
        assert_eq!(t.start, 4);
        assert_eq!(t.entries.len(), 2);
        assert_eq!(t.high, 6);
        let mut joiner = store.clone();
        // Roll the joiner back to its pre-crash state by replaying the
        // prefix onto a fresh store.
        let mut behind = Store::with_items(4, Value(0));
        for ws in log.since(0).take(4) {
            behind.apply_writeset(ws);
        }
        assert_ne!(behind.fingerprint(), store.fingerprint());
        assert_eq!(t.apply(&mut behind), 6);
        assert_eq!(behind.fingerprint(), store.fingerprint());
        assert_eq!(t.apply(&mut joiner), 6, "idempotent re-apply");
        assert_eq!(joiner.fingerprint(), store.fingerprint());
    }

    #[test]
    fn truncated_log_falls_back_to_snapshot() {
        let mut store = Store::with_items(4, Value(0));
        let mut log = RedoLog::new().with_retention(2);
        for i in 0..8 {
            committed(&mut store, &mut log, i % 4, 10 + i as i64, i + 1);
        }
        assert_eq!(log.first_retained(), 6);
        // A requester at position 3 fell behind the truncation point.
        let t = Transfer::from_log(&log, &store, 3);
        assert_eq!(t.strategy, TransferStrategy::Snapshot);
        assert_eq!(t.high, 8);
        let mut behind = Store::with_items(4, Value(-1));
        assert_eq!(t.apply(&mut behind), 8);
        assert_eq!(behind.fingerprint(), store.fingerprint());
        // A requester inside the retained window still gets the suffix.
        let t2 = Transfer::from_log(&log, &store, 7);
        assert_eq!(t2.strategy, TransferStrategy::LogSuffix);
        assert_eq!(t2.entries.len(), 1);
    }

    #[test]
    fn tracker_accounts_for_mttr() {
        let mut tr = RecoveryTracker::default();
        assert!(!tr.is_recovering());
        tr.begin(1_000);
        assert!(tr.is_recovering());
        assert_eq!(tr.catch_up_ticks(), None);
        tr.record_transfer(TransferStrategy::Snapshot, 640);
        tr.record_transfer(TransferStrategy::LogSuffix, 64);
        tr.complete(4_500);
        tr.complete(9_999); // idempotent: later completes ignored
        assert_eq!(tr.catch_up_ticks(), Some(3_500));
        assert_eq!(tr.transfer_bytes, 704);
        assert_eq!(tr.snapshot_transfers, 1);
        assert_eq!(tr.log_suffix_transfers, 1);
        assert_eq!(tr.recoveries, 1);
        // A second recovery restarts the clock.
        tr.begin(20_000);
        assert!(tr.is_recovering());
        assert_eq!(tr.catch_up_ticks(), None);
        assert_eq!(tr.recoveries, 2);
    }

    #[test]
    fn wire_size_scales_with_payload() {
        let store = Store::with_items(10, Value(0));
        let snap = Transfer::snapshot(&store, 0);
        assert_eq!(snap.wire_size(), 32 + 10 * 40);
        let log = RedoLog::new();
        let suffix = Transfer::from_log(&log, &store, 0);
        assert_eq!(suffix.strategy, TransferStrategy::LogSuffix);
        assert_eq!(suffix.wire_size(), 32);
    }
}
