//! Execution histories over replicated data, and the one-copy-
//! serializability checker.
//!
//! Every site records the order in which it performed physical operations
//! on its copies. The union of the per-site conflict orders (restricted to
//! committed transactions) forms the *replicated-data serialization
//! graph*; the history is one-copy serializable iff that graph is acyclic
//! (Bernstein, Hadzilacos & Goodman 1987) — the paper's correctness
//! criterion for database replication (Section 4.1).

use std::collections::{HashMap, HashSet};

use crate::item::{AccessKind, Key, TxnId};

/// One physical operation as recorded by a site.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HistOp {
    /// The recording site.
    pub site: u32,
    /// The transaction performing the access.
    pub txn: TxnId,
    /// The logical item accessed (this site's physical copy).
    pub key: Key,
    /// Read or write.
    pub kind: AccessKind,
}

/// A multi-site execution history.
///
/// # Examples
///
/// ```
/// use repl_db::{ReplicatedHistory, AccessKind, Key, TxnId};
///
/// let mut h = ReplicatedHistory::new();
/// let (t1, t2) = (TxnId::new(1, 0), TxnId::new(2, 0));
/// h.record(0, t1, Key(0), AccessKind::Write);
/// h.record(0, t2, Key(0), AccessKind::Write);
/// h.mark_committed(t1);
/// h.mark_committed(t2);
/// let order = h.check_one_copy_serializable().expect("1SR");
/// assert_eq!(order, vec![t1, t2]);
/// ```
#[derive(Debug, Clone, Default)]
pub struct ReplicatedHistory {
    /// Per-site operation streams, in execution order.
    per_site: HashMap<u32, Vec<HistOp>>,
    committed: HashSet<TxnId>,
}

/// A cycle in the serialization graph: evidence of a non-serializable
/// execution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SerializabilityViolation {
    /// The transactions on the cycle, in edge order.
    pub cycle: Vec<TxnId>,
}

impl std::fmt::Display for SerializabilityViolation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "serialization-graph cycle through {} transactions",
            self.cycle.len()
        )
    }
}

impl std::error::Error for SerializabilityViolation {}

impl ReplicatedHistory {
    /// Creates an empty history.
    pub fn new() -> Self {
        ReplicatedHistory::default()
    }

    /// Records a physical operation at `site` in execution order.
    pub fn record(&mut self, site: u32, txn: TxnId, key: Key, kind: AccessKind) {
        self.per_site.entry(site).or_default().push(HistOp {
            site,
            txn,
            key,
            kind,
        });
    }

    /// Marks a transaction as committed; only committed transactions
    /// participate in the serialization graph.
    pub fn mark_committed(&mut self, txn: TxnId) {
        self.committed.insert(txn);
    }

    /// Number of recorded operations across all sites.
    pub fn len(&self) -> usize {
        self.per_site.values().map(|v| v.len()).sum()
    }

    /// True if no operations were recorded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The committed transactions.
    pub fn committed(&self) -> &HashSet<TxnId> {
        &self.committed
    }

    /// Removes every recorded operation of `txn` (used when an aborted
    /// attempt is retried under the same transaction id: the dead
    /// attempt's operations must not count once the retry commits).
    pub fn purge(&mut self, txn: TxnId) {
        for ops in self.per_site.values_mut() {
            ops.retain(|op| op.txn != txn);
        }
        self.committed.remove(&txn);
    }

    /// Merges another history (e.g. collected from another site's actor).
    pub fn merge(&mut self, other: &ReplicatedHistory) {
        for (site, ops) in &other.per_site {
            self.per_site
                .entry(*site)
                .or_default()
                .extend(ops.iter().copied());
        }
        self.committed.extend(other.committed.iter().copied());
    }

    /// The edges of the replicated-data serialization graph.
    pub fn conflict_edges(&self) -> Vec<(TxnId, TxnId)> {
        let mut edges = HashSet::new();
        for ops in self.per_site.values() {
            // Per key, the committed ops in site order.
            let mut per_key: HashMap<Key, Vec<(TxnId, AccessKind)>> = HashMap::new();
            for op in ops {
                if self.committed.contains(&op.txn) {
                    per_key.entry(op.key).or_default().push((op.txn, op.kind));
                }
            }
            for seq in per_key.values() {
                for (i, &(t1, k1)) in seq.iter().enumerate() {
                    for &(t2, k2) in &seq[i + 1..] {
                        if t1 != t2 && k1.conflicts_with(k2) {
                            edges.insert((t1, t2));
                        }
                    }
                }
            }
        }
        let mut v: Vec<(TxnId, TxnId)> = edges.into_iter().collect();
        v.sort_unstable();
        v
    }

    /// Checks one-copy serializability.
    ///
    /// # Errors
    ///
    /// Returns the violating cycle if the serialization graph is cyclic;
    /// otherwise returns a witness serial order (a topological sort).
    pub fn check_one_copy_serializable(&self) -> Result<Vec<TxnId>, SerializabilityViolation> {
        let edges = self.conflict_edges();
        let mut nodes: Vec<TxnId> = self.committed.iter().copied().collect();
        nodes.sort_unstable();
        let mut adj: HashMap<TxnId, Vec<TxnId>> = HashMap::new();
        let mut indeg: HashMap<TxnId, usize> = nodes.iter().map(|&n| (n, 0)).collect();
        for &(a, b) in &edges {
            adj.entry(a).or_default().push(b);
            *indeg.entry(b).or_insert(0) += 1;
            indeg.entry(a).or_insert(0);
        }
        // Kahn's algorithm with deterministic tie-breaking.
        let mut ready: Vec<TxnId> = indeg
            .iter()
            .filter(|(_, &d)| d == 0)
            .map(|(&n, _)| n)
            .collect();
        ready.sort_unstable();
        let mut order = Vec::with_capacity(indeg.len());
        while let Some(&n) = ready.first() {
            ready.remove(0);
            order.push(n);
            if let Some(succ) = adj.get(&n) {
                for &s in succ {
                    let d = indeg.get_mut(&s).expect("known node");
                    *d -= 1;
                    if *d == 0 {
                        let pos = ready.binary_search(&s).unwrap_or_else(|p| p);
                        ready.insert(pos, s);
                    }
                }
            }
        }
        if order.len() == indeg.len() {
            Ok(order)
        } else {
            Err(SerializabilityViolation {
                cycle: self.find_cycle(&edges),
            })
        }
    }

    fn find_cycle(&self, edges: &[(TxnId, TxnId)]) -> Vec<TxnId> {
        let mut adj: HashMap<TxnId, Vec<TxnId>> = HashMap::new();
        let mut nodes: HashSet<TxnId> = HashSet::new();
        for &(a, b) in edges {
            adj.entry(a).or_default().push(b);
            nodes.insert(a);
            nodes.insert(b);
        }
        let mut sorted: Vec<TxnId> = nodes.iter().copied().collect();
        sorted.sort_unstable();
        #[derive(Clone, Copy, PartialEq)]
        enum C {
            W,
            G,
            B,
        }
        let mut color: HashMap<TxnId, C> = nodes.iter().map(|&n| (n, C::W)).collect();
        for &start in &sorted {
            if color[&start] != C::W {
                continue;
            }
            let mut stack = vec![(start, 0usize)];
            let mut path = vec![start];
            color.insert(start, C::G);
            while let Some(&mut (node, ref mut idx)) = stack.last_mut() {
                let next = adj.get(&node).and_then(|v| v.get(*idx).copied());
                *idx += 1;
                match next {
                    Some(n) => match color[&n] {
                        C::G => {
                            let pos = path.iter().position(|&p| p == n).expect("on path");
                            return path[pos..].to_vec();
                        }
                        C::W => {
                            color.insert(n, C::G);
                            stack.push((n, 0));
                            path.push(n);
                        }
                        C::B => {}
                    },
                    None => {
                        color.insert(node, C::B);
                        stack.pop();
                        path.pop();
                    }
                }
            }
        }
        Vec::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use AccessKind::{Read, Write};

    fn t(ts: u64) -> TxnId {
        TxnId::new(ts, 0)
    }

    #[test]
    fn empty_history_is_serializable() {
        let h = ReplicatedHistory::new();
        assert!(h.is_empty());
        assert_eq!(
            h.check_one_copy_serializable().expect("trivially 1SR"),
            vec![]
        );
    }

    #[test]
    fn reads_never_conflict() {
        let mut h = ReplicatedHistory::new();
        h.record(0, t(1), Key(0), Read);
        h.record(0, t(2), Key(0), Read);
        h.mark_committed(t(1));
        h.mark_committed(t(2));
        assert!(h.conflict_edges().is_empty());
    }

    #[test]
    fn single_site_serial_order_follows_execution() {
        let mut h = ReplicatedHistory::new();
        h.record(0, t(2), Key(0), Write);
        h.record(0, t(1), Key(0), Write);
        h.mark_committed(t(1));
        h.mark_committed(t(2));
        // Execution order t2 then t1 — the witness must respect it.
        assert_eq!(
            h.check_one_copy_serializable().expect("1SR"),
            vec![t(2), t(1)]
        );
    }

    #[test]
    fn cross_site_write_inversion_is_detected() {
        // Site 0 applies t1's write before t2's; site 1 the reverse:
        // classic replica divergence, not 1SR.
        let mut h = ReplicatedHistory::new();
        h.record(0, t(1), Key(0), Write);
        h.record(0, t(2), Key(0), Write);
        h.record(1, t(2), Key(0), Write);
        h.record(1, t(1), Key(0), Write);
        h.mark_committed(t(1));
        h.mark_committed(t(2));
        let err = h.check_one_copy_serializable().expect_err("must be cyclic");
        assert_eq!(err.cycle.len(), 2);
        assert_eq!(
            err.to_string(),
            "serialization-graph cycle through 2 transactions"
        );
    }

    #[test]
    fn read_write_inversion_across_items_is_detected() {
        // t1 reads x then writes y; t2 reads y then writes x; interleaved
        // so each reads the pre-image: r1(x) r2(y) w1(y) w2(x) — cyclic.
        let mut h = ReplicatedHistory::new();
        h.record(0, t(1), Key(0), Read);
        h.record(0, t(2), Key(1), Read);
        h.record(0, t(1), Key(1), Write);
        h.record(0, t(2), Key(0), Write);
        h.mark_committed(t(1));
        h.mark_committed(t(2));
        assert!(h.check_one_copy_serializable().is_err());
    }

    #[test]
    fn uncommitted_transactions_are_ignored() {
        let mut h = ReplicatedHistory::new();
        h.record(0, t(1), Key(0), Write);
        h.record(0, t(2), Key(0), Write);
        h.record(0, t(1), Key(0), Write); // would be a w1 w2 w1 cycle if t2 counted
        h.mark_committed(t(1));
        assert!(h.check_one_copy_serializable().is_ok());
    }

    #[test]
    fn purge_removes_aborted_attempts() {
        let mut h = ReplicatedHistory::new();
        h.record(0, t(1), Key(0), Write);
        h.record(0, t(2), Key(0), Write);
        h.record(0, t(1), Key(1), Write);
        h.purge(t(1));
        h.record(0, t(1), Key(0), Write); // the retry
        h.mark_committed(t(1));
        h.mark_committed(t(2));
        // Without the purge this would be w1 w2 w1: cyclic.
        assert!(h.check_one_copy_serializable().is_ok());
        assert_eq!(h.len(), 2);
    }

    #[test]
    fn merge_combines_sites() {
        let mut a = ReplicatedHistory::new();
        a.record(0, t(1), Key(0), Write);
        a.mark_committed(t(1));
        let mut b = ReplicatedHistory::new();
        b.record(1, t(2), Key(0), Write);
        b.mark_committed(t(2));
        a.merge(&b);
        assert_eq!(a.len(), 2);
        assert_eq!(a.committed().len(), 2);
    }

    #[test]
    fn consistent_cross_site_order_is_serializable() {
        let mut h = ReplicatedHistory::new();
        for site in 0..3 {
            h.record(site, t(1), Key(0), Write);
            h.record(site, t(2), Key(0), Write);
            h.record(site, t(3), Key(0), Write);
        }
        for ts in 1..=3 {
            h.mark_committed(t(ts));
        }
        assert_eq!(
            h.check_one_copy_serializable().expect("1SR"),
            vec![t(1), t(2), t(3)]
        );
    }
}
