//! Execution histories over replicated data, and the one-copy-
//! serializability checker.
//!
//! Every site records the order in which it performed physical operations
//! on its copies. The union of the per-site conflict orders (restricted to
//! committed transactions) forms the *replicated-data serialization
//! graph*; the history is one-copy serializable iff that graph is acyclic
//! (Bernstein, Hadzilacos & Goodman 1987) — the paper's correctness
//! criterion for database replication (Section 4.1).
//!
//! The serialization graph is maintained *incrementally*: committed
//! operations are folded into a sorted edge set exactly once, so
//! [`ReplicatedHistory::check_one_copy_serializable`] never re-scans
//! operations it has already integrated. Integration is deferred —
//! `record`/`mark_committed` only queue work, keeping the per-operation
//! hot path to plain appends; the queue drains on `merge`, and graph
//! reads overlay whatever is still pending without mutating.

use std::collections::{BTreeSet, HashMap, HashSet};

use crate::hash::FxHashMap;
use crate::item::{AccessKind, Key, TxnId};

/// One physical operation as recorded by a site.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HistOp {
    /// The recording site.
    pub site: u32,
    /// The transaction performing the access.
    pub txn: TxnId,
    /// The logical item accessed (this site's physical copy).
    pub key: Key,
    /// Read or write.
    pub kind: AccessKind,
}

/// One site's operation stream. Each op carries a site-local sequence
/// number that survives `purge` compaction, so "earlier at this site"
/// stays well defined without re-deriving positions.
#[derive(Debug, Clone, Default)]
struct SiteLog {
    next_seq: u64,
    ops: Vec<(u64, HistOp)>,
}

/// Committed accesses of one (site, key) stream: (site seq, txn, kind).
type SeqOps = Vec<(u64, TxnId, AccessKind)>;

/// A multi-site execution history.
///
/// # Examples
///
/// ```
/// use repl_db::{ReplicatedHistory, AccessKind, Key, TxnId};
///
/// let mut h = ReplicatedHistory::new();
/// let (t1, t2) = (TxnId::new(1, 0), TxnId::new(2, 0));
/// h.record(0, t1, Key(0), AccessKind::Write);
/// h.record(0, t2, Key(0), AccessKind::Write);
/// h.mark_committed(t1);
/// h.mark_committed(t2);
/// let order = h.check_one_copy_serializable().expect("1SR");
/// assert_eq!(order, vec![t1, t2]);
/// ```
#[derive(Debug, Clone, Default)]
pub struct ReplicatedHistory {
    /// Per-site operation streams, in execution order.
    per_site: FxHashMap<u32, SiteLog>,
    committed: HashSet<TxnId>,
    /// Every op of every transaction, for commit/purge integration.
    ops_by_txn: FxHashMap<TxnId, Vec<(u32, u64, Key, AccessKind)>>,
    /// Committed ops per (site, key), kept sorted by site sequence.
    /// Holds only *integrated* ops; `dirty` tracks the rest.
    committed_seqs: FxHashMap<(u32, Key), SeqOps>,
    /// The maintained serialization-graph edge set (sorted by BTree
    /// order, which equals the old sort-and-dedup output).
    edges: BTreeSet<(TxnId, TxnId)>,
    /// Committed transactions with operations not yet folded into
    /// `committed_seqs`/`edges` (may contain duplicates and stale ids —
    /// integration re-checks).
    dirty: Vec<TxnId>,
    /// How many of each committed transaction's ops are integrated (a
    /// prefix of its `ops_by_txn` list).
    integrated: FxHashMap<TxnId, usize>,
    total_ops: usize,
    /// When set, `record`/`mark_committed` are no-ops: the open-loop
    /// scale path trades post-run serializability checking for constant
    /// memory (the history otherwise grows per operation, unbounded).
    paused: bool,
}

/// A cycle in the serialization graph: evidence of a non-serializable
/// execution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SerializabilityViolation {
    /// The transactions on the cycle, in edge order.
    pub cycle: Vec<TxnId>,
}

impl std::fmt::Display for SerializabilityViolation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "serialization-graph cycle through {} transactions",
            self.cycle.len()
        )
    }
}

impl std::error::Error for SerializabilityViolation {}

impl ReplicatedHistory {
    /// Creates an empty history.
    pub fn new() -> Self {
        ReplicatedHistory::default()
    }

    /// Turns recording on or off. While off, `record` and
    /// `mark_committed` do nothing, so the history stays constant-size
    /// no matter how many operations execute. Already-recorded state is
    /// kept. This is the single switch behind the server "lean" mode:
    /// protocols append through many call sites, and gating here covers
    /// them all.
    pub fn set_recording(&mut self, on: bool) {
        self.paused = !on;
    }

    /// True unless recording has been switched off.
    pub fn is_recording(&self) -> bool {
        !self.paused
    }

    /// Records a physical operation at `site` in execution order.
    pub fn record(&mut self, site: u32, txn: TxnId, key: Key, kind: AccessKind) {
        if self.paused {
            return;
        }
        let log = self.per_site.entry(site).or_default();
        let seq = log.next_seq;
        log.next_seq += 1;
        log.ops.push((
            seq,
            HistOp {
                site,
                txn,
                key,
                kind,
            },
        ));
        self.ops_by_txn
            .entry(txn)
            .or_default()
            .push((site, seq, key, kind));
        self.total_ops += 1;
        if self.committed.contains(&txn) {
            self.dirty.push(txn);
        }
    }

    /// Marks a transaction as committed; only committed transactions
    /// participate in the serialization graph.
    pub fn mark_committed(&mut self, txn: TxnId) {
        if self.paused {
            return;
        }
        if self.committed.insert(txn) {
            self.dirty.push(txn);
        }
    }

    /// Folds every queued committed op into the maintained graph. Each op
    /// is integrated at most once, so repeated flushes only ever pay for
    /// what changed since the last one.
    fn flush(&mut self) {
        while let Some(txn) = self.dirty.pop() {
            // Stale entries (purged or re-recorded-but-uncommitted ids)
            // must not integrate.
            if !self.committed.contains(&txn) {
                continue;
            }
            let done = self.integrated.get(&txn).copied().unwrap_or(0);
            let Some(ops) = self.ops_by_txn.get(&txn) else {
                continue;
            };
            if done >= ops.len() {
                continue;
            }
            // Split off the tail so `integrate` can borrow `self`.
            let tail: Vec<(u32, u64, Key, AccessKind)> = ops[done..].to_vec();
            self.integrated.insert(txn, ops.len());
            for (site, seq, key, kind) in tail {
                self.integrate(site, seq, key, kind, txn);
            }
        }
    }

    /// Folds one committed op into the per-(site, key) conflict order and
    /// the maintained edge set.
    fn integrate(&mut self, site: u32, seq: u64, key: Key, kind: AccessKind, txn: TxnId) {
        let list = self.committed_seqs.entry((site, key)).or_default();
        let pos = list.partition_point(|&(s, _, _)| s < seq);
        for &(other_seq, other_txn, other_kind) in list.iter() {
            if other_txn == txn || !kind.conflicts_with(other_kind) {
                continue;
            }
            if other_seq < seq {
                self.edges.insert((other_txn, txn));
            } else {
                self.edges.insert((txn, other_txn));
            }
        }
        list.insert(pos, (seq, txn, kind));
    }

    /// Number of recorded operations across all sites.
    pub fn len(&self) -> usize {
        self.total_ops
    }

    /// True if no operations were recorded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The committed transactions.
    pub fn committed(&self) -> &HashSet<TxnId> {
        &self.committed
    }

    /// Removes every recorded operation of `txn` (used when an aborted
    /// attempt is retried under the same transaction id: the dead
    /// attempt's operations must not count once the retry commits).
    pub fn purge(&mut self, txn: TxnId) {
        let Some(ops) = self.ops_by_txn.remove(&txn) else {
            self.committed.remove(&txn);
            self.integrated.remove(&txn);
            return;
        };
        let was_committed = self.committed.remove(&txn);
        // Only the integrated prefix made it into the maintained graph;
        // the un-flushed tail vanishes with the op list (its `dirty`
        // entries go stale, which `flush` tolerates).
        let done = self.integrated.remove(&txn).unwrap_or(0);
        for (i, &(site, seq, key, _)) in ops.iter().enumerate() {
            if let Some(log) = self.per_site.get_mut(&site) {
                if let Ok(j) = log.ops.binary_search_by_key(&seq, |&(s, _)| s) {
                    log.ops.remove(j);
                }
            }
            if was_committed && i < done {
                if let Some(list) = self.committed_seqs.get_mut(&(site, key)) {
                    list.retain(|&(s, t, _)| !(s == seq && t == txn));
                }
            }
        }
        self.total_ops -= ops.len();
        if done > 0 {
            // Dropping txn's ops removes exactly the edges touching txn;
            // orders among the remaining transactions are unchanged.
            self.edges.retain(|&(a, b)| a != txn && b != txn);
        }
    }

    /// Merges another history (e.g. collected from another site's actor).
    pub fn merge(&mut self, other: &ReplicatedHistory) {
        let mut sites: Vec<u32> = other.per_site.keys().copied().collect();
        sites.sort_unstable(); // sorted-below
        for site in sites {
            let log = &other.per_site[&site];
            for &(_, op) in &log.ops {
                self.record(site, op.txn, op.key, op.kind);
            }
        }
        let mut newly: Vec<TxnId> = other.committed.iter().copied().collect();
        newly.sort_unstable(); // sorted-below
        for txn in newly {
            self.mark_committed(txn);
        }
        // Amortize: repeated merges each integrate only their own delta,
        // and the final check reads the maintained set straight off.
        self.flush();
    }

    /// The maintained edge set plus the contribution of any still-pending
    /// committed ops, computed without mutating (so `&self` readers stay
    /// correct mid-stream).
    fn edges_with_pending(&self) -> BTreeSet<(TxnId, TxnId)> {
        let mut edges = self.edges.clone();
        let mut pending: FxHashMap<(u32, Key), SeqOps> = FxHashMap::default();
        let mut seen: HashSet<TxnId> = HashSet::new();
        for &txn in &self.dirty {
            if !self.committed.contains(&txn) || !seen.insert(txn) {
                continue;
            }
            let done = self.integrated.get(&txn).copied().unwrap_or(0);
            if let Some(ops) = self.ops_by_txn.get(&txn) {
                for &(site, seq, key, kind) in ops.iter().skip(done) {
                    pending
                        .entry((site, key))
                        .or_default()
                        .push((seq, txn, kind));
                }
            }
        }
        for ((site, key), mut plist) in pending {
            plist.sort_unstable_by_key(|&(s, _, _)| s);
            // Pending vs already-integrated ops on the same copy.
            if let Some(list) = self.committed_seqs.get(&(site, key)) {
                for &(pseq, ptxn, pkind) in &plist {
                    for &(oseq, otxn, okind) in list {
                        if otxn != ptxn && pkind.conflicts_with(okind) {
                            edges.insert(if oseq < pseq {
                                (otxn, ptxn)
                            } else {
                                (ptxn, otxn)
                            });
                        }
                    }
                }
            }
            // Pending vs pending.
            for (i, &(s1, t1, k1)) in plist.iter().enumerate() {
                for &(s2, t2, k2) in &plist[i + 1..] {
                    if t1 != t2 && k1.conflicts_with(k2) {
                        edges.insert(if s1 < s2 { (t1, t2) } else { (t2, t1) });
                    }
                }
            }
        }
        edges
    }

    /// The edges of the replicated-data serialization graph, sorted.
    pub fn conflict_edges(&self) -> Vec<(TxnId, TxnId)> {
        if self.dirty.is_empty() {
            return self.edges.iter().copied().collect();
        }
        self.edges_with_pending().into_iter().collect()
    }

    /// Checks one-copy serializability.
    ///
    /// # Errors
    ///
    /// Returns the violating cycle if the serialization graph is cyclic;
    /// otherwise returns a witness serial order (a topological sort).
    pub fn check_one_copy_serializable(&self) -> Result<Vec<TxnId>, SerializabilityViolation> {
        let edges = self.conflict_edges();
        let mut nodes: Vec<TxnId> = self.committed.iter().copied().collect();
        nodes.sort_unstable();
        let mut adj: HashMap<TxnId, Vec<TxnId>> = HashMap::new();
        let mut indeg: HashMap<TxnId, usize> = nodes.iter().map(|&n| (n, 0)).collect();
        for &(a, b) in &edges {
            adj.entry(a).or_default().push(b);
            *indeg.entry(b).or_insert(0) += 1;
            indeg.entry(a).or_insert(0);
        }
        // Kahn's algorithm with deterministic tie-breaking.
        let mut ready: Vec<TxnId> = indeg
            .iter()
            .filter(|(_, &d)| d == 0)
            .map(|(&n, _)| n)
            .collect();
        ready.sort_unstable();
        let mut order = Vec::with_capacity(indeg.len());
        while let Some(&n) = ready.first() {
            ready.remove(0);
            order.push(n);
            if let Some(succ) = adj.get(&n) {
                for &s in succ {
                    let d = indeg.get_mut(&s).expect("known node");
                    *d -= 1;
                    if *d == 0 {
                        let pos = ready.binary_search(&s).unwrap_or_else(|p| p);
                        ready.insert(pos, s);
                    }
                }
            }
        }
        if order.len() == indeg.len() {
            Ok(order)
        } else {
            Err(SerializabilityViolation {
                cycle: self.find_cycle(&edges),
            })
        }
    }

    fn find_cycle(&self, edges: &[(TxnId, TxnId)]) -> Vec<TxnId> {
        let mut adj: HashMap<TxnId, Vec<TxnId>> = HashMap::new();
        let mut nodes: HashSet<TxnId> = HashSet::new();
        for &(a, b) in edges {
            adj.entry(a).or_default().push(b);
            nodes.insert(a);
            nodes.insert(b);
        }
        let mut sorted: Vec<TxnId> = nodes.iter().copied().collect();
        sorted.sort_unstable();
        #[derive(Clone, Copy, PartialEq)]
        enum C {
            W,
            G,
            B,
        }
        let mut color: HashMap<TxnId, C> = nodes.iter().map(|&n| (n, C::W)).collect();
        for &start in &sorted {
            if color[&start] != C::W {
                continue;
            }
            let mut stack = vec![(start, 0usize)];
            let mut path = vec![start];
            color.insert(start, C::G);
            while let Some(&mut (node, ref mut idx)) = stack.last_mut() {
                let next = adj.get(&node).and_then(|v| v.get(*idx).copied());
                *idx += 1;
                match next {
                    Some(n) => match color[&n] {
                        C::G => {
                            let pos = path.iter().position(|&p| p == n).expect("on path");
                            return path[pos..].to_vec();
                        }
                        C::W => {
                            color.insert(n, C::G);
                            stack.push((n, 0));
                            path.push(n);
                        }
                        C::B => {}
                    },
                    None => {
                        color.insert(node, C::B);
                        stack.pop();
                        path.pop();
                    }
                }
            }
        }
        Vec::new()
    }

    /// Recomputes the conflict edges from scratch (the pre-incremental
    /// algorithm). Test oracle for the maintained edge set.
    #[cfg(test)]
    fn full_rescan_edges(&self) -> Vec<(TxnId, TxnId)> {
        let mut edges = HashSet::new();
        for log in self.per_site.values() {
            let mut per_key: HashMap<Key, Vec<(TxnId, AccessKind)>> = HashMap::new();
            for &(_, op) in &log.ops {
                if self.committed.contains(&op.txn) {
                    per_key.entry(op.key).or_default().push((op.txn, op.kind));
                }
            }
            for seq in per_key.values() {
                for (i, &(t1, k1)) in seq.iter().enumerate() {
                    for &(t2, k2) in &seq[i + 1..] {
                        if t1 != t2 && k1.conflicts_with(k2) {
                            edges.insert((t1, t2));
                        }
                    }
                }
            }
        }
        let mut v: Vec<(TxnId, TxnId)> = edges.into_iter().collect();
        v.sort_unstable();
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use AccessKind::{Read, Write};

    fn t(ts: u64) -> TxnId {
        TxnId::new(ts, 0)
    }

    #[test]
    fn empty_history_is_serializable() {
        let h = ReplicatedHistory::new();
        assert!(h.is_empty());
        assert_eq!(
            h.check_one_copy_serializable().expect("trivially 1SR"),
            vec![]
        );
    }

    #[test]
    fn reads_never_conflict() {
        let mut h = ReplicatedHistory::new();
        h.record(0, t(1), Key(0), Read);
        h.record(0, t(2), Key(0), Read);
        h.mark_committed(t(1));
        h.mark_committed(t(2));
        assert!(h.conflict_edges().is_empty());
    }

    #[test]
    fn single_site_serial_order_follows_execution() {
        let mut h = ReplicatedHistory::new();
        h.record(0, t(2), Key(0), Write);
        h.record(0, t(1), Key(0), Write);
        h.mark_committed(t(1));
        h.mark_committed(t(2));
        // Execution order t2 then t1 — the witness must respect it.
        assert_eq!(
            h.check_one_copy_serializable().expect("1SR"),
            vec![t(2), t(1)]
        );
    }

    #[test]
    fn cross_site_write_inversion_is_detected() {
        // Site 0 applies t1's write before t2's; site 1 the reverse:
        // classic replica divergence, not 1SR.
        let mut h = ReplicatedHistory::new();
        h.record(0, t(1), Key(0), Write);
        h.record(0, t(2), Key(0), Write);
        h.record(1, t(2), Key(0), Write);
        h.record(1, t(1), Key(0), Write);
        h.mark_committed(t(1));
        h.mark_committed(t(2));
        let err = h.check_one_copy_serializable().expect_err("must be cyclic");
        assert_eq!(err.cycle.len(), 2);
        assert_eq!(
            err.to_string(),
            "serialization-graph cycle through 2 transactions"
        );
    }

    #[test]
    fn read_write_inversion_across_items_is_detected() {
        // t1 reads x then writes y; t2 reads y then writes x; interleaved
        // so each reads the pre-image: r1(x) r2(y) w1(y) w2(x) — cyclic.
        let mut h = ReplicatedHistory::new();
        h.record(0, t(1), Key(0), Read);
        h.record(0, t(2), Key(1), Read);
        h.record(0, t(1), Key(1), Write);
        h.record(0, t(2), Key(0), Write);
        h.mark_committed(t(1));
        h.mark_committed(t(2));
        assert!(h.check_one_copy_serializable().is_err());
    }

    #[test]
    fn uncommitted_transactions_are_ignored() {
        let mut h = ReplicatedHistory::new();
        h.record(0, t(1), Key(0), Write);
        h.record(0, t(2), Key(0), Write);
        h.record(0, t(1), Key(0), Write); // would be a w1 w2 w1 cycle if t2 counted
        h.mark_committed(t(1));
        assert!(h.check_one_copy_serializable().is_ok());
    }

    #[test]
    fn purge_removes_aborted_attempts() {
        let mut h = ReplicatedHistory::new();
        h.record(0, t(1), Key(0), Write);
        h.record(0, t(2), Key(0), Write);
        h.record(0, t(1), Key(1), Write);
        h.purge(t(1));
        h.record(0, t(1), Key(0), Write); // the retry
        h.mark_committed(t(1));
        h.mark_committed(t(2));
        // Without the purge this would be w1 w2 w1: cyclic.
        assert!(h.check_one_copy_serializable().is_ok());
        assert_eq!(h.len(), 2);
    }

    #[test]
    fn merge_combines_sites() {
        let mut a = ReplicatedHistory::new();
        a.record(0, t(1), Key(0), Write);
        a.mark_committed(t(1));
        let mut b = ReplicatedHistory::new();
        b.record(1, t(2), Key(0), Write);
        b.mark_committed(t(2));
        a.merge(&b);
        assert_eq!(a.len(), 2);
        assert_eq!(a.committed().len(), 2);
    }

    #[test]
    fn consistent_cross_site_order_is_serializable() {
        let mut h = ReplicatedHistory::new();
        for site in 0..3 {
            h.record(site, t(1), Key(0), Write);
            h.record(site, t(2), Key(0), Write);
            h.record(site, t(3), Key(0), Write);
        }
        for ts in 1..=3 {
            h.mark_committed(t(ts));
        }
        assert_eq!(
            h.check_one_copy_serializable().expect("1SR"),
            vec![t(1), t(2), t(3)]
        );
    }

    #[test]
    fn incremental_edges_match_full_rescan_under_random_load() {
        // Random record/commit/purge traffic: the maintained edge set must
        // equal a from-scratch rescan after every mutation.
        let mut h = ReplicatedHistory::new();
        let mut s = 77u64;
        for _ in 0..600 {
            s = s
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let txn = t(1 + (s >> 7) % 7);
            let site = ((s >> 17) % 3) as u32;
            let key = Key((s >> 27) % 4);
            let kind = if (s >> 37).is_multiple_of(2) {
                Read
            } else {
                Write
            };
            match (s >> 47) % 8 {
                0 => h.purge(txn),
                1 | 2 => h.mark_committed(txn),
                _ => h.record(site, txn, key, kind),
            }
            assert_eq!(h.conflict_edges(), h.full_rescan_edges());
        }
    }

    #[test]
    fn pending_reads_agree_with_flushed_state() {
        // Reading edges while integration is still queued (the `&self`
        // overlay) must match what a flushed history reports.
        let mut h = ReplicatedHistory::new();
        h.record(0, t(1), Key(0), Write);
        h.record(0, t(2), Key(0), Write);
        h.record(0, t(3), Key(0), Read);
        h.record(1, t(2), Key(1), Write);
        h.record(1, t(3), Key(1), Write);
        h.mark_committed(t(1));
        h.mark_committed(t(2));
        h.mark_committed(t(3));
        let before = h.conflict_edges();
        let mut merged = ReplicatedHistory::new();
        merged.merge(&h); // merge flushes
        assert_eq!(before, merged.conflict_edges());
        assert_eq!(before, h.full_rescan_edges());
    }

    #[test]
    fn record_after_commit_still_counts() {
        // Some protocols mark a txn committed and then (via merge or
        // late application) record more of its ops; those must join the
        // graph immediately.
        let mut h = ReplicatedHistory::new();
        h.record(0, t(1), Key(0), Write);
        h.mark_committed(t(1));
        h.mark_committed(t(2));
        h.record(0, t(2), Key(0), Write);
        assert_eq!(h.conflict_edges(), vec![(t(1), t(2))]);
        assert_eq!(h.conflict_edges(), h.full_rescan_edges());
    }

    #[test]
    fn paused_recording_keeps_the_history_constant_size() {
        // The open-loop lean path flips recording off; every append —
        // including the direct protocol call sites — must then be a
        // no-op, while already-recorded state survives.
        let mut h = ReplicatedHistory::new();
        assert!(h.is_recording());
        h.record(0, t(1), Key(0), Write);
        h.mark_committed(t(1));
        h.set_recording(false);
        assert!(!h.is_recording());
        for i in 2..100u64 {
            h.record(0, t(i), Key(i % 4), Write);
            h.mark_committed(t(i));
        }
        assert_eq!(h.len(), 1, "paused history must not grow");
        assert_eq!(h.committed().len(), 1);
        h.set_recording(true);
        h.record(0, t(2), Key(0), Write);
        h.mark_committed(t(2));
        assert_eq!(h.conflict_edges(), vec![(t(1), t(2))]);
    }

    #[test]
    fn merge_preserves_edge_structure() {
        let mut a = ReplicatedHistory::new();
        a.record(0, t(1), Key(0), Write);
        a.record(0, t(2), Key(0), Write);
        a.mark_committed(t(1));
        a.mark_committed(t(2));
        let mut b = ReplicatedHistory::new();
        b.record(1, t(2), Key(0), Write);
        b.record(1, t(3), Key(0), Write);
        b.mark_committed(t(3));
        a.merge(&b);
        // b's site-1 order contributes t2→t3 (t3 committed via merge).
        assert!(a.conflict_edges().contains(&(t(1), t(2))));
        assert!(a.conflict_edges().contains(&(t(2), t(3))));
        assert_eq!(a.conflict_edges(), a.full_rescan_edges());
        assert_eq!(a.len(), 4);
    }
}
