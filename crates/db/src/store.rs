//! The versioned in-memory store: one site's physical copies.
//!
//! Two backings share one API. When the workload declares a bounded
//! [`Keyspace`], the store is *dense*: a `Vec<Option<Versioned>>`
//! indexed directly by `Key`, so the hot read/write path is a bounds
//! check and a pointer offset instead of a hash probe. The *sparse*
//! path keeps a hash map (Fx, not SipHash) for open-ended key domains,
//! and also catches the rare out-of-range key on a dense store so the
//! dense assumption can never corrupt semantics — only speed.

use crate::hash::FxHashMap;
use crate::item::{Key, Keyspace, TxnId, Value};
use crate::log::{WriteRecord, WriteSet};

/// A physical copy: current value, a version counter, and the writer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Versioned {
    /// Current value.
    pub value: Value,
    /// Monotone per-item version, starting at 0 for the initial value.
    pub version: u64,
    /// The transaction that produced this version (`None` for the initial
    /// database state).
    pub writer: Option<TxnId>,
}

impl Versioned {
    /// The initial version of an item.
    pub fn initial(value: Value) -> Self {
        Versioned {
            value,
            version: 0,
            writer: None,
        }
    }
}

/// One site's database: the logical keys' physical copies at this site.
///
/// # Examples
///
/// ```
/// use repl_db::{Store, Key, Value, TxnId};
///
/// let mut store = Store::with_items(4, Value(0));
/// let t = TxnId::new(1, 0);
/// store.write(Key(2), Value(9), t);
/// let v = store.read(Key(2)).expect("item exists");
/// assert_eq!(v.value, Value(9));
/// assert_eq!(v.version, 1);
/// assert_eq!(v.writer, Some(t));
/// ```
#[derive(Debug, Clone)]
pub struct Store {
    ks: Keyspace,
    /// Dense backing: slot `i` is `Key(i)`'s copy. Empty when sparse.
    dense: Vec<Option<Versioned>>,
    /// Number of `Some` slots in `dense`.
    dense_len: usize,
    /// Sparse backing; on the dense path this only holds keys outside
    /// the declared range (a correctness escape hatch, not a fast path).
    sparse: FxHashMap<Key, Versioned>,
}

impl Default for Store {
    fn default() -> Self {
        Store::new()
    }
}

impl Store {
    /// Creates an empty store with an open (sparse) keyspace.
    pub fn new() -> Self {
        Store {
            ks: Keyspace::sparse(0),
            dense: Vec::new(),
            dense_len: 0,
            sparse: FxHashMap::default(),
        }
    }

    /// Creates a store with keys `0..n`, all at `initial`, densely backed.
    pub fn with_items(n: u64, initial: Value) -> Self {
        Store::with_keyspace(Keyspace::dense(n), initial)
    }

    /// Creates a store with keys `0..ks.items` at `initial`, using the
    /// backing the keyspace declares.
    pub fn with_keyspace(ks: Keyspace, initial: Value) -> Self {
        if ks.dense {
            Store {
                ks,
                dense: vec![Some(Versioned::initial(initial)); ks.items as usize],
                dense_len: ks.items as usize,
                sparse: FxHashMap::default(),
            }
        } else {
            let mut sparse = FxHashMap::default();
            sparse.reserve(ks.items as usize);
            for k in 0..ks.items {
                sparse.insert(Key(k), Versioned::initial(initial));
            }
            Store {
                ks,
                dense: Vec::new(),
                dense_len: 0,
                sparse,
            }
        }
    }

    /// The keyspace this store was built for.
    pub fn keyspace(&self) -> Keyspace {
        self.ks
    }

    /// Number of items.
    pub fn len(&self) -> usize {
        self.dense_len + self.sparse.len()
    }

    /// True if the store holds no items.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Reads the physical copy of `key`.
    #[inline(always)]
    pub fn read(&self, key: Key) -> Option<Versioned> {
        match self.dense.get(key.0 as usize) {
            Some(slot) => *slot,
            None => self.sparse.get(&key).copied(),
        }
    }

    /// The slot for `key`, created at `default` if absent.
    #[inline(always)]
    fn entry_or_insert(&mut self, key: Key, default: Versioned) -> &mut Versioned {
        if (key.0 as usize) < self.dense.len() {
            let slot = &mut self.dense[key.0 as usize];
            if slot.is_none() {
                *slot = Some(default);
                self.dense_len += 1;
            }
            slot.as_mut().expect("slot populated above")
        } else {
            self.sparse.entry(key).or_insert(default)
        }
    }

    /// Writes `value` to `key` on behalf of `txn`, bumping the version.
    /// Unknown keys are created at version 1 (version 0 is the implicit
    /// initial state). Returns the new version.
    pub fn write(&mut self, key: Key, value: Value, txn: TxnId) -> Versioned {
        let entry = self.entry_or_insert(key, Versioned::initial(Value(0)));
        entry.value = value;
        entry.version += 1;
        entry.writer = Some(txn);
        *entry
    }

    /// Restores `key` to an exact earlier state (undo).
    pub fn restore(&mut self, key: Key, state: Versioned) {
        *self.entry_or_insert(key, state) = state;
    }

    /// Applies a replicated writeset (redo records), overwriting values and
    /// adopting the writer's versions. This is how secondaries install a
    /// primary's updates without re-executing (Section 3.3 / 4.3).
    pub fn apply_writeset(&mut self, ws: &WriteSet) {
        for rec in &ws.writes {
            let entry = self.entry_or_insert(rec.key, Versioned::initial(Value(0)));
            entry.value = rec.value;
            entry.version = rec.version;
            entry.writer = Some(ws.txn);
        }
    }

    /// Iterates over all items in unspecified order.
    pub fn iter(&self) -> impl Iterator<Item = (Key, &Versioned)> {
        self.dense
            .iter()
            .enumerate()
            .filter_map(|(i, slot)| slot.as_ref().map(|v| (Key(i as u64), v)))
            .chain(self.sparse.iter().map(|(k, v)| (*k, v)))
    }

    /// Exports the full database state, key-sorted, for state transfer
    /// to a recovering replica. The order is deterministic so shipping
    /// the snapshot over the simulated network stays reproducible.
    pub fn snapshot(&self) -> Vec<(Key, Versioned)> {
        let mut entries: Vec<(Key, Versioned)> = self.iter().map(|(k, v)| (k, *v)).collect();
        entries.sort_by_key(|(k, _)| *k);
        entries
    }

    /// Replaces the entire database state with a donor's snapshot
    /// (values, versions and writers). The inverse of
    /// [`Store::snapshot`]: afterwards the two stores have equal
    /// fingerprints.
    pub fn install_snapshot(&mut self, snapshot: &[(Key, Versioned)]) {
        for slot in &mut self.dense {
            *slot = None;
        }
        self.dense_len = 0;
        self.sparse.clear();
        for (k, v) in snapshot {
            *self.entry_or_insert(*k, *v) = *v;
        }
    }

    /// A deterministic fingerprint of the full database state, used by the
    /// experiments to compare replica convergence.
    pub fn fingerprint(&self) -> u64 {
        let mut entries: Vec<(Key, &Versioned)> = self.iter().collect();
        entries.sort_by_key(|(k, _)| *k);
        // FNV-1a over the sorted (key, value) stream.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for (k, v) in entries {
            for word in [k.0, v.value.0 as u64] {
                for byte in word.to_le_bytes() {
                    h ^= byte as u64;
                    h = h.wrapping_mul(0x0000_0100_0000_01b3);
                }
            }
        }
        h
    }
}

/// A shadow overlay for optimistic execution (certification-based
/// replication, Section 5.4.2): reads fall through to the base store,
/// writes stay in the overlay until the transaction certifies.
///
/// # Examples
///
/// ```
/// use repl_db::{Store, ShadowStore, Key, Value, TxnId};
///
/// let store = Store::with_items(2, Value(0));
/// let mut shadow = ShadowStore::new(&store, TxnId::new(1, 0));
/// shadow.write(Key(0), Value(5));
/// assert_eq!(shadow.read(Key(0)).expect("exists").value, Value(5));
/// assert_eq!(store.read(Key(0)).expect("exists").value, Value(0)); // base untouched
/// let ws = shadow.into_writeset();
/// assert_eq!(ws.writes.len(), 1);
/// ```
#[derive(Debug)]
pub struct ShadowStore<'a> {
    base: &'a Store,
    txn: TxnId,
    overlay: FxHashMap<Key, (Value, u64)>,
    read_versions: Vec<(Key, u64)>,
}

impl<'a> ShadowStore<'a> {
    /// Creates a shadow over `base` for `txn`.
    pub fn new(base: &'a Store, txn: TxnId) -> Self {
        ShadowStore {
            base,
            txn,
            overlay: FxHashMap::default(),
            read_versions: Vec::new(),
        }
    }

    /// Reads through the overlay, recording the version seen for the
    /// transaction's read set.
    pub fn read(&mut self, key: Key) -> Option<Versioned> {
        if let Some(&(value, version)) = self.overlay.get(&key) {
            return Some(Versioned {
                value,
                version,
                writer: Some(self.txn),
            });
        }
        let v = self.base.read(key)?;
        self.read_versions.push((key, v.version));
        Some(v)
    }

    /// Buffers a write in the overlay.
    pub fn write(&mut self, key: Key, value: Value) {
        let base_version = self.base.read(key).map_or(0, |v| v.version);
        self.overlay.insert(key, (value, base_version + 1));
    }

    /// The versions read from the base store (the read set).
    pub fn read_set(&self) -> &[(Key, u64)] {
        &self.read_versions
    }

    /// Converts the buffered writes into a writeset for certification.
    pub fn into_writeset(self) -> WriteSet {
        let mut writes: Vec<WriteRecord> = self
            .overlay
            .into_iter()
            .map(|(key, (value, version))| WriteRecord {
                key,
                value,
                version,
            })
            .collect();
        writes.sort_by_key(|r| r.key);
        WriteSet {
            txn: self.txn,
            writes,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn versions_are_monotone_per_item() {
        let mut s = Store::with_items(1, Value(0));
        let t1 = TxnId::new(1, 0);
        let t2 = TxnId::new(2, 0);
        assert_eq!(s.read(Key(0)).expect("exists").version, 0);
        assert_eq!(s.write(Key(0), Value(1), t1).version, 1);
        assert_eq!(s.write(Key(0), Value(2), t2).version, 2);
        assert_eq!(s.read(Key(0)).expect("exists").writer, Some(t2));
    }

    #[test]
    fn unknown_key_write_creates_item() {
        let mut s = Store::new();
        assert!(s.is_empty());
        let v = s.write(Key(9), Value(3), TxnId::new(1, 0));
        assert_eq!(v.version, 1);
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn restore_is_exact_undo() {
        let mut s = Store::with_items(1, Value(10));
        let before = s.read(Key(0)).expect("exists");
        s.write(Key(0), Value(99), TxnId::new(5, 1));
        s.restore(Key(0), before);
        assert_eq!(s.read(Key(0)).expect("exists"), before);
    }

    #[test]
    fn apply_writeset_adopts_writer_versions() {
        let mut primary = Store::with_items(2, Value(0));
        let mut backup = Store::with_items(2, Value(0));
        let t = TxnId::new(3, 0);
        primary.write(Key(0), Value(7), t);
        primary.write(Key(1), Value(8), t);
        let ws = WriteSet {
            txn: t,
            writes: vec![
                WriteRecord {
                    key: Key(0),
                    value: Value(7),
                    version: 1,
                },
                WriteRecord {
                    key: Key(1),
                    value: Value(8),
                    version: 1,
                },
            ],
        };
        backup.apply_writeset(&ws);
        assert_eq!(primary.fingerprint(), backup.fingerprint());
    }

    #[test]
    fn fingerprint_detects_divergence() {
        let a = Store::with_items(3, Value(0));
        let mut b = Store::with_items(3, Value(0));
        assert_eq!(a.fingerprint(), b.fingerprint());
        b.write(Key(1), Value(1), TxnId::new(1, 1));
        assert_ne!(a.fingerprint(), b.fingerprint());
    }

    #[test]
    fn shadow_records_read_set_and_buffers_writes() {
        let mut base = Store::with_items(2, Value(0));
        base.write(Key(1), Value(5), TxnId::new(1, 0)); // version 1
        let mut shadow = ShadowStore::new(&base, TxnId::new(2, 0));
        assert_eq!(shadow.read(Key(1)).expect("exists").value, Value(5));
        shadow.write(Key(0), Value(42));
        assert_eq!(shadow.read(Key(0)).expect("exists").value, Value(42));
        assert_eq!(shadow.read_set(), &[(Key(1), 1)]);
        let ws = shadow.into_writeset();
        assert_eq!(
            ws.writes,
            vec![WriteRecord {
                key: Key(0),
                value: Value(42),
                version: 1
            }]
        );
    }

    #[test]
    fn shadow_reads_of_own_writes_do_not_pollute_read_set() {
        let base = Store::with_items(1, Value(0));
        let mut shadow = ShadowStore::new(&base, TxnId::new(1, 0));
        shadow.write(Key(0), Value(1));
        let _ = shadow.read(Key(0));
        assert!(shadow.read_set().is_empty());
    }
}

#[cfg(test)]
mod more_tests {
    use super::*;

    #[test]
    fn iter_visits_every_item() {
        let s = Store::with_items(5, Value(3));
        let mut keys: Vec<u64> = s.iter().map(|(k, _)| k.0).collect();
        keys.sort_unstable();
        assert_eq!(keys, vec![0, 1, 2, 3, 4]);
        assert!(s.iter().all(|(_, v)| v.value == Value(3) && v.version == 0));
    }

    #[test]
    fn fingerprint_is_order_of_insertion_independent() {
        let mut a = Store::new();
        let mut b = Store::new();
        let t = TxnId::new(1, 0);
        for k in 0..10 {
            a.write(Key(k), Value(k as i64), t);
        }
        for k in (0..10).rev() {
            b.write(Key(k), Value(k as i64), t);
        }
        // Versions equal (1 each), values equal → fingerprints equal even
        // though the backing internals differ.
        assert_eq!(a.fingerprint(), b.fingerprint());
    }

    #[test]
    fn snapshot_round_trips_full_state() {
        let mut donor = Store::with_items(4, Value(0));
        let t = TxnId::new(7, 2);
        donor.write(Key(1), Value(11), t);
        donor.write(Key(3), Value(-5), t);
        let snap = donor.snapshot();
        // Key-sorted and complete.
        let keys: Vec<u64> = snap.iter().map(|(k, _)| k.0).collect();
        assert_eq!(keys, vec![0, 1, 2, 3]);
        // Install replaces a diverged store entirely.
        let mut joiner = Store::with_items(9, Value(42));
        joiner.install_snapshot(&snap);
        assert_eq!(joiner.len(), donor.len());
        assert_eq!(joiner.fingerprint(), donor.fingerprint());
        assert_eq!(joiner.read(Key(1)).expect("exists").writer, Some(t));
    }

    #[test]
    fn shadow_writeset_is_key_sorted() {
        let base = Store::with_items(5, Value(0));
        let mut sh = ShadowStore::new(&base, TxnId::new(2, 0));
        sh.write(Key(4), Value(1));
        sh.write(Key(1), Value(2));
        sh.write(Key(3), Value(3));
        let ws = sh.into_writeset();
        let keys: Vec<u64> = ws.keys().map(|k| k.0).collect();
        assert_eq!(keys, vec![1, 3, 4]);
    }

    #[test]
    fn dense_and_sparse_backings_agree() {
        let mut d = Store::with_keyspace(Keyspace::dense(8), Value(0));
        let mut s = Store::with_keyspace(Keyspace::sparse(8), Value(0));
        let t = TxnId::new(1, 0);
        for k in [3u64, 0, 7, 3, 5] {
            assert_eq!(
                d.write(Key(k), Value(k as i64), t),
                s.write(Key(k), Value(k as i64), t)
            );
        }
        assert_eq!(d.len(), s.len());
        assert_eq!(d.fingerprint(), s.fingerprint());
        assert_eq!(d.snapshot(), s.snapshot());
        for k in 0..8 {
            assert_eq!(d.read(Key(k)), s.read(Key(k)));
        }
    }

    #[test]
    fn dense_store_tolerates_out_of_range_keys() {
        let mut d = Store::with_keyspace(Keyspace::dense(4), Value(0));
        let t = TxnId::new(2, 1);
        // A key beyond the declared bound lands in the sparse overflow
        // with identical semantics (created at version 1).
        let v = d.write(Key(100), Value(6), t);
        assert_eq!(v.version, 1);
        assert_eq!(d.len(), 5);
        assert_eq!(d.read(Key(100)).expect("exists").value, Value(6));
        let snap = d.snapshot();
        assert_eq!(snap.last().expect("nonempty").0, Key(100));
        // Round-trips through snapshot install, including the overflow key.
        let mut fresh = Store::with_keyspace(Keyspace::dense(4), Value(9));
        fresh.install_snapshot(&snap);
        assert_eq!(fresh.fingerprint(), d.fingerprint());
    }
}
