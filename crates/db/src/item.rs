//! Logical data items, values, and transaction identities.
//!
//! The paper's replication model (Section 4.1) distinguishes a *logical*
//! data item `X` from its *physical* copies `Xi` on each site. In this
//! kernel, a [`Key`] names the logical item; each site's
//! [`crate::Store`] holds that site's physical copy.

use std::fmt;

/// Names a logical data item.
///
/// # Examples
///
/// ```
/// use repl_db::Key;
/// let k = Key(7);
/// assert_eq!(k.to_string(), "x7");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Key(pub u64);

impl fmt::Display for Key {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "x{}", self.0)
    }
}

/// The value stored in a data item.
///
/// A plain integer: rich enough for register semantics (each write carries
/// a distinguishable value, which the consistency oracles rely on) while
/// keeping messages cheap to clone.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Value(pub i64);

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// Globally unique transaction identity, ordered by `(timestamp, site)`.
///
/// The total order doubles as the age order for wound-wait deadlock
/// prevention: smaller is older.
///
/// # Examples
///
/// ```
/// use repl_db::TxnId;
/// let older = TxnId::new(5, 0);
/// let newer = TxnId::new(9, 0);
/// assert!(older < newer);
/// assert!(older.is_older_than(newer));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TxnId {
    /// Start timestamp (virtual time ticks or any monotone counter).
    pub ts: u64,
    /// Originating site, breaking timestamp ties.
    pub site: u32,
}

impl TxnId {
    /// Creates a transaction id.
    pub fn new(ts: u64, site: u32) -> Self {
        TxnId { ts, site }
    }

    /// True if `self` started before `other` in the global age order.
    pub fn is_older_than(self, other: TxnId) -> bool {
        self < other
    }
}

impl fmt::Display for TxnId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t{}.{}", self.ts, self.site)
    }
}

/// Declares the shape of the key domain a kernel structure will see.
///
/// Workloads in this reproduction draw keys from a bounded, dense range
/// `0..items` (the paper's experiments fix the database size up front).
/// When a structure knows that, it can back itself with a `Vec` indexed
/// directly by `Key` instead of a hash map — the dense path. The sparse
/// path keeps a map and makes no assumption about the key range; it is
/// the fallback for open-ended key domains.
///
/// A bare item count converts to a dense keyspace, so existing
/// `new(site, items, ...)` call sites keep working unchanged:
///
/// ```
/// use repl_db::Keyspace;
/// let ks: Keyspace = 128u64.into();
/// assert!(ks.dense);
/// assert_eq!(ks.items, 128);
/// assert!(!Keyspace::sparse(128).dense);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Keyspace {
    /// Number of pre-declared items (keys `0..items`). On the sparse
    /// path this is still the initial population count; keys outside
    /// the range remain legal.
    pub items: u64,
    /// True when keys are guaranteed to stay inside `0..items`, which
    /// licenses `Vec`-indexed dense backing.
    pub dense: bool,
}

impl Keyspace {
    /// A bounded keyspace: keys stay in `0..items`, dense backing allowed.
    pub fn dense(items: u64) -> Self {
        Keyspace { items, dense: true }
    }

    /// An open keyspace: `items` initial keys, but arbitrary keys may
    /// appear later, so map backing is required.
    pub fn sparse(items: u64) -> Self {
        Keyspace {
            items,
            dense: false,
        }
    }

    /// True if `key` falls inside the declared dense range.
    #[inline(always)]
    pub fn contains(&self, key: Key) -> bool {
        key.0 < self.items
    }
}

impl From<u64> for Keyspace {
    fn from(items: u64) -> Self {
        Keyspace::dense(items)
    }
}

/// Read or write access, the conflict-relevant half of an operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AccessKind {
    /// A read access.
    Read,
    /// A write access.
    Write,
}

impl AccessKind {
    /// Two accesses conflict if they touch the same item and at least one
    /// of them writes (Section 4.1 of the paper).
    pub fn conflicts_with(self, other: AccessKind) -> bool {
        matches!(
            (self, other),
            (AccessKind::Write, _) | (_, AccessKind::Write)
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn txn_age_order_breaks_ties_by_site() {
        let a = TxnId::new(5, 0);
        let b = TxnId::new(5, 1);
        assert!(a.is_older_than(b));
        assert!(!b.is_older_than(a));
        assert!(!a.is_older_than(a));
    }

    #[test]
    fn conflict_matrix() {
        use AccessKind::*;
        assert!(!Read.conflicts_with(Read));
        assert!(Read.conflicts_with(Write));
        assert!(Write.conflicts_with(Read));
        assert!(Write.conflicts_with(Write));
    }

    #[test]
    fn display_forms() {
        assert_eq!(Key(3).to_string(), "x3");
        assert_eq!(Value(-4).to_string(), "-4");
        assert_eq!(TxnId::new(8, 2).to_string(), "t8.2");
    }
}
